//! Quickstart: train a small spiking network with the per-timestep loss
//! (Eq. 10), then run input-aware dynamic-timestep inference (Eqs. 5–8) and
//! watch the entropy-based exits happen.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dt_snn::data::{SyntheticVision, VisionConfig};
use dt_snn::dtsnn::{DynamicInference, ExitPolicy};
use dt_snn::snn::{vgg_small, LossKind, ModelConfig, SgdConfig, Trainer, TrainerConfig};
use dt_snn::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic 4-class dataset with an easy/hard spectrum.
    let data = SyntheticVision::generate(
        &VisionConfig {
            classes: 4,
            train_size: 200,
            test_size: 60,
            prototype_similarity: 0.6,
            ..VisionConfig::default()
        },
        42,
    )?;

    // 2. A scaled spiking VGG trained for a few epochs with Eq. 10, the loss
    //    that supervises every timestep so early exits are accurate.
    let model_cfg = ModelConfig { num_classes: 4, ..ModelConfig::default() };
    let mut rng = TensorRng::seed_from(7);
    let mut net = vgg_small(&model_cfg, &mut rng)?;
    let trainer = Trainer::new(TrainerConfig {
        epochs: 6,
        batch_size: 32,
        timesteps: 4,
        loss: LossKind::PerTimestep,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 },
        seed: 1,
    })?;
    let report = trainer.fit(&mut net, &data.train.frames(), &data.train.labels())?;
    println!("trained: final epoch loss {:.3}, accuracy {:.1}%",
        report.final_loss(), report.final_accuracy() * 100.0);

    // 3. Dynamic-timestep inference: exit as soon as the normalized entropy
    //    of the accumulated output falls below θ.
    let runner = DynamicInference::new(ExitPolicy::entropy(0.3)?, 4)?;
    let mut exits = [0usize; 4];
    let mut correct = 0usize;
    for (sample, &label) in data.test.samples.iter().zip(&data.test.labels()) {
        let outcome = runner.run(&mut net, &sample.frames)?;
        exits[outcome.timesteps_used - 1] += 1;
        correct += (outcome.prediction == label) as usize;
        if outcome.exited_early && exits.iter().sum::<usize>() <= 3 {
            println!(
                "sample difficulty {:.2}: exited at T̂={} with entropy trace {:?}",
                sample.difficulty, outcome.timesteps_used,
                outcome.scores.iter().map(|s| (s * 100.0).round() / 100.0).collect::<Vec<_>>()
            );
        }
    }
    println!("\naccuracy {:.1}%  |  T̂ histogram (T=1..4): {exits:?}",
        correct as f32 / data.test.len() as f32 * 100.0);
    println!("most inputs exit after one timestep; only the hard tail pays for the full window");
    Ok(())
}
