//! Hardware report: map the paper-size VGG-16 and ResNet-19 onto the
//! Table-I RRAM architecture and print the placement, the component-wise
//! energy breakdown (Fig. 1A), the timestep scaling (Fig. 1B) and the σ–E
//! module overhead — no training required.
//!
//! ```sh
//! cargo run --release --example imc_energy_report
//! ```

use dt_snn::imc::{
    chip_area, AreaConstants, ChipMapping, Component, CostModel, HardwareConfig, NocModel,
    SigmaEModule,
};
use dt_snn::snn::{resnet19_geometry, vgg16_geometry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HardwareConfig::default();
    println!(
        "architecture: {}×{} crossbars, {}/tile, {}-bit devices, {}-bit weights, mux {}:1",
        config.crossbar_size,
        config.crossbar_size,
        config.crossbars_per_tile,
        config.device_bits,
        config.weight_bits,
        config.adc_mux_ratio
    );

    for (name, geometry) in [
        ("VGG-16 (CIFAR-10, 32×32)", vgg16_geometry(32, 3, 10)),
        ("ResNet-19 (CIFAR-10, 32×32)", resnet19_geometry(32, 3, 10)),
        ("VGG-16 (TinyImageNet, 64×64)", vgg16_geometry(64, 3, 200)),
    ] {
        let mapping = ChipMapping::map(&geometry, &config)?;
        println!(
            "\n== {name} ==\n  {} weight layers → {} crossbars, {} tiles, {:.1}% device utilization",
            geometry.len(),
            mapping.total_crossbars(),
            mapping.total_tiles(),
            mapping.utilization() * 100.0
        );
        let model = CostModel::new(mapping, config.clone())?;
        let mut densities = vec![0.2f32; geometry.len()];
        densities[0] = 1.0;
        let cost = model.inference_cost(&densities, 4.0, None)?;
        println!("  energy @T=4: {:.2} µJ  latency: {:.2} µs  EDP: {:.3e} pJ·ns",
            cost.energy_pj() / 1e6, cost.latency_ns() / 1e3, cost.edp());
        for c in Component::ALL {
            let f = cost.energy.fraction(c);
            if f > 0.0 {
                println!("    {:<20} {:>5.1}%", c.name(), f * 100.0);
            }
        }
        let c1 = model.inference_cost(&densities, 1.0, None)?;
        let c8 = model.inference_cost(&densities, 8.0, None)?;
        println!(
            "  T=8 vs T=1: {:.2}× energy, {:.2}× latency (paper: ≈4.9×, 8×)",
            c8.energy_pj() / c1.energy_pj(),
            c8.latency_ns() / c1.latency_ns()
        );
        let ratio = model.sigma_e_energy(10) / model.timestep_energy(&densities)?.total();
        println!("  σ–E module overhead: {ratio:.1e} of one-timestep energy");
        // structural NoC and silicon-area views
        let noc = NocModel::new(model.mapping(), &config)?;
        println!(
            "  NoC: {}×{} tile mesh, worst link {} hop-cycles, {:.1} nJ/timestep of traffic",
            noc.mesh_side(),
            noc.mesh_side(),
            noc.timestep_latency(),
            noc.timestep_energy(&densities)? / 1e3
        );
        let area = chip_area(model.mapping(), &config, &AreaConstants::default())?;
        println!(
            "  area: {:.2} mm² total (σ–E module {:.3}%)",
            area.total_mm2(),
            area.sigma_e / area.total() * 100.0
        );
    }

    // The σ–E module is also functional: quantized LUT softmax + entropy.
    let module = SigmaEModule::new(&config)?;
    let reading = module.evaluate(&[2.5, 0.1, -1.0, 0.3, 0.0, -0.5, 1.0, 0.2, -2.0, 0.4], 0.5)?;
    println!(
        "\nσ–E LUT datapath on sample logits: entropy {:.3}, exit={}",
        reading.entropy, reading.exit
    );
    Ok(())
}
