//! End-to-end image classification: train a spiking VGG on the CIFAR-10
//! stand-in, then compare a static 4-timestep SNN against DT-SNN on
//! accuracy, average timesteps, energy and EDP through the IMC cost model.
//!
//! ```sh
//! cargo run --release --example image_classification
//! ```

use dt_snn::data::cifar10_like;
use dt_snn::dtsnn::{HardwareProfile, ThresholdSweep};
use dt_snn::imc::HardwareConfig;
use dt_snn::snn::{
    vgg_small, vgg_small_density_map, vgg_small_geometry, LossKind, ModelConfig, SgdConfig,
    Trainer, TrainerConfig,
};
use dt_snn::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = cifar10_like(1, 7)?;
    let model_cfg = ModelConfig {
        in_channels: data.channels,
        image_size: data.image_size,
        num_classes: data.classes,
        ..ModelConfig::default()
    };
    let mut rng = TensorRng::seed_from(7);
    let mut net = vgg_small(&model_cfg, &mut rng)?;
    println!("training spiking VGG on {} ({} samples)…", data.name, data.train.len());
    let trainer = Trainer::new(TrainerConfig {
        epochs: 10,
        batch_size: 32,
        timesteps: 4,
        loss: LossKind::PerTimestep,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 },
        seed: 3,
    })?;
    trainer.fit(&mut net, &data.train.frames(), &data.train.labels())?;

    // Map the network onto the Table-I RRAM architecture and sweep exit
    // thresholds to trace the accuracy–EDP trade-off.
    let profile = HardwareProfile::new(
        &vgg_small_geometry(&model_cfg),
        vgg_small_density_map(),
        data.classes,
        &HardwareConfig::default(),
    )?;
    let sweep = ThresholdSweep::run(
        &mut net,
        &data.test.frames(),
        &data.test.labels(),
        &[0.1, 0.3, 0.7],
        4,
        &profile,
    )?;
    let base = sweep.baseline_edp();
    println!("\n{:<14} {:>8} {:>8} {:>14}", "point", "acc", "avg T", "EDP vs T=1");
    for p in sweep.static_points.iter().chain(&sweep.dynamic_points) {
        println!(
            "{:<14} {:>7.2}% {:>8.2} {:>13.2}×",
            p.label,
            p.accuracy * 100.0,
            p.avg_timesteps,
            p.edp / base
        );
    }
    if let Some(iso) = sweep.iso_accuracy_point() {
        let static4 = sweep.static_points.last().expect("static point");
        println!(
            "\nDT-SNN matches the static T=4 accuracy with {:.2} average timesteps and {:.0}% less EDP",
            iso.avg_timesteps,
            (1.0 - iso.edp / static4.edp) * 100.0
        );
    }
    Ok(())
}
