//! Event-stream (DVS-like) classification: spiking networks consume one
//! binary event frame per timestep instead of a repeated static image, and
//! DT-SNN decides per-sample how many frames it needs (the paper's
//! CIFAR10-DVS rows, T = 10).
//!
//! ```sh
//! cargo run --release --example event_stream_dvs
//! ```

use dt_snn::data::{EventConfig, SyntheticEvents};
use dt_snn::dtsnn::{DynamicEvaluation, DynamicInference, ExitPolicy, StaticEvaluation};
use dt_snn::snn::{vgg_small, LossKind, ModelConfig, SgdConfig, Trainer, TrainerConfig};
use dt_snn::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t_max = 10;
    let data = SyntheticEvents::generate(
        &EventConfig {
            classes: 6,
            timesteps: t_max,
            train_size: 240,
            test_size: 120,
            ..EventConfig::default()
        },
        11,
    )?;
    println!("{}: {} train / {} test, {} frames per sample",
        data.name, data.train.len(), data.test.len(), data.frames_per_sample);
    let mean_density: f32 = data
        .test
        .samples
        .iter()
        .flat_map(|s| s.frames.iter())
        .map(dt_snn::tensor::Tensor::density)
        .sum::<f32>()
        / (data.test.len() * t_max) as f32;
    println!("mean event density {:.3} (sparse binary ON/OFF frames)", mean_density);

    let model_cfg = ModelConfig {
        in_channels: data.channels,
        image_size: data.image_size,
        num_classes: data.classes,
        ..ModelConfig::default()
    };
    let mut rng = TensorRng::seed_from(5);
    let mut net = vgg_small(&model_cfg, &mut rng)?;
    let trainer = Trainer::new(TrainerConfig {
        epochs: 8,
        batch_size: 32,
        timesteps: t_max,
        loss: LossKind::PerTimestep,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 },
        seed: 2,
    })?;
    trainer.fit(&mut net, &data.train.frames(), &data.train.labels())?;

    let static_eval =
        StaticEvaluation::run(&mut net, &data.test.frames(), &data.test.labels(), t_max)?;
    println!("\nstatic accuracy by timestep budget:");
    for (t, acc) in static_eval.accuracy_by_t.iter().enumerate() {
        println!("  T={:<2} {:.1}%", t + 1, acc * 100.0);
    }

    let runner = DynamicInference::new(ExitPolicy::entropy(0.3)?, t_max)?;
    let eval = DynamicEvaluation::run(
        &mut net,
        &runner,
        &data.test.frames(),
        &data.test.labels(),
        None,
    )?;
    println!(
        "\nDT-SNN: {:.1}% accuracy at {:.2} average timesteps (static T={t_max}: {:.1}%)",
        eval.accuracy * 100.0,
        eval.avg_timesteps,
        static_eval.full_window_accuracy() * 100.0
    );
    println!("T̂ histogram: {:?}", eval.timestep_histogram);
    Ok(())
}
