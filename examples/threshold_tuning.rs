//! Threshold tuning: how to pick θ for a deployment. Sweeps the entropy
//! threshold densely, prints the accuracy / average-T / EDP frontier, and
//! selects the iso-accuracy operating point (the Table II protocol).
//!
//! ```sh
//! cargo run --release --example threshold_tuning
//! ```

use dt_snn::data::cifar10_like;
use dt_snn::dtsnn::{HardwareProfile, ThresholdSweep};
use dt_snn::imc::HardwareConfig;
use dt_snn::snn::{
    vgg_small, vgg_small_density_map, vgg_small_geometry, LossKind, ModelConfig, SgdConfig,
    Trainer, TrainerConfig,
};
use dt_snn::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = cifar10_like(1, 19)?;
    let model_cfg = ModelConfig {
        in_channels: data.channels,
        image_size: data.image_size,
        num_classes: data.classes,
        ..ModelConfig::default()
    };
    let mut rng = TensorRng::seed_from(19);
    let mut net = vgg_small(&model_cfg, &mut rng)?;
    println!("training…");
    let trainer = Trainer::new(TrainerConfig {
        epochs: 10,
        batch_size: 32,
        timesteps: 4,
        loss: LossKind::PerTimestep,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 },
        seed: 4,
    })?;
    trainer.fit(&mut net, &data.train.frames(), &data.train.labels())?;

    let profile = HardwareProfile::new(
        &vgg_small_geometry(&model_cfg),
        vgg_small_density_map(),
        data.classes,
        &HardwareConfig::default(),
    )?;
    // dense θ grid — in practice tuned on a validation split
    let thetas: Vec<f32> = (1..=18).map(|i| i as f32 * 0.05).collect();
    let sweep = ThresholdSweep::run(
        &mut net,
        &data.test.frames(),
        &data.test.labels(),
        &thetas,
        4,
        &profile,
    )?;
    let static4 = sweep.static_points.last().expect("static point");
    println!(
        "\nstatic T=4 reference: {:.2}% accuracy, EDP {:.3e}",
        static4.accuracy * 100.0,
        static4.edp
    );
    println!("\n{:>8} {:>8} {:>8} {:>10}", "θ", "acc", "avg T̂", "EDP ratio");
    for p in &sweep.dynamic_points {
        println!(
            "{:>8.2} {:>7.2}% {:>8.2} {:>9.2}×",
            p.theta.expect("dynamic point"),
            p.accuracy * 100.0,
            p.avg_timesteps,
            p.edp / static4.edp
        );
    }
    if let Some(iso) = sweep.iso_accuracy_point() {
        println!(
            "\nchosen operating point: {} → {:.2}% accuracy at {:.2} avg timesteps ({:.0}% EDP reduction)",
            iso.label,
            iso.accuracy * 100.0,
            iso.avg_timesteps,
            (1.0 - iso.edp / static4.edp) * 100.0
        );
    }
    Ok(())
}
