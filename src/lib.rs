//! Umbrella crate for the DT-SNN reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency:
//!
//! - [`tensor`] — dense f32 tensor math
//! - [`snn`] — spiking layers and surrogate-gradient training
//! - [`data`] — synthetic vision / event-stream datasets
//! - [`imc`] — the tiled RRAM in-memory-computing simulator
//! - [`dtsnn`] — the dynamic-timestep inference policy and harness

pub use dtsnn_core as dtsnn;
pub use dtsnn_data as data;
pub use dtsnn_imc as imc;
pub use dtsnn_snn as snn;
pub use dtsnn_tensor as tensor;
