#!/usr/bin/env bash
# Tier-1 gate plus the determinism suite.
#
# Build, run the whole test suite, lint, then re-run the thread-count
# invariance tests at DTSNN_THREADS=1 and DTSNN_THREADS=4 to prove that the
# parallel execution layer is bitwise deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test --workspace -q

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

# The invariance tests internally compare 1-thread vs N-thread runs; running
# them under both ambient settings additionally covers the env-var plumbing.
for threads in 1 4; do
    echo "== determinism suite (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-tensor thread_count_invariant
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-core thread_count_invariant
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-tensor --lib parallel::
done

echo "ci.sh: all green"
