#!/usr/bin/env bash
# Tier-1 gate plus the determinism suite.
#
# Build, run the whole test suite, lint, then re-run the thread-count
# invariance tests at DTSNN_THREADS=1 and DTSNN_THREADS=4 to prove that the
# parallel execution layer is bitwise deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test --workspace -q

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

# The invariance tests internally compare 1-thread vs N-thread runs; running
# them under both ambient settings additionally covers the env-var plumbing.
for threads in 1 4; do
    echo "== determinism suite (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-tensor thread_count_invariant
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-core thread_count_invariant
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-tensor --lib parallel::
done

# Batched-vs-sequential parity: the active-set compaction engine behind
# DynamicEvaluation::run_batched must reproduce the sequential runner
# bitwise (outcomes, T̂ histogram AND spike activity) at both ambient
# worker counts. The `batched` filter catches the whole parity suite in
# core::harness plus the batched throughput checks.
for threads in 1 4; do
    echo "== batched compaction parity (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-core batched
done

# Conformance stage: golden-trace replay against the committed goldens/
# (fails on any drift — regenerate intentionally changed numerics with
# `cargo run -p dtsnn-conformance --bin bless`) plus the fixed-seed fuzz
# smoke, both at 1 and 4 ambient workers; then the whole-network gradient
# checks.
for threads in 1 4; do
    echo "== conformance: golden replay + fuzz smoke (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-conformance --test golden_replay
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-conformance --test fuzz_smoke
done
echo "== conformance: whole-network gradient checks =="
cargo test -q -p dtsnn-conformance --test gradient_check

# Kernel stage: the event-driven sparse path must reproduce the blocked
# dense kernels bitwise (matmul/matmul_tn/matmul_nt + sparse im2col conv2d
# and the workspace entry points) at both ambient worker counts, and the
# workspace-threaded Snn forward must match the plain layer chain while
# allocating nothing after warm-up. A final golden replay proves the sparse
# dispatch and workspace reuse changed no committed numerics — no re-bless.
for threads in 1 4; do
    echo "== kernel stage: sparse/dense equivalence (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-tensor sparse
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-snn workspace
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-snn warmed_timestep_loop
done
echo "== kernel stage: golden replay unchanged by sparse dispatch =="
cargo test -q -p dtsnn-conformance --test golden_replay

# Robustness stage: the Monte-Carlo fault harness on a tiny net (the
# 2-trial smoke plus the aggregate thread-invariance check) at both ambient
# worker counts — trial fan-out must produce bitwise-identical mean/std/CI
# aggregates regardless of DTSNN_THREADS.
for threads in 1 4; do
    echo "== robustness: Monte-Carlo fault smoke (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-core robustness
done

# Backend stage: the pluggable kernel seam. Dense/CSR/bitset must agree
# bitwise on raw kernels and on whole forward passes forced down each
# family via the scoped override (fuzz oracle 9 runs inside fuzz_smoke;
# the snn test forces full networks end-to-end), and the quantized int8
# weight path must replay its own committed goldens — all at both ambient
# worker counts.
for threads in 1 4; do
    echo "== backend stage: dense/CSR/bitset equivalence (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-tensor backend
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-tensor bitset
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-tensor quant
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-snn forced_backends
    echo "== backend stage: quantized golden replay (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-conformance --test golden_replay quant
done

# Serving stage: the continuous-batching engine. The simulated-clock
# determinism suite (mid-window splice ≡ solo run, bitwise, plus schedule
# reproducibility) and the admission/θ-controller property suite run at
# both ambient worker counts; then a 2-second real-clock smoke drives the
# live MPSC reactor end to end at each count.
for threads in 1 4; do
    echo "== serving stage: simulated-clock determinism (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-serve --test determinism
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-serve --test properties
    echo "== serving stage: real-clock smoke (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads DTSNN_SERVE_SMOKE_SECS=2 \
        cargo run --release -q -p dtsnn-bench --bin serving_load
done

# Chaos stage: the sharded fault-tolerant cluster. Parity first — a
# no-fault 1-worker cluster must reproduce the single server bitwise
# (outcomes AND step records), 4 workers must match solo runs — then the
# chaos property suite: exactly-once termination under every seeded fault
# kind (crash/stall/slowdown/transient and mixed), bitwise-reproducible
# event streams across runs and thread counts, brownout ladder behavior.
# Fuzz oracle 12 re-checks the cluster≡server equivalence over random
# cases inside the fuzz_smoke runs above. Finally the chaos bench runs a
# CI-sized fault-intensity sweep asserting goodput never collapses.
for threads in 1 4; do
    echo "== chaos stage: cluster parity + fault injection (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-serve --test cluster
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-serve --test chaos
done
echo "== chaos stage: fault-intensity smoke sweep =="
DTSNN_CHAOS_SMOKE=1 cargo run --release -q -p dtsnn-bench --bin serving_chaos

# SIMD stage: the runtime-dispatched vector tier. The unit property suite
# pins every kernel family (dense/bitset/quant/LIF/BN) bitwise against the
# scalar oracle; then golden replay and the fuzz smoke (which runs fuzz
# oracle 13, whole forward passes forced-scalar vs vectorized) are repeated
# with the dispatcher forced off and on auto at both ambient worker counts
# — the committed numerics must be reachable from either tier with no
# re-bless. The speedup bench asserts the ≥1.5× dense matmul_nt floor
# in-bin and records cpu_features next to host_cores in its JSON.
for threads in 1 4; do
    for simd in off auto; do
        echo "== simd stage: golden replay + fuzz smoke (DTSNN_SIMD=$simd DTSNN_THREADS=$threads) =="
        DTSNN_SIMD=$simd DTSNN_THREADS=$threads cargo test -q -p dtsnn-tensor simd
        DTSNN_SIMD=$simd DTSNN_THREADS=$threads cargo test -q -p dtsnn-conformance --test golden_replay
        DTSNN_SIMD=$simd DTSNN_THREADS=$threads cargo test -q -p dtsnn-conformance --test fuzz_smoke
    done
done
echo "== simd stage: speedup floor =="
cargo run --release -q -p dtsnn-bench --bin ext_simd_speedup

# Simulator stage: the event-driven multi-tile model and the mapping
# search. The integration suite pins (a) bitwise parity between the event
# model (pipelining + contention off) and the analytical ledger — fuzz
# oracle 11 re-checks the same equivalence over random cases inside the
# fuzz_smoke runs above — (b) the flow-shop closed form for the pipelined
# schedule, and (c) seeded annealing trajectories that are bitwise
# identical at 1 and 4 ambient workers.
for threads in 1 4; do
    echo "== simulator stage: event-sim parity + annealing determinism (DTSNN_THREADS=$threads) =="
    DTSNN_THREADS=$threads cargo test -q -p dtsnn-imc --test simulator
done

echo "ci.sh: all green"
