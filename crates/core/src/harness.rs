//! Dataset-level evaluation harnesses: the machinery behind Table II,
//! Fig. 2, Fig. 4 and the pie charts of Fig. 5.

use crate::inference::DynamicInference;
use crate::{CoreError, Result};
use dtsnn_snn::{Mode, Snn, SpikeActivity};
use dtsnn_tensor::{parallel, Tensor};

/// Per-sample record of a dynamic evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicSampleOutcome {
    /// Timesteps the sample consumed.
    pub timesteps_used: usize,
    /// Whether the prediction was correct.
    pub correct: bool,
    /// Synthesis-time difficulty of the sample (NaN when unknown).
    pub difficulty: f32,
}

/// Aggregate result of evaluating DT-SNN over a dataset split.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicEvaluation {
    /// Top-1 accuracy.
    pub accuracy: f32,
    /// Mean T̂ over the split (the paper's headline "average timesteps").
    pub avg_timesteps: f32,
    /// `histogram[t-1]` = number of samples that exited at timestep `t`.
    pub timestep_histogram: Vec<usize>,
    /// Per-sample outcomes, aligned with the input order.
    pub samples: Vec<DynamicSampleOutcome>,
    /// Spike activity accumulated during the evaluation (drives the energy
    /// model).
    pub activity: SpikeActivity,
}

impl DynamicEvaluation {
    /// Runs the dynamic-timestep evaluation.
    ///
    /// `difficulties`, when provided, must align with `frames` and is copied
    /// into the per-sample outcomes (used by the Fig. 8 visualization).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] for mismatched inputs.
    pub fn run(
        network: &mut Snn,
        runner: &DynamicInference,
        frames: &[Vec<Tensor>],
        labels: &[usize],
        difficulties: Option<&[f32]>,
    ) -> Result<Self> {
        if frames.is_empty() || frames.len() != labels.len() {
            return Err(CoreError::BadInput("frames/labels mismatch or empty".into()));
        }
        if let Some(d) = difficulties {
            if d.len() != frames.len() {
                return Err(CoreError::BadInput("difficulties length mismatch".into()));
            }
        }
        // discard any previously accumulated activity
        let _ = network.take_activity();
        // Data-parallel fan-out: each worker evaluates a contiguous slice of
        // samples on its own clone of the network and reports per-sample
        // results, which are folded back in sample-index order. Per-sample
        // evaluation is independent (state resets each sample) and the fold
        // order is fixed, so the result is bitwise identical for any
        // DTSNN_THREADS value.
        let indices: Vec<usize> = (0..frames.len()).collect();
        let proto: &Snn = network;
        let per_sample = parallel::map_chunks(&indices, |_, chunk| {
            let mut net = proto.clone();
            chunk
                .iter()
                .map(|&i| -> Result<(usize, bool, Vec<f64>, usize)> {
                    let outcome = runner.run(&mut net, &frames[i])?;
                    let (sums, obs) = net.take_raw_activity();
                    Ok((outcome.timesteps_used, outcome.prediction == labels[i], sums, obs))
                })
                .collect()
        });
        let mut histogram = vec![0usize; runner.max_timesteps()];
        let mut samples = Vec::with_capacity(frames.len());
        let mut correct_total = 0usize;
        let mut timestep_total = 0usize;
        for (i, res) in per_sample.into_iter().enumerate() {
            let (used, correct, sums, obs) = res?;
            network.absorb_raw_activity(&sums, obs);
            correct_total += correct as usize;
            timestep_total += used;
            histogram[used - 1] += 1;
            samples.push(DynamicSampleOutcome {
                timesteps_used: used,
                correct,
                difficulty: difficulties.map(|d| d[i]).unwrap_or(f32::NAN),
            });
        }
        let n = frames.len() as f32;
        Ok(DynamicEvaluation {
            accuracy: correct_total as f32 / n,
            avg_timesteps: timestep_total as f32 / n,
            timestep_histogram: histogram,
            samples,
            activity: network.take_activity(),
        })
    }

    /// Like [`DynamicEvaluation::run`], but hardened against numerically
    /// broken forward passes: a sample whose inference produces a non-finite
    /// value anywhere the policy or prediction can see it (accumulated
    /// logits, policy scores, exit probabilities) is **quarantined** — its
    /// index is reported and it is scored as incorrect instead of letting a
    /// NaN argmax silently poison the accuracy. This matters under fault
    /// injection, where a damaged substrate can blow up activations.
    ///
    /// Quarantined samples still contribute their T̂ and spike activity —
    /// the forward pass physically ran. Note the entropy policy's hardware
    /// model treats non-positive (hence also NaN) probabilities as
    /// contributing zero entropy, so a poisoned sample typically *exits
    /// immediately as confidently wrong* — exactly the failure mode this
    /// harness surfaces; under max-prob/margin the NaN score never fires
    /// and such samples burn the full window instead. Spike counts stay
    /// finite even when logits do not; should a sample's activity sums
    /// themselves be non-finite, they are dropped from the activity
    /// accumulator as well.
    ///
    /// On a healthy network the result equals [`DynamicEvaluation::run`]
    /// bitwise with an empty quarantine list.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] for mismatched inputs.
    pub fn run_quarantined(
        network: &mut Snn,
        runner: &DynamicInference,
        frames: &[Vec<Tensor>],
        labels: &[usize],
        difficulties: Option<&[f32]>,
    ) -> Result<QuarantinedEvaluation> {
        if frames.is_empty() || frames.len() != labels.len() {
            return Err(CoreError::BadInput("frames/labels mismatch or empty".into()));
        }
        if let Some(d) = difficulties {
            if d.len() != frames.len() {
                return Err(CoreError::BadInput("difficulties length mismatch".into()));
            }
        }
        let _ = network.take_activity();
        // same deterministic fan-out/fold as `run`; see there
        let indices: Vec<usize> = (0..frames.len()).collect();
        let proto: &Snn = network;
        let per_sample = parallel::map_chunks(&indices, |_, chunk| {
            let mut net = proto.clone();
            chunk
                .iter()
                .map(|&i| -> Result<(usize, bool, bool, Vec<f64>, usize)> {
                    let trace = runner.run_traced(&mut net, &frames[i])?;
                    let (sums, obs) = net.take_raw_activity();
                    let out = &trace.outcome;
                    let finite = out.scores.iter().all(|s| s.is_finite())
                        && out.probabilities.iter().all(|p| p.is_finite())
                        && trace
                            .per_timestep
                            .iter()
                            .all(|t| t.accumulated_logits.iter().all(|v| v.is_finite()));
                    let correct = finite && out.prediction == labels[i];
                    Ok((out.timesteps_used, correct, finite, sums, obs))
                })
                .collect()
        });
        let mut histogram = vec![0usize; runner.max_timesteps()];
        let mut samples = Vec::with_capacity(frames.len());
        let mut quarantined = Vec::new();
        let mut correct_total = 0usize;
        let mut timestep_total = 0usize;
        for (i, res) in per_sample.into_iter().enumerate() {
            let (used, correct, finite, sums, obs) = res?;
            if sums.iter().all(|s| s.is_finite()) {
                network.absorb_raw_activity(&sums, obs);
            }
            if !finite {
                quarantined.push(i);
            }
            correct_total += correct as usize;
            timestep_total += used;
            histogram[used - 1] += 1;
            samples.push(DynamicSampleOutcome {
                timesteps_used: used,
                correct,
                difficulty: difficulties.map(|d| d[i]).unwrap_or(f32::NAN),
            });
        }
        let n = frames.len() as f32;
        Ok(QuarantinedEvaluation {
            eval: DynamicEvaluation {
                accuracy: correct_total as f32 / n,
                avg_timesteps: timestep_total as f32 / n,
                timestep_histogram: histogram,
                samples,
                activity: network.take_activity(),
            },
            quarantined,
        })
    }

    /// Batched variant of [`DynamicEvaluation::run`], built on **active-set
    /// compaction**: each chunk of up to `batch_size` samples is forwarded
    /// one timestep at a time, the exit policy is scored per batch row, and
    /// rows whose policy fires are retired — their prediction, T̂ and spike
    /// activity are recorded at the exit timestep, and the surviving rows of
    /// both the input frames and all carried layer state (LIF membranes, via
    /// [`Snn::compact_batch`]) are physically gathered into a smaller batch.
    ///
    /// Later timesteps therefore do proportionally less matmul/conv work
    /// (per-timestep cost decays with the exit CDF), and activity accounting
    /// stops at each sample's exit, so the per-sample outcomes **and** the
    /// accumulated [`SpikeActivity`] are bitwise identical to the sequential
    /// runner's, for any `batch_size` and any `DTSNN_THREADS` setting.
    ///
    /// Like the sequential path, each sample supplies either one frame
    /// (static input) or exactly `T` frames (event data); samples of both
    /// kinds may share a batch.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] for mismatched inputs or frame
    /// counts.
    pub fn run_batched(
        network: &mut Snn,
        runner: &DynamicInference,
        frames: &[Vec<Tensor>],
        labels: &[usize],
        difficulties: Option<&[f32]>,
        batch_size: usize,
    ) -> Result<Self> {
        if frames.is_empty() || frames.len() != labels.len() {
            return Err(CoreError::BadInput("frames/labels mismatch or empty".into()));
        }
        if let Some(d) = difficulties {
            if d.len() != frames.len() {
                return Err(CoreError::BadInput("difficulties length mismatch".into()));
            }
        }
        if batch_size == 0 {
            return Err(CoreError::BadInput("batch_size must be nonzero".into()));
        }
        let t_max = runner.max_timesteps();
        // the same 1-or-T frame-count contract the sequential runner enforces
        for (i, f) in frames.iter().enumerate() {
            if f.len() != 1 && f.len() != t_max {
                return Err(CoreError::BadInput(format!(
                    "sample {i}: expected 1 or {t_max} frames, got {}",
                    f.len()
                )));
            }
        }
        let policy = runner.policy();
        let _ = network.take_activity();
        // Per-sample exit records and raw activity sums. Activity is folded
        // per sample in f64 (timestep order within a sample) and absorbed in
        // sample-index order at the end — the exact accumulation chain of the
        // sequential harness, so the resulting SpikeActivity is bitwise equal.
        let mut used_of = vec![0usize; frames.len()];
        let mut pred_of = vec![0usize; frames.len()];
        let mut sums_of: Vec<Vec<f64>> = vec![Vec::new(); frames.len()];
        let order: Vec<usize> = (0..frames.len()).collect();
        for chunk in order.chunks(batch_size) {
            network.reset_state();
            // sample indices still running, in batch-row order
            let mut active: Vec<usize> = chunk.to_vec();
            // per-active-row accumulated logits (the Eq. 5 numerator)
            let mut accs: Vec<Vec<f32>> = vec![Vec::new(); active.len()];
            for t in 1..=t_max {
                // stack the active rows' frame for this timestep
                let views: Vec<Tensor> = active
                    .iter()
                    .map(|&i| {
                        let fs = &frames[i];
                        crate::inference::to_batch1(if fs.len() == 1 { &fs[0] } else { &fs[t - 1] })
                    })
                    .collect::<Result<_>>()?;
                let refs: Vec<&Tensor> = views.iter().collect();
                let input = Tensor::concat_axis0(&refs)?;
                let logits = network.forward_timestep(&input, Mode::Eval)?;
                let classes = logits.dims()[1];
                // row layer densities, copied out so the network can be
                // mutated below
                let layer_rows: Vec<Vec<f32>> = network
                    .last_spike_row_densities()?
                    .into_iter()
                    .map(|s| s.to_vec())
                    .collect();
                let inv_t = 1.0 / t as f32;
                let mut keep: Vec<usize> = Vec::with_capacity(active.len());
                for (row, &i) in active.iter().enumerate() {
                    // fold this timestep's activity into the sample's sums
                    let sums = &mut sums_of[i];
                    if sums.is_empty() {
                        sums.resize(layer_rows.len(), 0.0);
                    }
                    for (acc, layer) in sums.iter_mut().zip(&layer_rows) {
                        *acc += layer[row] as f64;
                    }
                    // Eq. 5 running mean of this row's logits; `+= l` and
                    // `* inv_t` reproduce the sequential `axpy(1.0, …)` /
                    // `scale(1/t)` chain bitwise
                    let l_row = &logits.data()[row * classes..(row + 1) * classes];
                    let acc = &mut accs[row];
                    if acc.is_empty() {
                        acc.extend_from_slice(l_row);
                    } else {
                        for (a, &l) in acc.iter_mut().zip(l_row) {
                            *a += l;
                        }
                    }
                    let f_t =
                        Tensor::from_vec(acc.iter().map(|&a| a * inv_t).collect(), &[1, classes])?;
                    let probs = dtsnn_tensor::softmax_rows(&f_t)?;
                    if policy.should_exit(probs.data()) || t == t_max {
                        used_of[i] = t;
                        pred_of[i] = probs.row(0)?.argmax()?;
                    } else {
                        keep.push(row);
                    }
                }
                // retire exited rows: gather the survivors' accumulators and
                // every layer's carried batch state
                if keep.len() < active.len() {
                    if keep.is_empty() {
                        break;
                    }
                    network.compact_batch(&keep)?;
                    active = keep.iter().map(|&r| active[r]).collect();
                    accs = keep.iter().map(|&r| std::mem::take(&mut accs[r])).collect();
                }
            }
        }
        // forward_timestep accumulated batch-level densities on `network`
        // during the loop; discard them and rebuild from the per-sample sums,
        // folded in sample-index order exactly like the sequential harness
        let _ = network.take_raw_activity();
        let mut histogram = vec![0usize; t_max];
        let mut samples = Vec::with_capacity(frames.len());
        let mut correct_total = 0usize;
        let mut timestep_total = 0usize;
        for i in 0..frames.len() {
            let used = used_of[i];
            let correct = pred_of[i] == labels[i];
            network.absorb_raw_activity(&sums_of[i], used);
            correct_total += correct as usize;
            timestep_total += used;
            histogram[used - 1] += 1;
            samples.push(DynamicSampleOutcome {
                timesteps_used: used,
                correct,
                difficulty: difficulties.map(|d| d[i]).unwrap_or(f32::NAN),
            });
        }
        let n = frames.len() as f32;
        Ok(DynamicEvaluation {
            accuracy: correct_total as f32 / n,
            avg_timesteps: timestep_total as f32 / n,
            timestep_histogram: histogram,
            samples,
            activity: network.take_activity(),
        })
    }

    /// T̂ distribution as fractions (the Fig. 5 pie chart).
    pub fn timestep_distribution(&self) -> Vec<f32> {
        let n: usize = self.timestep_histogram.iter().sum();
        self.timestep_histogram
            .iter()
            .map(|&c| c as f32 / n.max(1) as f32)
            .collect()
    }
}

/// Result of [`DynamicEvaluation::run_quarantined`]: the evaluation over
/// **all** samples (quarantined ones scored as incorrect) plus the indices
/// that produced non-finite values. `eval.samples` stays aligned with the
/// input order, so callers can cross-reference.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedEvaluation {
    /// The evaluation, with quarantined samples forced incorrect.
    pub eval: DynamicEvaluation,
    /// Input indices whose forward pass produced NaN/Inf, ascending.
    pub quarantined: Vec<usize>,
}

/// Aggregate result of evaluating a static SNN at every timestep budget
/// `t = 1..=T` in a single pass (Fig. 2's accuracy-vs-T curves).
#[derive(Debug, Clone, PartialEq)]
pub struct StaticEvaluation {
    /// `accuracy_by_t[t-1]` = top-1 accuracy using the first `t` timesteps.
    pub accuracy_by_t: Vec<f32>,
    /// Spike activity accumulated during the evaluation.
    pub activity: SpikeActivity,
}

impl StaticEvaluation {
    /// Evaluates cumulative accuracy at every `t ≤ max_timesteps`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] for mismatched inputs.
    pub fn run(
        network: &mut Snn,
        frames: &[Vec<Tensor>],
        labels: &[usize],
        max_timesteps: usize,
    ) -> Result<Self> {
        if frames.is_empty() || frames.len() != labels.len() {
            return Err(CoreError::BadInput("frames/labels mismatch or empty".into()));
        }
        if max_timesteps == 0 {
            return Err(CoreError::BadInput("max_timesteps must be nonzero".into()));
        }
        let _ = network.take_activity();
        // Per-sample data-parallel fan-out; see DynamicEvaluation::run for
        // the determinism argument.
        let indices: Vec<usize> = (0..frames.len()).collect();
        let proto: &Snn = network;
        let per_sample = parallel::map_chunks(&indices, |_, chunk| {
            let mut net = proto.clone();
            chunk
                .iter()
                .map(|&i| -> Result<(Vec<bool>, Vec<f64>, usize)> {
                    let batched: Vec<Tensor> = frames[i]
                        .iter()
                        .map(|f| {
                            if f.dims().len() == 4 {
                                Ok(f.clone())
                            } else {
                                let mut dims = vec![1];
                                dims.extend_from_slice(f.dims());
                                f.reshape(&dims).map_err(CoreError::from)
                            }
                        })
                        .collect::<Result<_>>()?;
                    let outputs = net.forward_sequence(&batched, max_timesteps, Mode::Eval)?;
                    let mut acc: Option<Tensor> = None;
                    let mut correct_at_t = Vec::with_capacity(max_timesteps);
                    for (t, out) in outputs.iter().enumerate() {
                        match &mut acc {
                            Some(a) => a.axpy(1.0, out)?,
                            None => acc = Some(out.clone()),
                        }
                        // predict from the Eq. 5 running mean at budget t
                        // (argmax-equivalent to the raw sum)
                        let mean =
                            acc.as_ref().expect("set above").scale(1.0 / (t + 1) as f32);
                        correct_at_t.push(mean.row(0)?.argmax()? == labels[i]);
                    }
                    let (sums, obs) = net.take_raw_activity();
                    Ok((correct_at_t, sums, obs))
                })
                .collect()
        });
        let mut correct_by_t = vec![0usize; max_timesteps];
        for res in per_sample {
            let (correct_at_t, sums, obs) = res?;
            network.absorb_raw_activity(&sums, obs);
            for (t, &c) in correct_at_t.iter().enumerate() {
                correct_by_t[t] += c as usize;
            }
        }
        let n = frames.len() as f32;
        Ok(StaticEvaluation {
            accuracy_by_t: correct_by_t.iter().map(|&c| c as f32 / n).collect(),
            activity: network.take_activity(),
        })
    }

    /// Accuracy at the full window.
    pub fn full_window_accuracy(&self) -> f32 {
        self.accuracy_by_t.last().copied().unwrap_or(f32::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExitPolicy;
    use dtsnn_snn::{Layer, LifConfig, LifNeuron, Linear, Flatten};
    use dtsnn_tensor::TensorRng;

    fn tiny_net(seed: u64) -> Snn {
        let mut rng = TensorRng::seed_from(seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 8, &mut rng)),
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(8, 3, &mut rng)),
        ];
        Snn::from_layers(layers)
    }

    fn tiny_data(n: usize, seed: u64) -> (Vec<Vec<Tensor>>, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let frames = (0..n).map(|_| vec![Tensor::randn(&[1, 2, 2], 0.5, 0.5, &mut rng)]).collect();
        let labels = (0..n).map(|i| i % 3).collect();
        (frames, labels)
    }

    #[test]
    fn dynamic_eval_bookkeeping() {
        let (frames, labels) = tiny_data(12, 1);
        let mut net = tiny_net(2);
        let runner = DynamicInference::new(ExitPolicy::entropy(0.6).unwrap(), 4).unwrap();
        let eval = DynamicEvaluation::run(&mut net, &runner, &frames, &labels, None).unwrap();
        assert_eq!(eval.samples.len(), 12);
        assert_eq!(eval.timestep_histogram.iter().sum::<usize>(), 12);
        assert!((1.0..=4.0).contains(&eval.avg_timesteps));
        assert!((0.0..=1.0).contains(&eval.accuracy));
        let dist = eval.timestep_distribution();
        assert!((dist.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(eval.activity.observations > 0);
        assert!(eval.samples.iter().all(|s| s.difficulty.is_nan()));
    }

    #[test]
    fn dynamic_eval_validates_inputs() {
        let (frames, labels) = tiny_data(4, 3);
        let mut net = tiny_net(4);
        let runner = DynamicInference::new(ExitPolicy::entropy(0.5).unwrap(), 4).unwrap();
        assert!(DynamicEvaluation::run(&mut net, &runner, &frames, &labels[..2], None).is_err());
        assert!(
            DynamicEvaluation::run(&mut net, &runner, &frames, &labels, Some(&[0.5])).is_err()
        );
    }

    #[test]
    fn difficulties_are_recorded() {
        let (frames, labels) = tiny_data(4, 5);
        let diffs = [0.1, 0.2, 0.3, 0.4];
        let mut net = tiny_net(6);
        let runner = DynamicInference::new(ExitPolicy::entropy(0.5).unwrap(), 2).unwrap();
        let eval =
            DynamicEvaluation::run(&mut net, &runner, &frames, &labels, Some(&diffs)).unwrap();
        let got: Vec<f32> = eval.samples.iter().map(|s| s.difficulty).collect();
        assert_eq!(got, diffs);
    }

    #[test]
    fn static_eval_reports_each_budget() {
        let (frames, labels) = tiny_data(9, 7);
        let mut net = tiny_net(8);
        let eval = StaticEvaluation::run(&mut net, &frames, &labels, 4).unwrap();
        assert_eq!(eval.accuracy_by_t.len(), 4);
        for a in &eval.accuracy_by_t {
            assert!((0.0..=1.0).contains(a));
        }
        assert_eq!(eval.full_window_accuracy(), eval.accuracy_by_t[3]);
        assert!(StaticEvaluation::run(&mut net, &frames, &labels, 0).is_err());
    }

    /// Entropy threshold that splits the tiny-net fixture between early and
    /// full-window exits, keeping the parity tests non-vacuous.
    const THETA_MIXED: f32 = 0.986;

    #[test]
    fn batched_evaluation_matches_sequential() {
        // Evaluation is deterministic and the compaction engine retires rows
        // at their exact exit timestep, so the batched path must reproduce
        // the per-sample runner bitwise — outcomes AND spike activity.
        let (frames, labels) = tiny_data(13, 21); // odd count exercises a ragged tail batch
        let diffs: Vec<f32> = (0..13).map(|i| i as f32 / 13.0).collect();
        let runner = DynamicInference::new(ExitPolicy::entropy(THETA_MIXED).unwrap(), 4).unwrap();
        let mut net_a = tiny_net(22);
        let seq =
            DynamicEvaluation::run(&mut net_a, &runner, &frames, &labels, Some(&diffs)).unwrap();
        let mut net_b = tiny_net(22);
        let bat = DynamicEvaluation::run_batched(
            &mut net_b, &runner, &frames, &labels, Some(&diffs), 4,
        )
        .unwrap();
        assert_eq!(seq, bat); // every field, including SpikeActivity
        // non-vacuous: the threshold must actually mix exit timesteps
        let h = &bat.timestep_histogram;
        assert!(h[..3].iter().sum::<usize>() > 0, "no early exits: {h:?}");
        assert!(h[1..].iter().sum::<usize>() > 0, "every sample exited at t=1: {h:?}");
    }

    #[test]
    fn batched_spike_activity_matches_sequential() {
        // Regression pin for the Fig. 5/7 energy bias: the pre-compaction
        // batched evaluator measured full-window activity for every sample,
        // so equal outcomes did NOT imply equal SpikeActivity. It must now.
        let (frames, labels) = tiny_data(11, 41);
        let runner = DynamicInference::new(ExitPolicy::entropy(THETA_MIXED).unwrap(), 4).unwrap();
        let mut net_a = tiny_net(42);
        let seq = DynamicEvaluation::run(&mut net_a, &runner, &frames, &labels, None).unwrap();
        for batch_size in [1, 3, 11, 64] {
            let mut net_b = tiny_net(42);
            let bat = DynamicEvaluation::run_batched(
                &mut net_b, &runner, &frames, &labels, None, batch_size,
            )
            .unwrap();
            assert_eq!(seq.activity, bat.activity, "batch_size={batch_size}");
            assert_eq!(seq.timestep_histogram, bat.timestep_histogram);
        }
        // accounting stops at each sample's exit: observations = Σ T̂, which
        // is strictly below the full-window total when anything exits early
        let total: usize =
            seq.samples.iter().map(|s| s.timesteps_used).sum();
        assert_eq!(seq.activity.observations, total);
        assert!(total < 4 * frames.len(), "θ produced no early exits");
    }

    #[test]
    fn batched_rejects_partial_frame_counts() {
        // 1 < len(frames[i]) < T must fail exactly like the sequential
        // runner, not silently run a shortened window.
        let (mut frames, labels) = tiny_data(4, 25);
        frames[2] = vec![frames[2][0].clone(); 2]; // 2 frames under a T=4 window
        let mut net = tiny_net(26);
        let runner = DynamicInference::new(ExitPolicy::entropy(0.5).unwrap(), 4).unwrap();
        assert!(DynamicEvaluation::run(&mut net, &runner, &frames, &labels, None).is_err());
        assert!(
            DynamicEvaluation::run_batched(&mut net, &runner, &frames, &labels, None, 2).is_err()
        );
    }

    #[test]
    fn batched_accepts_mixed_static_and_temporal_samples() {
        // A batch may mix 1-frame (static) and T-frame (event) samples; the
        // per-row frame selection must reproduce the sequential runner.
        let mut rng = TensorRng::seed_from(51);
        let frames: Vec<Vec<Tensor>> = (0..7)
            .map(|i| {
                let n = if i % 2 == 0 { 1 } else { 4 };
                (0..n).map(|_| Tensor::randn(&[1, 2, 2], 0.5, 0.5, &mut rng)).collect()
            })
            .collect();
        let labels: Vec<usize> = (0..7).map(|i| i % 3).collect();
        let diffs: Vec<f32> = (0..7).map(|i| i as f32 / 7.0).collect();
        let runner = DynamicInference::new(ExitPolicy::entropy(THETA_MIXED).unwrap(), 4).unwrap();
        let mut net_a = tiny_net(52);
        let seq =
            DynamicEvaluation::run(&mut net_a, &runner, &frames, &labels, Some(&diffs)).unwrap();
        let mut net_b = tiny_net(52);
        let bat = DynamicEvaluation::run_batched(
            &mut net_b, &runner, &frames, &labels, Some(&diffs), 3,
        )
        .unwrap();
        assert_eq!(seq, bat);
    }

    #[test]
    fn batched_evaluation_is_thread_count_invariant() {
        let (frames, labels) = tiny_data(9, 61);
        let diffs: Vec<f32> = (0..9).map(|i| i as f32 / 9.0).collect();
        let runner = DynamicInference::new(ExitPolicy::entropy(THETA_MIXED).unwrap(), 4).unwrap();
        let run = || {
            let mut net = tiny_net(62);
            DynamicEvaluation::run_batched(&mut net, &runner, &frames, &labels, Some(&diffs), 4)
                .unwrap()
        };
        let serial = dtsnn_tensor::parallel::with_threads(1, run);
        for threads in [2, 4] {
            let par = dtsnn_tensor::parallel::with_threads(threads, run);
            assert_eq!(serial, par, "batched eval diverged at {threads} threads");
        }
    }

    #[test]
    fn batched_evaluation_validates_inputs() {
        let (frames, labels) = tiny_data(4, 23);
        let mut net = tiny_net(24);
        let runner = DynamicInference::new(ExitPolicy::entropy(0.5).unwrap(), 4).unwrap();
        assert!(
            DynamicEvaluation::run_batched(&mut net, &runner, &frames, &labels, None, 0).is_err()
        );
        assert!(DynamicEvaluation::run_batched(&mut net, &runner, &frames, &labels[..2], None, 2)
            .is_err());
    }

    #[test]
    fn evaluation_is_thread_count_invariant() {
        let (frames, labels) = tiny_data(17, 31); // ragged across worker chunks
        // real difficulty values: NaN would defeat the PartialEq comparison
        let diffs: Vec<f32> = (0..17).map(|i| i as f32 / 17.0).collect();
        let runner = DynamicInference::new(ExitPolicy::entropy(0.6).unwrap(), 4).unwrap();
        let run_both = || {
            let mut net = tiny_net(32);
            let d =
                DynamicEvaluation::run(&mut net, &runner, &frames, &labels, Some(&diffs)).unwrap();
            let mut net = tiny_net(32);
            let s = StaticEvaluation::run(&mut net, &frames, &labels, 4).unwrap();
            (d, s)
        };
        let serial = dtsnn_tensor::parallel::with_threads(1, run_both);
        for threads in [2, 4, 8] {
            let par = dtsnn_tensor::parallel::with_threads(threads, run_both);
            assert_eq!(serial.0, par.0, "dynamic eval diverged at {threads} threads");
            assert_eq!(serial.1, par.1, "static eval diverged at {threads} threads");
        }
    }

    #[test]
    fn quarantine_is_a_noop_on_healthy_networks() {
        let (frames, labels) = tiny_data(12, 71);
        let diffs: Vec<f32> = (0..12).map(|i| i as f32 / 12.0).collect();
        let runner = DynamicInference::new(ExitPolicy::entropy(0.6).unwrap(), 4).unwrap();
        let mut net_a = tiny_net(72);
        let plain =
            DynamicEvaluation::run(&mut net_a, &runner, &frames, &labels, Some(&diffs)).unwrap();
        let mut net_b = tiny_net(72);
        let q = DynamicEvaluation::run_quarantined(&mut net_b, &runner, &frames, &labels, Some(&diffs))
            .unwrap();
        assert!(q.quarantined.is_empty());
        assert_eq!(plain, q.eval, "healthy path must match the plain harness bitwise");
    }

    #[test]
    fn nan_weights_quarantine_every_sample() {
        let (frames, labels) = tiny_data(6, 73);
        let mut net = tiny_net(74);
        // Poison the biases: a NaN *weight* can hide behind the spike-sparse
        // matmul kernels (zero activations are skipped, so NaN·0 never
        // happens), but the bias is added to every logit unconditionally —
        // every forward pass now yields a NaN logit.
        net.visit_params(&mut |p| {
            if !p.decay {
                p.value.data_mut()[0] = f32::NAN;
            }
        });
        let runner = DynamicInference::new(ExitPolicy::entropy(0.9).unwrap(), 3).unwrap();
        let q =
            DynamicEvaluation::run_quarantined(&mut net, &runner, &frames, &labels, None).unwrap();
        assert_eq!(q.quarantined, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.eval.accuracy, 0.0, "quarantined samples must score incorrect");
        // the entropy hardware model reads NaN probabilities as zero entropy,
        // so poisoned samples exit immediately as confidently wrong — the
        // exact silent failure the quarantine flags
        assert_eq!(q.eval.timestep_histogram, vec![6, 0, 0]);
        assert_eq!(q.eval.avg_timesteps, 1.0);
        assert!(q.eval.samples.iter().all(|s| !s.correct));
    }

    /// Fills the classifier's first weight row with NaN: any sample whose
    /// hidden layer ever spikes gets a NaN logit, while a sample that stays
    /// silent never multiplies the poisoned row (the spike-sparse matmul
    /// skips zero activations) and remains healthy.
    fn poison_classifier(net: &mut Snn) {
        let mut decayed = 0;
        net.visit_params(&mut |p| decayed += p.decay as usize);
        let mut seen = 0;
        net.visit_params(&mut |p| {
            if p.decay {
                seen += 1;
                if seen == decayed {
                    let cols = p.value.dims()[1];
                    p.value.data_mut()[..cols].fill(f32::NAN);
                }
            }
        });
    }

    #[test]
    fn quarantine_is_thread_count_invariant_and_partial() {
        // odd sample count, alternating live frames (hidden spikes → NaN
        // logits → quarantined) and all-zero frames (zero bias + positive
        // threshold ⇒ provably silent ⇒ healthy)
        let (mut frames, labels) = tiny_data(11, 75);
        for f in frames.iter_mut().skip(1).step_by(2) {
            *f = vec![Tensor::zeros(&[1, 2, 2])];
        }
        // real difficulty values: NaN would defeat the PartialEq comparison
        let diffs: Vec<f32> = (0..11).map(|i| i as f32 / 11.0).collect();
        let runner = DynamicInference::new(ExitPolicy::entropy(1e-7).unwrap(), 4).unwrap();
        let run = || {
            let mut net = tiny_net(76);
            poison_classifier(&mut net);
            DynamicEvaluation::run_quarantined(&mut net, &runner, &frames, &labels, Some(&diffs))
                .unwrap()
        };
        let serial = dtsnn_tensor::parallel::with_threads(1, run);
        assert!(
            !serial.quarantined.is_empty() && serial.quarantined.len() < frames.len(),
            "fixture must mix quarantined and healthy samples: {:?}",
            serial.quarantined
        );
        for threads in [2, 4] {
            let par = dtsnn_tensor::parallel::with_threads(threads, run);
            assert_eq!(serial, par, "quarantined eval diverged at {threads} threads");
        }
    }

    #[test]
    fn strict_threshold_forces_full_window() {
        let (frames, labels) = tiny_data(6, 9);
        let mut net = tiny_net(10);
        let runner = DynamicInference::new(ExitPolicy::entropy(1e-7).unwrap(), 3).unwrap();
        let eval = DynamicEvaluation::run(&mut net, &runner, &frames, &labels, None).unwrap();
        assert_eq!(eval.avg_timesteps, 3.0);
        assert_eq!(eval.timestep_histogram, vec![0, 0, 6]);
    }
}
