//! Threshold sweeps: the accuracy–EDP trade-off curves of Figs. 5 and 7.

use crate::energy_link::HardwareProfile;
use crate::harness::{DynamicEvaluation, StaticEvaluation};
use crate::inference::DynamicInference;
use crate::policy::ExitPolicy;
use crate::{CoreError, Result};
use dtsnn_snn::Snn;
use dtsnn_tensor::{parallel, Tensor};

/// One operating point of the accuracy–efficiency trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Point label (`"static T=2"` or `"θ=0.10"`).
    pub label: String,
    /// Entropy threshold for DT-SNN points, `None` for static points.
    pub theta: Option<f32>,
    /// Top-1 accuracy.
    pub accuracy: f32,
    /// Mean timesteps per inference.
    pub avg_timesteps: f32,
    /// Total inference energy, pJ (dataset-average).
    pub energy_pj: f64,
    /// Energy-delay product, pJ·ns (dataset-average).
    pub edp: f64,
    /// T̂ distribution (empty for static points).
    pub timestep_distribution: Vec<f32>,
}

/// Sweeps entropy thresholds and static budgets over one trained network,
/// producing every point of a Fig. 5 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSweep {
    /// Static SNN points at `T = 1..=max_timesteps`.
    pub static_points: Vec<SweepPoint>,
    /// DT-SNN points, one per swept threshold.
    pub dynamic_points: Vec<SweepPoint>,
}

impl ThresholdSweep {
    /// Runs the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] for empty threshold lists or
    /// mismatched data, and propagates evaluation errors.
    pub fn run(
        network: &mut Snn,
        frames: &[Vec<Tensor>],
        labels: &[usize],
        thetas: &[f32],
        max_timesteps: usize,
        profile: &HardwareProfile,
    ) -> Result<Self> {
        if thetas.is_empty() {
            return Err(CoreError::BadInput("no thresholds to sweep".into()));
        }
        // One static pass measures accuracy at every budget and the spike
        // activity that drives the energy model.
        let static_eval = StaticEvaluation::run(network, frames, labels, max_timesteps)?;
        let mut static_points = Vec::with_capacity(max_timesteps);
        for t in 1..=max_timesteps {
            let cost = profile.static_cost(&static_eval.activity, t as f64)?;
            static_points.push(SweepPoint {
                label: format!("static T={t}"),
                theta: None,
                accuracy: static_eval.accuracy_by_t[t - 1],
                avg_timesteps: t as f32,
                energy_pj: cost.energy_pj(),
                edp: cost.edp(),
                timestep_distribution: Vec::new(),
            });
        }
        // Thresholds are independent of each other, so sweep them in
        // parallel, one cloned network per θ; results come back in θ order.
        let proto: &Snn = network;
        let evals = parallel::map_chunks(thetas, |_, chunk| {
            chunk
                .iter()
                .map(|&theta| -> Result<DynamicEvaluation> {
                    let mut net = proto.clone();
                    let runner = DynamicInference::new(ExitPolicy::entropy(theta)?, max_timesteps)?;
                    // compacted batched evaluation: bitwise-identical outcomes
                    // AND spike activity (the energy model's input), with
                    // per-timestep work decaying as samples exit early
                    DynamicEvaluation::run_batched(&mut net, &runner, frames, labels, None, 32)
                })
                .collect()
        });
        let mut dynamic_points = Vec::with_capacity(thetas.len());
        for (&theta, eval) in thetas.iter().zip(evals) {
            let eval = eval?;
            let cost = profile.dynamic_cost(&eval.activity, eval.avg_timesteps as f64)?;
            dynamic_points.push(SweepPoint {
                label: format!("θ={theta:.3}"),
                theta: Some(theta),
                accuracy: eval.accuracy,
                avg_timesteps: eval.avg_timesteps,
                energy_pj: cost.energy_pj(),
                edp: cost.edp(),
                timestep_distribution: eval.timestep_distribution(),
            });
        }
        Ok(ThresholdSweep { static_points, dynamic_points })
    }

    /// EDP of the 1-timestep static point — the normalization used by the
    /// Fig. 5 axes.
    pub fn baseline_edp(&self) -> f64 {
        self.static_points.first().map(|p| p.edp).unwrap_or(f64::NAN)
    }

    /// The dynamic point whose accuracy is closest to (or above) the
    /// full-window static accuracy — the iso-accuracy point reported in
    /// Table II.
    pub fn iso_accuracy_point(&self) -> Option<&SweepPoint> {
        let target = self.static_points.last()?.accuracy;
        self.dynamic_points
            .iter()
            .filter(|p| p.accuracy >= target - 0.005)
            .min_by(|a, b| a.avg_timesteps.total_cmp(&b.avg_timesteps))
            .or_else(|| {
                self.dynamic_points
                    .iter()
                    .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsnn_imc::HardwareConfig;
    use dtsnn_snn::{
        vgg_small, vgg_small_density_map, vgg_small_geometry, ModelConfig,
    };
    use dtsnn_tensor::TensorRng;

    fn setup() -> (Snn, HardwareProfile, Vec<Vec<Tensor>>, Vec<usize>) {
        let mut rng = TensorRng::seed_from(1);
        let cfg = ModelConfig { num_classes: 4, ..ModelConfig::default() };
        let net = vgg_small(&cfg, &mut rng).unwrap();
        let profile = HardwareProfile::new(
            &vgg_small_geometry(&cfg),
            vgg_small_density_map(),
            cfg.num_classes,
            &HardwareConfig::default(),
        )
        .unwrap();
        let frames: Vec<Vec<Tensor>> =
            (0..8).map(|_| vec![Tensor::randn(&[3, 16, 16], 0.5, 0.3, &mut rng)]).collect();
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        (net, profile, frames, labels)
    }

    #[test]
    fn sweep_produces_all_points() {
        let (mut net, profile, frames, labels) = setup();
        let sweep =
            ThresholdSweep::run(&mut net, &frames, &labels, &[0.2, 0.8], 4, &profile).unwrap();
        assert_eq!(sweep.static_points.len(), 4);
        assert_eq!(sweep.dynamic_points.len(), 2);
        assert!(sweep.baseline_edp().is_finite());
        // static EDP strictly increases with T (energy and latency both grow)
        for w in sweep.static_points.windows(2) {
            assert!(w[1].edp > w[0].edp);
        }
        // larger θ must not increase average timesteps
        assert!(
            sweep.dynamic_points[1].avg_timesteps <= sweep.dynamic_points[0].avg_timesteps + 1e-6
        );
        assert!(sweep.iso_accuracy_point().is_some());
    }

    #[test]
    fn empty_thresholds_rejected() {
        let (mut net, profile, frames, labels) = setup();
        assert!(ThresholdSweep::run(&mut net, &frames, &labels, &[], 4, &profile).is_err());
    }

    #[test]
    fn dynamic_distribution_sums_to_one() {
        let (mut net, profile, frames, labels) = setup();
        let sweep = ThresholdSweep::run(&mut net, &frames, &labels, &[0.5], 4, &profile).unwrap();
        let dist = &sweep.dynamic_points[0].timestep_distribution;
        assert_eq!(dist.len(), 4);
        assert!((dist.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }
}
