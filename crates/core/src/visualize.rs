//! Terminal visualization of easy vs. hard inputs (Fig. 8).

use crate::harness::DynamicSampleOutcome;
use dtsnn_tensor::Tensor;

/// Renders a `[c, h, w]` frame as ASCII art (channel-averaged, darkest to
/// brightest through a 10-level ramp). Empty string for malformed frames.
pub fn ascii_render(frame: &Tensor) -> String {
    let d = frame.dims();
    if d.len() != 3 {
        return String::new();
    }
    let (c, h, w) = (d[0], d[1], d[2]);
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::with_capacity(h * (w + 1));
    for y in 0..h {
        for x in 0..w {
            let mut v = 0.0;
            for ci in 0..c {
                v += frame.at(&[ci, y, x]).unwrap_or(0.0);
            }
            v /= c as f32;
            let idx = ((v.clamp(0.0, 1.0)) * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

/// Groups sample indices by the timestep at which DT-SNN exited:
/// `buckets[t-1]` holds the indices of samples that used `t` timesteps.
/// Fig. 8 shows the `t = 1` bucket (easy) against the `t = T` bucket (hard).
pub fn bucket_by_timesteps(outcomes: &[DynamicSampleOutcome], max_timesteps: usize) -> Vec<Vec<usize>> {
    let mut buckets = vec![Vec::new(); max_timesteps];
    for (i, o) in outcomes.iter().enumerate() {
        if o.timesteps_used >= 1 && o.timesteps_used <= max_timesteps {
            buckets[o.timesteps_used - 1].push(i);
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape_and_ramp() {
        let f = Tensor::from_vec(vec![0.0, 1.0, 0.5, 0.25], &[1, 2, 2]).unwrap();
        let art = ascii_render(&f);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        assert_eq!(lines[0].chars().next().unwrap(), ' '); // 0.0 → darkest
        assert_eq!(lines[0].chars().nth(1).unwrap(), '@'); // 1.0 → brightest
    }

    #[test]
    fn render_averages_channels() {
        let f = Tensor::from_vec(vec![0.0, 1.0], &[2, 1, 1]).unwrap();
        let art = ascii_render(&f);
        // mean 0.5 → middle of the ramp
        assert_eq!(art.trim_end(), "+");
    }

    #[test]
    fn render_rejects_bad_rank() {
        assert_eq!(ascii_render(&Tensor::zeros(&[4])), "");
    }

    #[test]
    fn bucketing_partitions_indices() {
        let outcomes = vec![
            DynamicSampleOutcome { timesteps_used: 1, correct: true, difficulty: 0.1 },
            DynamicSampleOutcome { timesteps_used: 4, correct: false, difficulty: 0.9 },
            DynamicSampleOutcome { timesteps_used: 1, correct: true, difficulty: 0.2 },
        ];
        let buckets = bucket_by_timesteps(&outcomes, 4);
        assert_eq!(buckets[0], vec![0, 2]);
        assert_eq!(buckets[3], vec![1]);
        assert!(buckets[1].is_empty());
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }
}
