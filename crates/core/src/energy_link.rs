//! Couples measured spike activity to the IMC cost model: the bridge between
//! the algorithmic harness and the hardware numbers of Table II / Figs. 4–5.

use crate::Result;
use dtsnn_imc::{ChipMapping, CostModel, HardwareConfig, InferenceCost};
use dtsnn_snn::{DensitySource, LayerGeometry, SpikeActivity};

/// Resolves each mapped layer's input-spike density from measured activity.
///
/// `sources[i]` states where layer `i`'s input spikes come from
/// ([`DensitySource::Input`] is treated as density 1.0 — the first layer is
/// analog-encoded). Missing spiking-layer measurements fall back to a
/// conservative density of 1.0.
pub fn densities_from_activity(sources: &[DensitySource], activity: &SpikeActivity) -> Vec<f32> {
    sources
        .iter()
        .map(|s| match s {
            DensitySource::Input => 1.0,
            DensitySource::SpikingLayer(i) => {
                activity.per_layer.get(*i).copied().unwrap_or(1.0).clamp(0.0, 1.0)
            }
        })
        .collect()
}

/// A network's hardware embodiment: mapping, cost model and the provenance
/// of each layer's input spikes.
#[derive(Debug, Clone)]
pub struct HardwareProfile {
    cost: CostModel,
    sources: Vec<DensitySource>,
    classes: usize,
}

impl HardwareProfile {
    /// Maps `geometry` onto `config` and binds the density provenance.
    ///
    /// # Errors
    ///
    /// Returns mapping/config errors from the IMC crate, or
    /// [`crate::CoreError::BadInput`] when `sources` and `geometry` disagree
    /// in length.
    pub fn new(
        geometry: &[LayerGeometry],
        sources: Vec<DensitySource>,
        classes: usize,
        config: &HardwareConfig,
    ) -> Result<Self> {
        if geometry.len() != sources.len() {
            return Err(crate::CoreError::BadInput(format!(
                "{} geometry layers vs {} density sources",
                geometry.len(),
                sources.len()
            )));
        }
        let mapping = ChipMapping::map(geometry, config)?;
        let cost = CostModel::new(mapping, config.clone())?;
        Ok(HardwareProfile { cost, sources, classes })
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Per-layer input densities resolved from measured activity.
    pub fn densities(&self, activity: &SpikeActivity) -> Vec<f32> {
        densities_from_activity(&self.sources, activity)
    }

    /// Cost of a static-SNN inference at `timesteps` (no σ–E module).
    ///
    /// # Errors
    ///
    /// Propagates cost-model errors.
    pub fn static_cost(&self, activity: &SpikeActivity, timesteps: f64) -> Result<InferenceCost> {
        Ok(self.cost.inference_cost(&self.densities(activity), timesteps, None)?)
    }

    /// Cost of a DT-SNN inference at (possibly fractional, dataset-averaged)
    /// `timesteps`, including the σ–E module.
    ///
    /// # Errors
    ///
    /// Propagates cost-model errors.
    pub fn dynamic_cost(&self, activity: &SpikeActivity, timesteps: f64) -> Result<InferenceCost> {
        Ok(self.cost.inference_cost(&self.densities(activity), timesteps, Some(self.classes))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsnn_snn::{vgg_small_density_map, vgg_small_geometry, ModelConfig};

    fn profile() -> HardwareProfile {
        let cfg = ModelConfig::default();
        HardwareProfile::new(
            &vgg_small_geometry(&cfg),
            vgg_small_density_map(),
            cfg.num_classes,
            &HardwareConfig::default(),
        )
        .unwrap()
    }

    fn activity(per_layer: Vec<f32>) -> SpikeActivity {
        SpikeActivity { per_layer, observations: 1 }
    }

    #[test]
    fn densities_resolve_sources() {
        let act = activity(vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        let d = densities_from_activity(&vgg_small_density_map(), &act);
        assert_eq!(d, vec![1.0, 0.1, 0.2, 0.3, 0.4, 0.5]);
    }

    #[test]
    fn missing_activity_falls_back_to_one() {
        let act = activity(vec![0.1]);
        let d = densities_from_activity(&vgg_small_density_map(), &act);
        assert_eq!(d[1], 0.1);
        assert_eq!(d[2], 1.0);
    }

    #[test]
    fn mismatched_sources_rejected() {
        let cfg = ModelConfig::default();
        let r = HardwareProfile::new(
            &vgg_small_geometry(&cfg),
            vec![DensitySource::Input],
            10,
            &HardwareConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn dynamic_cost_below_static_when_fewer_timesteps() {
        let p = profile();
        let act = activity(vec![0.15; 5]);
        let stat = p.static_cost(&act, 4.0).unwrap();
        let dyn_ = p.dynamic_cost(&act, 1.5).unwrap();
        assert!(dyn_.energy_pj() < stat.energy_pj());
        assert!(dyn_.edp() < stat.edp());
    }

    #[test]
    fn sigma_e_overhead_present_but_small_at_equal_t() {
        let p = profile();
        let act = activity(vec![0.15; 5]);
        let stat = p.static_cost(&act, 4.0).unwrap();
        let dyn_ = p.dynamic_cost(&act, 4.0).unwrap();
        let ratio = dyn_.energy_pj() / stat.energy_pj();
        assert!(ratio > 1.0 && ratio < 1.01, "ratio {ratio}");
    }

    #[test]
    fn denser_activity_costs_more() {
        let p = profile();
        let sparse = p.static_cost(&activity(vec![0.05; 5]), 4.0).unwrap();
        let dense = p.static_cost(&activity(vec![0.5; 5]), 4.0).unwrap();
        assert!(dense.energy_pj() > sparse.energy_pj());
    }
}
