//! Exit policies: when is the accumulated output confident enough to stop?
//!
//! The paper's policy is normalized-entropy thresholding (Eqs. 7–8). Two
//! standard early-exit confidence measures — maximum softmax probability and
//! top-2 margin — are provided for the extension ablation; all three share
//! the [`ExitPolicy::should_exit`] interface.

use crate::{CoreError, Result};
use dtsnn_imc::exact_normalized_entropy;

/// A confidence rule mapping a probability vector to an exit decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExitPolicy {
    /// Exit when normalized entropy `E_f(x) < θ` (Eq. 8). `θ ∈ (0, 1]`;
    /// larger θ exits earlier.
    Entropy {
        /// Entropy threshold θ.
        theta: f32,
    },
    /// Exit when `max_i π(y_i|x) > p`. `p ∈ [0, 1)`; larger p exits later.
    MaxProb {
        /// Probability threshold.
        threshold: f32,
    },
    /// Exit when the gap between the top-2 probabilities exceeds `m`.
    Margin {
        /// Margin threshold in `[0, 1)`.
        threshold: f32,
    },
}

impl ExitPolicy {
    /// Entropy policy with threshold `theta` (the paper's rule).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `θ ∈ (0, 1]`.
    pub fn entropy(theta: f32) -> Result<Self> {
        if !(theta > 0.0 && theta <= 1.0) {
            return Err(CoreError::InvalidConfig(format!("theta must be in (0,1], got {theta}")));
        }
        Ok(ExitPolicy::Entropy { theta })
    }

    /// Max-probability policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `threshold ∈ [0, 1)`.
    pub fn max_prob(threshold: f32) -> Result<Self> {
        if !(0.0..1.0).contains(&threshold) {
            return Err(CoreError::InvalidConfig(format!(
                "max-prob threshold must be in [0,1), got {threshold}"
            )));
        }
        Ok(ExitPolicy::MaxProb { threshold })
    }

    /// Top-2 margin policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `threshold ∈ [0, 1)`.
    pub fn margin(threshold: f32) -> Result<Self> {
        if !(0.0..1.0).contains(&threshold) {
            return Err(CoreError::InvalidConfig(format!(
                "margin threshold must be in [0,1), got {threshold}"
            )));
        }
        Ok(ExitPolicy::Margin { threshold })
    }

    /// The confidence score this policy thresholds, for diagnostics:
    /// entropy (lower = more confident) or probability/margin (higher =
    /// more confident).
    pub fn score(&self, probabilities: &[f32]) -> f32 {
        match self {
            ExitPolicy::Entropy { .. } => exact_normalized_entropy(probabilities),
            // total_cmp-based reductions: `f32::max` and `>` silently drop
            // NaN operands, which would let a poisoned probability vector
            // masquerade as confident. Under total order NaN ranks above
            // every real, so a NaN input surfaces as a NaN score and
            // `should_exit` (a `>` comparison) stays false — the safe
            // full-window fallback.
            ExitPolicy::MaxProb { .. } => {
                probabilities.iter().copied().max_by(f32::total_cmp).unwrap_or(0.0)
            }
            ExitPolicy::Margin { .. } => {
                let (mut top, mut second) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
                for &p in probabilities {
                    if p.total_cmp(&top).is_gt() {
                        second = top;
                        top = p;
                    } else if p.total_cmp(&second).is_gt() {
                        second = p;
                    }
                }
                // degenerate (< 2 entry) inputs fall back to the historical
                // floor of zero; a NaN top still propagates into the score
                top - second.max(0.0)
            }
        }
    }

    /// Whether inference should terminate given the current accumulated
    /// class probabilities.
    pub fn should_exit(&self, probabilities: &[f32]) -> bool {
        match *self {
            ExitPolicy::Entropy { theta } => self.score(probabilities) < theta,
            ExitPolicy::MaxProb { threshold } => self.score(probabilities) > threshold,
            ExitPolicy::Margin { threshold } => self.score(probabilities) > threshold,
        }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            ExitPolicy::Entropy { .. } => "entropy",
            ExitPolicy::MaxProb { .. } => "max-prob",
            ExitPolicy::Margin { .. } => "margin",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(ExitPolicy::entropy(0.0).is_err());
        assert!(ExitPolicy::entropy(1.5).is_err());
        assert!(ExitPolicy::entropy(0.3).is_ok());
        assert!(ExitPolicy::max_prob(1.0).is_err());
        assert!(ExitPolicy::max_prob(0.9).is_ok());
        assert!(ExitPolicy::margin(-0.1).is_err());
        assert!(ExitPolicy::margin(0.5).is_ok());
    }

    #[test]
    fn entropy_policy_orders_by_confidence() {
        let p = ExitPolicy::entropy(0.5).unwrap();
        let confident = [0.9, 0.05, 0.03, 0.02];
        let uncertain = [0.3, 0.3, 0.2, 0.2];
        assert!(p.score(&confident) < p.score(&uncertain));
        assert!(p.should_exit(&confident));
        assert!(!p.should_exit(&uncertain));
    }

    #[test]
    fn larger_theta_exits_on_less_confident_outputs() {
        let probs = [0.6, 0.2, 0.1, 0.1];
        let strict = ExitPolicy::entropy(0.2).unwrap();
        let lax = ExitPolicy::entropy(0.95).unwrap();
        assert!(!strict.should_exit(&probs));
        assert!(lax.should_exit(&probs));
    }

    #[test]
    fn max_prob_policy() {
        let p = ExitPolicy::max_prob(0.8).unwrap();
        assert!(p.should_exit(&[0.85, 0.1, 0.05]));
        assert!(!p.should_exit(&[0.6, 0.3, 0.1]));
        assert_eq!(p.score(&[0.6, 0.3, 0.1]), 0.6);
    }

    #[test]
    fn margin_policy_uses_top_two_gap() {
        let p = ExitPolicy::margin(0.3).unwrap();
        assert!((p.score(&[0.6, 0.25, 0.15]) - 0.35).abs() < 1e-6);
        assert!(p.should_exit(&[0.6, 0.25, 0.15]));
        assert!(!p.should_exit(&[0.45, 0.44, 0.11]));
    }

    #[test]
    fn uniform_distribution_never_exits_entropy() {
        // entropy of uniform = 1 which is never < θ ≤ 1
        let p = ExitPolicy::entropy(1.0).unwrap();
        assert!(!p.should_exit(&[0.25; 4]));
    }

    #[test]
    fn nan_probabilities_poison_the_score_and_never_exit() {
        let poisoned = [0.9, f32::NAN, 0.05];
        let max_prob = ExitPolicy::max_prob(0.1).unwrap();
        let margin = ExitPolicy::margin(0.1).unwrap();
        // pre-fix, fold(0.0, f32::max) and `>` dropped the NaN and these
        // vectors looked maximally confident
        assert!(max_prob.score(&poisoned).is_nan());
        assert!(margin.score(&poisoned).is_nan());
        assert!(!max_prob.should_exit(&poisoned));
        assert!(!margin.should_exit(&poisoned));
        // all-NaN input behaves the same way
        assert!(!max_prob.should_exit(&[f32::NAN; 3]));
        assert!(!margin.should_exit(&[f32::NAN; 3]));
        // finite inputs keep their historical scores
        assert_eq!(max_prob.score(&[0.6, 0.3, 0.1]), 0.6);
        assert!((margin.score(&[0.6, 0.25, 0.15]) - 0.35).abs() < 1e-6);
    }

    #[test]
    fn names_distinct() {
        let names = [
            ExitPolicy::entropy(0.5).unwrap().name(),
            ExitPolicy::max_prob(0.5).unwrap().name(),
            ExitPolicy::margin(0.5).unwrap().name(),
        ];
        let mut d = names.to_vec();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 3);
    }
}
