//! The per-sample dynamic-timestep runner (Eqs. 5–8).

use crate::policy::ExitPolicy;
use crate::{CoreError, Result};
use dtsnn_snn::{Mode, Snn};
use dtsnn_tensor::{softmax_rows, Tensor};

/// Result of one dynamic inference.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicOutcome {
    /// Predicted class (argmax of the accumulated output at exit).
    pub prediction: usize,
    /// Timesteps actually executed, `1 ≤ T̂ ≤ T`.
    pub timesteps_used: usize,
    /// Whether the policy fired before the full window.
    pub exited_early: bool,
    /// Confidence score (entropy for the paper's policy) at each executed
    /// timestep.
    pub scores: Vec<f32>,
    /// Accumulated class probabilities at exit.
    pub probabilities: Vec<f32>,
}

/// Everything observed during one executed timestep of a traced inference.
#[derive(Debug, Clone, PartialEq)]
pub struct TimestepTrace {
    /// Logits accumulated (summed, not yet averaged) up to this timestep.
    pub accumulated_logits: Vec<f32>,
    /// Output spike density of every observable spiking layer, network order.
    pub spike_densities: Vec<f32>,
    /// Policy confidence score (normalized entropy for the paper's policy).
    pub score: f32,
}

/// A fully instrumented dynamic inference: the outcome plus every
/// intermediate quantity the golden-trace recorder commits to disk.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicTrace {
    /// The plain inference result.
    pub outcome: DynamicOutcome,
    /// One record per executed timestep (`len == outcome.timesteps_used`).
    pub per_timestep: Vec<TimestepTrace>,
    /// `(layer, backend)` kernel-dispatch choices of the final executed
    /// timestep, in network order — recorded into the golden-trace
    /// *context* block (provenance, never numerically compared).
    pub layer_backends: Vec<(String, String)>,
}

/// Dynamic-timestep inference engine bound to an exit policy and a maximum
/// window `T`.
///
/// # Example
///
/// See the crate-level example and `examples/quickstart.rs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicInference {
    policy: ExitPolicy,
    max_timesteps: usize,
}

impl DynamicInference {
    /// Creates a runner.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `max_timesteps == 0`.
    pub fn new(policy: ExitPolicy, max_timesteps: usize) -> Result<Self> {
        if max_timesteps == 0 {
            return Err(CoreError::InvalidConfig("max_timesteps must be nonzero".into()));
        }
        Ok(DynamicInference { policy, max_timesteps })
    }

    /// The exit policy.
    pub fn policy(&self) -> &ExitPolicy {
        &self.policy
    }

    /// The maximum window `T`.
    pub fn max_timesteps(&self) -> usize {
        self.max_timesteps
    }

    /// Runs one sample (`frames`: one static frame or `T` event frames)
    /// through `network`, exiting at the first timestep whose accumulated
    /// output satisfies the policy (Eq. 8), else at `T`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] for empty or miscounted frames and
    /// propagates network errors.
    pub fn run(&self, network: &mut Snn, frames: &[Tensor]) -> Result<DynamicOutcome> {
        // Delegating keeps the traced and untraced paths structurally
        // identical, so golden traces can never drift from production runs.
        Ok(self.run_traced(network, frames)?.outcome)
    }

    /// Like [`DynamicInference::run`], additionally recording the accumulated
    /// logits, per-layer spike densities and policy score of every executed
    /// timestep. This is the recording half of the conformance crate's
    /// golden-trace subsystem.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DynamicInference::run`].
    pub fn run_traced(&self, network: &mut Snn, frames: &[Tensor]) -> Result<DynamicTrace> {
        if frames.is_empty() {
            return Err(CoreError::BadInput("empty frame sequence".into()));
        }
        if frames.len() != 1 && frames.len() != self.max_timesteps {
            return Err(CoreError::BadInput(format!(
                "expected 1 or {} frames, got {}",
                self.max_timesteps,
                frames.len()
            )));
        }
        network.reset_state();
        // Batch the frames once, outside the loop: `to_batch1` copies, and
        // the timestep loop itself must stay allocation-free (the network's
        // workspace arena covers everything inside `forward_timestep`).
        let batched: Vec<Tensor> = frames.iter().map(to_batch1).collect::<Result<_>>()?;
        let mut accumulated: Option<Tensor> = None;
        let mut scores = Vec::with_capacity(self.max_timesteps);
        let mut per_timestep = Vec::with_capacity(self.max_timesteps);
        for t in 1..=self.max_timesteps {
            let input = if batched.len() == 1 { &batched[0] } else { &batched[t - 1] };
            let logits = network.forward_timestep(input, Mode::Eval)?;
            match &mut accumulated {
                Some(acc) => {
                    acc.axpy(1.0, &logits)?;
                    // logits came from the network's arena; hand them back so
                    // the next timestep reuses the buffer.
                    network.recycle(logits);
                }
                None => accumulated = Some(logits),
            }
            let acc = accumulated.as_ref().expect("accumulated set above");
            // f_t(x) = running mean of logits (Eq. 5)
            let f_t = acc.scale(1.0 / t as f32);
            let probs = softmax_rows(&f_t)?;
            let score = self.policy.score(probs.data());
            scores.push(score);
            per_timestep.push(TimestepTrace {
                accumulated_logits: acc.data().to_vec(),
                spike_densities: network
                    .layers()
                    .iter()
                    .filter_map(|n| n.layer.last_spike_density())
                    .collect(),
                score,
            });
            let exit = self.policy.should_exit(probs.data());
            if exit || t == self.max_timesteps {
                let prediction = probs.row(0)?.argmax()?;
                let outcome = DynamicOutcome {
                    prediction,
                    timesteps_used: t,
                    exited_early: exit && t < self.max_timesteps,
                    scores,
                    probabilities: probs.data().to_vec(),
                };
                // The accumulator buffer also came from the arena (first
                // timestep's logits); park it for the next sample.
                if let Some(acc) = accumulated.take() {
                    network.recycle(acc);
                }
                let layer_backends = network
                    .layer_backends()
                    .into_iter()
                    .map(|(name, b)| (name, b.to_string()))
                    .collect();
                return Ok(DynamicTrace { outcome, per_timestep, layer_backends });
            }
        }
        unreachable!("loop always returns at t == max_timesteps")
    }
}

/// Runs a sample for exactly `timesteps` steps (the static-SNN protocol),
/// returning the prediction from the time-averaged output — the argmax of
/// the Eq. 5 running mean `f_T(x) = (1/T)·Σ_t h(x, t)` at the full window.
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for malformed frames or a zero window.
pub fn static_inference(
    network: &mut Snn,
    frames: &[Tensor],
    timesteps: usize,
) -> Result<usize> {
    if frames.is_empty() {
        return Err(CoreError::BadInput("empty frame sequence".into()));
    }
    if timesteps == 0 {
        return Err(CoreError::BadInput("timesteps must be nonzero".into()));
    }
    let batched: Vec<Tensor> = frames.iter().map(to_batch1).collect::<Result<_>>()?;
    let outputs = network.forward_sequence(&batched, timesteps, Mode::Eval)?;
    let mut sum = outputs[0].clone();
    for o in &outputs[1..] {
        sum.axpy(1.0, o)?;
    }
    // Eq. 5 mean over the window; argmax-equivalent to the raw sum, but the
    // computed quantity is now the one the docs (and the paper) name
    let mean = sum.scale(1.0 / outputs.len() as f32);
    Ok(mean.row(0)?.argmax()?)
}

/// Reshapes a `[c, h, w]` frame to a batch-of-one `[1, c, h, w]` (frames
/// that already carry a batch axis pass through).
pub(crate) fn to_batch1(frame: &Tensor) -> Result<Tensor> {
    if frame.dims().len() == 4 {
        return Ok(frame.clone());
    }
    let mut dims = vec![1];
    dims.extend_from_slice(frame.dims());
    Ok(frame.reshape(&dims)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsnn_snn::{Layer, LifConfig, LifNeuron, Linear, Flatten};
    use dtsnn_tensor::TensorRng;

    fn tiny_net(seed: u64) -> Snn {
        let mut rng = TensorRng::seed_from(seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 8, &mut rng)),
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(8, 3, &mut rng)),
        ];
        Snn::from_layers(layers)
    }

    #[test]
    fn validates_window_and_frames() {
        let p = ExitPolicy::entropy(0.5).unwrap();
        assert!(DynamicInference::new(p, 0).is_err());
        let runner = DynamicInference::new(p, 4).unwrap();
        let mut net = tiny_net(1);
        assert!(runner.run(&mut net, &[]).is_err());
        let f = Tensor::zeros(&[1, 2, 2]);
        assert!(runner.run(&mut net, &[f.clone(), f]).is_err());
    }

    #[test]
    fn uses_at_most_max_timesteps() {
        // θ → 0 never exits early, so T̂ = T.
        let p = ExitPolicy::entropy(1e-6).unwrap();
        let runner = DynamicInference::new(p, 3).unwrap();
        let mut net = tiny_net(2);
        let mut rng = TensorRng::seed_from(3);
        let frame = Tensor::randn(&[1, 2, 2], 0.5, 0.5, &mut rng);
        let out = runner.run(&mut net, &[frame]).unwrap();
        assert_eq!(out.timesteps_used, 3);
        assert!(!out.exited_early);
        assert_eq!(out.scores.len(), 3);
    }

    #[test]
    fn lax_threshold_exits_at_first_timestep() {
        // θ = 1 exits whenever entropy < 1, i.e. any non-uniform output.
        let p = ExitPolicy::entropy(1.0).unwrap();
        let runner = DynamicInference::new(p, 4).unwrap();
        let mut net = tiny_net(4);
        let mut rng = TensorRng::seed_from(5);
        let frame = Tensor::randn(&[1, 2, 2], 0.5, 0.5, &mut rng);
        let out = runner.run(&mut net, &[frame]).unwrap();
        assert_eq!(out.timesteps_used, 1);
        assert!(out.exited_early);
    }

    #[test]
    fn static_inference_prediction_comes_from_the_mean_output() {
        // The returned argmax must be the argmax of the Eq. 5 running mean
        // (identical to the raw sum's argmax, but computed from the mean).
        let mut net = tiny_net(20);
        let mut rng = TensorRng::seed_from(21);
        let frame = Tensor::randn(&[1, 2, 2], 0.5, 0.5, &mut rng);
        let pred = static_inference(&mut net, std::slice::from_ref(&frame), 4).unwrap();
        let mut net2 = tiny_net(20);
        let outputs = net2
            .forward_sequence(&[to_batch1(&frame).unwrap()], 4, Mode::Eval)
            .unwrap();
        let mut sum = outputs[0].clone();
        for o in &outputs[1..] {
            sum.axpy(1.0, o).unwrap();
        }
        let mean = sum.scale(1.0 / 4.0);
        assert_eq!(pred, mean.row(0).unwrap().argmax().unwrap());
        assert_eq!(pred, sum.row(0).unwrap().argmax().unwrap());
        assert!(static_inference(&mut net, &[frame], 0).is_err());
    }

    #[test]
    fn full_window_prediction_matches_static_inference() {
        let p = ExitPolicy::entropy(1e-6).unwrap(); // never exits early
        let runner = DynamicInference::new(p, 4).unwrap();
        let mut net = tiny_net(6);
        let mut rng = TensorRng::seed_from(7);
        let frame = Tensor::randn(&[1, 2, 2], 0.5, 0.5, &mut rng);
        let dynamic = runner.run(&mut net, std::slice::from_ref(&frame)).unwrap();
        let static_pred = static_inference(&mut net, &[frame], 4).unwrap();
        assert_eq!(dynamic.prediction, static_pred);
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let p = ExitPolicy::entropy(0.5).unwrap();
        let runner = DynamicInference::new(p, 4).unwrap();
        let mut net = tiny_net(8);
        let mut rng = TensorRng::seed_from(9);
        let frame = Tensor::randn(&[1, 2, 2], 0.5, 0.5, &mut rng);
        let out = runner.run(&mut net, &[frame]).unwrap();
        let s: f32 = out.probabilities.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(out.prediction < 3);
    }

    #[test]
    fn traced_run_matches_plain_run_and_records_every_timestep() {
        let p = ExitPolicy::entropy(0.5).unwrap();
        let runner = DynamicInference::new(p, 4).unwrap();
        let mut rng = TensorRng::seed_from(13);
        let frame = Tensor::randn(&[1, 2, 2], 0.5, 0.5, &mut rng);
        let mut net = tiny_net(12);
        let traced = runner.run_traced(&mut net, std::slice::from_ref(&frame)).unwrap();
        let mut net2 = tiny_net(12);
        let plain = runner.run(&mut net2, &[frame]).unwrap();
        assert_eq!(traced.outcome, plain);
        assert_eq!(traced.per_timestep.len(), plain.timesteps_used);
        for (rec, &score) in traced.per_timestep.iter().zip(&plain.scores) {
            assert_eq!(rec.score, score);
            assert_eq!(rec.spike_densities.len(), 1); // one LIF in tiny_net
            assert_eq!(rec.accumulated_logits.len(), 3);
        }
        // the final accumulated logits reproduce the exit probabilities
        let last = traced.per_timestep.last().unwrap();
        let inv_t = 1.0 / plain.timesteps_used as f32;
        let f_t = Tensor::from_vec(
            last.accumulated_logits.iter().map(|&v| v * inv_t).collect(),
            &[1, 3],
        )
        .unwrap();
        let probs = softmax_rows(&f_t).unwrap();
        assert_eq!(probs.data(), plain.probabilities.as_slice());
    }

    #[test]
    fn event_frames_consume_one_per_timestep() {
        let p = ExitPolicy::entropy(1e-6).unwrap();
        let runner = DynamicInference::new(p, 3).unwrap();
        let mut net = tiny_net(10);
        let mut rng = TensorRng::seed_from(11);
        let frames: Vec<Tensor> =
            (0..3).map(|_| Tensor::randn(&[1, 2, 2], 0.5, 0.5, &mut rng)).collect();
        let out = runner.run(&mut net, &frames).unwrap();
        assert_eq!(out.timesteps_used, 3);
    }
}
