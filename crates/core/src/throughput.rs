//! Wall-clock throughput measurement on a general processor (Table III).
//!
//! The paper measures images/s on a GPU at batch size 1; here the same
//! protocol runs on the CPU with our engine. The claim shape is preserved:
//! throughput falls roughly linearly with timesteps, and DT-SNN recovers
//! near-1-timestep throughput at full-window accuracy.

use crate::harness::DynamicEvaluation;
use crate::inference::{static_inference, DynamicInference};
use crate::{CoreError, Result};
use dtsnn_snn::Snn;
use dtsnn_tensor::{parallel, Tensor};
use std::time::Instant;

/// Throughput and accuracy of one inference configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Configuration label (`"static T=2"` / `"DT-SNN θ=0.3"`).
    pub label: String,
    /// Images per second at batch size 1.
    pub images_per_second: f64,
    /// Top-1 accuracy over the measured set.
    pub accuracy: f32,
    /// Mean timesteps per image.
    pub avg_timesteps: f32,
}

/// Measures batch-1 throughput of a static SNN at a fixed `timesteps`.
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for empty or mismatched data.
pub fn measure_throughput(
    network: &mut Snn,
    frames: &[Vec<Tensor>],
    labels: &[usize],
    timesteps: usize,
) -> Result<ThroughputReport> {
    if frames.is_empty() || frames.len() != labels.len() {
        return Err(CoreError::BadInput("frames/labels mismatch or empty".into()));
    }
    let start = Instant::now();
    // Per-sample fan-out over cloned networks; predictions fold back in
    // sample-index order, so accuracy is thread-count invariant while the
    // wall clock shrinks with DTSNN_THREADS.
    let indices: Vec<usize> = (0..frames.len()).collect();
    let proto: &Snn = network;
    let preds = parallel::map_chunks(&indices, |_, chunk| {
        let mut net = proto.clone();
        chunk.iter().map(|&i| static_inference(&mut net, &frames[i], timesteps)).collect()
    });
    let mut correct = 0usize;
    for (pred, &label) in preds.into_iter().zip(labels) {
        correct += (pred? == label) as usize;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    Ok(ThroughputReport {
        label: format!("static T={timesteps}"),
        images_per_second: frames.len() as f64 / secs,
        accuracy: correct as f32 / frames.len() as f32,
        avg_timesteps: timesteps as f32,
    })
}

/// Measures batch-1 throughput of DT-SNN under `runner`'s policy.
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for empty or mismatched data.
pub fn measure_dynamic_throughput(
    network: &mut Snn,
    runner: &DynamicInference,
    frames: &[Vec<Tensor>],
    labels: &[usize],
) -> Result<ThroughputReport> {
    let start = Instant::now();
    let eval = DynamicEvaluation::run(network, runner, frames, labels, None)?;
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    Ok(ThroughputReport {
        label: format!("DT-SNN {}", runner.policy().name()),
        images_per_second: frames.len() as f64 / secs,
        accuracy: eval.accuracy,
        avg_timesteps: eval.avg_timesteps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExitPolicy;
    use dtsnn_snn::{Flatten, Layer, LifConfig, LifNeuron, Linear};
    use dtsnn_tensor::TensorRng;

    fn tiny_net(seed: u64) -> Snn {
        let mut rng = TensorRng::seed_from(seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(16, 32, &mut rng)),
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(32, 3, &mut rng)),
        ];
        Snn::from_layers(layers)
    }

    fn data(n: usize) -> (Vec<Vec<Tensor>>, Vec<usize>) {
        let mut rng = TensorRng::seed_from(1);
        let frames = (0..n).map(|_| vec![Tensor::randn(&[1, 4, 4], 0.5, 0.5, &mut rng)]).collect();
        (frames, (0..n).map(|i| i % 3).collect())
    }

    #[test]
    fn throughput_positive_and_monotone_in_t() {
        let mut net = tiny_net(2);
        let (frames, labels) = data(64);
        let t1 = measure_throughput(&mut net, &frames, &labels, 1).unwrap();
        let t8 = measure_throughput(&mut net, &frames, &labels, 8).unwrap();
        assert!(t1.images_per_second > 0.0);
        // more timesteps → strictly more work → lower throughput
        assert!(
            t1.images_per_second > t8.images_per_second,
            "{} !> {}",
            t1.images_per_second,
            t8.images_per_second
        );
    }

    #[test]
    fn dynamic_throughput_between_t1_and_tmax() {
        let mut net = tiny_net(3);
        let (frames, labels) = data(64);
        let runner = DynamicInference::new(ExitPolicy::entropy(0.9).unwrap(), 8).unwrap();
        let dt = measure_dynamic_throughput(&mut net, &runner, &frames, &labels).unwrap();
        assert!(dt.avg_timesteps >= 1.0 && dt.avg_timesteps <= 8.0);
        assert!(dt.images_per_second > 0.0);
    }

    #[test]
    fn rejects_empty_data() {
        let mut net = tiny_net(4);
        assert!(measure_throughput(&mut net, &[], &[], 1).is_err());
    }
}
