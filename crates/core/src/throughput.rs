//! Wall-clock throughput measurement on a general processor (Table III).
//!
//! The paper measures images/s on a GPU at batch size 1; here the same
//! protocol runs on the CPU with our engine. The claim shape is preserved:
//! throughput falls roughly linearly with timesteps, and DT-SNN recovers
//! near-1-timestep throughput at full-window accuracy.
//!
//! Measurement protocol: all input validation and per-worker network clones
//! happen **before** the clock starts, so the timed span covers inference
//! work only. Reported accuracy and mean timesteps are bitwise identical to
//! the corresponding evaluation harness.
//!
//! Each pooled clone owns a private [`dtsnn_tensor::Workspace`] (a cloned
//! `Snn` starts with a fresh arena), so the timed loop is allocation-free
//! after each worker's first sample warms its size classes — no locking, no
//! sharing between workers.

use crate::harness::DynamicEvaluation;
use crate::inference::{static_inference, DynamicInference};
use crate::{CoreError, Result};
use dtsnn_snn::Snn;
use dtsnn_tensor::{parallel, Tensor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Throughput and accuracy of one inference configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Configuration label (`"static T=2"` / `"DT-SNN θ=0.3"`).
    pub label: String,
    /// Images per second at batch size 1.
    pub images_per_second: f64,
    /// Top-1 accuracy over the measured set.
    pub accuracy: f32,
    /// Mean timesteps per image.
    pub avg_timesteps: f32,
}

fn validate_inputs(
    frames: &[Vec<Tensor>],
    labels: &[usize],
    max_timesteps: usize,
) -> Result<()> {
    if frames.is_empty() || frames.len() != labels.len() {
        return Err(CoreError::BadInput("frames/labels mismatch or empty".into()));
    }
    if max_timesteps == 0 {
        return Err(CoreError::BadInput("timesteps must be nonzero".into()));
    }
    for (i, f) in frames.iter().enumerate() {
        if f.len() != 1 && f.len() != max_timesteps {
            return Err(CoreError::BadInput(format!(
                "sample {i}: expected 1 or {max_timesteps} frames, got {}",
                f.len()
            )));
        }
    }
    Ok(())
}

/// A pool of pre-built network clones, built outside any timed span so the
/// clock measures inference rather than `Snn::clone`. Workers check a clone
/// out on chunk entry and return it on exit; all clones are identical, so
/// pool order does not affect results.
///
/// The pool is *not* fixed to the worker count it was built for: a checkout
/// from an exhausted pool clones the prototype on demand (counted by
/// [`ClonePool::extra_clones`]) and the new clone joins the pool when
/// returned. A long-lived pool therefore converges on the peak observed
/// concurrency and stops cloning — the serving path can reuse one pool
/// across windows of different widths without silently re-cloning per
/// window, and a `DTSNN_THREADS` change mid-lifetime degrades to a one-time
/// warm-up cost instead of a panic.
pub struct ClonePool {
    proto: Snn,
    free: Mutex<Vec<Snn>>,
    extra_clones: AtomicUsize,
}

impl ClonePool {
    /// A pool pre-seeded with exactly `capacity.max(1)` clones.
    pub fn with_capacity(proto: &Snn, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ClonePool {
            proto: proto.clone(),
            free: Mutex::new((0..capacity).map(|_| proto.clone()).collect()),
            extra_clones: AtomicUsize::new(0),
        }
    }

    /// A pool sized to the current `DTSNN_THREADS` worker count, capped by
    /// the number of work items (building clones no worker will hold is
    /// wasted memory).
    pub fn for_current_threads(proto: &Snn, samples: usize) -> Self {
        ClonePool::with_capacity(proto, parallel::num_threads().min(samples).max(1))
    }

    /// Checks a clone out, runs `f` on it, and returns it to the pool.
    ///
    /// Exhaustion is not an error: an empty pool clones the prototype on
    /// demand and the fresh clone is pooled afterwards, growing the pool to
    /// the observed concurrency.
    pub fn with<R>(&self, f: impl FnOnce(&mut Snn) -> R) -> R {
        let checked_out = self.free.lock().expect("clone pool poisoned").pop();
        let mut net = checked_out.unwrap_or_else(|| {
            self.extra_clones.fetch_add(1, Ordering::Relaxed);
            self.proto.clone()
        });
        let out = f(&mut net);
        self.free.lock().expect("clone pool poisoned").push(net);
        out
    }

    /// Clones built on demand because a checkout found the pool empty —
    /// zero whenever the pre-built capacity covered the actual concurrency.
    pub fn extra_clones(&self) -> usize {
        self.extra_clones.load(Ordering::Relaxed)
    }

    /// Clones currently parked in the pool (pre-built plus any on-demand
    /// clones that have been returned).
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("clone pool poisoned").len()
    }
}

/// Measures batch-1 throughput of a static SNN at a fixed `timesteps`.
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for empty or mismatched data, zero
/// `timesteps`, or per-sample frame counts other than 1 or `timesteps`.
pub fn measure_throughput(
    network: &mut Snn,
    frames: &[Vec<Tensor>],
    labels: &[usize],
    timesteps: usize,
) -> Result<ThroughputReport> {
    validate_inputs(frames, labels, timesteps)?;
    let pool = ClonePool::for_current_threads(network, frames.len());
    let indices: Vec<usize> = (0..frames.len()).collect();
    let start = Instant::now();
    // Per-sample fan-out over pooled clones; predictions fold back in
    // sample-index order, so accuracy is thread-count invariant while the
    // wall clock shrinks with DTSNN_THREADS.
    let preds = parallel::map_chunks(&indices, |_, chunk| {
        pool.with(|net| {
            chunk.iter().map(|&i| static_inference(net, &frames[i], timesteps)).collect()
        })
    });
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let mut correct = 0usize;
    for (pred, &label) in preds.into_iter().zip(labels) {
        correct += (pred? == label) as usize;
    }
    Ok(ThroughputReport {
        label: format!("static T={timesteps}"),
        images_per_second: frames.len() as f64 / secs,
        accuracy: correct as f32 / frames.len() as f32,
        avg_timesteps: timesteps as f32,
    })
}

/// Measures batch-1 throughput of DT-SNN under `runner`'s policy.
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for empty or mismatched data or invalid
/// per-sample frame counts — raised before the clock starts.
pub fn measure_dynamic_throughput(
    network: &mut Snn,
    runner: &DynamicInference,
    frames: &[Vec<Tensor>],
    labels: &[usize],
) -> Result<ThroughputReport> {
    validate_inputs(frames, labels, runner.max_timesteps())?;
    let pool = ClonePool::for_current_threads(network, frames.len());
    let indices: Vec<usize> = (0..frames.len()).collect();
    let start = Instant::now();
    let per_sample = parallel::map_chunks(&indices, |_, chunk| {
        pool.with(|net| {
            chunk
                .iter()
                .map(|&i| -> Result<(usize, bool)> {
                    let outcome = runner.run(net, &frames[i])?;
                    Ok((outcome.timesteps_used, outcome.prediction == labels[i]))
                })
                .collect()
        })
    });
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let mut correct = 0usize;
    let mut timestep_total = 0usize;
    for res in per_sample {
        let (used, ok) = res?;
        correct += ok as usize;
        timestep_total += used;
    }
    let n = frames.len() as f32;
    Ok(ThroughputReport {
        label: format!("DT-SNN {}", runner.policy().name()),
        images_per_second: frames.len() as f64 / secs,
        accuracy: correct as f32 / n,
        avg_timesteps: timestep_total as f32 / n,
    })
}

/// Measures throughput of the compacted batched DT-SNN evaluator
/// ([`DynamicEvaluation::run_batched`]) at the given `batch_size`.
///
/// Accuracy and mean timesteps are bitwise identical to the batch-1 dynamic
/// path; the wall clock reflects the active-set compaction engine, whose
/// per-timestep work decays as samples exit early.
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for empty or mismatched data, invalid
/// per-sample frame counts, or zero `batch_size` — raised before the clock
/// starts.
pub fn measure_batched_dynamic_throughput(
    network: &mut Snn,
    runner: &DynamicInference,
    frames: &[Vec<Tensor>],
    labels: &[usize],
    batch_size: usize,
) -> Result<ThroughputReport> {
    validate_inputs(frames, labels, runner.max_timesteps())?;
    if batch_size == 0 {
        return Err(CoreError::BadInput("batch_size must be nonzero".into()));
    }
    let start = Instant::now();
    let eval = DynamicEvaluation::run_batched(network, runner, frames, labels, None, batch_size)?;
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    Ok(ThroughputReport {
        label: format!("DT-SNN {} (batched b={batch_size})", runner.policy().name()),
        images_per_second: frames.len() as f64 / secs,
        accuracy: eval.accuracy,
        avg_timesteps: eval.avg_timesteps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExitPolicy;
    use dtsnn_snn::{Flatten, Layer, LifConfig, LifNeuron, Linear};
    use dtsnn_tensor::TensorRng;

    fn tiny_net(seed: u64) -> Snn {
        let mut rng = TensorRng::seed_from(seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(16, 32, &mut rng)),
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(32, 3, &mut rng)),
        ];
        Snn::from_layers(layers)
    }

    fn data(n: usize) -> (Vec<Vec<Tensor>>, Vec<usize>) {
        let mut rng = TensorRng::seed_from(1);
        let frames = (0..n).map(|_| vec![Tensor::randn(&[1, 4, 4], 0.5, 0.5, &mut rng)]).collect();
        (frames, (0..n).map(|i| i % 3).collect())
    }

    #[test]
    fn throughput_positive_and_monotone_in_t() {
        let mut net = tiny_net(2);
        let (frames, labels) = data(64);
        let t1 = measure_throughput(&mut net, &frames, &labels, 1).unwrap();
        let t8 = measure_throughput(&mut net, &frames, &labels, 8).unwrap();
        assert!(t1.images_per_second > 0.0);
        // more timesteps → strictly more work → lower throughput
        assert!(
            t1.images_per_second > t8.images_per_second,
            "{} !> {}",
            t1.images_per_second,
            t8.images_per_second
        );
    }

    #[test]
    fn dynamic_throughput_between_t1_and_tmax() {
        let mut net = tiny_net(3);
        let (frames, labels) = data(64);
        let runner = DynamicInference::new(ExitPolicy::entropy(0.9).unwrap(), 8).unwrap();
        let dt = measure_dynamic_throughput(&mut net, &runner, &frames, &labels).unwrap();
        assert!(dt.avg_timesteps >= 1.0 && dt.avg_timesteps <= 8.0);
        assert!(dt.images_per_second > 0.0);
    }

    #[test]
    fn dynamic_throughput_accuracy_matches_evaluation_harness() {
        let (frames, labels) = data(24);
        let runner = DynamicInference::new(ExitPolicy::entropy(0.9).unwrap(), 4).unwrap();
        let mut net = tiny_net(5);
        let eval = DynamicEvaluation::run(&mut net, &runner, &frames, &labels, None).unwrap();
        let mut net = tiny_net(5);
        let dt = measure_dynamic_throughput(&mut net, &runner, &frames, &labels).unwrap();
        assert_eq!(dt.accuracy, eval.accuracy);
        assert_eq!(dt.avg_timesteps, eval.avg_timesteps);
        let mut net = tiny_net(5);
        let bt =
            measure_batched_dynamic_throughput(&mut net, &runner, &frames, &labels, 8).unwrap();
        assert_eq!(bt.accuracy, eval.accuracy);
        assert_eq!(bt.avg_timesteps, eval.avg_timesteps);
        assert!(bt.label.contains("batched b=8"));
    }

    #[test]
    fn validation_happens_before_the_clock() {
        // invalid inputs error out rather than being timed mid-measurement
        let mut net = tiny_net(4);
        let (mut frames, labels) = data(4);
        let runner = DynamicInference::new(ExitPolicy::entropy(0.9).unwrap(), 4).unwrap();
        assert!(measure_throughput(&mut net, &frames, &labels, 0).is_err());
        assert!(
            measure_batched_dynamic_throughput(&mut net, &runner, &frames, &labels, 0).is_err()
        );
        frames[1] = vec![frames[1][0].clone(); 2]; // 2 frames under a T=4 window
        assert!(measure_throughput(&mut net, &frames, &labels, 4).is_err());
        assert!(measure_dynamic_throughput(&mut net, &runner, &frames, &labels).is_err());
        assert!(
            measure_batched_dynamic_throughput(&mut net, &runner, &frames, &labels, 2).is_err()
        );
    }

    #[test]
    fn rejects_empty_data() {
        let mut net = tiny_net(4);
        assert!(measure_throughput(&mut net, &[], &[], 1).is_err());
    }

    #[test]
    fn clone_pool_sized_to_concurrency_never_reclones() {
        // the serving-path reuse contract: once the pool covers the worker
        // count, repeated windows check clones out and in without ever
        // touching Snn::clone again
        let proto = tiny_net(6);
        parallel::with_threads(2, || {
            let pool = ClonePool::for_current_threads(&proto, 64);
            assert_eq!(pool.pooled(), 2);
            let indices: Vec<usize> = (0..64).collect();
            for _window in 0..3 {
                let out = parallel::map_chunks(&indices, |_, chunk| {
                    pool.with(|net| {
                        net.reset_state();
                        vec![1usize; chunk.len()]
                    })
                });
                assert_eq!(out.into_iter().sum::<usize>(), 64);
            }
            assert_eq!(pool.extra_clones(), 0, "a matched pool must never re-clone");
            assert_eq!(pool.pooled(), 2);
        });
    }

    #[test]
    fn clone_pool_oversubscription_grows_once_then_reuses() {
        let proto = tiny_net(7);
        let pool = ClonePool::with_capacity(&proto, 1);
        // nested checkout exhausts the single pre-built clone; the inner
        // one falls back to cloning the prototype instead of panicking
        pool.with(|_outer| pool.with(|_inner| ()));
        assert_eq!(pool.extra_clones(), 1);
        assert_eq!(pool.pooled(), 2, "the on-demand clone joins the pool");
        // the pool has grown to the observed concurrency: the same shape
        // of work re-clones nothing
        pool.with(|_outer| pool.with(|_inner| ()));
        assert_eq!(pool.extra_clones(), 1, "the second window must reuse, not re-clone");
    }

    #[test]
    fn clone_pool_capacity_floor_is_one() {
        let proto = tiny_net(8);
        let pool = ClonePool::with_capacity(&proto, 0);
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.with(|_net| 41) + 1, 42);
    }
}
