use std::fmt;

/// Errors produced by the dynamic-timestep inference layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value was outside its documented domain.
    InvalidConfig(String),
    /// The underlying spiking network failed.
    Snn(dtsnn_snn::SnnError),
    /// The hardware model failed.
    Imc(dtsnn_imc::ImcError),
    /// Inputs to an evaluation harness disagree.
    BadInput(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Snn(e) => write!(f, "network failure: {e}"),
            CoreError::Imc(e) => write!(f, "hardware-model failure: {e}"),
            CoreError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Snn(e) => Some(e),
            CoreError::Imc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dtsnn_snn::SnnError> for CoreError {
    fn from(e: dtsnn_snn::SnnError) -> Self {
        CoreError::Snn(e)
    }
}

impl From<dtsnn_imc::ImcError> for CoreError {
    fn from(e: dtsnn_imc::ImcError) -> Self {
        CoreError::Imc(e)
    }
}

impl From<dtsnn_tensor::TensorError> for CoreError {
    fn from(e: dtsnn_tensor::TensorError) -> Self {
        CoreError::Snn(dtsnn_snn::SnnError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(dtsnn_snn::SnnError::InvalidConfig("x".into()));
        assert!(e.to_string().contains("network failure"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CoreError::BadInput("y".into())).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
