//! DT-SNN: input-aware dynamic-timestep inference for spiking neural
//! networks (the paper's primary contribution).
//!
//! After every timestep the accumulated classifier output is softmaxed, its
//! normalized entropy (Eq. 7) is compared against a threshold θ, and
//! inference terminates at the first timestep that is confident enough
//! (Eq. 8) — so easy inputs use one timestep and only the hard tail pays for
//! the full window. The crate provides:
//!
//! - [`ExitPolicy`] — entropy thresholding plus the max-probability and
//!   margin alternatives used in the extension ablation;
//! - [`DynamicInference`] — the per-sample early-exit runner;
//! - [`DynamicEvaluation`] / [`StaticEvaluation`] — dataset-level harnesses
//!   reporting accuracy, average timesteps and the T̂ distribution;
//! - [`ThresholdSweep`] — accuracy–EDP curves over θ (Figs. 5 and 7);
//! - [`MonteCarloRobustness`] / [`degradation_sweep`] — seeded fault trials
//!   over the damaged IMC substrate with mean/std/CI aggregation (Fig. 6(B));
//! - [`measure_throughput`] — wall-clock images/s (Table III);
//! - [`ascii_render`] — easy/hard sample visualization (Fig. 8).
//!
//! # Example
//!
//! ```
//! use dtsnn_core::ExitPolicy;
//!
//! let policy = ExitPolicy::entropy(0.2).expect("valid threshold");
//! // a confident distribution exits, a uniform one does not
//! assert!(policy.should_exit(&[0.97, 0.01, 0.01, 0.01]));
//! assert!(!policy.should_exit(&[0.25, 0.25, 0.25, 0.25]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod energy_link;
mod error;
mod harness;
mod inference;
mod policy;
mod robustness;
mod sweep;
mod throughput;
mod visualize;

pub use calibration::{
    collect_exit_scores, reliability_bins, score_correctness_correlation, ReliabilityBin,
};
pub use energy_link::{densities_from_activity, HardwareProfile};
pub use error::CoreError;
pub use harness::{
    DynamicEvaluation, DynamicSampleOutcome, QuarantinedEvaluation, StaticEvaluation,
};
pub use inference::{static_inference, DynamicInference, DynamicOutcome, DynamicTrace, TimestepTrace};
pub use policy::ExitPolicy;
pub use robustness::{
    degradation_sweep, DegradationPoint, FaultTrial, MonteCarloConfig, MonteCarloRobustness,
    MonteCarloStatic, StaticTrial, Statistic,
};
pub use sweep::{SweepPoint, ThresholdSweep};
pub use throughput::{
    measure_batched_dynamic_throughput, measure_dynamic_throughput, measure_throughput, ClonePool,
    ThroughputReport,
};
pub use visualize::{ascii_render, bucket_by_timesteps};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
