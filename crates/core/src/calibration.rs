//! Confidence calibration analysis — the premise behind Eq. 8.
//!
//! DT-SNN's exit rule is sound only if low entropy really implies a correct
//! prediction (Guo et al. \[5\], cited in Sec. III-A). This module bins
//! predictions by their confidence score and reports per-bin accuracy (a
//! reliability diagram over entropy), plus the rank correlation between
//! confidence and correctness.

use crate::inference::DynamicInference;
use crate::{CoreError, Result};
use dtsnn_snn::Snn;
use dtsnn_tensor::{parallel, Tensor};

/// Runs the network over a dataset split and collects, per sample, the
/// first-timestep exit score and whether the final prediction was correct —
/// the `(score, correct)` pairs that [`reliability_bins`] and
/// [`score_correctness_correlation`] consume.
///
/// Samples fan out across the [`parallel`] worker pool on cloned networks and
/// results are merged in sample-index order, so the output is bitwise
/// identical for any `DTSNN_THREADS` value.
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for empty or mismatched inputs.
pub fn collect_exit_scores(
    network: &mut Snn,
    runner: &DynamicInference,
    frames: &[Vec<Tensor>],
    labels: &[usize],
) -> Result<(Vec<f32>, Vec<bool>)> {
    if frames.is_empty() || frames.len() != labels.len() {
        return Err(CoreError::BadInput("frames/labels mismatch or empty".into()));
    }
    let indices: Vec<usize> = (0..frames.len()).collect();
    let proto: &Snn = network;
    let per_sample = parallel::map_chunks(&indices, |_, chunk| {
        let mut net = proto.clone();
        chunk
            .iter()
            .map(|&i| -> Result<(f32, bool)> {
                let out = runner.run(&mut net, &frames[i])?;
                Ok((out.scores[0], out.prediction == labels[i]))
            })
            .collect()
    });
    let mut scores = Vec::with_capacity(frames.len());
    let mut corrects = Vec::with_capacity(frames.len());
    for res in per_sample {
        let (s, c) = res?;
        scores.push(s);
        corrects.push(c);
    }
    Ok((scores, corrects))
}

/// Accuracy within one confidence bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Inclusive lower edge of the score interval.
    pub lo: f32,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f32,
    /// Samples that fell in the bin.
    pub count: usize,
    /// Fraction of those that were correctly classified.
    pub accuracy: f32,
}

/// Bins `(score, correct)` pairs into `bins` equal-width intervals over
/// `[0, 1]` and reports per-bin accuracy.
///
/// For entropy scores, a *decreasing* accuracy over bins confirms the
/// paper's premise: confident (low-entropy) predictions are more accurate.
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for empty inputs, mismatched lengths or
/// zero bins.
pub fn reliability_bins(
    scores: &[f32],
    corrects: &[bool],
    bins: usize,
) -> Result<Vec<ReliabilityBin>> {
    if scores.is_empty() || scores.len() != corrects.len() {
        return Err(CoreError::BadInput("scores/corrects mismatch or empty".into()));
    }
    if bins == 0 {
        return Err(CoreError::BadInput("need at least one bin".into()));
    }
    let mut counts = vec![0usize; bins];
    let mut hits = vec![0usize; bins];
    for (&s, &c) in scores.iter().zip(corrects) {
        let idx = ((s.clamp(0.0, 1.0) * bins as f32) as usize).min(bins - 1);
        counts[idx] += 1;
        hits[idx] += c as usize;
    }
    Ok((0..bins)
        .map(|i| ReliabilityBin {
            lo: i as f32 / bins as f32,
            hi: (i + 1) as f32 / bins as f32,
            count: counts[i],
            accuracy: if counts[i] == 0 { f32::NAN } else { hits[i] as f32 / counts[i] as f32 },
        })
        .collect())
}

/// Point-biserial correlation between a score and correctness (a value in
/// `[-1, 1]`; strongly negative for entropy scores means low entropy ⇒
/// correct, which is what Eq. 8 relies on).
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for empty inputs or mismatched lengths.
pub fn score_correctness_correlation(scores: &[f32], corrects: &[bool]) -> Result<f32> {
    if scores.is_empty() || scores.len() != corrects.len() {
        return Err(CoreError::BadInput("scores/corrects mismatch or empty".into()));
    }
    let n = scores.len() as f32;
    let mean_s = scores.iter().sum::<f32>() / n;
    let mean_c = corrects.iter().filter(|&&c| c).count() as f32 / n;
    let mut cov = 0.0;
    let mut var_s = 0.0;
    let mut var_c = 0.0;
    for (&s, &c) in scores.iter().zip(corrects) {
        let ds = s - mean_s;
        let dc = (c as u8 as f32) - mean_c;
        cov += ds * dc;
        var_s += ds * ds;
        var_c += dc * dc;
    }
    let denom = (var_s * var_c).sqrt();
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(reliability_bins(&[], &[], 4).is_err());
        assert!(reliability_bins(&[0.5], &[true, false], 4).is_err());
        assert!(reliability_bins(&[0.5], &[true], 0).is_err());
        assert!(score_correctness_correlation(&[], &[]).is_err());
    }

    #[test]
    fn bins_partition_all_samples() {
        let scores = [0.05f32, 0.15, 0.55, 0.95, 1.0];
        let corrects = [true, true, false, false, false];
        let bins = reliability_bins(&scores, &corrects, 4).unwrap();
        assert_eq!(bins.len(), 4);
        assert_eq!(bins.iter().map(|b| b.count).sum::<usize>(), 5);
        // bin 0 holds the two low-entropy correct predictions
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[0].accuracy, 1.0);
        // score 1.0 clamps into the last bin
        assert_eq!(bins[3].count, 2);
        assert_eq!(bins[3].accuracy, 0.0);
    }

    #[test]
    fn empty_bin_reports_nan() {
        let bins = reliability_bins(&[0.1, 0.9], &[true, false], 4).unwrap();
        assert!(bins[1].accuracy.is_nan());
        assert!(bins[2].accuracy.is_nan());
    }

    #[test]
    fn perfect_anticorrelation_detected() {
        // low score ⇔ correct
        let scores: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let corrects: Vec<bool> = (0..100).map(|i| i < 50).collect();
        let r = score_correctness_correlation(&scores, &corrects).unwrap();
        assert!(r < -0.8, "r = {r}");
    }

    #[test]
    fn uncorrelated_scores_near_zero() {
        let scores: Vec<f32> = (0..200).map(|i| (i % 2) as f32).collect();
        let corrects: Vec<bool> = (0..200).map(|i| (i / 2) % 2 == 0).collect();
        let r = score_correctness_correlation(&scores, &corrects).unwrap();
        assert!(r.abs() < 0.1, "r = {r}");
    }

    #[test]
    fn constant_scores_give_zero() {
        let r = score_correctness_correlation(&[0.5; 10], &[true; 10]).unwrap();
        assert_eq!(r, 0.0);
    }
}
