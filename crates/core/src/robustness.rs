//! Monte-Carlo robustness evaluation over the faulty IMC substrate.
//!
//! A single fault draw (like the single `perturb_network` call behind the
//! original Fig. 6(B) point) is one arbitrary sample of a wide distribution.
//! [`MonteCarloRobustness`] runs N seeded trials — each programs a fresh
//! clone of the network onto an independently drawn faulty substrate via
//! [`FaultInjector`] and evaluates it with the quarantine-hardened dynamic
//! harness — and aggregates accuracy, average exit timestep T̂, energy and
//! EDP into mean/std/95% CI. [`degradation_sweep`] repeats this across fault
//! severities, producing the accuracy-and-T̂-versus-severity curves that show
//! how the entropy policy reallocates timesteps under damage.
//!
//! # Determinism
//!
//! Trials fan out over the deterministic parallel layer: per-trial seeds are
//! derived arithmetically from the base seed, each trial is self-contained,
//! results come back in trial order, and every statistic folds in that fixed
//! order in `f64` — so all aggregates are **bitwise identical for any
//! `DTSNN_THREADS` value**, like the rest of the stack. Sweep points reuse
//! the same per-trial seeds across severities (common random numbers), which
//! removes inter-severity sampling jitter from the degradation curve.

use crate::energy_link::HardwareProfile;
use crate::harness::DynamicEvaluation;
use crate::inference::{static_inference, DynamicInference};
use crate::{CoreError, Result};
use dtsnn_imc::{FaultInjector, FaultModel, FaultReport};
use dtsnn_snn::Snn;
use dtsnn_tensor::{parallel, Tensor, TensorRng};

/// Mean, standard deviation and 95% confidence half-width of one metric over
/// the Monte-Carlo trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Statistic {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single trial).
    pub std_dev: f64,
    /// 95% confidence half-width of the mean: `1.96·σ/√n`.
    pub ci95: f64,
}

impl Statistic {
    /// Computes the statistic over `samples`, folding in slice order.
    pub fn from_samples(samples: &[f64]) -> Statistic {
        let n = samples.len();
        if n == 0 {
            return Statistic { mean: f64::NAN, std_dev: f64::NAN, ci95: f64::NAN };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        Statistic { mean, std_dev, ci95: 1.96 * std_dev / (n as f64).sqrt() }
    }

    /// `"mean ± ci95"` with the given precision, for tables.
    pub fn display(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.ci95, p = precision)
    }
}

/// Trial count and base seed of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Number of independent fault draws (≥ 1).
    pub trials: usize,
    /// Base seed; per-trial seeds are derived arithmetically from it.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig { trials: 5, seed: 0xD7_5EED }
    }
}

/// Derives trial `t`'s seed from the base seed (golden-ratio multiplier, so
/// nearby trial indices get unrelated streams).
fn trial_seed(base: u64, trial: usize) -> u64 {
    base ^ (trial as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One dynamic-evaluation fault trial.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTrial {
    /// Trial index.
    pub trial: usize,
    /// Seed the trial's fault draw used.
    pub seed: u64,
    /// Top-1 accuracy on the damaged substrate (quarantined = incorrect).
    pub accuracy: f32,
    /// Average exit timestep T̂.
    pub avg_timesteps: f32,
    /// Dataset-average inference energy, pJ.
    pub energy_pj: f64,
    /// Dataset-average energy-delay product, pJ·ns.
    pub edp: f64,
    /// Samples quarantined for non-finite forward passes.
    pub quarantined: usize,
    /// What the injector actually did.
    pub report: FaultReport,
}

/// Aggregate of N dynamic fault trials.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloRobustness {
    /// Per-trial results, in trial order.
    pub trials: Vec<FaultTrial>,
    /// Accuracy across trials.
    pub accuracy: Statistic,
    /// T̂ across trials.
    pub avg_timesteps: Statistic,
    /// Energy across trials, pJ.
    pub energy_pj: Statistic,
    /// EDP across trials, pJ·ns.
    pub edp: Statistic,
    /// Total quarantined samples across all trials.
    pub quarantined_total: usize,
}

impl MonteCarloRobustness {
    /// Runs `mc.trials` seeded fault trials of the dynamic-timestep network.
    ///
    /// Each trial clones `network`, injects an independent fault draw of
    /// `model` through `profile`'s chip mapping, evaluates with
    /// [`DynamicEvaluation::run_quarantined`] and prices the result with the
    /// profile's energy model. Trials run data-parallel and fold in trial
    /// order (see the module docs for the determinism contract).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero trial count, and
    /// propagates injector construction/mismatch and evaluation errors.
    pub fn run(
        network: &Snn,
        runner: &DynamicInference,
        frames: &[Vec<Tensor>],
        labels: &[usize],
        profile: &HardwareProfile,
        model: &FaultModel,
        mc: &MonteCarloConfig,
    ) -> Result<Self> {
        if mc.trials == 0 {
            return Err(CoreError::InvalidConfig("Monte-Carlo needs at least one trial".into()));
        }
        let injector =
            FaultInjector::new(*model, profile.cost_model().mapping(), profile.cost_model().config())?;
        let indices: Vec<usize> = (0..mc.trials).collect();
        let results = parallel::map_chunks(&indices, |_, chunk| {
            chunk
                .iter()
                .map(|&t| -> Result<FaultTrial> {
                    let mut net = network.clone();
                    let seed = trial_seed(mc.seed, t);
                    let mut rng = TensorRng::seed_from(seed);
                    let report = injector.inject(&mut net, &mut rng)?;
                    let q = DynamicEvaluation::run_quarantined(
                        &mut net, runner, frames, labels, None,
                    )?;
                    let cost =
                        profile.dynamic_cost(&q.eval.activity, q.eval.avg_timesteps as f64)?;
                    Ok(FaultTrial {
                        trial: t,
                        seed,
                        accuracy: q.eval.accuracy,
                        avg_timesteps: q.eval.avg_timesteps,
                        energy_pj: cost.energy_pj(),
                        edp: cost.edp(),
                        quarantined: q.quarantined.len(),
                        report,
                    })
                })
                .collect()
        });
        let trials = results.into_iter().collect::<Result<Vec<_>>>()?;
        let stat = |f: fn(&FaultTrial) -> f64| {
            Statistic::from_samples(&trials.iter().map(f).collect::<Vec<_>>())
        };
        Ok(MonteCarloRobustness {
            accuracy: stat(|t| t.accuracy as f64),
            avg_timesteps: stat(|t| t.avg_timesteps as f64),
            energy_pj: stat(|t| t.energy_pj),
            edp: stat(|t| t.edp),
            quarantined_total: trials.iter().map(|t| t.quarantined).sum(),
            trials,
        })
    }
}

/// One static-SNN fault trial (fixed full window, no exit policy).
#[derive(Debug, Clone, PartialEq)]
pub struct StaticTrial {
    /// Trial index.
    pub trial: usize,
    /// Seed the trial's fault draw used.
    pub seed: u64,
    /// Top-1 accuracy at the full window.
    pub accuracy: f32,
    /// What the injector actually did.
    pub report: FaultReport,
}

/// Aggregate of N static-SNN fault trials — the baseline the paper's
/// Fig. 6(B) compares DT-SNN against under device variation.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloStatic {
    /// Per-trial results, in trial order.
    pub trials: Vec<StaticTrial>,
    /// Accuracy across trials.
    pub accuracy: Statistic,
}

impl MonteCarloStatic {
    /// Runs `mc.trials` seeded fault trials of a static SNN at a fixed
    /// `timesteps` window. Same seeding and determinism contract as
    /// [`MonteCarloRobustness::run`]: identical `mc` values produce fault
    /// draws identical to the dynamic harness's, so static/dynamic pairs
    /// see the same damaged substrates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero trial count, and
    /// propagates injector and evaluation errors.
    pub fn run(
        network: &Snn,
        frames: &[Vec<Tensor>],
        labels: &[usize],
        timesteps: usize,
        profile: &HardwareProfile,
        model: &FaultModel,
        mc: &MonteCarloConfig,
    ) -> Result<Self> {
        if mc.trials == 0 {
            return Err(CoreError::InvalidConfig("Monte-Carlo needs at least one trial".into()));
        }
        if frames.is_empty() || frames.len() != labels.len() {
            return Err(CoreError::BadInput("frames/labels mismatch or empty".into()));
        }
        let injector =
            FaultInjector::new(*model, profile.cost_model().mapping(), profile.cost_model().config())?;
        let indices: Vec<usize> = (0..mc.trials).collect();
        let results = parallel::map_chunks(&indices, |_, chunk| {
            chunk
                .iter()
                .map(|&t| -> Result<StaticTrial> {
                    let mut net = network.clone();
                    let seed = trial_seed(mc.seed, t);
                    let mut rng = TensorRng::seed_from(seed);
                    let report = injector.inject(&mut net, &mut rng)?;
                    let mut correct = 0usize;
                    for (f, &label) in frames.iter().zip(labels) {
                        correct +=
                            (static_inference(&mut net, f, timesteps)? == label) as usize;
                    }
                    Ok(StaticTrial {
                        trial: t,
                        seed,
                        accuracy: correct as f32 / frames.len() as f32,
                        report,
                    })
                })
                .collect()
        });
        let trials = results.into_iter().collect::<Result<Vec<_>>>()?;
        let accuracy =
            Statistic::from_samples(&trials.iter().map(|t| t.accuracy as f64).collect::<Vec<_>>());
        Ok(MonteCarloStatic { trials, accuracy })
    }
}

/// One point of a graceful-degradation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationPoint {
    /// Severity multiplier applied to the base fault model.
    pub severity: f64,
    /// The fault model actually injected ([`FaultModel::scaled`]).
    pub model: FaultModel,
    /// Monte-Carlo aggregate at this severity.
    pub result: MonteCarloRobustness,
}

/// Sweeps fault severity: evaluates [`MonteCarloRobustness`] at
/// `base.scaled(s)` for every `s` in `severities`, reusing the same trial
/// seeds at every point (common random numbers). The resulting
/// accuracy/T̂/EDP-versus-severity curves quantify graceful degradation and
/// the entropy policy's timestep reallocation under damage.
///
/// # Errors
///
/// Returns [`CoreError::BadInput`] for an empty severity list and propagates
/// Monte-Carlo errors.
// mirrors MonteCarloRobustness::run's argument list plus the severity axis
#[allow(clippy::too_many_arguments)]
pub fn degradation_sweep(
    network: &Snn,
    runner: &DynamicInference,
    frames: &[Vec<Tensor>],
    labels: &[usize],
    profile: &HardwareProfile,
    base: &FaultModel,
    severities: &[f64],
    mc: &MonteCarloConfig,
) -> Result<Vec<DegradationPoint>> {
    if severities.is_empty() {
        return Err(CoreError::BadInput("no severities to sweep".into()));
    }
    // points run sequentially — each already fans its trials out in parallel
    severities
        .iter()
        .map(|&severity| {
            let model = base.scaled(severity);
            let result =
                MonteCarloRobustness::run(network, runner, frames, labels, profile, &model, mc)?;
            Ok(DegradationPoint { severity, model, result })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExitPolicy;
    use dtsnn_imc::HardwareConfig;
    use dtsnn_snn::{
        vgg_small, vgg_small_density_map, vgg_small_geometry, ModelConfig,
    };

    fn setup() -> (Snn, HardwareProfile, Vec<Vec<Tensor>>, Vec<usize>) {
        let mut rng = TensorRng::seed_from(91);
        let cfg = ModelConfig { num_classes: 4, ..ModelConfig::default() };
        let net = vgg_small(&cfg, &mut rng).unwrap();
        let profile = HardwareProfile::new(
            &vgg_small_geometry(&cfg),
            vgg_small_density_map(),
            cfg.num_classes,
            &HardwareConfig::default(),
        )
        .unwrap();
        let frames: Vec<Vec<Tensor>> =
            (0..6).map(|_| vec![Tensor::randn(&[3, 16, 16], 0.5, 0.3, &mut rng)]).collect();
        let labels: Vec<usize> = (0..6).map(|i| i % 4).collect();
        (net, profile, frames, labels)
    }

    fn mild_model() -> FaultModel {
        FaultModel {
            stuck_on_rate: 0.002,
            stuck_off_rate: 0.01,
            read_sigma: 0.05,
            drift: 0.02,
            dead_wordline_rate: 0.002,
            dead_bitline_rate: 0.002,
        }
    }

    #[test]
    fn statistic_from_samples() {
        let s = Statistic::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert!((s.ci95 - 1.96 / 3.0f64.sqrt()).abs() < 1e-12);
        let one = Statistic::from_samples(&[5.0]);
        assert_eq!(one.std_dev, 0.0);
        assert_eq!(one.ci95, 0.0);
        assert!(Statistic::from_samples(&[]).mean.is_nan());
        assert!(Statistic::from_samples(&[1.0, 2.0]).display(2).contains("±"));
    }

    #[test]
    fn monte_carlo_smoke_2_trials() {
        // the CI robustness stage runs exactly this: 2 trials, tiny net
        let (net, profile, frames, labels) = setup();
        let runner = DynamicInference::new(ExitPolicy::entropy(0.3).unwrap(), 4).unwrap();
        let mc = MonteCarloConfig { trials: 2, seed: 1234 };
        let r = MonteCarloRobustness::run(
            &net, &runner, &frames, &labels, &profile, &mild_model(), &mc,
        )
        .unwrap();
        assert_eq!(r.trials.len(), 2);
        assert_ne!(r.trials[0].seed, r.trials[1].seed);
        // different fault draws damage different devices
        assert_ne!(r.trials[0].report, r.trials[1].report);
        for t in &r.trials {
            assert!((0.0..=1.0).contains(&t.accuracy));
            assert!((1.0..=4.0).contains(&t.avg_timesteps));
            assert!(t.energy_pj > 0.0 && t.edp > 0.0);
            assert!(t.report.stuck_on + t.report.stuck_off > 0);
        }
        assert!(r.accuracy.mean.is_finite() && r.accuracy.ci95.is_finite());
        assert!(r.edp.mean > 0.0);
    }

    #[test]
    fn aggregates_are_thread_count_invariant() {
        let (net, profile, frames, labels) = setup();
        let runner = DynamicInference::new(ExitPolicy::entropy(0.3).unwrap(), 4).unwrap();
        let mc = MonteCarloConfig { trials: 2, seed: 77 };
        let run = || {
            MonteCarloRobustness::run(
                &net, &runner, &frames, &labels, &profile, &mild_model(), &mc,
            )
            .unwrap()
        };
        let serial = parallel::with_threads(1, run);
        for threads in [2, 4] {
            let par = parallel::with_threads(threads, run);
            assert_eq!(serial, par, "MC aggregates diverged at {threads} threads");
        }
        // rerunning with the same config reproduces everything bitwise
        assert_eq!(serial, run());
    }

    #[test]
    fn static_monte_carlo_runs_and_shares_fault_draws() {
        let (net, profile, frames, labels) = setup();
        let mc = MonteCarloConfig { trials: 2, seed: 55 };
        let s =
            MonteCarloStatic::run(&net, &frames, &labels, 4, &profile, &mild_model(), &mc).unwrap();
        assert_eq!(s.trials.len(), 2);
        assert!(s.accuracy.mean.is_finite());
        // the dynamic harness under the same mc sees the same substrates
        let runner = DynamicInference::new(ExitPolicy::entropy(0.3).unwrap(), 4).unwrap();
        let d = MonteCarloRobustness::run(
            &net, &runner, &frames, &labels, &profile, &mild_model(), &mc,
        )
        .unwrap();
        for (st, dt) in s.trials.iter().zip(&d.trials) {
            assert_eq!(st.seed, dt.seed);
            assert_eq!(st.report, dt.report, "same seed must draw the same faults");
        }
    }

    #[test]
    fn null_model_trials_are_identical_and_clean() {
        // with no faults and the config's default σ>0, trials still differ
        // (programming draws differ per seed); with σ=0 they are all the
        // ideal quantized network → zero variance
        let mut rng = TensorRng::seed_from(92);
        let cfg = ModelConfig { num_classes: 4, ..ModelConfig::default() };
        let net = vgg_small(&cfg, &mut rng).unwrap();
        let hw = HardwareConfig { sigma_over_mu: 0.0, ..HardwareConfig::default() };
        let profile = HardwareProfile::new(
            &vgg_small_geometry(&cfg),
            vgg_small_density_map(),
            cfg.num_classes,
            &hw,
        )
        .unwrap();
        let frames: Vec<Vec<Tensor>> =
            (0..4).map(|_| vec![Tensor::randn(&[3, 16, 16], 0.5, 0.3, &mut rng)]).collect();
        let labels = vec![0, 1, 2, 3];
        let runner = DynamicInference::new(ExitPolicy::entropy(0.3).unwrap(), 4).unwrap();
        let mc = MonteCarloConfig { trials: 3, seed: 9 };
        let r = MonteCarloRobustness::run(
            &net, &runner, &frames, &labels, &profile, &FaultModel::none(), &mc,
        )
        .unwrap();
        assert_eq!(r.accuracy.std_dev, 0.0);
        assert_eq!(r.avg_timesteps.std_dev, 0.0);
        assert_eq!(r.quarantined_total, 0);
        assert_eq!(r.trials[0].report.stuck_on + r.trials[0].report.stuck_off, 0);
    }

    #[test]
    fn degradation_sweep_produces_points_in_order() {
        let (net, profile, frames, labels) = setup();
        let runner = DynamicInference::new(ExitPolicy::entropy(0.3).unwrap(), 4).unwrap();
        let mc = MonteCarloConfig { trials: 2, seed: 13 };
        let severities = [0.0, 2.0];
        let points = degradation_sweep(
            &net, &runner, &frames, &labels, &profile, &mild_model(), &severities, &mc,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].severity, 0.0);
        assert!(points[0].model.is_null());
        assert_eq!(points[1].model, mild_model().scaled(2.0));
        // severity 2 injects strictly more discrete faults than severity 0
        let faults = |p: &DegradationPoint| {
            p.result.trials.iter().map(|t| t.report.stuck_on + t.report.stuck_off).sum::<usize>()
        };
        assert_eq!(faults(&points[0]), 0);
        assert!(faults(&points[1]) > 0);
        assert!(degradation_sweep(
            &net, &runner, &frames, &labels, &profile, &mild_model(), &[], &mc
        )
        .is_err());
    }

    #[test]
    fn zero_trials_rejected() {
        let (net, profile, frames, labels) = setup();
        let runner = DynamicInference::new(ExitPolicy::entropy(0.3).unwrap(), 4).unwrap();
        let mc = MonteCarloConfig { trials: 0, seed: 1 };
        assert!(MonteCarloRobustness::run(
            &net, &runner, &frames, &labels, &profile, &FaultModel::none(), &mc
        )
        .is_err());
        assert!(MonteCarloStatic::run(
            &net, &frames, &labels, 4, &profile, &FaultModel::none(), &mc
        )
        .is_err());
    }
}
