//! The deterministic fault-injection plane: seeded schedules of worker
//! crashes, stalls, slowdowns and transient step errors, driven through the
//! cluster's virtual-time pump so every chaos run is bitwise reproducible.
//!
//! A [`FaultSchedule`] is data, not behavior: a sorted list of
//! `(time, worker, kind)` events the cluster applies when its virtual time
//! reaches them. Schedules come from [`FaultSchedule::generate`] (seeded
//! Poisson arrivals per fault kind per worker, scalable by intensity via
//! [`FaultSpec::scaled`]) or are hand-built with
//! [`FaultSchedule::from_events`] for targeted tests.

use crate::{Result, ServeError};
use dtsnn_tensor::TensorRng;

/// One kind of injected worker fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The worker process dies: its in-flight and queued rows are lost and
    /// must be re-dispatched. The supervisor respawns a fresh worker (empty
    /// state, same network) after `restart_after_nanos`.
    Crash {
        /// Delay before the respawned worker accepts work again.
        restart_after_nanos: u64,
    },
    /// The worker hangs — it makes no progress for the duration, then
    /// resumes exactly where it was. Detected by the supervisor's stall
    /// check; in-flight rows are hedged, not lost.
    Stall {
        /// How long the worker is frozen.
        duration_nanos: u64,
    },
    /// The worker's service cost is multiplied by `factor` for the
    /// duration (a degraded device, thermal throttling).
    Slowdown {
        /// Multiplier on [`crate::ServiceModel::step_cost`]; must be ≥ 1.
        factor: f64,
        /// How long the slowdown lasts.
        duration_nanos: u64,
    },
    /// The next `count` steps on the worker fail with
    /// [`ServeError::Fault`] without touching row state (a transient
    /// device error); the cluster retries after backoff.
    TransientErrors {
        /// Number of consecutive failing steps.
        count: u32,
    },
}

impl FaultKind {
    /// Deterministic ordering rank for same-time, same-worker events.
    fn rank(&self) -> u8 {
        match self {
            FaultKind::Crash { .. } => 0,
            FaultKind::Stall { .. } => 1,
            FaultKind::Slowdown { .. } => 2,
            FaultKind::TransientErrors { .. } => 3,
        }
    }

    fn validate(&self) -> Result<()> {
        match *self {
            FaultKind::Stall { duration_nanos } if duration_nanos == 0 => {
                Err(ServeError::InvalidConfig("stall duration must be nonzero".into()))
            }
            FaultKind::Slowdown { factor, duration_nanos } => {
                if !(factor.is_finite() && factor >= 1.0) {
                    return Err(ServeError::InvalidConfig(format!(
                        "slowdown factor must be finite and >= 1, got {factor}"
                    )));
                }
                if duration_nanos == 0 {
                    return Err(ServeError::InvalidConfig(
                        "slowdown duration must be nonzero".into(),
                    ));
                }
                Ok(())
            }
            FaultKind::TransientErrors { count } if count == 0 => {
                Err(ServeError::InvalidConfig("transient error count must be nonzero".into()))
            }
            _ => Ok(()),
        }
    }
}

/// One scheduled fault: a kind striking a worker at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual time (cluster nanoseconds) the fault strikes.
    pub at_nanos: u64,
    /// Index of the worker it strikes.
    pub worker: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, sorted by
/// `(time, worker, kind)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

/// Mean fault rates for [`FaultSchedule::generate`], each in events per
/// simulated second *per worker* (0 disables that kind).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Crash rate per worker-second.
    pub crash_per_sec: f64,
    /// Crash restart delay in nanoseconds.
    pub restart_after_nanos: u64,
    /// Stall rate per worker-second.
    pub stall_per_sec: f64,
    /// Mean stall duration in nanoseconds (drawn exponentially, floored
    /// at 1).
    pub mean_stall_nanos: u64,
    /// Slowdown rate per worker-second.
    pub slowdown_per_sec: f64,
    /// Slowdown multiplier (≥ 1).
    pub slowdown_factor: f64,
    /// Mean slowdown duration in nanoseconds.
    pub mean_slowdown_nanos: u64,
    /// Transient-error burst rate per worker-second.
    pub transient_per_sec: f64,
    /// Failing steps per transient burst.
    pub transient_count: u32,
}

impl FaultSpec {
    /// A spec with every rate zeroed (generates the empty schedule).
    pub fn none() -> Self {
        FaultSpec {
            crash_per_sec: 0.0,
            restart_after_nanos: 0,
            stall_per_sec: 0.0,
            mean_stall_nanos: 0,
            slowdown_per_sec: 0.0,
            slowdown_factor: 1.0,
            mean_slowdown_nanos: 0,
            transient_per_sec: 0.0,
            transient_count: 0,
        }
    }

    /// Scales every rate by `intensity` (durations, delays and counts are
    /// unchanged) — the chaos bench's fault-intensity axis. Zero yields
    /// the empty schedule.
    #[must_use]
    pub fn scaled(&self, intensity: f64) -> Self {
        FaultSpec {
            crash_per_sec: self.crash_per_sec * intensity,
            stall_per_sec: self.stall_per_sec * intensity,
            slowdown_per_sec: self.slowdown_per_sec * intensity,
            transient_per_sec: self.transient_per_sec * intensity,
            ..*self
        }
    }
}

/// Exponential draw with the given mean, in f64 nanoseconds.
fn exponential(rng: &mut TensorRng, mean: f64) -> f64 {
    let u = 1.0 - f64::from(rng.uniform(0.0, 1.0));
    -u.ln() * mean
}

impl FaultSchedule {
    /// The empty schedule (a healthy cluster).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit events; they are sorted into the
    /// canonical `(time, worker, kind)` order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero durations/counts or a
    /// non-finite / sub-1 slowdown factor.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Result<Self> {
        for e in &events {
            e.kind.validate()?;
        }
        events.sort_by_key(|e| (e.at_nanos, e.worker, e.kind.rank()));
        Ok(FaultSchedule { events })
    }

    /// Generates a seeded schedule: per worker and per fault kind, events
    /// arrive as a Poisson process at the spec's rate over `[0, horizon)`.
    /// Deterministic in `(spec, workers, horizon, rng state)`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for negative or non-finite
    /// rates, or spec fields that produce invalid events (zero mean
    /// durations at a nonzero rate, factor < 1).
    pub fn generate(
        spec: &FaultSpec,
        workers: usize,
        horizon_nanos: u64,
        rng: &mut TensorRng,
    ) -> Result<Self> {
        for (name, rate) in [
            ("crash", spec.crash_per_sec),
            ("stall", spec.stall_per_sec),
            ("slowdown", spec.slowdown_per_sec),
            ("transient", spec.transient_per_sec),
        ] {
            if !(rate >= 0.0 && rate.is_finite()) {
                return Err(ServeError::InvalidConfig(format!(
                    "{name} rate must be non-negative and finite, got {rate}"
                )));
            }
        }
        let mut events = Vec::new();
        let horizon = horizon_nanos as f64;
        for worker in 0..workers {
            // one independent arrival stream per (worker, kind); draw order
            // is fixed so the schedule is a pure function of the rng state
            let arrivals = |rate: f64, events: &mut Vec<FaultEvent>,
                                mk: &mut dyn FnMut(&mut TensorRng) -> FaultKind,
                                rng: &mut TensorRng| {
                if rate <= 0.0 {
                    return;
                }
                let mean_gap = 1e9 / rate;
                let mut t = exponential(rng, mean_gap);
                while t < horizon {
                    events.push(FaultEvent { at_nanos: t as u64, worker, kind: mk(rng) });
                    t += exponential(rng, mean_gap);
                }
            };
            arrivals(
                spec.crash_per_sec,
                &mut events,
                &mut |_| FaultKind::Crash { restart_after_nanos: spec.restart_after_nanos },
                rng,
            );
            let mean_stall = spec.mean_stall_nanos as f64;
            arrivals(
                spec.stall_per_sec,
                &mut events,
                &mut |rng| FaultKind::Stall {
                    duration_nanos: (exponential(rng, mean_stall) as u64).max(1),
                },
                rng,
            );
            let mean_slow = spec.mean_slowdown_nanos as f64;
            arrivals(
                spec.slowdown_per_sec,
                &mut events,
                &mut |rng| FaultKind::Slowdown {
                    factor: spec.slowdown_factor,
                    duration_nanos: (exponential(rng, mean_slow) as u64).max(1),
                },
                rng,
            );
            arrivals(
                spec.transient_per_sec,
                &mut events,
                &mut |_| FaultKind::TransientErrors { count: spec.transient_count.max(1) },
                rng,
            );
        }
        FaultSchedule::from_events(events)
    }

    /// The events in canonical order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            crash_per_sec: 20.0,
            restart_after_nanos: 3_000_000,
            stall_per_sec: 30.0,
            mean_stall_nanos: 2_000_000,
            slowdown_per_sec: 10.0,
            slowdown_factor: 4.0,
            mean_slowdown_nanos: 5_000_000,
            transient_per_sec: 40.0,
            transient_count: 2,
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a =
            FaultSchedule::generate(&spec(), 4, 1_000_000_000, &mut TensorRng::seed_from(0xFA))
                .unwrap();
        let b =
            FaultSchedule::generate(&spec(), 4, 1_000_000_000, &mut TensorRng::seed_from(0xFA))
                .unwrap();
        assert_eq!(a, b, "same seed must yield the same schedule");
        assert!(!a.is_empty(), "~100 events/worker-second over 1 s must produce events");
        let c =
            FaultSchedule::generate(&spec(), 4, 1_000_000_000, &mut TensorRng::seed_from(0xFB))
                .unwrap();
        assert_ne!(a, c, "a different seed must move the schedule");
    }

    #[test]
    fn events_are_sorted_and_within_horizon() {
        let s =
            FaultSchedule::generate(&spec(), 3, 500_000_000, &mut TensorRng::seed_from(7))
                .unwrap();
        assert!(s.events().windows(2).all(|w| {
            (w[0].at_nanos, w[0].worker, w[0].kind.rank())
                <= (w[1].at_nanos, w[1].worker, w[1].kind.rank())
        }));
        assert!(s.events().iter().all(|e| e.at_nanos < 500_000_000 && e.worker < 3));
    }

    #[test]
    fn intensity_scales_event_counts() {
        let mut rng = TensorRng::seed_from(21);
        let base = FaultSchedule::generate(&spec(), 4, 1_000_000_000, &mut rng).unwrap();
        let mut rng = TensorRng::seed_from(21);
        let double =
            FaultSchedule::generate(&spec().scaled(2.0), 4, 1_000_000_000, &mut rng).unwrap();
        let ratio = double.len() as f64 / base.len() as f64;
        assert!(
            (1.5..2.5).contains(&ratio),
            "doubling intensity should ~double events: {} -> {}",
            base.len(),
            double.len()
        );
        let none =
            FaultSchedule::generate(&spec().scaled(0.0), 4, 1_000_000_000, &mut rng).unwrap();
        assert!(none.is_empty(), "zero intensity must disable every fault");
    }

    #[test]
    fn invalid_events_are_refused() {
        let at = |kind| vec![FaultEvent { at_nanos: 0, worker: 0, kind }];
        assert!(FaultSchedule::from_events(at(FaultKind::Stall { duration_nanos: 0 })).is_err());
        assert!(FaultSchedule::from_events(at(FaultKind::Slowdown {
            factor: 0.5,
            duration_nanos: 10
        }))
        .is_err());
        assert!(FaultSchedule::from_events(at(FaultKind::Slowdown {
            factor: f64::NAN,
            duration_nanos: 10
        }))
        .is_err());
        assert!(FaultSchedule::from_events(at(FaultKind::TransientErrors { count: 0 })).is_err());
        assert!(FaultSchedule::from_events(at(FaultKind::Crash { restart_after_nanos: 0 }))
            .is_ok());
    }

    #[test]
    fn from_events_sorts_into_canonical_order() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent { at_nanos: 50, worker: 1, kind: FaultKind::TransientErrors { count: 1 } },
            FaultEvent { at_nanos: 50, worker: 1, kind: FaultKind::Crash { restart_after_nanos: 9 } },
            FaultEvent { at_nanos: 10, worker: 2, kind: FaultKind::Stall { duration_nanos: 5 } },
        ])
        .unwrap();
        assert_eq!(s.events()[0].at_nanos, 10);
        assert_eq!(s.events()[1].kind.rank(), 0, "crash sorts before transient at equal time");
    }
}
