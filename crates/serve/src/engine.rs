//! The continuous-batching engine: an open inference window whose rows
//! retire on entropy exits and whose vacated slots admit queued requests
//! mid-window.

use crate::clock::Clock;
use crate::controller::ThetaController;
use crate::{Result, ServeError};
use dtsnn_core::ExitPolicy;
use dtsnn_snn::{Mode, Snn};
use dtsnn_tensor::{softmax_rows, Tensor};
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::Duration;

/// One inference request: a static frame or one frame per timestep, plus an
/// optional latency budget.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen identifier echoed in the [`RequestOutcome`].
    pub id: u64,
    /// Either one `[c, h, w]` frame (static input, direct encoding) or
    /// exactly `max_timesteps` frames (event data). A leading batch axis of
    /// one is also accepted.
    pub frames: Vec<Tensor>,
    /// Latency budget in nanoseconds from arrival; `None` uses the server's
    /// default (which may itself be "no deadline").
    pub deadline_nanos: Option<u64>,
    /// Scheduling priority (higher is more important). A single [`Server`]
    /// serves FIFO regardless of priority; the cluster's brownout ladder
    /// sheds the lowest-priority queued requests first under overload.
    pub priority: u8,
}

/// How a request left the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// Exited (early or at the full window) within its deadline.
    Completed,
    /// Terminated past its deadline — while queued (no prediction) or
    /// mid-window (best-effort prediction from the logits folded so far).
    TimedOut,
    /// Refused at submission: the pending queue was at capacity — or, at
    /// the cluster level, shed by the brownout ladder while queued.
    Rejected,
    /// Gave up after exhausting the retry budget across worker failures
    /// (cluster-level only; a single server never reports this).
    Failed,
}

/// Everything the server reports about one request. Every submitted request
/// produces exactly one outcome — completed, timed out or rejected, never
/// silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The caller's request id.
    pub id: u64,
    /// How the request terminated.
    pub status: CompletionStatus,
    /// Predicted class; `None` when the request never ran a timestep.
    pub prediction: Option<usize>,
    /// Timesteps actually executed (0 when never admitted).
    pub timesteps_used: usize,
    /// Whether the exit policy fired before the full window.
    pub exited_early: bool,
    /// Policy confidence score at each executed timestep.
    pub scores: Vec<f32>,
    /// Logits accumulated (summed, not averaged) over the executed
    /// timesteps — bitwise comparable to
    /// [`dtsnn_core::TimestepTrace::accumulated_logits`].
    pub accumulated_logits: Vec<f32>,
    /// Arrival time on the server clock.
    pub arrival_nanos: u64,
    /// Termination time on the server clock.
    pub finish_nanos: u64,
    /// Absolute deadline on the server clock, if the request had one — the
    /// censoring point for deadline-censored latency statistics.
    pub deadline_nanos: Option<u64>,
}

impl RequestOutcome {
    /// Queueing + service latency on the server clock.
    pub fn latency_nanos(&self) -> u64 {
        self.finish_nanos.saturating_sub(self.arrival_nanos)
    }
}

/// Virtual service-time model: what one engine step costs on the simulated
/// clock. Under a [`crate::RealClock`] the model is ignored (real work takes
/// real time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Fixed per-step cost (dispatch, kernel launch) in nanoseconds.
    pub step_fixed_nanos: u64,
    /// Additional cost per in-flight batch row in nanoseconds.
    pub step_per_row_nanos: u64,
}

impl ServiceModel {
    /// Cost of one timestep at the given batch width.
    pub fn step_cost(&self, width: usize) -> u64 {
        self.step_fixed_nanos + self.step_per_row_nanos * width as u64
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Inference window `T` (every request exits by this timestep).
    pub max_timesteps: usize,
    /// Maximum concurrent in-flight rows (the batch width ceiling).
    pub slots: usize,
    /// Pending-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// The dynamic-θ controller ([`ThetaController::fixed`] for a fixed θ).
    pub theta: ThetaController,
    /// Simulated service cost per engine step.
    pub service: ServiceModel,
    /// Default latency budget for requests that do not carry one.
    pub default_deadline_nanos: Option<u64>,
    /// Record a [`StepRecord`] per engine step (scheduling decisions for
    /// the determinism harness).
    pub record_schedule: bool,
}

/// One engine step's scheduling decisions, recorded when
/// [`ServerConfig::record_schedule`] is set. The determinism suite compares
/// these across runs and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Clock reading when the step started (before service time).
    pub start_nanos: u64,
    /// θ chosen by the controller for this step.
    pub theta: f32,
    /// Request ids of the batch rows forwarded this step, in row order.
    pub rows: Vec<u64>,
    /// Ids admitted into the window at the start of this step.
    pub admitted: Vec<u64>,
    /// Ids retired (completed or timed out) at the end of this step.
    pub retired: Vec<u64>,
}

/// Lifetime counters of one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests offered via `submit`.
    pub submitted: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests that completed within deadline.
    pub completed: u64,
    /// Requests that terminated past their deadline (queued or in-flight).
    pub timed_out: u64,
    /// Requests admitted into an inference window.
    pub admitted: u64,
    /// Admissions spliced into an *open* window (carried state padded via
    /// [`Snn::admit_batch_rows`]) rather than starting a fresh one.
    pub spliced_mid_window: u64,
    /// Engine steps executed (timesteps forwarded).
    pub steps: u64,
    /// Widest batch forwarded.
    pub peak_width: u64,
}

struct Pending {
    id: u64,
    frames: Vec<Tensor>,
    arrival: u64,
    deadline: Option<u64>,
}

struct InFlight {
    id: u64,
    frames: Vec<Tensor>,
    arrival: u64,
    deadline: Option<u64>,
    /// Timesteps this row has executed (its private counter — rows in one
    /// window generally sit at different `t`).
    t: usize,
    /// The Eq. 5 numerator: logits summed over this row's timesteps.
    acc: Vec<f32>,
    scores: Vec<f32>,
}

/// The continuous-batching inference server.
///
/// One engine step forwards every in-flight row a single timestep, folds
/// each row's logits into its private accumulator exactly like the
/// sequential runner (bitwise — see the crate docs), scores the exit
/// policy per row at that row's own `t`, retires exited/expired rows via
/// [`Snn::compact_batch`] and admits queued requests into the vacated
/// slots via [`Snn::admit_batch_rows`].
pub struct Server<C: Clock> {
    net: Snn,
    config: ServerConfig,
    clock: C,
    pending: VecDeque<Pending>,
    in_flight: Vec<InFlight>,
    outcomes: Vec<RequestOutcome>,
    schedule: Vec<StepRecord>,
    stats: ServerStats,
    /// Batch-1 frame dims fixed by the first accepted request.
    frame_dims: Option<Vec<usize>>,
    /// Service-cost multiplier (the chaos plane's slowdown lever); 1.0 when
    /// healthy.
    service_multiplier: f64,
    /// Brownout cap on timesteps: rows retire at `min(cap, max_timesteps)`.
    timestep_cap: Option<usize>,
    /// Extra queue depth the θ controller sees (cluster-wide pressure fed
    /// into a worker whose local queue is intentionally kept shallow).
    pressure_hint: usize,
    /// Outstanding injected transient step errors (the chaos plane).
    injected_faults: u32,
}

impl<C: Clock> Server<C> {
    /// Builds a server around a network, a configuration and a clock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero window, zero slots
    /// or zero queue capacity.
    pub fn new(net: Snn, config: ServerConfig, clock: C) -> Result<Self> {
        if config.max_timesteps == 0 {
            return Err(ServeError::InvalidConfig("max_timesteps must be nonzero".into()));
        }
        if config.slots == 0 {
            return Err(ServeError::InvalidConfig("slots must be nonzero".into()));
        }
        if config.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig("queue_capacity must be nonzero".into()));
        }
        Ok(Server {
            net,
            config,
            clock,
            pending: VecDeque::new(),
            in_flight: Vec::new(),
            outcomes: Vec::new(),
            schedule: Vec::new(),
            stats: ServerStats::default(),
            frame_dims: None,
            service_multiplier: 1.0,
            timestep_cap: None,
            pressure_hint: 0,
            injected_faults: 0,
        })
    }

    /// Scales every subsequent step's service cost (the chaos plane's
    /// slowdown fault); 1.0 restores the healthy cost.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] unless the factor is finite
    /// and ≥ 1.
    pub fn set_service_multiplier(&mut self, factor: f64) -> Result<()> {
        if !(factor.is_finite() && factor >= 1.0) {
            return Err(ServeError::InvalidConfig(format!(
                "service multiplier must be finite and >= 1, got {factor}"
            )));
        }
        self.service_multiplier = factor;
        Ok(())
    }

    /// Caps the effective inference window at `min(cap, max_timesteps)` —
    /// the brownout ladder's degradation lever. Rows already past the cap
    /// retire on their next step. `None` restores the full window.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero cap.
    pub fn set_timestep_cap(&mut self, cap: Option<usize>) -> Result<()> {
        if cap == Some(0) {
            return Err(ServeError::InvalidConfig("timestep cap must be nonzero".into()));
        }
        self.timestep_cap = cap;
        Ok(())
    }

    /// Extra queue depth added to the local pending depth when the θ
    /// controller is consulted — how a cluster feeds cluster-wide pressure
    /// into a worker whose own queue is kept shallow by design.
    pub fn set_pressure_hint(&mut self, depth: usize) {
        self.pressure_hint = depth;
    }

    /// Arms `count` injected transient step errors (the chaos plane): each
    /// subsequent [`Server::step`] with work to do burns its dispatch cost
    /// and returns [`ServeError::Fault`] without touching any row state,
    /// until the counter drains.
    pub fn inject_transient_errors(&mut self, count: u32) {
        self.injected_faults = self.injected_faults.saturating_add(count);
    }

    /// Removes a queued (not yet admitted) request *without* recording an
    /// outcome; returns whether it was found. Cluster-level cancellation of
    /// a redundant copy — the canceling layer owns the request's single
    /// outcome.
    pub fn cancel_queued(&mut self, id: u64) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.id != id);
        self.pending.len() < before
    }

    /// The server's clock (clone a [`crate::SimClock`] handle before
    /// construction to steer virtual time from outside).
    pub fn clock(&self) -> &C {
        &self.clock
    }

    /// Current clock reading.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Queued (not yet admitted) requests.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// In-flight batch rows.
    pub fn width(&self) -> usize {
        self.in_flight.len()
    }

    /// θ the controller would use for the next step at the current queue
    /// depth (including any cluster pressure hint).
    pub fn current_theta(&self) -> f32 {
        self.config.theta.theta_for(self.pending.len().saturating_add(self.pressure_hint))
    }

    /// Service cost of one step at the given width under the current
    /// slowdown multiplier. A multiplier of exactly 1.0 is bitwise-neutral
    /// (every step cost in range is exactly representable in f64).
    fn scaled_cost(&self, width: usize) -> u64 {
        let base = self.config.service.step_cost(width);
        if self.service_multiplier == 1.0 {
            return base;
        }
        (base as f64 * self.service_multiplier).ceil() as u64
    }

    /// Drains the finished-request outcomes accumulated so far, in
    /// termination order.
    pub fn take_outcomes(&mut self) -> Vec<RequestOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Drains the per-step scheduling records (empty unless
    /// [`ServerConfig::record_schedule`] is set).
    pub fn take_schedule(&mut self) -> Vec<StepRecord> {
        std::mem::take(&mut self.schedule)
    }

    /// Offers a request; it is stamped with the current clock reading.
    ///
    /// Returns `true` if queued, `false` if refused by admission control
    /// (the refusal is recorded as a [`CompletionStatus::Rejected`]
    /// outcome).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for malformed frames: empty, a
    /// count other than 1 or `max_timesteps`, a shape disagreeing with the
    /// first accepted request, or a batch axis wider than one.
    pub fn submit(&mut self, request: Request) -> Result<bool> {
        let arrival = self.clock.now();
        self.stats.submitted += 1;
        let frames =
            normalize_request_frames(&request, self.config.max_timesteps, &mut self.frame_dims)?;
        let deadline = request
            .deadline_nanos
            .or(self.config.default_deadline_nanos)
            .map(|budget| arrival.saturating_add(budget));
        if self.pending.len() >= self.config.queue_capacity {
            self.stats.rejected += 1;
            self.outcomes.push(RequestOutcome {
                id: request.id,
                status: CompletionStatus::Rejected,
                prediction: None,
                timesteps_used: 0,
                exited_early: false,
                scores: Vec::new(),
                accumulated_logits: Vec::new(),
                arrival_nanos: arrival,
                finish_nanos: arrival,
                deadline_nanos: deadline,
            });
            return Ok(false);
        }
        self.pending.push_back(Pending { id: request.id, frames, arrival, deadline });
        Ok(true)
    }

    /// Runs one engine step: expire queued requests past their deadline,
    /// admit queued requests into free slots (splicing into the open window
    /// when one is running), forward every in-flight row one timestep,
    /// account the service cost on the clock, fold and score each row, and
    /// retire exited or expired rows.
    ///
    /// Returns `false` — without touching the clock — when there is
    /// nothing to do (no in-flight rows and nothing admissible).
    ///
    /// # Errors
    ///
    /// Propagates network/tensor failures.
    pub fn step(&mut self) -> Result<bool> {
        if self.injected_faults > 0 {
            if self.in_flight.is_empty() && self.pending.is_empty() {
                // an idle step is a no-op even on a faulty worker
                return Ok(false);
            }
            // burn the dispatch cost, touch no row state, surface the fault
            self.injected_faults -= 1;
            self.clock.advance(self.scaled_cost(0));
            return Err(ServeError::Fault("injected transient step error".into()));
        }
        let start = self.clock.now();
        self.expire_pending(start);

        // admission: fill free slots FIFO; an open window gets padded rows
        let mut admitted: Vec<u64> = Vec::new();
        let carried = !self.in_flight.is_empty();
        while self.in_flight.len() < self.config.slots {
            let Some(p) = self.pending.pop_front() else { break };
            admitted.push(p.id);
            self.in_flight.push(InFlight {
                id: p.id,
                frames: p.frames,
                arrival: p.arrival,
                deadline: p.deadline,
                t: 0,
                acc: Vec::new(),
                scores: Vec::new(),
            });
        }
        if !admitted.is_empty() {
            if carried {
                // splice into the open window: pad every layer's carried
                // batch state with fresh zero rows (bitwise-neutral — see
                // the crate docs)
                self.net.admit_batch_rows(admitted.len())?;
                self.stats.spliced_mid_window += admitted.len() as u64;
            } else {
                // fresh window
                self.net.reset_state();
            }
            self.stats.admitted += admitted.len() as u64;
        }
        if self.in_flight.is_empty() {
            return Ok(false);
        }

        // θ for this step comes from the controller at the *post-admission*
        // queue depth (plus any cluster-wide pressure hint), and applies
        // uniformly to every row scored this step
        let theta = self.config.theta.theta_for(self.pending.len().saturating_add(self.pressure_hint));
        let policy = ExitPolicy::entropy(theta).map_err(ServeError::from)?;
        let width = self.in_flight.len();
        self.stats.peak_width = self.stats.peak_width.max(width as u64);

        // forward one timestep: row r's frame at its own (0-based) t
        let views: Vec<&Tensor> = self
            .in_flight
            .iter()
            .map(|r| if r.frames.len() == 1 { &r.frames[0] } else { &r.frames[r.t] })
            .collect();
        let input = Tensor::concat_axis0(&views)?;
        let logits = self.net.forward_timestep(&input, Mode::Eval)?;
        self.clock.advance(self.scaled_cost(width));
        let now = self.clock.now();
        self.stats.steps += 1;

        // per-row fold and exit decision — the sequential runner's
        // `axpy(1.0, ·)` / `scale(1/t)` / softmax / score chain, bitwise
        let classes = logits.dims()[1];
        let t_max = self.config.max_timesteps;
        // the brownout cap shortens the effective window; `>=` (not `==`)
        // retires rows already past a cap lowered mid-flight
        let t_eff = self.timestep_cap.map_or(t_max, |cap| cap.min(t_max));
        let mut keep: Vec<usize> = Vec::with_capacity(width);
        let mut retired: Vec<u64> = Vec::new();
        for row in 0..width {
            let r = &mut self.in_flight[row];
            r.t += 1;
            let l_row = &logits.data()[row * classes..(row + 1) * classes];
            if r.acc.is_empty() {
                r.acc.extend_from_slice(l_row);
            } else {
                for (a, &l) in r.acc.iter_mut().zip(l_row) {
                    *a += l;
                }
            }
            let inv_t = 1.0 / r.t as f32;
            let f_t = Tensor::from_vec(r.acc.iter().map(|&a| a * inv_t).collect(), &[1, classes])?;
            let probs = softmax_rows(&f_t)?;
            r.scores.push(policy.score(probs.data()));
            let policy_fired = policy.should_exit(probs.data());
            let exit = policy_fired || r.t >= t_eff;
            let late = r.deadline.is_some_and(|d| now > d);
            if exit || late {
                // exit (early or full window) or deadline blown mid-window;
                // either way the row leaves with a prediction from the
                // logits folded so far
                let prediction = Some(probs.row(0)?.argmax()?);
                let r = &self.in_flight[row];
                retired.push(r.id);
                let status =
                    if late { CompletionStatus::TimedOut } else { CompletionStatus::Completed };
                match status {
                    CompletionStatus::TimedOut => self.stats.timed_out += 1,
                    _ => self.stats.completed += 1,
                }
                self.outcomes.push(RequestOutcome {
                    id: r.id,
                    status,
                    prediction,
                    timesteps_used: r.t,
                    exited_early: policy_fired && r.t < t_max,
                    scores: r.scores.clone(),
                    accumulated_logits: r.acc.clone(),
                    arrival_nanos: r.arrival,
                    finish_nanos: now,
                    deadline_nanos: r.deadline,
                });
            } else {
                keep.push(row);
            }
        }
        self.net.recycle(logits);

        // retire: physically gather the survivors' carried layer state
        if keep.len() < width {
            if keep.is_empty() {
                self.net.reset_state();
                self.in_flight.clear();
            } else {
                self.net.compact_batch(&keep)?;
                let mut idx = 0usize;
                let keep_ref = &keep;
                self.in_flight.retain(|_| {
                    let k = keep_ref.binary_search(&idx).is_ok();
                    idx += 1;
                    k
                });
            }
        }

        if self.config.record_schedule {
            // reconstruct the forwarded row order: kept and retired ids
            // interleave according to the keep list
            let mut rows = Vec::with_capacity(width);
            let mut kept = self.in_flight.iter().map(|r| r.id);
            let mut gone = retired.iter().copied();
            let mut keep_it = keep.iter().copied().peekable();
            for row in 0..width {
                let id = if keep_it.peek() == Some(&row) {
                    keep_it.next();
                    kept.next()
                } else {
                    gone.next()
                };
                let Some(id) = id else {
                    return Err(ServeError::Internal(format!(
                        "step record reconstruction: row {row} of {width} has no kept or \
                         retired id (kept {} retired {})",
                        self.in_flight.len(),
                        retired.len()
                    )));
                };
                rows.push(id);
            }
            self.schedule.push(StepRecord { start_nanos: start, theta, rows, admitted, retired });
        }
        Ok(true)
    }

    /// Expires queued requests whose deadline has passed; each is reported
    /// as timed out (never silently dropped).
    fn expire_pending(&mut self, now: u64) {
        let outcomes = &mut self.outcomes;
        let stats = &mut self.stats;
        self.pending.retain(|p| {
            let expired = p.deadline.is_some_and(|d| now > d);
            if expired {
                stats.timed_out += 1;
                outcomes.push(RequestOutcome {
                    id: p.id,
                    status: CompletionStatus::TimedOut,
                    prediction: None,
                    timesteps_used: 0,
                    exited_early: false,
                    scores: Vec::new(),
                    accumulated_logits: Vec::new(),
                    arrival_nanos: p.arrival,
                    finish_nanos: now,
                    deadline_nanos: p.deadline,
                });
            }
            !expired
        });
    }

    /// Steps until no in-flight or queued work remains.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::step`] failures.
    pub fn run_until_idle(&mut self) -> Result<()> {
        while self.step()? {}
        Ok(())
    }
}

/// Reshapes and validates a request's frames into a fixed batch-1 shape:
/// either one frame (static input) or exactly `max_timesteps` frames (event
/// data), each `[1, c, h, w]` after an optional batch axis is added.
///
/// `frame_dims` pins the shape across requests: `None` is set by the first
/// accepted request, and later requests must agree. Shared by [`Server`]
/// and the cluster router (which validates before sharding).
///
/// # Errors
///
/// Returns [`ServeError::BadRequest`] for empty frames, a frame count other
/// than 1 or `max_timesteps`, a batch axis wider than one, or dims that
/// disagree with `frame_dims`.
pub(crate) fn normalize_request_frames(
    request: &Request,
    max_timesteps: usize,
    frame_dims: &mut Option<Vec<usize>>,
) -> Result<Vec<Tensor>> {
    if request.frames.is_empty() {
        return Err(ServeError::BadRequest(format!("request {}: no frames", request.id)));
    }
    if request.frames.len() != 1 && request.frames.len() != max_timesteps {
        return Err(ServeError::BadRequest(format!(
            "request {}: expected 1 or {} frames, got {}",
            request.id,
            max_timesteps,
            request.frames.len()
        )));
    }
    let mut out = Vec::with_capacity(request.frames.len());
    for frame in &request.frames {
        let batched = if frame.dims().len() == 4 {
            frame.clone()
        } else {
            let mut dims = vec![1];
            dims.extend_from_slice(frame.dims());
            frame.reshape(&dims)?
        };
        if batched.dims()[0] != 1 {
            return Err(ServeError::BadRequest(format!(
                "request {}: frames must be batch-1, got dims {:?}",
                request.id,
                frame.dims()
            )));
        }
        match &frame_dims {
            Some(dims) if *dims != batched.dims() => {
                return Err(ServeError::BadRequest(format!(
                    "request {}: frame dims {:?} disagree with the server's {:?}",
                    request.id,
                    batched.dims(),
                    dims
                )));
            }
            Some(_) => {}
            None => *frame_dims = Some(batched.dims().to_vec()),
        }
        out.push(batched);
    }
    Ok(out)
}

/// A request paired with its arrival time on the server clock.
#[derive(Debug, Clone)]
pub struct TracedRequest {
    /// Arrival time in clock nanoseconds.
    pub at_nanos: u64,
    /// The request itself.
    pub request: Request,
}

/// Replays a seeded arrival trace through a server deterministically: the
/// engine steps until virtual time reaches each arrival (jumping over idle
/// gaps), submits it, and finally drains the window. With a
/// [`crate::SimClock`] every scheduling decision is a pure function of the
/// trace.
///
/// # Errors
///
/// Returns [`ServeError::BadRequest`] if the trace is not sorted by
/// `at_nanos`; propagates engine failures.
pub fn replay_trace<C: Clock>(server: &mut Server<C>, trace: &[TracedRequest]) -> Result<()> {
    if trace.windows(2).any(|w| w[0].at_nanos > w[1].at_nanos) {
        return Err(ServeError::BadRequest("trace must be sorted by arrival time".into()));
    }
    for tr in trace {
        while server.now() < tr.at_nanos {
            if !server.step()? {
                // idle: jump straight to the next arrival
                server.clock.wait_until(tr.at_nanos);
            }
        }
        server.submit(tr.request.clone())?;
    }
    server.run_until_idle()
}

/// Serves live traffic from an MPSC queue on the current thread: drains the
/// channel into the server, steps while there is work, and parks on the
/// channel when idle. Returns once the channel has disconnected and all
/// accepted work has terminated.
///
/// This is the real-clock reactor — producers hold the `Sender` side and
/// submit from any thread; inference itself still parallelizes inside
/// `forward_timestep` via `dtsnn_tensor::parallel` (`DTSNN_THREADS`).
///
/// # Errors
///
/// Propagates engine failures.
pub fn run_channel<C: Clock>(server: &mut Server<C>, requests: &Receiver<Request>) -> Result<()> {
    let mut disconnected = false;
    loop {
        // drain everything already queued on the channel
        loop {
            match requests.try_recv() {
                Ok(r) => {
                    server.submit(r)?;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if server.step()? {
            continue;
        }
        // idle: either wait for traffic or finish
        if disconnected {
            return Ok(());
        }
        match requests.recv_timeout(Duration::from_millis(1)) {
            Ok(r) => {
                server.submit(r)?;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => disconnected = true,
        }
    }
}
