//! The clock seam: the engine schedules against this trait, never against
//! `Instant` directly, so the whole serving stack runs identically under a
//! simulated clock (deterministic tests, trace replay) and a real one
//! (live traffic).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock the serving engine schedules against.
///
/// The engine's only time operations are these three, which is what makes
/// virtual-time testing exact: under [`SimClock`] the *engine itself*
/// advances time by its modeled service cost, so every scheduling decision
/// is a pure function of the request trace and the seed.
pub trait Clock: Send {
    /// Nanoseconds since this clock's origin.
    fn now(&self) -> u64;

    /// Accounts `nanos` of service time. A simulated clock jumps forward;
    /// a real clock ignores the call (real work already took real time).
    fn advance(&self, nanos: u64);

    /// Blocks (real) or jumps (simulated) until `deadline` — used when the
    /// server is idle and the next arrival is in the future.
    fn wait_until(&self, deadline: u64);
}

/// Virtual time: an atomic counter the engine advances explicitly.
///
/// Cloning shares the counter, so a test can hold a handle onto a clock it
/// moved into a [`crate::Server`] and observe/steer virtual time from
/// outside.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// A simulated clock starting at `t = 0`.
    pub fn new() -> Self {
        SimClock::default()
    }
}

impl Clock for SimClock {
    fn now(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    fn wait_until(&self, deadline: u64) {
        // monotone jump: never move backwards if the deadline already passed
        self.nanos.fetch_max(deadline, Ordering::SeqCst);
    }
}

/// Wall-clock time measured from construction.
#[derive(Debug, Clone)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A real clock whose origin is now.
    pub fn new() -> Self {
        RealClock { origin: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn advance(&self, _nanos: u64) {
        // real service work already consumed real time
    }

    fn wait_until(&self, deadline: u64) {
        let now = self.now();
        if deadline > now {
            std::thread::sleep(Duration::from_nanos(deadline - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_and_jumps_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0);
        c.advance(5);
        assert_eq!(c.now(), 5);
        c.wait_until(100);
        assert_eq!(c.now(), 100);
        c.wait_until(50); // past deadline: no move backwards
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn sim_clock_clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(7);
        assert_eq!(b.now(), 7);
    }

    #[test]
    fn real_clock_monotone_and_ignores_advance() {
        let c = RealClock::new();
        let t0 = c.now();
        c.advance(1_000_000_000_000); // no-op
        let t1 = c.now();
        assert!(t1 >= t0);
        assert!(t1 < 1_000_000_000, "advance must not move a real clock");
        c.wait_until(c.now() + 1_000_000); // 1 ms sleep
        assert!(c.now() >= t1 + 1_000_000);
    }
}
