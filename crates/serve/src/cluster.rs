//! Fault-tolerant sharded serving: a router dispatching requests across N
//! [`Server`] workers under a deterministic fault-injection plane, with
//! supervised recovery (requeue, retry budgets, exponential backoff),
//! deadline-aware hedging for stragglers, and a brownout ladder for
//! graceful degradation under queue pressure.
//!
//! # The virtual-time pump
//!
//! Each worker owns an independent clock; the cluster runs a discrete-event
//! pump that repeatedly executes the earliest pending action — a scheduled
//! fault, a slowdown expiry, a worker restart, a supervisor check (stall
//! detection, hedge timers) or a worker engine step. Ties break on a fixed
//! action ranking and then worker/request index, so under [`SimClock`]s an
//! entire chaos run — every dispatch, requeue, hedge and brownout
//! transition — is a pure function of `(trace, config, fault schedule)`
//! and invariant to `DTSNN_THREADS`.
//!
//! # Exactly-once completion accounting
//!
//! The cluster, not the workers, owns request terminality. Every submitted
//! request has one [`Tracked`] entry; re-dispatch after a crash and hedged
//! re-dispatch for stragglers may create *copies* on several workers, but
//! the first copy to retire wins: its outcome is recorded, the entry is
//! marked done, queued copies elsewhere are cancelled, and any later
//! retirement of a redundant copy is suppressed (counted in
//! [`ClusterStats::duplicates_suppressed`]). A request therefore terminates
//! exactly once — completed, expired, rejected/shed, or failed after
//! exhausting its retry budget — under any fault schedule; the chaos
//! property suite asserts it.
//!
//! # Brownout ladder
//!
//! Backlog depth engages degradation in rungs: cluster-wide queue pressure
//! is always fed into each worker's θ controller (the paper's knob —
//! tighten θ under load to shed timesteps), deeper backlogs additionally
//! cap the inference window ([`BrownoutConfig::timestep_cap`]), and past
//! [`BrownoutConfig::shed_depth`] the lowest-priority queued requests are
//! shed outright so high-priority traffic keeps its latency.

use crate::clock::{Clock, SimClock};
use crate::engine::{normalize_request_frames, Request, RequestOutcome, Server, ServerConfig};
use crate::engine::{CompletionStatus, StepRecord};
use crate::faults::{FaultKind, FaultSchedule};
use crate::{Result, ServeError};
use dtsnn_snn::Snn;
use dtsnn_tensor::Tensor;
use std::collections::{BTreeMap, VecDeque};

/// Graceful-degradation thresholds, all in backlog depth (queued requests
/// cluster-wide). Rungs engage in order as depth grows:
///
/// 1. `theta_pressure_depth` — the θ rung is *marked* engaged (pressure is
///    always fed to the workers' θ controllers; this threshold only labels
///    the level for events/stats).
/// 2. `cap_depth` — the inference window is capped at `timestep_cap`.
/// 3. `shed_depth` — queued requests with priority below
///    `shed_below_priority` are shed (newest, lowest-priority first) until
///    the backlog drops under the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Depth at which the ladder reports level 1 (θ pressure).
    pub theta_pressure_depth: usize,
    /// Depth at which the timestep cap engages (level 2).
    pub cap_depth: usize,
    /// Window cap applied at level 2 (must be nonzero).
    pub timestep_cap: usize,
    /// Depth at which load shedding engages (level 3).
    pub shed_depth: usize,
    /// Only queued requests with priority strictly below this are shed.
    pub shed_below_priority: u8,
}

impl BrownoutConfig {
    /// A ladder that never engages (every threshold at `usize::MAX`).
    pub fn disabled() -> Self {
        BrownoutConfig {
            theta_pressure_depth: usize::MAX,
            cap_depth: usize::MAX,
            timestep_cap: usize::MAX,
            shed_depth: usize::MAX,
            shed_below_priority: 0,
        }
    }

    fn level_for(&self, depth: usize) -> u8 {
        if depth >= self.shed_depth {
            3
        } else if depth >= self.cap_depth {
            2
        } else if depth >= self.theta_pressure_depth {
            1
        } else {
            0
        }
    }
}

/// Cluster configuration: the per-worker engine config plus the router,
/// supervisor and degradation knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-worker engine configuration. The cluster overrides
    /// `queue_capacity` (workers are fed at most `slots` rows) and
    /// `default_deadline_nanos` (deadlines are applied at cluster
    /// admission and passed down as remaining budget).
    pub server: ServerConfig,
    /// Cluster backlog capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// How many times a request lost to worker failures is re-queued
    /// before it terminates as [`CompletionStatus::Failed`].
    pub retry_budget: u32,
    /// Base of the exponential backoff applied to requeues and faulting
    /// workers: attempt `k` waits `base · 2^(k−1)`.
    pub backoff_base_nanos: u64,
    /// A worker with in-flight rows and no progress for this long is
    /// suspected stalled: its rows are hedged onto other workers. `None`
    /// disables stall detection.
    pub stall_timeout_nanos: Option<u64>,
    /// A dispatched request still unresolved this long after dispatch is
    /// hedged (re-dispatched while the original keeps running; first
    /// terminal copy wins). Hedges past the request deadline are skipped.
    /// `None` disables hedging.
    pub hedge_after_nanos: Option<u64>,
    /// Consecutive transient step faults tolerated before the supervisor
    /// recycles the worker (fresh engine, rows requeued).
    pub max_consecutive_faults: u32,
    /// The graceful-degradation ladder.
    pub brownout: BrownoutConfig,
    /// Record [`ClusterEvent`]s (the determinism harness compares them
    /// across runs and thread counts).
    pub record_events: bool,
}

impl ClusterConfig {
    /// A config with supervision defaults scaled to the service model:
    /// retry budget 3, backoff base = 4 step costs, stall timeout and
    /// hedge delay = 20 step costs, 3 consecutive faults, brownout
    /// disabled.
    pub fn with_defaults(server: ServerConfig) -> Self {
        let step = server.service.step_cost(server.slots).max(1);
        ClusterConfig {
            queue_capacity: server.queue_capacity,
            server,
            retry_budget: 3,
            backoff_base_nanos: step * 4,
            stall_timeout_nanos: Some(step * 20),
            hedge_after_nanos: Some(step * 20),
            max_consecutive_faults: 3,
            brownout: BrownoutConfig::disabled(),
            record_events: false,
        }
    }
}

/// Lifetime counters of one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Requests offered via [`Cluster::submit`].
    pub submitted: u64,
    /// Requests refused by backlog admission control.
    pub rejected: u64,
    /// Requests shed by the brownout ladder while queued.
    pub shed: u64,
    /// Requests completed within deadline.
    pub completed: u64,
    /// Requests that terminated past their deadline.
    pub expired: u64,
    /// Requests that exhausted their retry budget across worker failures.
    pub failed: u64,
    /// Requeues after a lost worker copy.
    pub requeues: u64,
    /// Hedged re-dispatches (straggler timers and stall suspicion).
    pub hedges: u64,
    /// Redundant copy retirements suppressed by first-terminal-wins.
    pub duplicates_suppressed: u64,
    /// Queued redundant copies cancelled after their sibling terminated.
    pub cancellations: u64,
    /// Worker crashes applied (scheduled faults and fault-loop recycles).
    pub worker_crashes: u64,
    /// Worker respawns (post-crash restarts and recycles).
    pub worker_restarts: u64,
    /// Stall suspicions raised by the supervisor.
    pub stalls_detected: u64,
    /// Transient step faults absorbed.
    pub transient_faults: u64,
    /// Engine steps executed across all workers.
    pub steps: u64,
    /// Highest brownout level reached.
    pub max_brownout_level: u8,
}

/// One observable cluster decision, recorded when
/// [`ClusterConfig::record_events`] is set. The chaos determinism suite
/// compares full event streams across runs and `DTSNN_THREADS` settings.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterEvent {
    /// A worker executed an engine step (the worker's own
    /// [`StepRecord`], present when the engine records schedules).
    Step {
        /// Step start on the shared virtual timeline.
        at_nanos: u64,
        /// Worker index.
        worker: usize,
        /// The worker's scheduling record for the step.
        record: StepRecord,
    },
    /// A scheduled fault reached its time (`applied` is false when it
    /// struck an already-crashed worker).
    FaultApplied {
        /// Fault time.
        at_nanos: u64,
        /// Worker index.
        worker: usize,
        /// Whether the fault had any effect.
        applied: bool,
    },
    /// A request lost its worker and went back into the backlog.
    Requeued {
        /// Requeue time.
        at_nanos: u64,
        /// Request id.
        id: u64,
        /// Retry attempts consumed so far.
        retries: u32,
    },
    /// A straggling or stalled request was queued for redundant dispatch.
    Hedged {
        /// Hedge time.
        at_nanos: u64,
        /// Request id.
        id: u64,
    },
    /// The brownout ladder shed a queued request.
    Shed {
        /// Shed time.
        at_nanos: u64,
        /// Request id.
        id: u64,
    },
    /// The brownout level changed.
    BrownoutLevel {
        /// Transition time.
        at_nanos: u64,
        /// New level (0 = healthy … 3 = shedding).
        level: u8,
    },
    /// The supervisor suspected a stalled worker and hedged its rows.
    StallSuspected {
        /// Detection time.
        at_nanos: u64,
        /// Worker index.
        worker: usize,
    },
    /// A crashed worker respawned.
    WorkerRestarted {
        /// Restart time.
        at_nanos: u64,
        /// Worker index.
        worker: usize,
    },
    /// A fault-looping worker was recycled (fresh engine, rows requeued).
    WorkerRecycled {
        /// Recycle time.
        at_nanos: u64,
        /// Worker index.
        worker: usize,
    },
}

/// Cluster-side bookkeeping for one admitted request.
struct Tracked {
    frames: Vec<Tensor>,
    priority: u8,
    arrival: u64,
    deadline: Option<u64>,
    /// Workers currently holding a live copy (queued or in flight).
    copies: Vec<usize>,
    dispatched_at: u64,
    retries: u32,
    hedged: bool,
    /// Earliest time the backlog entry may be dispatched (retry backoff).
    eligible_at: u64,
    in_backlog: bool,
    /// Terminal: exactly one outcome has been recorded.
    done: bool,
}

struct WorkerSlot<C: Clock + Clone> {
    /// `None` while crashed (awaiting restart).
    server: Option<Server<C>>,
    /// The cluster's handle on the worker's clock (shared with the
    /// server; survives respawns).
    clock: C,
    /// Earliest next step (stall faults and transient-fault backoff).
    resume_at: u64,
    /// Active slowdown fault end, if any.
    slowdown_until: Option<u64>,
    /// Pending respawn time, if crashed.
    restart_at: Option<u64>,
    /// Last successful step end (stall detection reference).
    last_progress: u64,
    /// The supervisor already flagged the current stall.
    stall_flagged: bool,
    /// Consecutive transient step faults without a successful step.
    consecutive_faults: u32,
}

/// The earliest pending action classes, in tie-break order at equal time.
enum Action {
    Fault,
    Restore(usize),
    Restart(usize),
    StallCheck(usize),
    HedgeCheck(u64),
    Step(usize),
}

/// The shard router + supervisor over N [`Server`] workers.
///
/// See the module docs for the pump, exactly-once accounting and brownout
/// semantics. Construct with per-worker clocks ([`Cluster::new`]) or the
/// all-simulated convenience ([`Cluster::simulated`]); drive with
/// [`Cluster::run_trace`] / [`Cluster::run_until_idle`] or one action at a
/// time with [`Cluster::pump`].
pub struct Cluster<C: Clock + Clone> {
    net: Snn,
    config: ClusterConfig,
    worker_config: ServerConfig,
    workers: Vec<WorkerSlot<C>>,
    faults: FaultSchedule,
    next_fault: usize,
    tracked: BTreeMap<u64, Tracked>,
    backlog: VecDeque<u64>,
    outcomes: Vec<RequestOutcome>,
    events: Vec<ClusterEvent>,
    stats: ClusterStats,
    frame_dims: Option<Vec<usize>>,
    /// Monotone virtual-time cursor: the start time of the last executed
    /// action.
    time: u64,
    brownout_level: u8,
}

impl Cluster<SimClock> {
    /// A cluster of `workers` simulated-clock workers (the deterministic
    /// chaos configuration).
    ///
    /// # Errors
    ///
    /// See [`Cluster::new`].
    pub fn simulated(
        net: Snn,
        config: ClusterConfig,
        workers: usize,
        faults: FaultSchedule,
    ) -> Result<Self> {
        let clocks = (0..workers).map(|_| SimClock::new()).collect();
        Cluster::new(net, config, clocks, faults)
    }
}

impl<C: Clock + Clone> Cluster<C> {
    /// Builds a cluster with one worker per clock. Each worker runs a
    /// clone of `net` under the per-worker engine config (`queue_capacity`
    /// clamped to `slots`, deadlines owned by the cluster).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero workers, zero
    /// cluster queue capacity, a zero brownout timestep cap, a zero stall
    /// timeout, or an invalid engine config.
    pub fn new(
        net: Snn,
        config: ClusterConfig,
        clocks: Vec<C>,
        faults: FaultSchedule,
    ) -> Result<Self> {
        if clocks.is_empty() {
            return Err(ServeError::InvalidConfig("cluster needs at least one worker".into()));
        }
        if config.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig("cluster queue_capacity must be nonzero".into()));
        }
        if config.brownout.timestep_cap == 0 {
            return Err(ServeError::InvalidConfig("brownout timestep_cap must be nonzero".into()));
        }
        if config.stall_timeout_nanos == Some(0) {
            return Err(ServeError::InvalidConfig("stall timeout must be nonzero".into()));
        }
        let worker_config = ServerConfig {
            // workers are fed at most `slots` rows per step, and deadlines
            // arrive as remaining budget from the cluster
            queue_capacity: config.server.slots,
            default_deadline_nanos: None,
            ..config.server.clone()
        };
        let workers = clocks
            .into_iter()
            .map(|clock| {
                let server = Server::new(net.clone(), worker_config.clone(), clock.clone())?;
                Ok(WorkerSlot {
                    server: Some(server),
                    clock,
                    resume_at: 0,
                    slowdown_until: None,
                    restart_at: None,
                    last_progress: 0,
                    stall_flagged: false,
                    consecutive_faults: 0,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Cluster {
            net,
            config,
            worker_config,
            workers,
            faults,
            next_fault: 0,
            tracked: BTreeMap::new(),
            backlog: VecDeque::new(),
            outcomes: Vec::new(),
            events: Vec::new(),
            stats: ClusterStats::default(),
            frame_dims: None,
            time: 0,
            brownout_level: 0,
        })
    }

    /// Number of workers (alive or crashed).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Workers currently alive (not awaiting restart).
    pub fn alive_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.server.is_some()).count()
    }

    /// Queued requests cluster-wide.
    pub fn backlog_depth(&self) -> usize {
        self.backlog.len()
    }

    /// The virtual-time cursor: start time of the last executed action,
    /// advanced past it by worker service time.
    pub fn now(&self) -> u64 {
        self.workers.iter().map(|w| w.clock.now()).fold(self.time, u64::max)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Drains the finished-request outcomes, in termination order.
    pub fn take_outcomes(&mut self) -> Vec<RequestOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Drains the recorded cluster events (empty unless
    /// [`ClusterConfig::record_events`] is set).
    pub fn take_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.events)
    }

    fn event(&mut self, e: ClusterEvent) {
        if self.config.record_events {
            self.events.push(e);
        }
    }

    /// Offers a request to the cluster at the current cursor time.
    ///
    /// Returns `true` if queued, `false` if refused by backlog admission
    /// control (recorded as a [`CompletionStatus::Rejected`] outcome).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for malformed frames or a
    /// duplicate request id (exactly-once accounting needs unique ids).
    pub fn submit(&mut self, request: Request) -> Result<bool> {
        let arrival = self.time;
        self.stats.submitted += 1;
        if self.tracked.contains_key(&request.id) {
            return Err(ServeError::BadRequest(format!(
                "request id {} was already submitted; cluster ids must be unique",
                request.id
            )));
        }
        let frames = normalize_request_frames(
            &request,
            self.config.server.max_timesteps,
            &mut self.frame_dims,
        )?;
        let deadline = request
            .deadline_nanos
            .or(self.config.server.default_deadline_nanos)
            .map(|budget| arrival.saturating_add(budget));
        if self.backlog.len() >= self.config.queue_capacity {
            self.stats.rejected += 1;
            self.outcomes.push(RequestOutcome {
                id: request.id,
                status: CompletionStatus::Rejected,
                prediction: None,
                timesteps_used: 0,
                exited_early: false,
                scores: Vec::new(),
                accumulated_logits: Vec::new(),
                arrival_nanos: arrival,
                finish_nanos: arrival,
                deadline_nanos: deadline,
            });
            return Ok(false);
        }
        self.tracked.insert(
            request.id,
            Tracked {
                frames,
                priority: request.priority,
                arrival,
                deadline,
                copies: Vec::new(),
                dispatched_at: 0,
                retries: 0,
                hedged: false,
                eligible_at: arrival,
                in_backlog: true,
                done: false,
            },
        );
        self.backlog.push_back(request.id);
        Ok(true)
    }

    /// Earliest pending action, or `None` when the cluster is quiescent.
    /// Candidates are ordered by `(time, action class, index)` with the
    /// class ranking fault < slowdown-restore < restart < stall check <
    /// hedge check < step — a total order, so the pump is deterministic.
    fn next_action(&self) -> Option<(u64, Action)> {
        // (time, class, index) — strictly ordered keys
        let mut best: Option<(u64, u8, u64, Action)> = None;
        let mut offer = |t: u64, class: u8, idx: u64, a: Action| {
            let t = t.max(self.time);
            let better = match &best {
                None => true,
                Some((bt, bc, bi, _)) => (t, class, idx) < (*bt, *bc, *bi),
            };
            if better {
                best = Some((t, class, idx, a));
            }
        };
        if let Some(ev) = self.faults.events().get(self.next_fault) {
            offer(ev.at_nanos, 0, 0, Action::Fault);
        }
        for (i, w) in self.workers.iter().enumerate() {
            if let Some(t) = w.slowdown_until {
                offer(t, 1, i as u64, Action::Restore(i));
            }
            if let Some(t) = w.restart_at {
                offer(t, 2, i as u64, Action::Restart(i));
            }
            let Some(server) = &w.server else { continue };
            if let Some(timeout) = self.config.stall_timeout_nanos {
                if server.width() > 0 && !w.stall_flagged {
                    offer(w.last_progress.saturating_add(timeout), 3, i as u64, Action::StallCheck(i));
                }
            }
            // step candidate: work in hand steps at max(now, resume_at);
            // a worker with only backlog work also waits for eligibility
            let base = server.now().max(w.resume_at);
            if server.width() > 0 || server.queue_depth() > 0 {
                offer(base, 5, i as u64, Action::Step(i));
            } else if let Some(eligible) = self
                .backlog
                .iter()
                .filter(|id| !self.tracked[id].copies.contains(&i))
                .map(|id| self.tracked[id].eligible_at)
                .min()
            {
                offer(base.max(eligible), 5, i as u64, Action::Step(i));
            }
        }
        if let Some(hedge_after) = self.config.hedge_after_nanos {
            for (&id, tr) in &self.tracked {
                if tr.done || tr.hedged || tr.in_backlog || tr.copies.len() != 1 {
                    continue;
                }
                let t = tr.dispatched_at.saturating_add(hedge_after);
                if tr.deadline.is_some_and(|d| t > d) {
                    // hedging past the deadline cannot help
                    continue;
                }
                offer(t, 4, id, Action::HedgeCheck(id));
            }
        }
        best.map(|(t, _, _, a)| (t, a))
    }

    /// Executes the earliest pending action; returns `false` when the
    /// cluster is quiescent (no faults, timers or steppable work).
    ///
    /// # Errors
    ///
    /// Propagates engine failures (injected transient faults are absorbed
    /// internally, not propagated).
    pub fn pump(&mut self) -> Result<bool> {
        let Some((t, action)) = self.next_action() else { return Ok(false) };
        self.time = t;
        match action {
            Action::Fault => self.exec_fault(t)?,
            Action::Restore(w) => self.exec_restore(w)?,
            Action::Restart(w) => self.exec_restart(w, t)?,
            Action::StallCheck(w) => self.exec_stall_check(w, t),
            Action::HedgeCheck(id) => self.hedge(id, t),
            Action::Step(w) => self.exec_step(w, t)?,
        }
        Ok(true)
    }

    fn exec_fault(&mut self, t: u64) -> Result<()> {
        let ev = self.faults.events()[self.next_fault];
        self.next_fault += 1;
        if ev.worker >= self.workers.len() {
            return Err(ServeError::InvalidConfig(format!(
                "fault schedule names worker {} of {}",
                ev.worker,
                self.workers.len()
            )));
        }
        let alive = self.workers[ev.worker].server.is_some();
        let applied = alive;
        match ev.kind {
            FaultKind::Crash { restart_after_nanos } => {
                if alive {
                    self.crash_worker(ev.worker, t, Some(restart_after_nanos));
                }
            }
            FaultKind::Stall { duration_nanos } => {
                if alive {
                    let w = &mut self.workers[ev.worker];
                    w.resume_at = w.resume_at.max(t.saturating_add(duration_nanos));
                }
            }
            FaultKind::Slowdown { factor, duration_nanos } => {
                if let Some(server) = self.workers[ev.worker].server.as_mut() {
                    server.set_service_multiplier(factor)?;
                    let end = t.saturating_add(duration_nanos);
                    let w = &mut self.workers[ev.worker];
                    w.slowdown_until = Some(w.slowdown_until.map_or(end, |e| e.max(end)));
                }
            }
            FaultKind::TransientErrors { count } => {
                if let Some(server) = self.workers[ev.worker].server.as_mut() {
                    server.inject_transient_errors(count);
                }
            }
        }
        self.event(ClusterEvent::FaultApplied { at_nanos: t, worker: ev.worker, applied });
        Ok(())
    }

    /// Kills a worker: its engine (and every queued/in-flight copy on it)
    /// is lost; copies are requeued against their retry budgets. With a
    /// restart delay the supervisor respawns it later; `None` recycles it
    /// immediately (fresh engine, same clock).
    fn crash_worker(&mut self, wi: usize, t: u64, restart_after: Option<u64>) {
        self.workers[wi].server = None;
        self.workers[wi].slowdown_until = None;
        self.workers[wi].stall_flagged = false;
        self.workers[wi].consecutive_faults = 0;
        self.workers[wi].restart_at = restart_after.map(|d| t.saturating_add(d));
        self.stats.worker_crashes += 1;
        let lost: Vec<u64> = self
            .tracked
            .iter()
            .filter(|(_, tr)| !tr.done && tr.copies.contains(&wi))
            .map(|(&id, _)| id)
            .collect();
        for id in lost {
            let tr = self.tracked.get_mut(&id).expect("tracked id");
            tr.copies.retain(|&w| w != wi);
            self.lose_copy_and_requeue(id, t);
        }
    }

    fn exec_restore(&mut self, wi: usize) -> Result<()> {
        self.workers[wi].slowdown_until = None;
        if let Some(server) = self.workers[wi].server.as_mut() {
            server.set_service_multiplier(1.0)?;
        }
        Ok(())
    }

    fn exec_restart(&mut self, wi: usize, t: u64) -> Result<()> {
        let server =
            Server::new(self.net.clone(), self.worker_config.clone(), self.workers[wi].clock.clone())?;
        let w = &mut self.workers[wi];
        w.server = Some(server);
        w.restart_at = None;
        w.resume_at = t;
        w.last_progress = t;
        w.stall_flagged = false;
        w.consecutive_faults = 0;
        self.stats.worker_restarts += 1;
        self.event(ClusterEvent::WorkerRestarted { at_nanos: t, worker: wi });
        Ok(())
    }

    fn exec_stall_check(&mut self, wi: usize, t: u64) {
        self.workers[wi].stall_flagged = true;
        self.stats.stalls_detected += 1;
        self.event(ClusterEvent::StallSuspected { at_nanos: t, worker: wi });
        // hedge the suspect's rows so siblings can race it; the copies
        // stay — if the worker wakes up, first terminal still wins
        let suspects: Vec<u64> = self
            .tracked
            .iter()
            .filter(|(_, tr)| !tr.done && tr.copies.contains(&wi))
            .map(|(&id, _)| id)
            .collect();
        for id in suspects {
            self.hedge(id, t);
        }
    }

    /// Queues a redundant copy of a dispatched request (the original keeps
    /// running; exactly-once accounting suppresses the loser).
    fn hedge(&mut self, id: u64, t: u64) {
        let Some(tr) = self.tracked.get_mut(&id) else { return };
        if tr.done || tr.hedged || tr.in_backlog || tr.copies.is_empty() {
            return;
        }
        tr.hedged = true;
        tr.eligible_at = t;
        tr.in_backlog = true;
        self.backlog.push_back(id);
        self.stats.hedges += 1;
        self.event(ClusterEvent::Hedged { at_nanos: t, id });
    }

    /// Called after a request's copy vanished from a worker. Requeues it
    /// under backoff while budget remains; terminal
    /// [`CompletionStatus::Failed`] once exhausted.
    fn lose_copy_and_requeue(&mut self, id: u64, t: u64) {
        let tr = self.tracked.get_mut(&id).expect("tracked id");
        if tr.done || tr.in_backlog || !tr.copies.is_empty() {
            // terminal, already queued, or a sibling copy is still racing
            return;
        }
        if tr.retries < self.config.retry_budget {
            tr.retries += 1;
            let backoff = self
                .config
                .backoff_base_nanos
                .saturating_mul(1u64 << (tr.retries - 1).min(32));
            tr.eligible_at = t.saturating_add(backoff);
            tr.in_backlog = true;
            let retries = tr.retries;
            self.backlog.push_back(id);
            self.stats.requeues += 1;
            self.event(ClusterEvent::Requeued { at_nanos: t, id, retries });
        } else {
            tr.done = true;
            let (arrival, deadline) = (tr.arrival, tr.deadline);
            self.stats.failed += 1;
            self.outcomes.push(RequestOutcome {
                id,
                status: CompletionStatus::Failed,
                prediction: None,
                timesteps_used: 0,
                exited_early: false,
                scores: Vec::new(),
                accumulated_logits: Vec::new(),
                arrival_nanos: arrival,
                finish_nanos: t,
                deadline_nanos: deadline,
            });
        }
    }

    /// Expires queued requests past their deadline, in FIFO order (the
    /// same lazy discipline as [`Server`]'s queue). A hedged entry whose
    /// sibling copy is still running is silently dropped — the running
    /// copy owns the outcome.
    fn expire_backlog(&mut self, t: u64) {
        let mut i = 0;
        while i < self.backlog.len() {
            let id = self.backlog[i];
            let tr = self.tracked.get_mut(&id).expect("tracked id");
            if !tr.deadline.is_some_and(|d| t > d) {
                i += 1;
                continue;
            }
            self.backlog.remove(i);
            tr.in_backlog = false;
            if tr.copies.is_empty() && !tr.done {
                tr.done = true;
                let (arrival, deadline) = (tr.arrival, tr.deadline);
                self.stats.expired += 1;
                self.outcomes.push(RequestOutcome {
                    id,
                    status: CompletionStatus::TimedOut,
                    prediction: None,
                    timesteps_used: 0,
                    exited_early: false,
                    scores: Vec::new(),
                    accumulated_logits: Vec::new(),
                    arrival_nanos: arrival,
                    finish_nanos: t,
                    deadline_nanos: deadline,
                });
            }
        }
    }

    /// Level-3 brownout: shed queued-only requests below the priority
    /// line, lowest priority first and newest first within a priority,
    /// until the backlog drops under the shed threshold.
    fn shed_backlog(&mut self, t: u64) {
        while self.backlog.len() >= self.config.brownout.shed_depth {
            let mut victim: Option<(u8, usize)> = None;
            for (pos, id) in self.backlog.iter().enumerate() {
                let tr = &self.tracked[id];
                if !tr.copies.is_empty() || tr.priority >= self.config.brownout.shed_below_priority
                {
                    continue;
                }
                let better = match victim {
                    None => true,
                    Some((vp, vpos)) => {
                        tr.priority < vp || (tr.priority == vp && pos > vpos)
                    }
                };
                if better {
                    victim = Some((tr.priority, pos));
                }
            }
            let Some((_, pos)) = victim else { break };
            let id = self.backlog.remove(pos).expect("victim position");
            let tr = self.tracked.get_mut(&id).expect("tracked id");
            tr.in_backlog = false;
            tr.done = true;
            let (arrival, deadline) = (tr.arrival, tr.deadline);
            self.stats.shed += 1;
            self.outcomes.push(RequestOutcome {
                id,
                status: CompletionStatus::Rejected,
                prediction: None,
                timesteps_used: 0,
                exited_early: false,
                scores: Vec::new(),
                accumulated_logits: Vec::new(),
                arrival_nanos: arrival,
                finish_nanos: t,
                deadline_nanos: deadline,
            });
            self.event(ClusterEvent::Shed { at_nanos: t, id });
        }
    }

    /// Dispatches eligible backlog entries into the worker's free slots,
    /// FIFO with ineligible entries (backoff, already-copied-there)
    /// skipped. Deadlines travel as remaining budget so the absolute
    /// deadline is preserved on the shared timeline.
    fn dispatch(&mut self, wi: usize, t: u64) -> Result<()> {
        loop {
            let server = self.workers[wi].server.as_ref().expect("dispatch to live worker");
            let used = server.width() + server.queue_depth();
            if used >= self.worker_config.slots {
                return Ok(());
            }
            let Some(pos) = self.backlog.iter().position(|id| {
                let tr = &self.tracked[id];
                tr.eligible_at <= t && !tr.copies.contains(&wi)
            }) else {
                return Ok(());
            };
            let id = self.backlog.remove(pos).expect("dispatch position");
            let tr = self.tracked.get_mut(&id).expect("tracked id");
            tr.in_backlog = false;
            tr.copies.push(wi);
            tr.dispatched_at = t;
            let request = Request {
                id,
                frames: tr.frames.clone(),
                deadline_nanos: tr.deadline.map(|d| d.saturating_sub(t)),
                priority: tr.priority,
            };
            let accepted =
                self.workers[wi].server.as_mut().expect("dispatch to live worker").submit(request)?;
            if !accepted {
                return Err(ServeError::Internal(format!(
                    "worker {wi} rejected a slot-bounded dispatch of request {id}"
                )));
            }
        }
    }

    fn exec_step(&mut self, wi: usize, t: u64) -> Result<()> {
        // sync the worker onto the shared timeline before it observes time
        self.workers[wi].clock.wait_until(t);
        self.expire_backlog(t);
        let mut level = self.config.brownout.level_for(self.backlog.len());
        if level >= 3 {
            self.shed_backlog(t);
            level = self.config.brownout.level_for(self.backlog.len());
        }
        if level != self.brownout_level {
            self.brownout_level = level;
            self.stats.max_brownout_level = self.stats.max_brownout_level.max(level);
            self.event(ClusterEvent::BrownoutLevel { at_nanos: t, level });
        }
        self.dispatch(wi, t)?;
        let pressure = self.backlog.len();
        let cap =
            if level >= 2 { Some(self.config.brownout.timestep_cap) } else { None };
        let server = self.workers[wi].server.as_mut().expect("step on live worker");
        server.set_pressure_hint(pressure);
        server.set_timestep_cap(cap)?;
        match server.step() {
            Ok(false) => Ok(()),
            Ok(true) => {
                self.stats.steps += 1;
                let end = self.workers[wi].server.as_ref().expect("live worker").now();
                self.workers[wi].last_progress = end;
                self.workers[wi].stall_flagged = false;
                self.workers[wi].consecutive_faults = 0;
                let server = self.workers[wi].server.as_mut().expect("live worker");
                let records = server.take_schedule();
                let outcomes = server.take_outcomes();
                for record in records {
                    self.event(ClusterEvent::Step { at_nanos: t, worker: wi, record });
                }
                for outcome in outcomes {
                    self.finalize_worker_outcome(wi, outcome)?;
                }
                Ok(())
            }
            Err(ServeError::Fault(_)) => {
                self.stats.transient_faults += 1;
                self.workers[wi].consecutive_faults += 1;
                let cf = self.workers[wi].consecutive_faults;
                let now = self.workers[wi].clock.now();
                if cf > self.config.max_consecutive_faults {
                    // fault loop: recycle the worker — fresh engine on the
                    // same clock, its rows requeued against their budgets
                    self.crash_worker(wi, now, None);
                    self.exec_restart(wi, now)?;
                    self.event(ClusterEvent::WorkerRecycled { at_nanos: now, worker: wi });
                } else {
                    let backoff = self
                        .config
                        .backoff_base_nanos
                        .saturating_mul(1u64 << (cf - 1).min(32));
                    let w = &mut self.workers[wi];
                    w.resume_at = w.resume_at.max(now.saturating_add(backoff));
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// First-terminal-wins: records the winning copy's outcome (rewritten
    /// to the cluster arrival time), cancels queued sibling copies, and
    /// suppresses later retirements of redundant copies.
    fn finalize_worker_outcome(&mut self, wi: usize, outcome: RequestOutcome) -> Result<()> {
        let Some(tr) = self.tracked.get_mut(&outcome.id) else {
            return Err(ServeError::Internal(format!(
                "worker {wi} retired unknown request {}",
                outcome.id
            )));
        };
        if tr.done {
            self.stats.duplicates_suppressed += 1;
            return Ok(());
        }
        match outcome.status {
            CompletionStatus::Completed => self.stats.completed += 1,
            CompletionStatus::TimedOut => self.stats.expired += 1,
            CompletionStatus::Rejected | CompletionStatus::Failed => {
                return Err(ServeError::Internal(format!(
                    "worker {wi} produced a {:?} outcome for dispatched request {}",
                    outcome.status, outcome.id
                )));
            }
        }
        tr.done = true;
        let arrival = tr.arrival;
        let in_backlog = tr.in_backlog;
        tr.in_backlog = false;
        let siblings: Vec<usize> = tr.copies.iter().copied().filter(|&w| w != wi).collect();
        for sibling in siblings {
            if let Some(server) = self.workers[sibling].server.as_mut() {
                if server.cancel_queued(outcome.id) {
                    self.stats.cancellations += 1;
                }
                // an in-flight sibling copy runs to retirement and is
                // suppressed then (rows cannot be yanked mid-window)
            }
        }
        if in_backlog {
            self.backlog.retain(|&id| id != outcome.id);
        }
        self.outcomes.push(RequestOutcome { arrival_nanos: arrival, ..outcome });
        Ok(())
    }

    /// Replays a sorted arrival trace deterministically: the pump executes
    /// every action scheduled before each arrival, the request is
    /// submitted at its arrival time, and the cluster then drains.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for an unsorted trace;
    /// propagates engine failures.
    pub fn run_trace(&mut self, trace: &[crate::TracedRequest]) -> Result<()> {
        if trace.windows(2).any(|w| w[0].at_nanos > w[1].at_nanos) {
            return Err(ServeError::BadRequest("trace must be sorted by arrival time".into()));
        }
        for tr in trace {
            while self.next_action().is_some_and(|(t, _)| t < tr.at_nanos) {
                self.pump()?;
            }
            self.time = self.time.max(tr.at_nanos);
            self.submit(tr.request.clone())?;
        }
        self.run_until_idle()
    }

    /// Pumps until quiescent. If requests remain queued with no way to
    /// serve them (every worker dead with no restart scheduled), they are
    /// drained as [`CompletionStatus::Failed`] so every admitted request
    /// still terminates exactly once.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn run_until_idle(&mut self) -> Result<()> {
        while self.pump()? {}
        let t = self.time;
        self.backlog.clear();
        let stranded: Vec<u64> =
            self.tracked.iter().filter(|(_, tr)| !tr.done).map(|(&id, _)| id).collect();
        for id in stranded {
            let tr = self.tracked.get_mut(&id).expect("tracked id");
            tr.done = true;
            tr.in_backlog = false;
            let (arrival, deadline) = (tr.arrival, tr.deadline);
            self.stats.failed += 1;
            self.outcomes.push(RequestOutcome {
                id,
                status: CompletionStatus::Failed,
                prediction: None,
                timesteps_used: 0,
                exited_early: false,
                scores: Vec::new(),
                accumulated_logits: Vec::new(),
                arrival_nanos: arrival,
                finish_nanos: t,
                deadline_nanos: deadline,
            });
        }
        Ok(())
    }
}
