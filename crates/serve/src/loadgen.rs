//! Open-loop load generation and latency reporting.
//!
//! Arrivals are generated ahead of time from a seeded [`TensorRng`], so a
//! load experiment is a pure function of `(process, n, seed)` — the same
//! trace replays bitwise through the simulated-clock server.

use crate::engine::{CompletionStatus, RequestOutcome};
use crate::{Result, ServeError};
use dtsnn_tensor::TensorRng;

/// Nanoseconds per second, for rate conversions.
const NANOS_PER_SEC: f64 = 1e9;

/// An open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_per_sec`.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_sec: f64,
    },
    /// On/off bursts: during an *on* phase requests arrive as a Poisson
    /// stream at `rate_per_sec`; *off* phases are silent. Phase lengths are
    /// exponential with the given means, so the long-run offered rate is
    /// `rate_per_sec · on / (on + off)` while the instantaneous rate
    /// alternates between `rate_per_sec` and zero — the bursty pattern that
    /// stresses admission control and the θ controller.
    Bursty {
        /// Arrival rate during *on* phases, in requests per second.
        rate_per_sec: f64,
        /// Mean *on*-phase length in nanoseconds.
        mean_on_nanos: u64,
        /// Mean *off*-phase length in nanoseconds.
        mean_off_nanos: u64,
    },
}

/// Draws an exponential sample with the given mean via inversion.
fn exponential(rng: &mut TensorRng, mean: f64) -> f64 {
    // uniform() is in [0, 1); flip to (0, 1] so ln never sees zero
    let u = 1.0 - f64::from(rng.uniform(0.0, 1.0));
    -u.ln() * mean
}

/// Generates `n` arrival times (nanoseconds, sorted, starting after 0) for
/// the process, deterministically in `(process, n, rng state)`.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] for non-positive or non-finite
/// rates, or zero-length burst phases.
pub fn generate_arrivals(
    process: ArrivalProcess,
    n: usize,
    rng: &mut TensorRng,
) -> Result<Vec<u64>> {
    let rate = match process {
        ArrivalProcess::Poisson { rate_per_sec } | ArrivalProcess::Bursty { rate_per_sec, .. } => {
            rate_per_sec
        }
    };
    if !(rate > 0.0 && rate.is_finite()) {
        return Err(ServeError::InvalidConfig(format!(
            "arrival rate must be positive and finite, got {rate}"
        )));
    }
    let mean_gap = NANOS_PER_SEC / rate;
    let mut arrivals = Vec::with_capacity(n);
    match process {
        ArrivalProcess::Poisson { .. } => {
            let mut t = 0.0f64;
            for _ in 0..n {
                t += exponential(rng, mean_gap);
                arrivals.push(t as u64);
            }
        }
        ArrivalProcess::Bursty { mean_on_nanos, mean_off_nanos, .. } => {
            if mean_on_nanos == 0 || mean_off_nanos == 0 {
                return Err(ServeError::InvalidConfig(
                    "burst phase means must be nonzero".into(),
                ));
            }
            let mut t = 0.0f64;
            // start inside an *on* phase; its end is exponential
            let mut phase_end = exponential(rng, mean_on_nanos as f64);
            while arrivals.len() < n {
                let gap = exponential(rng, mean_gap);
                t += gap;
                // an arrival falling past the phase boundary is pushed
                // through the silent off phase into the next on phase
                while t >= phase_end {
                    t += exponential(rng, mean_off_nanos as f64);
                    phase_end = t + exponential(rng, mean_on_nanos as f64);
                }
                arrivals.push(t as u64);
            }
        }
    }
    Ok(arrivals)
}

/// Aggregate latency/goodput report over one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests offered (completed + timed out + rejected).
    pub offered: usize,
    /// Requests that completed within deadline.
    pub completed: usize,
    /// Requests that terminated past their deadline.
    pub timed_out: usize,
    /// Requests refused by admission control.
    pub rejected: usize,
    /// Requests that exhausted their cluster retry budget (always 0 for a
    /// single server).
    pub failed: usize,
    /// Median completion latency in nanoseconds (nearest-rank, completed
    /// requests only); 0 when nothing completed.
    pub p50_latency_nanos: u64,
    /// 99th-percentile completion latency in nanoseconds (nearest-rank).
    pub p99_latency_nanos: u64,
    /// Deadline-censored median latency: completed requests at their true
    /// latency *and* timed-out requests counted at their deadline budget —
    /// the survivor-bias fix. A request that blew its deadline spent at
    /// least its whole budget waiting, so the censored tail can only be
    /// equal to or worse than the completed-only tail. Failed and rejected
    /// requests carry no meaningful latency and stay excluded.
    pub censored_p50_latency_nanos: u64,
    /// Deadline-censored 99th-percentile latency (see
    /// [`LoadReport::censored_p50_latency_nanos`]).
    pub censored_p99_latency_nanos: u64,
    /// Completed requests per second of elapsed clock time.
    pub goodput_per_sec: f64,
    /// `(timed_out + rejected + failed) / offered`.
    pub failure_rate: f64,
    /// Mean timesteps used by completed requests (the early-exit saving).
    pub avg_timesteps: f64,
    /// Clock span the run covered.
    pub elapsed_nanos: u64,
}

/// Nearest-rank percentile over a sorted slice; `q` in `(0, 100]`.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summarizes a run's outcomes into a [`LoadReport`].
pub fn summarize(outcomes: &[RequestOutcome], elapsed_nanos: u64) -> LoadReport {
    let mut latencies: Vec<u64> = Vec::new();
    let mut censored: Vec<u64> = Vec::new();
    let mut completed = 0usize;
    let mut timed_out = 0usize;
    let mut rejected = 0usize;
    let mut failed = 0usize;
    let mut timestep_sum = 0usize;
    for o in outcomes {
        match o.status {
            CompletionStatus::Completed => {
                completed += 1;
                latencies.push(o.latency_nanos());
                censored.push(o.latency_nanos());
                timestep_sum += o.timesteps_used;
            }
            CompletionStatus::TimedOut => {
                timed_out += 1;
                // censor at the deadline: the request observably waited its
                // whole budget. Outcomes without a recorded deadline (a
                // server predating the field) fall back to true latency.
                censored.push(
                    o.deadline_nanos
                        .map_or(o.latency_nanos(), |d| d.saturating_sub(o.arrival_nanos)),
                );
            }
            CompletionStatus::Rejected => rejected += 1,
            CompletionStatus::Failed => failed += 1,
        }
    }
    latencies.sort_unstable();
    censored.sort_unstable();
    let offered = outcomes.len();
    let elapsed_secs = elapsed_nanos as f64 / NANOS_PER_SEC;
    LoadReport {
        offered,
        completed,
        timed_out,
        rejected,
        failed,
        p50_latency_nanos: percentile(&latencies, 50.0),
        p99_latency_nanos: percentile(&latencies, 99.0),
        censored_p50_latency_nanos: percentile(&censored, 50.0),
        censored_p99_latency_nanos: percentile(&censored, 99.0),
        goodput_per_sec: if elapsed_secs > 0.0 { completed as f64 / elapsed_secs } else { 0.0 },
        failure_rate: if offered > 0 {
            (timed_out + rejected + failed) as f64 / offered as f64
        } else {
            0.0
        },
        avg_timesteps: if completed > 0 { timestep_sum as f64 / completed as f64 } else { 0.0 },
        elapsed_nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, status: CompletionStatus, latency: u64, t: usize) -> RequestOutcome {
        RequestOutcome {
            id,
            status,
            prediction: Some(0),
            timesteps_used: t,
            exited_early: t < 4,
            scores: Vec::new(),
            accumulated_logits: Vec::new(),
            arrival_nanos: 100,
            finish_nanos: 100 + latency,
            deadline_nanos: None,
        }
    }

    #[test]
    fn poisson_arrivals_are_sorted_deterministic_and_near_rate() {
        let mut rng = TensorRng::seed_from(0xA441);
        let a = generate_arrivals(ArrivalProcess::Poisson { rate_per_sec: 1000.0 }, 500, &mut rng)
            .unwrap();
        assert_eq!(a.len(), 500);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals must be sorted");
        let mut rng2 = TensorRng::seed_from(0xA441);
        let b = generate_arrivals(ArrivalProcess::Poisson { rate_per_sec: 1000.0 }, 500, &mut rng2)
            .unwrap();
        assert_eq!(a, b, "same seed, same trace");
        // 500 arrivals at 1000/s should span roughly 0.5 s of virtual time
        let span_secs = *a.last().unwrap() as f64 / 1e9;
        assert!(
            (0.3..0.8).contains(&span_secs),
            "500 arrivals at 1 kHz spanned {span_secs} s"
        );
    }

    #[test]
    fn bursty_arrivals_cluster_relative_to_poisson() {
        let mut rng = TensorRng::seed_from(7);
        let bursty = generate_arrivals(
            ArrivalProcess::Bursty {
                rate_per_sec: 1000.0,
                mean_on_nanos: 5_000_000,
                mean_off_nanos: 45_000_000,
            },
            300,
            &mut rng,
        )
        .unwrap();
        assert!(bursty.windows(2).all(|w| w[0] <= w[1]));
        // the off phases stretch the trace: long-run rate is ~1000·5/50 =
        // 100/s, so 300 arrivals span far longer than 0.3 s
        let span_secs = *bursty.last().unwrap() as f64 / 1e9;
        assert!(span_secs > 1.0, "off phases must stretch the trace, got {span_secs} s");
    }

    #[test]
    fn rejects_bad_rates() {
        let mut rng = TensorRng::seed_from(1);
        assert!(generate_arrivals(ArrivalProcess::Poisson { rate_per_sec: 0.0 }, 1, &mut rng)
            .is_err());
        assert!(generate_arrivals(
            ArrivalProcess::Poisson { rate_per_sec: f64::INFINITY },
            1,
            &mut rng
        )
        .is_err());
        assert!(generate_arrivals(
            ArrivalProcess::Bursty { rate_per_sec: 10.0, mean_on_nanos: 0, mean_off_nanos: 1 },
            1,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn summarize_counts_and_percentiles() {
        let outcomes = vec![
            outcome(0, CompletionStatus::Completed, 10, 1),
            outcome(1, CompletionStatus::Completed, 20, 2),
            outcome(2, CompletionStatus::Completed, 30, 3),
            outcome(3, CompletionStatus::TimedOut, 99, 4),
            outcome(4, CompletionStatus::Rejected, 0, 0),
        ];
        let r = summarize(&outcomes, 1_000_000_000);
        assert_eq!(
            (r.offered, r.completed, r.timed_out, r.rejected),
            (5, 3, 1, 1)
        );
        assert_eq!(r.p50_latency_nanos, 20);
        assert_eq!(r.p99_latency_nanos, 30);
        assert!((r.goodput_per_sec - 3.0).abs() < 1e-9);
        assert!((r.failure_rate - 0.4).abs() < 1e-9);
        assert!((r.avg_timesteps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summarize_censors_timed_out_latency_at_the_deadline() {
        // the PR 7 survivor bias: completed-only p99 ignores the requests
        // that blew their budget entirely. Three completions at 10/20/30 ns
        // plus one timeout with a 50 ns budget must leave the completed-only
        // percentiles untouched while the censored tail picks up the 50.
        let mut outcomes = vec![
            outcome(0, CompletionStatus::Completed, 10, 1),
            outcome(1, CompletionStatus::Completed, 20, 2),
            outcome(2, CompletionStatus::Completed, 30, 3),
        ];
        let mut late = outcome(3, CompletionStatus::TimedOut, 75, 4);
        late.deadline_nanos = Some(late.arrival_nanos + 50);
        outcomes.push(late);
        // a cluster-level retry-budget failure counts against the failure
        // rate but contributes no latency sample to either family
        outcomes.push(outcome(4, CompletionStatus::Failed, 0, 0));
        let r = summarize(&outcomes, 1_000_000_000);
        assert_eq!((r.offered, r.completed, r.timed_out, r.failed), (5, 3, 1, 1));
        assert_eq!((r.p50_latency_nanos, r.p99_latency_nanos), (20, 30));
        assert_eq!(
            (r.censored_p50_latency_nanos, r.censored_p99_latency_nanos),
            (20, 50),
            "the timed-out request must appear at its 50 ns deadline budget"
        );
        assert!((r.failure_rate - 0.4).abs() < 1e-9);
    }

    #[test]
    fn censored_stats_fall_back_to_latency_without_a_deadline() {
        // outcomes predating the deadline field (deadline_nanos: None) use
        // their observed latency rather than being dropped
        let outcomes = vec![
            outcome(0, CompletionStatus::Completed, 10, 1),
            outcome(1, CompletionStatus::TimedOut, 40, 2),
        ];
        let r = summarize(&outcomes, 1_000);
        assert_eq!(r.censored_p99_latency_nanos, 40);
        assert_eq!(r.p99_latency_nanos, 10);
    }

    #[test]
    fn summarize_handles_empty_runs() {
        let r = summarize(&[], 0);
        assert_eq!(r.offered, 0);
        assert_eq!(r.p50_latency_nanos, 0);
        assert_eq!(r.goodput_per_sec, 0.0);
        assert_eq!(r.failure_rate, 0.0);
    }
}
