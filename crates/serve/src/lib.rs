//! Early-exit-aware continuous-batching inference service.
//!
//! The paper's value proposition — easy inputs exit at `T̂ = 1`, hard ones
//! run the full window — only reaches a *request stream* if the batch can
//! change composition mid-window: entropy-driven exits retire rows through
//! [`dtsnn_snn::Snn::compact_batch`] (PR 3), and the vacated slots admit
//! queued requests through [`dtsnn_snn::Snn::admit_batch_rows`], the same
//! continuous-batching insight vLLM applies to EOS tokens. This crate is
//! that serving layer:
//!
//! - [`Server`] — the engine: an open inference window where each in-flight
//!   row carries its own timestep counter, logit accumulator and (inside
//!   the network) LIF membrane; per-request deadlines; admission control
//!   with a bounded FIFO queue; SLO-aware dynamic θ via
//!   [`ThetaController`].
//! - [`Clock`] — the test-archetype headline: the engine never reads a
//!   wall clock directly, so [`SimClock`] makes the entire serving stack —
//!   scheduling decisions, batch compositions, per-request outcomes —
//!   deterministic and bitwise reproducible across runs and
//!   `DTSNN_THREADS` settings, while [`RealClock`] serves live traffic
//!   from an MPSC queue ([`run_channel`]).
//! - [`ArrivalProcess`] / [`replay_trace`] / [`summarize`] — an open-loop
//!   load generator (Poisson and bursty on/off arrivals) and the
//!   p50/p99/goodput/timeout report behind
//!   `bench-results/serving_load.json`.
//! - [`Cluster`] — fault-tolerant sharding: a router dispatching requests
//!   across N workers under a seeded, bitwise-reproducible
//!   [`FaultSchedule`] (crashes, stalls, slowdowns, transient step
//!   errors), with supervised recovery (requeue under retry budgets and
//!   exponential backoff), deadline-aware hedging for stragglers,
//!   exactly-once completion accounting, and a [`BrownoutConfig`]
//!   degradation ladder (θ pressure → timestep cap → priority shedding)
//!   behind `bench-results/serving_chaos.json`.
//!
//! # The row-insertion invariant
//!
//! A request spliced into an open window must behave exactly as if it had
//! been run alone. The only carried per-row state in the network is the
//! LIF membrane; a spliced row starts from a zero membrane, and `0·τ + x`
//! can differ from a fresh sequence's `x` only in the sign of zero — a
//! distinction the strict `u > V_th` spike comparison cannot observe. The
//! per-row logit fold reproduces the sequential `axpy`/`scale` chain of
//! [`dtsnn_core::DynamicInference::run_traced`] bitwise, so a mid-window
//! admission yields bitwise-identical logits, prediction and T̂ to a solo
//! run (conformance fuzz oracle 10 and this crate's harness pin it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod cluster;
mod controller;
mod engine;
mod error;
mod faults;
mod loadgen;

pub use clock::{Clock, RealClock, SimClock};
pub use cluster::{BrownoutConfig, Cluster, ClusterConfig, ClusterEvent, ClusterStats};
pub use controller::ThetaController;
pub use engine::{
    replay_trace, run_channel, CompletionStatus, Request, RequestOutcome, Server, ServerConfig,
    ServerStats, ServiceModel, StepRecord, TracedRequest,
};
pub use error::ServeError;
pub use faults::{FaultEvent, FaultKind, FaultSchedule, FaultSpec};
pub use loadgen::{generate_arrivals, summarize, ArrivalProcess, LoadReport};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
