//! SLO-aware dynamic θ: tighten the exit threshold under queue pressure to
//! shed timesteps, relax it when idle, always inside a configured band.

use crate::{Result, ServeError};

/// Maps queue depth to an entropy-exit threshold θ.
///
/// The paper's policy exits when normalized entropy `E_f(x) < θ`, so a
/// *larger* θ exits earlier (fewer timesteps, less accuracy). The
/// controller interpolates
///
/// ```text
/// θ(d) = θ_min + (θ_max − θ_min) · d / (d + half_pressure_depth)
/// ```
///
/// over queue depth `d`: idle traffic gets `θ_min` (the accuracy-favoring
/// floor), saturating overload approaches `θ_max` (the configured accuracy
/// floor — how much quality the operator is willing to shed), and
/// `half_pressure_depth` is the depth at which θ sits halfway. The map is
/// monotone in `d` and clamped into `[θ_min, θ_max]`, which is exactly
/// what the property suite asserts.
///
/// `θ_min == θ_max` degenerates to a fixed threshold — the configuration
/// the bitwise parity oracles use, since a fixed θ makes the server's exit
/// decisions comparable to the per-request sequential runner's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaController {
    theta_min: f32,
    theta_max: f32,
    half_pressure_depth: f32,
}

impl ThetaController {
    /// A controller bounded by `[theta_min, theta_max]` with the given
    /// half-pressure queue depth.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] unless
    /// `0 < theta_min ≤ theta_max ≤ 1` and `half_pressure_depth` is
    /// positive and finite.
    pub fn new(theta_min: f32, theta_max: f32, half_pressure_depth: f32) -> Result<Self> {
        if !(theta_min > 0.0 && theta_min <= theta_max && theta_max <= 1.0) {
            return Err(ServeError::InvalidConfig(format!(
                "need 0 < theta_min <= theta_max <= 1, got [{theta_min}, {theta_max}]"
            )));
        }
        if !(half_pressure_depth > 0.0 && half_pressure_depth.is_finite()) {
            return Err(ServeError::InvalidConfig(format!(
                "half_pressure_depth must be positive and finite, got {half_pressure_depth}"
            )));
        }
        Ok(ThetaController { theta_min, theta_max, half_pressure_depth })
    }

    /// A degenerate controller that always returns `theta` — the fixed-θ
    /// mode the parity oracles and the fixed arm of the load bench use.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] unless `θ ∈ (0, 1]`.
    pub fn fixed(theta: f32) -> Result<Self> {
        ThetaController::new(theta, theta, 1.0)
    }

    /// The accuracy-favoring floor `θ_min`.
    pub fn theta_min(&self) -> f32 {
        self.theta_min
    }

    /// The load-shedding ceiling `θ_max`.
    pub fn theta_max(&self) -> f32 {
        self.theta_max
    }

    /// θ for the given queue depth; monotone in `queue_depth` and always
    /// inside `[θ_min, θ_max]`.
    pub fn theta_for(&self, queue_depth: usize) -> f32 {
        let d = queue_depth as f32;
        let pressure = d / (d + self.half_pressure_depth);
        // clamp guards the float rounding at saturation; the math itself
        // already stays inside the band
        (self.theta_min + (self.theta_max - self.theta_min) * pressure)
            .clamp(self.theta_min, self.theta_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_band_and_depth() {
        assert!(ThetaController::new(0.0, 0.5, 4.0).is_err());
        assert!(ThetaController::new(0.6, 0.5, 4.0).is_err());
        assert!(ThetaController::new(0.5, 1.1, 4.0).is_err());
        assert!(ThetaController::new(0.5, 0.9, 0.0).is_err());
        assert!(ThetaController::new(0.5, 0.9, f32::NAN).is_err());
        assert!(ThetaController::new(0.5, 0.9, 4.0).is_ok());
    }

    #[test]
    fn idle_gets_the_floor_and_half_depth_the_midpoint() {
        let c = ThetaController::new(0.4, 0.8, 8.0).unwrap();
        assert_eq!(c.theta_for(0), 0.4);
        let mid = c.theta_for(8);
        assert!((mid - 0.6).abs() < 1e-6, "half-pressure depth gives the midpoint, got {mid}");
    }

    #[test]
    fn fixed_controller_ignores_depth() {
        let c = ThetaController::fixed(0.7).unwrap();
        for d in [0usize, 1, 10, 1_000_000] {
            assert_eq!(c.theta_for(d), 0.7);
        }
        assert!(ThetaController::fixed(0.0).is_err());
    }
}
