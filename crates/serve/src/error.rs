use std::fmt;

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A server or controller configuration value was outside its domain.
    InvalidConfig(String),
    /// A submitted request was malformed (frame count/shape).
    BadRequest(String),
    /// The inference engine underneath failed.
    Core(dtsnn_core::CoreError),
    /// An internal bookkeeping invariant was violated (a bug, not a caller
    /// error) — returned instead of panicking so a supervised server loop
    /// can retire the worker without aborting the process.
    Internal(String),
    /// An injected worker fault (the deterministic chaos plane). Retryable:
    /// the step consumed service time but no row state changed.
    Fault(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Core(e) => write!(f, "inference failure: {e}"),
            ServeError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            ServeError::Fault(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dtsnn_core::CoreError> for ServeError {
    fn from(e: dtsnn_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<dtsnn_snn::SnnError> for ServeError {
    fn from(e: dtsnn_snn::SnnError) -> Self {
        ServeError::Core(dtsnn_core::CoreError::from(e))
    }
}

impl From<dtsnn_tensor::TensorError> for ServeError {
    fn from(e: dtsnn_tensor::TensorError) -> Self {
        ServeError::Core(dtsnn_core::CoreError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::from(dtsnn_core::CoreError::BadInput("x".into()));
        assert!(e.to_string().contains("inference failure"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::BadRequest("y".into())).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
