//! The virtual-time determinism harness: seeded traces through the
//! simulated-clock server must reproduce the per-request sequential runner
//! bitwise, across repeated runs and across `DTSNN_THREADS` settings — and
//! requests spliced into an *open* window must be indistinguishable from
//! requests run alone.

use dtsnn_core::{DynamicInference, ExitPolicy};
use dtsnn_serve::{
    replay_trace, CompletionStatus, Request, RequestOutcome, Server, ServerConfig, ServiceModel,
    SimClock, StepRecord, ThetaController, TracedRequest,
};
use dtsnn_snn::{Flatten, Layer, LifConfig, LifNeuron, Linear, Snn};
use dtsnn_tensor::{parallel, Tensor, TensorRng};

/// Splits the tiny-net fixtures between early and full-window exits (same
/// threshold the core harness suite uses).
const THETA_MIXED: f32 = 0.986;
const MAX_T: usize = 6;

fn tiny_net(seed: u64) -> Snn {
    let mut rng = TensorRng::seed_from(seed);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Flatten::new()),
        Box::new(Linear::new(4, 8, &mut rng)),
        Box::new(LifNeuron::new(LifConfig::default())),
        Box::new(Linear::new(8, 3, &mut rng)),
    ];
    Snn::from_layers(layers)
}

fn frame(rng: &mut TensorRng) -> Tensor {
    Tensor::randn(&[1, 2, 2], 0.5, 0.5, rng)
}

fn staggered_trace(n: usize, seed: u64) -> Vec<TracedRequest> {
    let mut rng = TensorRng::seed_from(seed);
    (0..n)
        .map(|i| TracedRequest {
            at_nanos: i as u64 * 700,
            request: Request { id: i as u64, frames: vec![frame(&mut rng)], deadline_nanos: None, priority: 0 },
        })
        .collect()
}

fn config(slots: usize) -> ServerConfig {
    ServerConfig {
        max_timesteps: MAX_T,
        slots,
        queue_capacity: 64,
        theta: ThetaController::fixed(THETA_MIXED).unwrap(),
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 100 },
        default_deadline_nanos: None,
        record_schedule: true,
    }
}

fn run_trace(trace: &[TracedRequest], slots: usize) -> (Vec<RequestOutcome>, Vec<StepRecord>) {
    let mut server = Server::new(tiny_net(42), config(slots), SimClock::new()).unwrap();
    replay_trace(&mut server, trace).unwrap();
    assert!(
        server.stats().spliced_mid_window >= 1,
        "the staggered trace must exercise mid-window admission, stats {:?}",
        server.stats()
    );
    let outcomes = server.take_outcomes();
    let schedule = server.take_schedule();
    (outcomes, schedule)
}

fn solo_reference(request: &Request) -> (usize, usize, bool, Vec<f32>, Vec<f32>) {
    let mut net = tiny_net(42);
    let runner =
        DynamicInference::new(ExitPolicy::entropy(THETA_MIXED).unwrap(), MAX_T).unwrap();
    let trace = runner.run_traced(&mut net, &request.frames).unwrap();
    let acc = trace.per_timestep.last().unwrap().accumulated_logits.clone();
    (
        trace.outcome.prediction,
        trace.outcome.timesteps_used,
        trace.outcome.exited_early,
        trace.outcome.scores,
        acc,
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_matches_solo(outcome: &RequestOutcome, request: &Request) {
    let (prediction, timesteps, early, scores, acc) = solo_reference(request);
    assert_eq!(outcome.status, CompletionStatus::Completed, "request {}", outcome.id);
    assert_eq!(outcome.prediction, Some(prediction), "request {}", outcome.id);
    assert_eq!(outcome.timesteps_used, timesteps, "request {}", outcome.id);
    assert_eq!(outcome.exited_early, early, "request {}", outcome.id);
    assert_eq!(bits(&outcome.scores), bits(&scores), "request {} scores drifted", outcome.id);
    assert_eq!(
        bits(&outcome.accumulated_logits),
        bits(&acc),
        "request {} logits drifted",
        outcome.id
    );
}

#[test]
fn server_outcomes_match_solo_runs_bitwise_at_1_and_4_threads() {
    let trace = staggered_trace(6, 0x5EED);
    // the solo references are computed at the default thread count; the
    // server must hit them bitwise at 1 *and* 4 workers
    for threads in [1usize, 4] {
        let (outcomes, _) = parallel::with_threads(threads, || run_trace(&trace, 2));
        assert_eq!(outcomes.len(), trace.len());
        for tr in &trace {
            let outcome = outcomes
                .iter()
                .find(|o| o.id == tr.request.id)
                .unwrap_or_else(|| panic!("request {} has no outcome", tr.request.id));
            assert_matches_solo(outcome, &tr.request);
        }
    }
}

#[test]
fn a_mixture_of_early_and_full_window_exits_is_exercised() {
    // guard the fixture: if every request exits at t=1 (or none do), the
    // splice/compaction interleavings above stop covering anything
    let trace = staggered_trace(6, 0x5EED);
    let (outcomes, _) = run_trace(&trace, 2);
    let early = outcomes.iter().filter(|o| o.exited_early).count();
    assert!(
        early > 0 && early < outcomes.len(),
        "fixture must mix early and full-window exits, got {early}/{}",
        outcomes.len()
    );
}

#[test]
fn replays_are_byte_identical_across_runs_and_thread_counts() {
    let trace = staggered_trace(8, 0xCAFE);
    let (base_outcomes, base_schedule) = parallel::with_threads(1, || run_trace(&trace, 3));
    for threads in [1usize, 2, 4] {
        let (outcomes, schedule) = parallel::with_threads(threads, || run_trace(&trace, 3));
        assert_eq!(outcomes.len(), base_outcomes.len());
        for (a, b) in outcomes.iter().zip(&base_outcomes) {
            assert_eq!(a.id, b.id, "termination order drifted at {threads} threads");
            assert_eq!(a.status, b.status);
            assert_eq!(a.prediction, b.prediction);
            assert_eq!(a.timesteps_used, b.timesteps_used);
            assert_eq!((a.arrival_nanos, a.finish_nanos), (b.arrival_nanos, b.finish_nanos));
            assert_eq!(bits(&a.scores), bits(&b.scores));
            assert_eq!(bits(&a.accumulated_logits), bits(&b.accumulated_logits));
        }
        // scheduling decisions — batch compositions, admissions,
        // retirements, θ — are part of the contract too
        assert_eq!(schedule.len(), base_schedule.len(), "step count drifted at {threads} threads");
        for (a, b) in schedule.iter().zip(&base_schedule) {
            assert_eq!(a.start_nanos, b.start_nanos);
            assert_eq!(a.theta.to_bits(), b.theta.to_bits());
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.admitted, b.admitted);
            assert_eq!(a.retired, b.retired);
        }
    }
}

#[test]
fn a_request_spliced_mid_window_is_bitwise_identical_to_running_it_alone() {
    let trace = staggered_trace(6, 0x5EED);
    let (outcomes, schedule) = run_trace(&trace, 2);
    // find an id admitted into a step that carried other rows — a true
    // mid-window splice, not a fresh-window start
    let spliced: Vec<u64> = schedule
        .iter()
        .filter(|s| !s.admitted.is_empty() && s.rows.len() > s.admitted.len())
        .flat_map(|s| s.admitted.iter().copied())
        .collect();
    assert!(!spliced.is_empty(), "trace must splice at least one request mid-window");
    for id in spliced {
        let outcome = outcomes.iter().find(|o| o.id == id).unwrap();
        let request = &trace[id as usize].request;
        assert_matches_solo(outcome, request);
    }
}

#[test]
fn a_solo_request_through_the_server_matches_run_traced() {
    let mut rng = TensorRng::seed_from(99);
    let request = Request { id: 7, frames: vec![frame(&mut rng)], deadline_nanos: None, priority: 0 };
    let mut server = Server::new(tiny_net(42), config(4), SimClock::new()).unwrap();
    assert!(server.submit(request.clone()).unwrap());
    server.run_until_idle().unwrap();
    let outcomes = server.take_outcomes();
    assert_eq!(outcomes.len(), 1);
    assert_matches_solo(&outcomes[0], &request);
}

#[test]
fn per_timestep_frame_sequences_ride_through_the_window() {
    // event-style input: one frame per timestep; row r consumes frames[r.t]
    let mut rng = TensorRng::seed_from(3);
    let frames: Vec<Tensor> = (0..MAX_T).map(|_| frame(&mut rng)).collect();
    let request = Request { id: 0, frames: frames.clone(), deadline_nanos: None, priority: 0 };
    let mut server = Server::new(tiny_net(42), config(2), SimClock::new()).unwrap();
    // a second, static request keeps the window occupied so the sequenced
    // one is spliced mid-window at a nonzero offset
    let filler = Request { id: 1, frames: vec![frame(&mut rng)], deadline_nanos: None, priority: 0 };
    assert!(server.submit(filler).unwrap());
    server.step().unwrap();
    assert!(server.submit(request.clone()).unwrap());
    server.run_until_idle().unwrap();
    let outcomes = server.take_outcomes();
    let outcome = outcomes.iter().find(|o| o.id == 0).unwrap();
    assert_matches_solo(outcome, &request);
}
