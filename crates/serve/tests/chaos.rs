//! Chaos property suite: under *any* seeded fault schedule — crashes,
//! stalls, slowdowns, transient step errors, or all of them at once —
//! every admitted request terminates exactly once, the stats ledger
//! balances, and the whole run is bitwise reproducible across repeats and
//! `DTSNN_THREADS` settings.

use dtsnn_serve::{
    BrownoutConfig, Cluster, ClusterConfig, ClusterEvent, CompletionStatus, FaultEvent, FaultKind,
    FaultSchedule, FaultSpec, Request, RequestOutcome, ServerConfig, ServiceModel,
    ThetaController, TracedRequest,
};
use dtsnn_snn::{Flatten, Layer, LifConfig, LifNeuron, Linear, Snn};
use dtsnn_tensor::{parallel, Tensor, TensorRng};
use std::collections::HashMap;

const MAX_T: usize = 6;

fn tiny_net(seed: u64) -> Snn {
    let mut rng = TensorRng::seed_from(seed);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Flatten::new()),
        Box::new(Linear::new(4, 8, &mut rng)),
        Box::new(LifNeuron::new(LifConfig::default())),
        Box::new(Linear::new(8, 3, &mut rng)),
    ];
    Snn::from_layers(layers)
}

fn frame(rng: &mut TensorRng) -> Tensor {
    Tensor::randn(&[1, 2, 2], 0.5, 0.5, rng)
}

/// `n` requests at 700 ns spacing; every third carries a deadline so fault
/// runs exercise the TimedOut path too.
fn trace(n: usize, seed: u64, deadline: Option<u64>) -> Vec<TracedRequest> {
    let mut rng = TensorRng::seed_from(seed);
    (0..n)
        .map(|i| TracedRequest {
            at_nanos: i as u64 * 700,
            request: Request {
                id: i as u64,
                frames: vec![frame(&mut rng)],
                deadline_nanos: if i % 3 == 0 { deadline } else { None },
                priority: 0,
            },
        })
        .collect()
}

fn server_config() -> ServerConfig {
    ServerConfig {
        max_timesteps: MAX_T,
        slots: 2,
        queue_capacity: 64,
        theta: ThetaController::fixed(0.986).unwrap(),
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 100 },
        default_deadline_nanos: None,
        record_schedule: false,
    }
}

fn cluster_config() -> ClusterConfig {
    ClusterConfig {
        server: server_config(),
        queue_capacity: 64,
        retry_budget: 3,
        backoff_base_nanos: 500,
        stall_timeout_nanos: Some(10_000),
        hedge_after_nanos: Some(30_000),
        max_consecutive_faults: 2,
        brownout: BrownoutConfig::disabled(),
        record_events: true,
    }
}

/// The tentpole invariant: every admitted request terminates exactly once,
/// and the stats ledger balances.
fn assert_exactly_once(cluster: &mut Cluster<dtsnn_serve::SimClock>, n: usize) -> Vec<RequestOutcome> {
    let stats = cluster.stats();
    let outcomes = cluster.take_outcomes();
    assert_eq!(stats.submitted, n as u64);
    assert_eq!(
        outcomes.len(),
        n,
        "every admitted request needs exactly one outcome: {stats:?}"
    );
    let mut seen: HashMap<u64, usize> = HashMap::new();
    for o in &outcomes {
        *seen.entry(o.id).or_default() += 1;
    }
    for (id, count) in &seen {
        assert_eq!(*count, 1, "request {id} terminated {count} times");
    }
    assert_eq!(
        stats.rejected + stats.shed + stats.completed + stats.expired + stats.failed,
        stats.submitted,
        "the termination ledger must balance: {stats:?}"
    );
    outcomes
}

fn run_chaos(schedule: FaultSchedule, workers: usize, n: usize) -> Cluster<dtsnn_serve::SimClock> {
    let mut cluster =
        Cluster::simulated(tiny_net(42), cluster_config(), workers, schedule).unwrap();
    cluster.run_trace(&trace(n, 0xC4A0, Some(25_000))).unwrap();
    cluster
}

#[test]
fn every_request_terminates_exactly_once_under_each_fault_kind_and_mixed() {
    let horizon = 40_000u64;
    let base = FaultSpec {
        crash_per_sec: 0.0,
        restart_after_nanos: 4_000,
        stall_per_sec: 0.0,
        mean_stall_nanos: 5_000,
        slowdown_per_sec: 0.0,
        slowdown_factor: 4.0,
        mean_slowdown_nanos: 8_000,
        transient_per_sec: 0.0,
        transient_count: 2,
    };
    // ~1 event per 8 µs per worker per enabled kind
    let rate = 125_000.0;
    let specs: [(&str, FaultSpec); 5] = [
        ("crash", FaultSpec { crash_per_sec: rate, ..base }),
        ("stall", FaultSpec { stall_per_sec: rate, ..base }),
        ("slowdown", FaultSpec { slowdown_per_sec: rate, ..base }),
        ("transient", FaultSpec { transient_per_sec: rate, ..base }),
        (
            "mixed",
            FaultSpec {
                crash_per_sec: rate,
                stall_per_sec: rate,
                slowdown_per_sec: rate,
                transient_per_sec: rate,
                ..base
            },
        ),
    ];
    for (name, spec) in specs {
        let mut rng = TensorRng::seed_from(0xFA17 ^ name.len() as u64);
        let schedule = FaultSchedule::generate(&spec, 3, horizon, &mut rng).unwrap();
        assert!(!schedule.is_empty(), "{name}: the schedule must inject something");
        let mut cluster = run_chaos(schedule, 3, 24);
        let stats = cluster.stats();
        let outcomes = assert_exactly_once(&mut cluster, 24);
        assert!(
            outcomes.iter().any(|o| o.status == CompletionStatus::Completed),
            "{name}: some requests must still complete: {stats:?}"
        );
    }
}

#[test]
fn chaos_runs_are_bitwise_reproducible_across_runs_and_thread_counts() {
    let spec = FaultSpec {
        crash_per_sec: 100_000.0,
        restart_after_nanos: 4_000,
        stall_per_sec: 100_000.0,
        mean_stall_nanos: 5_000,
        slowdown_per_sec: 100_000.0,
        slowdown_factor: 4.0,
        mean_slowdown_nanos: 8_000,
        transient_per_sec: 100_000.0,
        transient_count: 2,
    };
    let run = || {
        let mut rng = TensorRng::seed_from(0xDE7E);
        let schedule = FaultSchedule::generate(&spec, 3, 40_000, &mut rng).unwrap();
        let mut cluster = run_chaos(schedule, 3, 24);
        let stats = cluster.stats();
        (cluster.take_outcomes(), cluster.take_events(), stats)
    };
    let (base_outcomes, base_events, base_stats) = parallel::with_threads(1, run);
    for threads in [1usize, 2, 4] {
        let (outcomes, events, stats) = parallel::with_threads(threads, run);
        assert_eq!(stats, base_stats, "stats drifted at {threads} threads");
        assert_eq!(events, base_events, "event stream drifted at {threads} threads");
        assert_eq!(outcomes.len(), base_outcomes.len());
        for (a, b) in outcomes.iter().zip(&base_outcomes) {
            assert_eq!(a.id, b.id, "termination order drifted at {threads} threads");
            assert_eq!(a.status, b.status);
            assert_eq!(a.prediction, b.prediction);
            assert_eq!((a.arrival_nanos, a.finish_nanos), (b.arrival_nanos, b.finish_nanos));
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.scores), bits(&b.scores));
            assert_eq!(bits(&a.accumulated_logits), bits(&b.accumulated_logits));
        }
    }
}

#[test]
fn a_crash_requeues_in_flight_work_and_the_retry_completes() {
    // one crash mid-run, quick restart, generous deadlines → everything
    // still completes, through the requeue path
    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        at_nanos: 2_500,
        worker: 0,
        kind: FaultKind::Crash { restart_after_nanos: 3_000 },
    }])
    .unwrap();
    // θ too low for early exits: windows run all 6 steps, so the crash is
    // guaranteed to catch rows mid-window instead of an idle gap
    let mut config = cluster_config();
    config.server.theta = ThetaController::fixed(0.05).unwrap();
    let mut cluster = Cluster::simulated(tiny_net(42), config, 2, schedule).unwrap();
    cluster.run_trace(&trace(12, 0xBEEF, None)).unwrap();
    let stats = cluster.stats();
    let outcomes = assert_exactly_once(&mut cluster, 12);
    assert_eq!(stats.worker_crashes, 1, "{stats:?}");
    assert_eq!(stats.worker_restarts, 1, "{stats:?}");
    assert!(stats.requeues > 0, "a mid-run crash must requeue in-flight rows: {stats:?}");
    assert!(
        outcomes.iter().all(|o| o.status == CompletionStatus::Completed),
        "deadline-free retries must complete everything: {stats:?}"
    );
}

#[test]
fn an_exhausted_retry_budget_terminates_the_request_as_failed() {
    // a single worker that crashes on every dispatch attempt: with
    // retry_budget 1 the victim fails after its second loss
    let mut config = cluster_config();
    config.retry_budget = 1;
    config.backoff_base_nanos = 100;
    let events = (0..6)
        .map(|k| FaultEvent {
            at_nanos: 1_500 + k * 1_500,
            worker: 0,
            kind: FaultKind::Crash { restart_after_nanos: 500 },
        })
        .collect();
    let schedule = FaultSchedule::from_events(events).unwrap();
    let mut cluster = Cluster::simulated(tiny_net(42), config, 1, schedule).unwrap();
    cluster.run_trace(&trace(4, 0xFA11, None)).unwrap();
    let stats = cluster.stats();
    let outcomes = assert_exactly_once(&mut cluster, 4);
    assert!(stats.failed > 0, "repeated crashes must exhaust a budget of 1: {stats:?}");
    for o in outcomes.iter().filter(|o| o.status == CompletionStatus::Failed) {
        assert_eq!(o.prediction, None);
        assert_eq!(o.timesteps_used, 0);
    }
}

#[test]
fn a_stalled_worker_is_detected_and_its_rows_are_hedged_to_completion() {
    // worker 0 freezes for 60 µs — far past the 10 µs stall timeout. The
    // supervisor must flag it and hedge its rows onto worker 1; when the
    // stalled worker eventually wakes and retires its stale copies, the
    // duplicates are suppressed.
    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        at_nanos: 2_000,
        worker: 0,
        kind: FaultKind::Stall { duration_nanos: 60_000 },
    }])
    .unwrap();
    let mut cluster =
        Cluster::simulated(tiny_net(42), cluster_config(), 2, schedule).unwrap();
    cluster.run_trace(&trace(8, 0x57A1, None)).unwrap();
    let stats = cluster.stats();
    let outcomes = assert_exactly_once(&mut cluster, 8);
    assert!(stats.stalls_detected >= 1, "{stats:?}");
    assert!(stats.hedges >= 1, "stall suspicion must hedge the stuck rows: {stats:?}");
    assert!(
        stats.duplicates_suppressed >= 1,
        "the woken worker's stale copies must be suppressed, not double-counted: {stats:?}"
    );
    assert!(outcomes.iter().all(|o| o.status == CompletionStatus::Completed), "{stats:?}");
}

#[test]
fn transient_fault_loops_back_off_and_eventually_recycle_the_worker() {
    // a burst of 8 injected step errors against max_consecutive_faults 2:
    // the worker backs off twice, then the supervisor recycles it and the
    // requeued rows complete on the fresh engine
    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        at_nanos: 2_000,
        worker: 0,
        kind: FaultKind::TransientErrors { count: 8 },
    }])
    .unwrap();
    let mut cluster =
        Cluster::simulated(tiny_net(42), cluster_config(), 1, schedule).unwrap();
    cluster.run_trace(&trace(6, 0x7EA4, None)).unwrap();
    let stats = cluster.stats();
    let events = cluster.take_events();
    let outcomes = assert_exactly_once(&mut cluster, 6);
    assert!(stats.transient_faults >= 3, "{stats:?}");
    assert!(
        events.iter().any(|e| matches!(e, ClusterEvent::WorkerRecycled { .. })),
        "a fault loop past the threshold must recycle the worker: {stats:?}"
    );
    assert!(outcomes.iter().all(|o| o.status == CompletionStatus::Completed), "{stats:?}");
}

#[test]
fn the_brownout_ladder_caps_timesteps_and_sheds_only_low_priority_work() {
    // flood a single slow worker so the backlog climbs through every rung
    let mut config = cluster_config();
    config.stall_timeout_nanos = None;
    config.hedge_after_nanos = None;
    config.server.slots = 1;
    config.server.theta = ThetaController::fixed(0.05).unwrap(); // never exit early
    config.brownout = BrownoutConfig {
        theta_pressure_depth: 2,
        cap_depth: 4,
        timestep_cap: 2,
        shed_depth: 8,
        shed_below_priority: 1,
    };
    let mut rng = TensorRng::seed_from(0xB40);
    let burst: Vec<TracedRequest> = (0..16)
        .map(|i| TracedRequest {
            at_nanos: 0,
            request: Request {
                id: i as u64,
                frames: vec![frame(&mut rng)],
                deadline_nanos: None,
                // odd ids are high priority and must survive shedding
                priority: (i % 2) as u8,
            },
        })
        .collect();
    let mut cluster =
        Cluster::simulated(tiny_net(42), config, 1, FaultSchedule::none()).unwrap();
    cluster.run_trace(&burst).unwrap();
    let stats = cluster.stats();
    let outcomes = assert_exactly_once(&mut cluster, 16);
    assert_eq!(stats.max_brownout_level, 3, "the flood must climb the full ladder: {stats:?}");
    assert!(stats.shed > 0, "level 3 must shed: {stats:?}");
    for o in &outcomes {
        if o.status == CompletionStatus::Rejected {
            assert_eq!(o.id % 2, 0, "only priority-0 requests may be shed, lost {}", o.id);
        }
    }
    // the cap rung: with θ too low to ever exit early, any completion in
    // under the full window can only come from the brownout timestep cap
    assert!(
        outcomes
            .iter()
            .any(|o| o.status == CompletionStatus::Completed && o.timesteps_used == 2),
        "deep-backlog completions must be capped at 2 timesteps"
    );
    assert!(
        outcomes.iter().all(|o| o.timesteps_used <= MAX_T),
        "the cap may shrink windows, never grow them"
    );
}

#[test]
fn all_workers_dead_with_no_restart_fail_the_backlog_instead_of_hanging() {
    // both workers crash permanently (restart far beyond any work), budget
    // 0 → the drain must fail-stop every request, not spin or hang
    let mut config = cluster_config();
    config.retry_budget = 0;
    let events = vec![
        FaultEvent {
            at_nanos: 1_000,
            worker: 0,
            kind: FaultKind::Crash { restart_after_nanos: u64::MAX / 2 },
        },
        FaultEvent {
            at_nanos: 1_000,
            worker: 1,
            kind: FaultKind::Crash { restart_after_nanos: u64::MAX / 2 },
        },
    ];
    let schedule = FaultSchedule::from_events(events).unwrap();
    let mut cluster = Cluster::simulated(tiny_net(42), config, 2, schedule).unwrap();
    cluster.run_trace(&trace(6, 0xDEAD, None)).unwrap();
    let stats = cluster.stats();
    let outcomes = assert_exactly_once(&mut cluster, 6);
    assert!(stats.failed > 0, "{stats:?}");
    assert!(
        outcomes
            .iter()
            .all(|o| matches!(o.status, CompletionStatus::Completed | CompletionStatus::Failed)),
        "{stats:?}"
    );
}
