//! Sharded-serving parity: with no faults injected, the cluster router
//! must be a transparent wrapper — a 1-worker cluster reproduces a single
//! [`Server`] bitwise (outcomes *and* step-level scheduling decisions),
//! and an N-worker cluster still matches per-request solo runs bitwise.
//!
//! Arrival stamps are the one documented divergence: the baseline engine
//! stamps arrivals with the post-step clock (which can overshoot the trace
//! time while a step is in flight), while the cluster stamps them on its
//! virtual-time cursor. Everything downstream of admission — step start
//! times, batch compositions, θ, logits, predictions, finish times — must
//! agree exactly, so the comparisons here skip `arrival_nanos` only.

use dtsnn_core::{DynamicInference, ExitPolicy};
use dtsnn_serve::{
    replay_trace, BrownoutConfig, Cluster, ClusterConfig, ClusterEvent, CompletionStatus,
    FaultSchedule, Request, RequestOutcome, Server, ServerConfig, ServiceModel, SimClock,
    StepRecord, ThetaController, TracedRequest,
};
use dtsnn_snn::{Flatten, Layer, LifConfig, LifNeuron, Linear, Snn};
use dtsnn_tensor::{parallel, Tensor, TensorRng};

const THETA_MIXED: f32 = 0.986;
const MAX_T: usize = 6;

fn tiny_net(seed: u64) -> Snn {
    let mut rng = TensorRng::seed_from(seed);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Flatten::new()),
        Box::new(Linear::new(4, 8, &mut rng)),
        Box::new(LifNeuron::new(LifConfig::default())),
        Box::new(Linear::new(8, 3, &mut rng)),
    ];
    Snn::from_layers(layers)
}

fn frame(rng: &mut TensorRng) -> Tensor {
    Tensor::randn(&[1, 2, 2], 0.5, 0.5, rng)
}

fn staggered_trace(n: usize, seed: u64) -> Vec<TracedRequest> {
    let mut rng = TensorRng::seed_from(seed);
    (0..n)
        .map(|i| TracedRequest {
            at_nanos: i as u64 * 700,
            request: Request {
                id: i as u64,
                frames: vec![frame(&mut rng)],
                deadline_nanos: None,
                priority: 0,
            },
        })
        .collect()
}

fn server_config(theta: ThetaController) -> ServerConfig {
    ServerConfig {
        max_timesteps: MAX_T,
        slots: 2,
        queue_capacity: 64,
        theta,
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 100 },
        default_deadline_nanos: None,
        record_schedule: true,
    }
}

/// A no-fault cluster config that keeps the supervisor out of the way:
/// hedging and stall detection off, brownout disabled.
fn transparent_cluster_config(theta: ThetaController) -> ClusterConfig {
    ClusterConfig {
        server: server_config(theta),
        queue_capacity: 64,
        retry_budget: 3,
        backoff_base_nanos: 1000,
        stall_timeout_nanos: None,
        hedge_after_nanos: None,
        max_consecutive_faults: 3,
        brownout: BrownoutConfig::disabled(),
        record_events: true,
    }
}

fn run_baseline(trace: &[TracedRequest], theta: ThetaController) -> (Vec<RequestOutcome>, Vec<StepRecord>) {
    let mut server = Server::new(tiny_net(42), server_config(theta), SimClock::new()).unwrap();
    replay_trace(&mut server, trace).unwrap();
    (server.take_outcomes(), server.take_schedule())
}

fn run_cluster(
    trace: &[TracedRequest],
    theta: ThetaController,
    workers: usize,
) -> (Vec<RequestOutcome>, Vec<ClusterEvent>) {
    let mut cluster = Cluster::simulated(
        tiny_net(42),
        transparent_cluster_config(theta),
        workers,
        FaultSchedule::none(),
    )
    .unwrap();
    cluster.run_trace(trace).unwrap();
    let stats = cluster.stats();
    assert_eq!(stats.submitted, trace.len() as u64);
    assert_eq!(stats.completed, trace.len() as u64, "no-fault runs complete everything: {stats:?}");
    assert_eq!(stats.requeues + stats.hedges + stats.shed + stats.failed, 0, "{stats:?}");
    (cluster.take_outcomes(), cluster.take_events())
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Everything except `arrival_nanos` (see module docs).
fn assert_outcomes_match(cluster: &[RequestOutcome], baseline: &[RequestOutcome]) {
    assert_eq!(cluster.len(), baseline.len());
    for (c, b) in cluster.iter().zip(baseline) {
        assert_eq!(c.id, b.id, "termination order diverged");
        assert_eq!(c.status, b.status, "request {}", c.id);
        assert_eq!(c.prediction, b.prediction, "request {}", c.id);
        assert_eq!(c.timesteps_used, b.timesteps_used, "request {}", c.id);
        assert_eq!(c.exited_early, b.exited_early, "request {}", c.id);
        assert_eq!(c.finish_nanos, b.finish_nanos, "request {}", c.id);
        assert_eq!(bits(&c.scores), bits(&b.scores), "request {} scores drifted", c.id);
        assert_eq!(
            bits(&c.accumulated_logits),
            bits(&b.accumulated_logits),
            "request {} logits drifted",
            c.id
        );
    }
}

fn step_records(events: &[ClusterEvent]) -> Vec<StepRecord> {
    events
        .iter()
        .filter_map(|e| match e {
            ClusterEvent::Step { record, .. } => Some(record.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn a_one_worker_no_fault_cluster_is_bitwise_identical_to_a_single_server() {
    let trace = staggered_trace(8, 0x5EED);
    for theta in [
        ThetaController::fixed(THETA_MIXED).unwrap(),
        // dynamic θ: the pressure hint must reproduce the baseline's
        // post-admission queue depth exactly, or θ (and every exit
        // decision after it) drifts
        ThetaController::new(0.7, THETA_MIXED, 3.0).unwrap(),
    ] {
        let (base_outcomes, base_schedule) = run_baseline(&trace, theta);
        let (outcomes, events) = run_cluster(&trace, theta, 1);
        assert_outcomes_match(&outcomes, &base_outcomes);
        // scheduling decisions are part of the contract: same step start
        // times, same θ, same batch compositions, admissions, retirements
        let records = step_records(&events);
        assert_eq!(records.len(), base_schedule.len(), "step count diverged");
        for (c, b) in records.iter().zip(&base_schedule) {
            assert_eq!(c.start_nanos, b.start_nanos);
            assert_eq!(c.theta.to_bits(), b.theta.to_bits());
            assert_eq!(c.rows, b.rows);
            assert_eq!(c.admitted, b.admitted);
            assert_eq!(c.retired, b.retired);
        }
    }
}

#[test]
fn cluster_runs_are_reproducible_across_runs_and_thread_counts() {
    let trace = staggered_trace(10, 0xCAFE);
    let theta = ThetaController::new(0.7, THETA_MIXED, 3.0).unwrap();
    let (base_outcomes, base_events) = parallel::with_threads(1, || run_cluster(&trace, theta, 3));
    for threads in [1usize, 2, 4] {
        let (outcomes, events) = parallel::with_threads(threads, || run_cluster(&trace, theta, 3));
        assert_outcomes_match(&outcomes, &base_outcomes);
        for (c, b) in outcomes.iter().zip(&base_outcomes) {
            assert_eq!(c.arrival_nanos, b.arrival_nanos, "request {}", c.id);
        }
        assert_eq!(events, base_events, "event stream drifted at {threads} threads");
    }
}

#[test]
fn four_worker_outcomes_match_solo_runs_bitwise() {
    let trace = staggered_trace(12, 0xD15C);
    let (outcomes, _) = run_cluster(&trace, ThetaController::fixed(THETA_MIXED).unwrap(), 4);
    assert_eq!(outcomes.len(), trace.len());
    for tr in &trace {
        let outcome = outcomes
            .iter()
            .find(|o| o.id == tr.request.id)
            .unwrap_or_else(|| panic!("request {} has no outcome", tr.request.id));
        let mut net = tiny_net(42);
        let runner =
            DynamicInference::new(ExitPolicy::entropy(THETA_MIXED).unwrap(), MAX_T).unwrap();
        let solo = runner.run_traced(&mut net, &tr.request.frames).unwrap();
        assert_eq!(outcome.status, CompletionStatus::Completed, "request {}", outcome.id);
        assert_eq!(outcome.prediction, Some(solo.outcome.prediction), "request {}", outcome.id);
        assert_eq!(outcome.timesteps_used, solo.outcome.timesteps_used, "request {}", outcome.id);
        assert_eq!(outcome.exited_early, solo.outcome.exited_early, "request {}", outcome.id);
        assert_eq!(
            bits(&outcome.scores),
            bits(&solo.outcome.scores),
            "request {} scores drifted",
            outcome.id
        );
        let acc = &solo.per_timestep.last().unwrap().accumulated_logits;
        assert_eq!(
            bits(&outcome.accumulated_logits),
            bits(acc),
            "request {} logits drifted",
            outcome.id
        );
    }
}

#[test]
fn duplicate_request_ids_are_refused() {
    let theta = ThetaController::fixed(THETA_MIXED).unwrap();
    let mut cluster = Cluster::simulated(
        tiny_net(42),
        transparent_cluster_config(theta),
        2,
        FaultSchedule::none(),
    )
    .unwrap();
    let mut rng = TensorRng::seed_from(7);
    let request =
        Request { id: 9, frames: vec![frame(&mut rng)], deadline_nanos: None, priority: 0 };
    assert!(cluster.submit(request.clone()).unwrap());
    assert!(cluster.submit(request).is_err(), "exactly-once accounting needs unique ids");
    cluster.run_until_idle().unwrap();
    assert_eq!(cluster.take_outcomes().len(), 1);
}
