//! Property suite for admission control and the dynamic-θ controller:
//! θ stays inside its configured band and responds monotonically to queue
//! pressure under adversarial seeded load, and no admitted request is ever
//! silently dropped — every submission terminates as completed, timed out
//! or rejected.

use dtsnn_serve::{
    replay_trace, Clock, CompletionStatus, Request, Server, ServerConfig, ServiceModel, SimClock,
    ThetaController, TracedRequest,
};
use dtsnn_snn::{Flatten, Layer, LifConfig, LifNeuron, Linear, Snn};
use dtsnn_tensor::{Tensor, TensorRng};
use std::collections::HashMap;

fn tiny_net(seed: u64) -> Snn {
    let mut rng = TensorRng::seed_from(seed);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Flatten::new()),
        Box::new(Linear::new(4, 8, &mut rng)),
        Box::new(LifNeuron::new(LifConfig::default())),
        Box::new(Linear::new(8, 3, &mut rng)),
    ];
    Snn::from_layers(layers)
}

fn frame(rng: &mut TensorRng) -> Tensor {
    Tensor::randn(&[1, 2, 2], 0.5, 0.5, rng)
}

/// Adversarial seeded arrival pattern: bursts of random size at random
/// gaps, including back-to-back zero-gap clumps.
fn adversarial_trace(n: usize, seed: u64, deadline: Option<u64>) -> Vec<TracedRequest> {
    let mut rng = TensorRng::seed_from(seed);
    let mut at = 0u64;
    let mut trace = Vec::with_capacity(n);
    let mut id = 0u64;
    while trace.len() < n {
        let burst = 1 + rng.below(5);
        for _ in 0..burst.min(n - trace.len()) {
            trace.push(TracedRequest {
                at_nanos: at,
                request: Request { id, frames: vec![frame(&mut rng)], deadline_nanos: deadline, priority: 0 },
            });
            id += 1;
        }
        at += rng.below(20_000) as u64;
    }
    trace
}

#[test]
fn theta_stays_in_band_and_is_monotone_in_queue_depth() {
    let mut rng = TensorRng::seed_from(0xFEED);
    for _ in 0..200 {
        let lo = rng.uniform(0.05, 0.9);
        let hi = rng.uniform(lo, 1.0).min(1.0);
        let half = rng.uniform(0.5, 64.0);
        let c = ThetaController::new(lo, hi, half).unwrap();
        let mut prev = f32::NEG_INFINITY;
        for depth in [0usize, 1, 2, 3, 5, 8, 13, 21, 100, 10_000, usize::MAX / 2] {
            let theta = c.theta_for(depth);
            assert!(
                (c.theta_min()..=c.theta_max()).contains(&theta),
                "theta {theta} escaped [{}, {}] at depth {depth}",
                c.theta_min(),
                c.theta_max()
            );
            assert!(theta >= prev, "theta must be monotone in depth: {theta} < {prev}");
            prev = theta;
        }
    }
}

#[test]
fn the_server_reports_thetas_only_inside_the_configured_band() {
    let controller = ThetaController::new(0.6, 0.99, 2.0).unwrap();
    let config = ServerConfig {
        max_timesteps: 6,
        slots: 1, // tiny capacity → deep queues → the controller's top end
        queue_capacity: 32,
        theta: controller,
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 100 },
        default_deadline_nanos: None,
        record_schedule: true,
    };
    let mut server = Server::new(tiny_net(5), config, SimClock::new()).unwrap();
    replay_trace(&mut server, &adversarial_trace(40, 0xBAD_5EED, None)).unwrap();
    let schedule = server.take_schedule();
    assert!(!schedule.is_empty());
    let (mut lo_seen, mut hi_seen) = (f32::INFINITY, f32::NEG_INFINITY);
    for s in &schedule {
        assert!(
            (0.6..=0.99).contains(&s.theta),
            "recorded theta {} escaped the band",
            s.theta
        );
        lo_seen = lo_seen.min(s.theta);
        hi_seen = hi_seen.max(s.theta);
    }
    // the adversarial burst pattern must actually sweep the controller:
    // idle steps at the floor, saturated steps well above it
    assert!(
        hi_seen - lo_seen > 0.05,
        "load must sweep theta through the band, saw [{lo_seen}, {hi_seen}]"
    );
}

#[test]
fn no_request_is_ever_silently_dropped() {
    // overload on purpose: 1 slot, tiny queue, tight deadlines
    let config = ServerConfig {
        max_timesteps: 6,
        slots: 1,
        queue_capacity: 4,
        theta: ThetaController::fixed(0.9).unwrap(),
        service: ServiceModel { step_fixed_nanos: 2000, step_per_row_nanos: 500 },
        default_deadline_nanos: Some(25_000),
        record_schedule: false,
    };
    let trace = adversarial_trace(60, 0xD00D, None);
    let mut server = Server::new(tiny_net(5), config, SimClock::new()).unwrap();
    replay_trace(&mut server, &trace).unwrap();
    let outcomes = server.take_outcomes();
    // every submitted id terminates exactly once
    assert_eq!(outcomes.len(), trace.len(), "every request needs exactly one outcome");
    let mut seen: HashMap<u64, usize> = HashMap::new();
    for o in &outcomes {
        *seen.entry(o.id).or_default() += 1;
    }
    for tr in &trace {
        assert_eq!(
            seen.get(&tr.request.id),
            Some(&1),
            "request {} must terminate exactly once",
            tr.request.id
        );
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, trace.len() as u64);
    assert_eq!(
        stats.completed + stats.timed_out + stats.rejected,
        stats.submitted,
        "terminations must account for every submission: {stats:?}"
    );
    // the overload must actually trigger all three terminal states
    assert!(stats.rejected > 0, "queue of 4 under a 60-request burst must reject: {stats:?}");
    assert!(stats.timed_out > 0, "25 µs deadlines under overload must time out: {stats:?}");
    assert!(stats.completed > 0, "some requests must still complete: {stats:?}");
    // deadline accounting: completed requests finished within budget,
    // timed-out ones are past it (queued expiries report at expiry time)
    for o in &outcomes {
        match o.status {
            CompletionStatus::Completed => assert!(
                o.latency_nanos() <= 25_000,
                "request {} completed past its deadline ({} ns)",
                o.id,
                o.latency_nanos()
            ),
            CompletionStatus::TimedOut => assert!(
                o.latency_nanos() > 25_000,
                "request {} timed out within budget ({} ns)",
                o.id,
                o.latency_nanos()
            ),
            CompletionStatus::Rejected => {
                assert_eq!(o.timesteps_used, 0);
                assert_eq!(o.prediction, None);
            }
            CompletionStatus::Failed => {
                panic!("a single server never exhausts a retry budget: {o:?}")
            }
        }
    }
}

#[test]
fn queued_requests_past_their_deadline_expire_without_running() {
    let config = ServerConfig {
        max_timesteps: 6,
        slots: 1,
        queue_capacity: 8,
        // θ low enough that the entropy policy never fires: the first
        // request holds the single slot for the full window
        theta: ThetaController::fixed(0.05).unwrap(),
        service: ServiceModel { step_fixed_nanos: 10_000, step_per_row_nanos: 0 },
        default_deadline_nanos: None,
        record_schedule: false,
    };
    let mut rng = TensorRng::seed_from(11);
    let mut server = Server::new(tiny_net(5), config, SimClock::new()).unwrap();
    // first request occupies the single slot for up to 60 µs; the second's
    // 5 µs budget expires while it waits in the queue
    assert!(server
        .submit(Request { id: 0, frames: vec![frame(&mut rng)], deadline_nanos: None, priority: 0 })
        .unwrap());
    server.step().unwrap();
    assert!(server
        .submit(Request { id: 1, frames: vec![frame(&mut rng)], deadline_nanos: Some(5_000), priority: 0 })
        .unwrap());
    server.run_until_idle().unwrap();
    let outcomes = server.take_outcomes();
    let expired = outcomes.iter().find(|o| o.id == 1).unwrap();
    assert_eq!(expired.status, CompletionStatus::TimedOut);
    assert_eq!(expired.timesteps_used, 0, "an expired queued request must never run");
    assert_eq!(expired.prediction, None);
    let served = outcomes.iter().find(|o| o.id == 0).unwrap();
    assert_eq!(served.status, CompletionStatus::Completed);
}

#[test]
fn admission_control_rejects_only_past_queue_capacity() {
    let config = ServerConfig {
        max_timesteps: 6,
        slots: 2,
        queue_capacity: 3,
        theta: ThetaController::fixed(0.9).unwrap(),
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 0 },
        default_deadline_nanos: None,
        record_schedule: false,
    };
    let mut rng = TensorRng::seed_from(13);
    let mut server = Server::new(tiny_net(5), config, SimClock::new()).unwrap();
    // without stepping, the queue alone bounds admissions
    for id in 0..5u64 {
        let accepted = server
            .submit(Request { id, frames: vec![frame(&mut rng)], deadline_nanos: None, priority: 0 })
            .unwrap();
        assert_eq!(accepted, id < 3, "queue of 3 must refuse the 4th submission (id {id})");
    }
    assert_eq!(server.stats().rejected, 2);
    let rejected: Vec<u64> = server
        .take_outcomes()
        .iter()
        .filter(|o| o.status == CompletionStatus::Rejected)
        .map(|o| o.id)
        .collect();
    assert_eq!(rejected, vec![3, 4]);
    // the queued three still complete
    server.run_until_idle().unwrap();
    let outcomes = server.take_outcomes();
    assert_eq!(outcomes.len(), 3);
    assert!(outcomes.iter().all(|o| o.status == CompletionStatus::Completed));
}

#[test]
fn theta_controller_saturates_cleanly_at_extreme_depths() {
    // the asymptote: d/(d+half) → 1, so θ(usize::MAX) must sit at (or one
    // float below) the ceiling without overflowing or going NaN
    let c = ThetaController::new(0.6, 0.95, 8.0).unwrap();
    let top = c.theta_for(usize::MAX);
    assert!(top.is_finite());
    assert!((c.theta_min()..=c.theta_max()).contains(&top));
    assert!(c.theta_max() - top < 1e-5, "θ(usize::MAX) must saturate at the ceiling, got {top}");
    assert_eq!(c.theta_for(0), c.theta_min(), "an idle queue must sit at the floor");

    // a half-pressure depth at the positive float floor makes any nonzero
    // depth saturate immediately — still clamped, still monotone
    let steep = ThetaController::new(0.6, 0.95, f32::MIN_POSITIVE).unwrap();
    assert_eq!(steep.theta_for(0), steep.theta_min());
    let one = steep.theta_for(1);
    assert!((steep.theta_min()..=steep.theta_max()).contains(&one));
    assert!(steep.theta_max() - one < 1e-5, "depth 1 must saturate a near-zero half, got {one}");
    assert!(steep.theta_for(usize::MAX) >= one);

    // a huge half-pressure depth pins θ to the floor at any finite load
    let flat = ThetaController::new(0.6, 0.95, f32::MAX).unwrap();
    let loaded = flat.theta_for(1_000_000);
    assert!(loaded - flat.theta_min() < 1e-5, "a vast half must stay at the floor, got {loaded}");
    // degenerate bands and parameters are refused outright
    assert!(ThetaController::new(0.6, 0.95, 0.0).is_err());
    assert!(ThetaController::new(0.6, 0.95, f32::INFINITY).is_err());
    assert!(ThetaController::new(0.6, 0.95, f32::NAN).is_err());
}

#[test]
fn zero_capacity_configs_are_refused_up_front() {
    let base = ServerConfig {
        max_timesteps: 6,
        slots: 2,
        queue_capacity: 8,
        theta: ThetaController::fixed(0.9).unwrap(),
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 0 },
        default_deadline_nanos: None,
        record_schedule: false,
    };
    for broken in [
        ServerConfig { queue_capacity: 0, ..base.clone() },
        ServerConfig { slots: 0, ..base.clone() },
        ServerConfig { max_timesteps: 0, ..base.clone() },
    ] {
        assert!(
            Server::new(tiny_net(5), broken, SimClock::new()).is_err(),
            "zero-capacity configs must be refused at construction"
        );
    }
    // the valid base still constructs
    assert!(Server::new(tiny_net(5), base, SimClock::new()).is_ok());
}

#[test]
fn an_already_expired_deadline_times_out_without_ever_running() {
    let config = ServerConfig {
        max_timesteps: 6,
        slots: 2,
        queue_capacity: 8,
        theta: ThetaController::fixed(0.9).unwrap(),
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 0 },
        default_deadline_nanos: None,
        record_schedule: false,
    };
    let mut rng = TensorRng::seed_from(19);
    let mut server = Server::new(tiny_net(5), config, SimClock::new()).unwrap();
    // a zero-nanosecond budget: the deadline equals the arrival instant,
    // and any clock movement at all expires it before the next step
    assert!(server
        .submit(Request { id: 0, frames: vec![frame(&mut rng)], deadline_nanos: Some(0), priority: 0 })
        .unwrap());
    server.clock().advance(1);
    assert!(server
        .submit(Request { id: 1, frames: vec![frame(&mut rng)], deadline_nanos: None, priority: 0 })
        .unwrap());
    server.run_until_idle().unwrap();
    let outcomes = server.take_outcomes();
    let dead = outcomes.iter().find(|o| o.id == 0).unwrap();
    assert_eq!(dead.status, CompletionStatus::TimedOut);
    assert_eq!(dead.timesteps_used, 0, "an expired-on-arrival request must never run");
    assert_eq!(dead.prediction, None);
    assert_eq!(dead.deadline_nanos, Some(0));
    let alive = outcomes.iter().find(|o| o.id == 1).unwrap();
    assert_eq!(alive.status, CompletionStatus::Completed);
}

#[test]
fn malformed_requests_are_refused_up_front() {
    let config = ServerConfig {
        max_timesteps: 6,
        slots: 2,
        queue_capacity: 8,
        theta: ThetaController::fixed(0.9).unwrap(),
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 0 },
        default_deadline_nanos: None,
        record_schedule: false,
    };
    let mut rng = TensorRng::seed_from(17);
    let mut server = Server::new(tiny_net(5), config, SimClock::new()).unwrap();
    // no frames
    assert!(server.submit(Request { id: 0, frames: vec![], deadline_nanos: None, priority: 0 }).is_err());
    // frame count neither 1 nor max_timesteps
    let frames: Vec<Tensor> = (0..3).map(|_| frame(&mut rng)).collect();
    assert!(server.submit(Request { id: 1, frames, deadline_nanos: None, priority: 0 }).is_err());
    // first accepted request fixes the shape; a disagreeing one is refused
    assert!(server
        .submit(Request { id: 2, frames: vec![frame(&mut rng)], deadline_nanos: None, priority: 0 })
        .unwrap());
    let wide = Tensor::randn(&[1, 4, 4], 0.5, 0.5, &mut rng);
    assert!(server.submit(Request { id: 3, frames: vec![wide], deadline_nanos: None, priority: 0 }).is_err());
    // a batch axis wider than one is refused
    let batched = Tensor::randn(&[2, 1, 2, 2], 0.5, 0.5, &mut rng);
    assert!(server.submit(Request { id: 4, frames: vec![batched], deadline_nanos: None, priority: 0 }).is_err());
    server.run_until_idle().unwrap();
}
