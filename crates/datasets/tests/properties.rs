//! Property-based tests of the synthetic data generators: determinism,
//! value ranges, balance and difficulty semantics under arbitrary valid
//! configurations.
//!
//! Cases come from a seeded [`TensorRng`] (24 per property, matching the
//! previous proptest configuration) so failures reproduce from the case index
//! alone and the suite needs no external crates.

use dtsnn_data::{EventConfig, SyntheticEvents, SyntheticVision, VisionConfig};
use dtsnn_tensor::TensorRng;

const CASES: u64 = 24;

fn case_rng(case: u64) -> TensorRng {
    TensorRng::seed_from(0xDA7A ^ case.wrapping_mul(0x9E37_79B9))
}

#[test]
fn vision_generator_respects_contract() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let classes = 2 + params.below(4);
        let exponent = params.uniform(0.5, 4.0);
        let noise = params.uniform(0.0, 0.8);
        let similarity = params.uniform(0.0, 0.9);
        let cfg = VisionConfig {
            classes,
            train_size: classes * 4,
            test_size: classes * 2,
            image_size: 8,
            difficulty_exponent: exponent,
            max_noise: noise,
            prototype_similarity: similarity,
            ..VisionConfig::default()
        };
        let ds = SyntheticVision::generate(&cfg, case).unwrap();
        assert_eq!(ds.train.len(), classes * 4, "case {case}");
        assert_eq!(ds.test.len(), classes * 2, "case {case}");
        // balanced classes
        let hist = ds.test_class_histogram();
        for &h in &hist {
            assert_eq!(h, 2, "case {case}");
        }
        // pixel range and difficulty range
        for s in ds.train.samples.iter().chain(&ds.test.samples) {
            assert!((0.0..=1.0).contains(&s.difficulty), "case {case}");
            assert!(s.frames[0].min() >= 0.0 && s.frames[0].max() <= 1.0, "case {case}");
            assert!(s.label < classes, "case {case}");
        }
    }
}

#[test]
fn vision_generator_is_deterministic() {
    for case in 0..CASES {
        let cfg = VisionConfig {
            classes: 3,
            train_size: 6,
            test_size: 3,
            image_size: 8,
            ..VisionConfig::default()
        };
        let a = SyntheticVision::generate(&cfg, case).unwrap();
        let b = SyntheticVision::generate(&cfg, case).unwrap();
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn event_generator_respects_contract() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let classes = 2 + params.below(3);
        let timesteps = 2 + params.below(6);
        let noise = params.uniform(0.0, 0.3);
        let cfg = EventConfig {
            classes,
            timesteps,
            train_size: classes * 2,
            test_size: classes,
            image_size: 8,
            max_noise_rate: noise,
            ..EventConfig::default()
        };
        let ds = SyntheticEvents::generate(&cfg, case).unwrap();
        assert_eq!(ds.frames_per_sample, timesteps, "case {case}");
        for s in &ds.test.samples {
            assert_eq!(s.frames.len(), timesteps, "case {case}");
            for f in &s.frames {
                assert_eq!(f.dims(), &[2usize, 8, 8], "case {case}");
                assert!(f.data().iter().all(|&v| v == 0.0 || v == 1.0), "case {case}");
            }
        }
    }
}

#[test]
fn higher_exponent_means_easier_corpus() {
    for case in 0..CASES {
        // larger difficulty exponent → lower mean difficulty
        let base = VisionConfig {
            classes: 3,
            train_size: 120,
            test_size: 3,
            image_size: 8,
            ..VisionConfig::default()
        };
        let easy_cfg = VisionConfig { difficulty_exponent: 4.0, ..base };
        let hard_cfg = VisionConfig { difficulty_exponent: 0.7, ..base };
        let easy = SyntheticVision::generate(&easy_cfg, case).unwrap();
        let hard = SyntheticVision::generate(&hard_cfg, case).unwrap();
        let mean = |d: Vec<f32>| d.iter().sum::<f32>() / d.len() as f32;
        assert!(
            mean(easy.train.difficulties()) < mean(hard.train.difficulties()),
            "case {case}"
        );
    }
}
