//! Property-based tests of the synthetic data generators: determinism,
//! value ranges, balance and difficulty semantics under arbitrary valid
//! configurations.

use dtsnn_data::{EventConfig, SyntheticEvents, SyntheticVision, VisionConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vision_generator_respects_contract(
        classes in 2usize..6,
        exponent in 0.5f32..4.0,
        noise in 0.0f32..0.8,
        similarity in 0.0f32..0.9,
        seed in 0u64..500,
    ) {
        let cfg = VisionConfig {
            classes,
            train_size: classes * 4,
            test_size: classes * 2,
            image_size: 8,
            difficulty_exponent: exponent,
            max_noise: noise,
            prototype_similarity: similarity,
            ..VisionConfig::default()
        };
        let ds = SyntheticVision::generate(&cfg, seed).unwrap();
        prop_assert_eq!(ds.train.len(), classes * 4);
        prop_assert_eq!(ds.test.len(), classes * 2);
        // balanced classes
        let hist = ds.test_class_histogram();
        for &h in &hist {
            prop_assert_eq!(h, 2);
        }
        // pixel range and difficulty range
        for s in ds.train.samples.iter().chain(&ds.test.samples) {
            prop_assert!((0.0..=1.0).contains(&s.difficulty));
            prop_assert!(s.frames[0].min() >= 0.0 && s.frames[0].max() <= 1.0);
            prop_assert!(s.label < classes);
        }
    }

    #[test]
    fn vision_generator_is_deterministic(seed in 0u64..500) {
        let cfg = VisionConfig {
            classes: 3,
            train_size: 6,
            test_size: 3,
            image_size: 8,
            ..VisionConfig::default()
        };
        let a = SyntheticVision::generate(&cfg, seed).unwrap();
        let b = SyntheticVision::generate(&cfg, seed).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn event_generator_respects_contract(
        classes in 2usize..5,
        timesteps in 2usize..8,
        noise in 0.0f32..0.3,
        seed in 0u64..500,
    ) {
        let cfg = EventConfig {
            classes,
            timesteps,
            train_size: classes * 2,
            test_size: classes,
            image_size: 8,
            max_noise_rate: noise,
            ..EventConfig::default()
        };
        let ds = SyntheticEvents::generate(&cfg, seed).unwrap();
        prop_assert_eq!(ds.frames_per_sample, timesteps);
        for s in &ds.test.samples {
            prop_assert_eq!(s.frames.len(), timesteps);
            for f in &s.frames {
                prop_assert_eq!(f.dims(), &[2usize, 8, 8]);
                prop_assert!(f.data().iter().all(|&v| v == 0.0 || v == 1.0));
            }
        }
    }

    #[test]
    fn higher_exponent_means_easier_corpus(seed in 0u64..200) {
        // larger difficulty exponent → lower mean difficulty
        let base = VisionConfig {
            classes: 3,
            train_size: 120,
            test_size: 3,
            image_size: 8,
            ..VisionConfig::default()
        };
        let easy_cfg = VisionConfig { difficulty_exponent: 4.0, ..base };
        let hard_cfg = VisionConfig { difficulty_exponent: 0.7, ..base };
        let easy = SyntheticVision::generate(&easy_cfg, seed).unwrap();
        let hard = SyntheticVision::generate(&hard_cfg, seed).unwrap();
        let mean = |d: Vec<f32>| d.iter().sum::<f32>() / d.len() as f32;
        prop_assert!(mean(easy.train.difficulties()) < mean(hard.train.difficulties()));
    }
}
