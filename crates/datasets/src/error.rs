use dtsnn_tensor::TensorError;
use std::fmt;

/// Errors produced by dataset synthesis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// A configuration value was outside its documented domain.
    InvalidConfig(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig(msg) => write!(f, "invalid dataset configuration: {msg}"),
            DataError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::InvalidConfig("zero classes".into());
        assert!(e.to_string().contains("zero classes"));
        let t = DataError::from(TensorError::InvalidArgument("x".into()));
        assert!(std::error::Error::source(&t).is_some());
    }
}
