//! Synthetic datasets for the DT-SNN reproduction.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100, TinyImageNet and CIFAR10-DVS.
//! Natural-image corpora are not available here, so this crate synthesizes
//! datasets that preserve the *property DT-SNN exploits*: a difficulty
//! spectrum in which most samples are easy (confidently classified after one
//! timestep) and a minority are hard (require the full window). Every sample
//! carries an explicit difficulty coefficient, drawn from a heavy-tailed
//! distribution, which controls noise, contrast and occlusion.
//!
//! Static datasets produce one frame per sample (direct encoding); the
//! DVS-like dataset produces one binary event frame per timestep.
//!
//! # Example
//!
//! ```
//! use dtsnn_data::{SyntheticVision, VisionConfig};
//!
//! # fn main() -> Result<(), dtsnn_data::DataError> {
//! let config = VisionConfig { classes: 4, train_size: 32, test_size: 16, ..VisionConfig::default() };
//! let data = SyntheticVision::generate(&config, 42)?;
//! assert_eq!(data.train.len(), 32);
//! assert_eq!(data.test.len(), 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod events;
mod presets;
mod vision;

pub use dataset::{Dataset, Sample, Split};
pub use error::DataError;
pub use events::{EventConfig, SyntheticEvents};
pub use presets::{cifar10_like, cifar100_like, dvs_like, tiny_imagenet_like, Preset};
pub use vision::{SyntheticVision, VisionConfig};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, DataError>;
