//! Named dataset presets mirroring the paper's four benchmarks.
//!
//! | Paper dataset | Preset | Stand-in properties |
//! |---|---|---|
//! | CIFAR-10 | [`cifar10_like`] | 10 classes, moderate difficulty tail |
//! | CIFAR-100 | [`cifar100_like`] | more classes, harder tail (lower accuracy, later exits) |
//! | TinyImageNet | [`tiny_imagenet_like`] | hardest: more classes, stronger corruption |
//! | CIFAR10-DVS | [`dvs_like`] | 10-timestep binary event streams |
//!
//! Sizes are scaled for CPU training; pass a `scale` > 1 for larger corpora.

use crate::events::{EventConfig, SyntheticEvents};
use crate::vision::{SyntheticVision, VisionConfig};
use crate::{Dataset, Result};

/// Identifies one of the four paper-benchmark stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// CIFAR-10 stand-in.
    Cifar10,
    /// CIFAR-100 stand-in.
    Cifar100,
    /// TinyImageNet stand-in.
    TinyImageNet,
    /// CIFAR10-DVS stand-in (event streams, T = 10).
    Cifar10Dvs,
}

impl Preset {
    /// Generates the preset at the given corpus scale (1 = default sizes).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DataError::InvalidConfig`] if `scale` is 0.
    pub fn generate(&self, scale: usize, seed: u64) -> Result<Dataset> {
        match self {
            Preset::Cifar10 => cifar10_like(scale, seed),
            Preset::Cifar100 => cifar100_like(scale, seed),
            Preset::TinyImageNet => tiny_imagenet_like(scale, seed),
            Preset::Cifar10Dvs => dvs_like(scale, seed),
        }
    }

    /// Display name used in experiment tables (paper nomenclature).
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Cifar10 => "CIFAR-10*",
            Preset::Cifar100 => "CIFAR-100*",
            Preset::TinyImageNet => "TinyImageNet*",
            Preset::Cifar10Dvs => "CIFAR10-DVS*",
        }
    }

    /// The full timestep window the paper uses for this dataset
    /// (4 for static benchmarks, 10 for DVS).
    pub fn paper_timesteps(&self) -> usize {
        match self {
            Preset::Cifar10Dvs => 10,
            _ => 4,
        }
    }

    /// All four presets in paper order.
    pub fn all() -> [Preset; 4] {
        [Preset::Cifar10, Preset::Cifar100, Preset::TinyImageNet, Preset::Cifar10Dvs]
    }
}

fn check_scale(scale: usize) -> Result<usize> {
    if scale == 0 {
        return Err(crate::DataError::InvalidConfig("scale must be ≥ 1".into()));
    }
    Ok(scale)
}

/// CIFAR-10 stand-in: 10 classes, 3×16×16, gentle difficulty tail.
///
/// # Errors
///
/// Returns [`crate::DataError::InvalidConfig`] if `scale` is 0.
pub fn cifar10_like(scale: usize, seed: u64) -> Result<Dataset> {
    let scale = check_scale(scale)?;
    SyntheticVision::generate(
        &VisionConfig {
            classes: 10,
            train_size: 600 * scale,
            test_size: 300 * scale,
            difficulty_exponent: 2.2,
            max_noise: 0.4,
            prototype_similarity: 0.8,
            ..VisionConfig::default()
        },
        seed,
    )
}

/// CIFAR-100 stand-in: 20 classes and a heavier difficulty tail, so accuracy
/// is lower and more samples need extra timesteps (as in Table II).
///
/// # Errors
///
/// Returns [`crate::DataError::InvalidConfig`] if `scale` is 0.
pub fn cifar100_like(scale: usize, seed: u64) -> Result<Dataset> {
    let scale = check_scale(scale)?;
    SyntheticVision::generate(
        &VisionConfig {
            classes: 20,
            train_size: 1000 * scale,
            test_size: 400 * scale,
            difficulty_exponent: 1.8,
            max_noise: 0.6,
            min_contrast: 0.3,
            prototype_similarity: 0.85,
            ..VisionConfig::default()
        },
        seed,
    )
}

/// TinyImageNet stand-in: the hardest static benchmark — more classes,
/// strongest corruption, flattest difficulty distribution.
///
/// # Errors
///
/// Returns [`crate::DataError::InvalidConfig`] if `scale` is 0.
pub fn tiny_imagenet_like(scale: usize, seed: u64) -> Result<Dataset> {
    let scale = check_scale(scale)?;
    SyntheticVision::generate(
        &VisionConfig {
            classes: 20,
            train_size: 1000 * scale,
            test_size: 400 * scale,
            difficulty_exponent: 1.4,
            max_noise: 0.7,
            min_contrast: 0.25,
            occlusion_threshold: 0.65,
            prototype_similarity: 0.85,
            ..VisionConfig::default()
        },
        seed,
    )
}

/// CIFAR10-DVS stand-in: 10-class binary event streams over 10 timesteps.
///
/// # Errors
///
/// Returns [`crate::DataError::InvalidConfig`] if `scale` is 0.
pub fn dvs_like(scale: usize, seed: u64) -> Result<Dataset> {
    let scale = check_scale(scale)?;
    SyntheticEvents::generate(
        &EventConfig { train_size: 400 * scale, test_size: 200 * scale, ..EventConfig::default() },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate() {
        for p in Preset::all() {
            let ds = p.generate(1, 1).unwrap();
            assert!(!ds.train.is_empty());
            assert!(!ds.test.is_empty());
            assert_eq!(
                ds.frames_per_sample,
                if p == Preset::Cifar10Dvs { 10 } else { 1 }
            );
        }
    }

    #[test]
    fn zero_scale_rejected() {
        assert!(cifar10_like(0, 1).is_err());
        assert!(dvs_like(0, 1).is_err());
    }

    #[test]
    fn paper_timesteps_match_table2() {
        assert_eq!(Preset::Cifar10.paper_timesteps(), 4);
        assert_eq!(Preset::Cifar10Dvs.paper_timesteps(), 10);
    }

    #[test]
    fn names_are_distinct_and_starred() {
        let names: Vec<_> = Preset::all().iter().map(|p| p.name()).collect();
        for n in &names {
            assert!(n.ends_with('*'), "{n} should be starred as a stand-in");
        }
        let mut d = names.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), names.len());
    }

    #[test]
    fn difficulty_ordering_cifar10_easier_than_tinyimagenet() {
        let easy = cifar10_like(1, 2).unwrap();
        let hard = tiny_imagenet_like(1, 2).unwrap();
        let mean = |ds: &Dataset| {
            let d = ds.train.difficulties();
            d.iter().sum::<f32>() / d.len() as f32
        };
        assert!(mean(&easy) < mean(&hard));
    }
}
