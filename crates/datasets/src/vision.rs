//! Static synthetic vision datasets (the CIFAR / TinyImageNet stand-ins).
//!
//! Each class is a smooth random prototype image (a mixture of low-frequency
//! sinusoids). A sample is its class prototype degraded by a per-sample
//! difficulty coefficient `d`:
//!
//! - additive Gaussian noise with σ growing in `d`,
//! - contrast shrinking in `d`,
//! - a random occluding patch when `d` is large.
//!
//! `d` follows `u^difficulty_exponent` with `u ~ U[0,1)`: for exponents > 1
//! most samples are easy and a small tail is hard — the regime in which
//! DT-SNN exits early on the majority (Fig. 5's pie charts).

use crate::dataset::{Dataset, Sample, Split};
use crate::{DataError, Result};
use dtsnn_tensor::{Tensor, TensorRng};

/// Configuration of a [`SyntheticVision`] dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisionConfig {
    /// Number of classes.
    pub classes: usize,
    /// Input channels.
    pub channels: usize,
    /// Square image extent.
    pub image_size: usize,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Exponent of the difficulty distribution `d = u^e` (larger → easier
    /// corpus; must be positive).
    pub difficulty_exponent: f32,
    /// Noise σ at `d = 1`.
    pub max_noise: f32,
    /// Minimum contrast retained at `d = 1` (in `(0, 1]`).
    pub min_contrast: f32,
    /// Difficulty above which an occluding patch is stamped.
    pub occlusion_threshold: f32,
    /// Number of sinusoidal components per prototype channel.
    pub prototype_components: usize,
    /// Prototype similarity in `[0, 1)`: fraction of a shared base pattern
    /// mixed into every class prototype. Higher values bring the classes
    /// closer together, so telling them apart needs the fine-grained rate
    /// code that only accumulates over several timesteps (the regime of the
    /// paper's Fig. 2).
    pub prototype_similarity: f32,
}

impl Default for VisionConfig {
    fn default() -> Self {
        VisionConfig {
            classes: 10,
            channels: 3,
            image_size: 16,
            train_size: 512,
            test_size: 256,
            difficulty_exponent: 2.5,
            max_noise: 0.55,
            min_contrast: 0.35,
            occlusion_threshold: 0.75,
            prototype_components: 6,
            prototype_similarity: 0.0,
        }
    }
}

impl VisionConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for zero extents or out-of-range
    /// coefficients.
    pub fn validate(&self) -> Result<()> {
        if self.classes < 2 {
            return Err(DataError::InvalidConfig("need at least 2 classes".into()));
        }
        if self.channels == 0 || self.image_size == 0 {
            return Err(DataError::InvalidConfig("channels and image_size must be nonzero".into()));
        }
        if self.train_size == 0 || self.test_size == 0 {
            return Err(DataError::InvalidConfig("train and test sizes must be nonzero".into()));
        }
        if self.difficulty_exponent <= 0.0 {
            return Err(DataError::InvalidConfig("difficulty_exponent must be positive".into()));
        }
        if !(0.0 < self.min_contrast && self.min_contrast <= 1.0) {
            return Err(DataError::InvalidConfig("min_contrast must be in (0,1]".into()));
        }
        if self.max_noise < 0.0 {
            return Err(DataError::InvalidConfig("max_noise must be nonnegative".into()));
        }
        if self.prototype_components == 0 {
            return Err(DataError::InvalidConfig("prototype_components must be nonzero".into()));
        }
        if !(0.0..1.0).contains(&self.prototype_similarity) {
            return Err(DataError::InvalidConfig("prototype_similarity must be in [0,1)".into()));
        }
        Ok(())
    }
}

/// Generator for static synthetic vision datasets.
#[derive(Debug, Clone)]
pub struct SyntheticVision {
    prototypes: Vec<Tensor>,
    config: VisionConfig,
}

impl SyntheticVision {
    /// Generates a complete dataset (prototypes, train split, test split),
    /// deterministically in `(config, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for invalid configurations.
    pub fn generate(config: &VisionConfig, seed: u64) -> Result<Dataset> {
        config.validate()?;
        let mut rng = TensorRng::seed_from(seed);
        let gen = SyntheticVision::with_prototypes(config, &mut rng);
        let train = gen.split(config.train_size, &mut rng.fork(1));
        let test = gen.split(config.test_size, &mut rng.fork(2));
        Ok(Dataset {
            name: format!("synth-vision-{}c-{}px", config.classes, config.image_size),
            classes: config.classes,
            channels: config.channels,
            image_size: config.image_size,
            frames_per_sample: 1,
            train,
            test,
        })
    }

    /// Builds the per-class prototypes, mixing in the shared base pattern.
    fn with_prototypes(config: &VisionConfig, rng: &mut TensorRng) -> Self {
        let sim = config.prototype_similarity;
        let base = Self::prototype(config, rng);
        let prototypes = (0..config.classes)
            .map(|_| {
                let unique = Self::prototype(config, rng);
                // convex blend, then renormalize to [0, 1]
                let mut p = base.scale(sim);
                p.axpy(1.0 - sim, &unique).expect("same prototype shape");
                let (lo, hi) = (p.min(), p.max());
                let range = (hi - lo).max(1e-6);
                p.map(|v| (v - lo) / range)
            })
            .collect();
        SyntheticVision { prototypes, config: *config }
    }

    /// Crate-internal access to prototype synthesis (shared with the event
    /// generator).
    pub(crate) fn prototype_for(config: &VisionConfig, rng: &mut TensorRng) -> Tensor {
        Self::prototype(config, rng)
    }

    /// Smooth random pattern in `[0, 1]`: a sum of low-frequency sinusoids.
    fn prototype(config: &VisionConfig, rng: &mut TensorRng) -> Tensor {
        let s = config.image_size;
        let c = config.channels;
        let mut img = Tensor::zeros(&[c, s, s]);
        for ci in 0..c {
            // random sinusoid mixture per channel
            let comps: Vec<(f32, f32, f32, f32)> = (0..config.prototype_components)
                .map(|_| {
                    (
                        rng.uniform(0.5, 2.5),                       // fx (cycles per image)
                        rng.uniform(0.5, 2.5),                       // fy
                        rng.uniform(0.0, std::f32::consts::TAU),     // phase
                        rng.uniform(0.4, 1.0),                       // amplitude
                    )
                })
                .collect();
            for y in 0..s {
                for x in 0..s {
                    let (xf, yf) = (x as f32 / s as f32, y as f32 / s as f32);
                    let mut v = 0.0;
                    for &(fx, fy, ph, a) in &comps {
                        v += a * (std::f32::consts::TAU * (fx * xf + fy * yf) + ph).sin();
                    }
                    img.set(&[ci, y, x], v).expect("in-range prototype index");
                }
            }
        }
        // normalize to [0, 1]
        let (lo, hi) = (img.min(), img.max());
        let range = (hi - lo).max(1e-6);
        img.map(|v| (v - lo) / range)
    }

    /// Draws a difficulty coefficient from the heavy-tailed distribution.
    fn draw_difficulty(&self, rng: &mut TensorRng) -> f32 {
        rng.uniform(0.0, 1.0).powf(self.config.difficulty_exponent)
    }

    /// Synthesizes one sample of class `label` at difficulty `d`.
    fn render(&self, label: usize, d: f32, rng: &mut TensorRng) -> Sample {
        let cfg = &self.config;
        let proto = &self.prototypes[label];
        let contrast = 1.0 - (1.0 - cfg.min_contrast) * d;
        let noise = cfg.max_noise * d;
        let mut img = proto.map(|v| 0.5 + (v - 0.5) * contrast);
        if noise > 0.0 {
            for v in img.data_mut() {
                *v += rng.normal(0.0, noise);
            }
        }
        if d > cfg.occlusion_threshold {
            // stamp a gray patch covering ~1/4 of the extent
            let s = cfg.image_size;
            let ps = (s / 2).max(1);
            let oy = rng.below(s - ps + 1);
            let ox = rng.below(s - ps + 1);
            for ci in 0..cfg.channels {
                for y in oy..oy + ps {
                    for x in ox..ox + ps {
                        img.set(&[ci, y, x], 0.5).expect("in-range occlusion index");
                    }
                }
            }
        }
        img.map_inplace(|v| v.clamp(0.0, 1.0));
        Sample { frames: vec![img], label, difficulty: d }
    }

    /// Generates `n` samples with round-robin class balance.
    fn split(&self, n: usize, rng: &mut TensorRng) -> Split {
        (0..n)
            .map(|i| {
                let label = i % self.config.classes;
                let d = self.draw_difficulty(rng);
                self.render(label, d, rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> VisionConfig {
        VisionConfig { classes: 4, train_size: 40, test_size: 20, ..VisionConfig::default() }
    }

    #[test]
    fn config_validation() {
        let mut c = small_config();
        assert!(c.validate().is_ok());
        c.classes = 1;
        assert!(c.validate().is_err());
        c = small_config();
        c.difficulty_exponent = 0.0;
        assert!(c.validate().is_err());
        c = small_config();
        c.min_contrast = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let c = small_config();
        let a = SyntheticVision::generate(&c, 9).unwrap();
        let b = SyntheticVision::generate(&c, 9).unwrap();
        assert_eq!(a.train.samples[0].frames[0], b.train.samples[0].frames[0]);
        let c2 = SyntheticVision::generate(&c, 10).unwrap();
        assert_ne!(a.train.samples[0].frames[0], c2.train.samples[0].frames[0]);
    }

    #[test]
    fn values_in_unit_range() {
        let ds = SyntheticVision::generate(&small_config(), 1).unwrap();
        for s in ds.train.samples.iter().chain(&ds.test.samples) {
            let f = &s.frames[0];
            assert!(f.min() >= 0.0 && f.max() <= 1.0);
            assert_eq!(f.dims(), &[3, 16, 16]);
        }
    }

    #[test]
    fn class_balanced_splits() {
        let ds = SyntheticVision::generate(&small_config(), 2).unwrap();
        let h = ds.test_class_histogram();
        assert_eq!(h, vec![5, 5, 5, 5]);
    }

    #[test]
    fn difficulty_distribution_is_heavy_tailed() {
        let c = VisionConfig { train_size: 2000, ..small_config() };
        let ds = SyntheticVision::generate(&c, 3).unwrap();
        let d = ds.train.difficulties();
        let easy = d.iter().filter(|&&x| x < 0.2).count() as f32 / d.len() as f32;
        let hard = d.iter().filter(|&&x| x > 0.8).count() as f32 / d.len() as f32;
        // u^2.5: P(d<0.2) = 0.2^0.4 ≈ 0.52, P(d>0.8) = 1−0.8^0.4 ≈ 0.085
        assert!(easy > 0.4, "easy fraction {easy}");
        assert!(hard < 0.15, "hard fraction {hard}");
        assert!(easy > hard * 2.0);
    }

    #[test]
    fn easy_samples_closer_to_prototype_than_hard() {
        let c = small_config();
        let mut rng = TensorRng::seed_from(4);
        let gen = SyntheticVision::with_prototypes(&c, &mut rng);
        let easy = gen.render(0, 0.0, &mut rng);
        let hard = gen.render(0, 1.0, &mut rng);
        let proto = &gen.prototypes[0];
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.sub(b).unwrap().norm_sq()
        };
        assert!(dist(&easy.frames[0], proto) < dist(&hard.frames[0], proto));
    }

    #[test]
    fn prototypes_are_distinct_across_classes() {
        let c = small_config();
        let mut rng = TensorRng::seed_from(5);
        let gen = SyntheticVision::with_prototypes(&c, &mut rng);
        for i in 0..c.classes {
            for j in (i + 1)..c.classes {
                let d = gen.prototypes[i].sub(&gen.prototypes[j]).unwrap().norm_sq();
                assert!(d > 1.0, "prototypes {i} and {j} nearly identical (d={d})");
            }
        }
    }
}
