//! Dataset containers shared by all generators.

use dtsnn_tensor::Tensor;

/// One labelled sample: a frame sequence plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Frame sequence: one `[c, h, w]` tensor for static images, or one per
    /// timestep for event data.
    pub frames: Vec<Tensor>,
    /// Class index.
    pub label: usize,
    /// Ground-truth difficulty coefficient in `[0, 1]` used at synthesis time
    /// (0 = pristine prototype, 1 = maximally corrupted). Exposed so
    /// experiments can check that the exit policy correlates with difficulty
    /// (Fig. 8).
    pub difficulty: f32,
}

/// A train or test split.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Split {
    /// Samples in this split.
    pub samples: Vec<Sample>,
}

impl Split {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Frame sequences in the layout `dtsnn_snn::Trainer::fit` consumes.
    pub fn frames(&self) -> Vec<Vec<Tensor>> {
        self.samples.iter().map(|s| s.frames.clone()).collect()
    }

    /// Labels, aligned with [`Split::frames`].
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Difficulty coefficients, aligned with [`Split::frames`].
    pub fn difficulties(&self) -> Vec<f32> {
        self.samples.iter().map(|s| s.difficulty).collect()
    }

    /// A new split containing only the first `n` samples.
    pub fn truncated(&self, n: usize) -> Split {
        Split { samples: self.samples.iter().take(n).cloned().collect() }
    }

    /// The sample with the lowest difficulty.
    ///
    /// Ordering uses [`f32::total_cmp`], so a NaN difficulty (corrupt
    /// metadata) sorts above every finite value instead of panicking the
    /// comparison — it can never be reported as "easiest".
    pub fn easiest(&self) -> Option<&Sample> {
        self.samples.iter().min_by(|a, b| a.difficulty.total_cmp(&b.difficulty))
    }

    /// The sample with the highest difficulty (NaN-safe; see
    /// [`Split::easiest`]).
    pub fn hardest(&self) -> Option<&Sample> {
        self.samples.iter().max_by(|a, b| a.difficulty.total_cmp(&b.difficulty))
    }
}

impl FromIterator<Sample> for Split {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        Split { samples: iter.into_iter().collect() }
    }
}

impl Extend<Sample> for Split {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

/// A complete dataset: train and test splits plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (for experiment tables).
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Input channels.
    pub channels: usize,
    /// Square image extent.
    pub image_size: usize,
    /// Frames per sample (1 for static, T for event streams).
    pub frames_per_sample: usize,
    /// Training split.
    pub train: Split,
    /// Test split.
    pub test: Split,
}

impl Dataset {
    /// Per-class sample counts of the test split (balance check).
    pub fn test_class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for s in &self.test.samples {
            h[s.label] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: usize, difficulty: f32) -> Sample {
        Sample { frames: vec![Tensor::zeros(&[1, 2, 2])], label, difficulty }
    }

    #[test]
    fn split_accessors() {
        let split: Split = vec![sample(0, 0.1), sample(1, 0.9)].into_iter().collect();
        assert_eq!(split.len(), 2);
        assert!(!split.is_empty());
        assert_eq!(split.labels(), vec![0, 1]);
        assert_eq!(split.difficulties(), vec![0.1, 0.9]);
        assert_eq!(split.frames().len(), 2);
        assert_eq!(split.truncated(1).len(), 1);
    }

    #[test]
    fn difficulty_extremes_are_nan_safe() {
        // regression: the previous idiom `partial_cmp(..).expect(..)` panicked
        // on NaN difficulties; total_cmp must order them deterministically
        let split: Split =
            vec![sample(0, 0.3), sample(1, f32::NAN), sample(2, 0.1)].into_iter().collect();
        assert_eq!(split.easiest().unwrap().label, 2);
        // NaN sorts above every finite value under total_cmp, so it surfaces
        // as "hardest" rather than corrupting the minimum
        assert!(split.hardest().unwrap().difficulty.is_nan());
        assert!(Split::default().easiest().is_none());
        assert!(Split::default().hardest().is_none());
    }

    #[test]
    fn split_extend() {
        let mut split = Split::default();
        split.extend(vec![sample(0, 0.0)]);
        assert_eq!(split.len(), 1);
    }

    #[test]
    fn histogram_counts_labels() {
        let ds = Dataset {
            name: "t".into(),
            classes: 3,
            channels: 1,
            image_size: 2,
            frames_per_sample: 1,
            train: Split::default(),
            test: vec![sample(0, 0.0), sample(2, 0.0), sample(2, 0.0)].into_iter().collect(),
        };
        assert_eq!(ds.test_class_histogram(), vec![1, 0, 2]);
    }
}
