//! Synthetic event-stream dataset (the CIFAR10-DVS stand-in).
//!
//! A dynamic-vision-sensor records brightness *changes* as sparse binary
//! events. We emulate this by translating a class prototype across the field
//! of view and thresholding the inter-frame intensity difference into ON/OFF
//! event channels, one frame per timestep. Per-sample difficulty controls
//! event noise (spurious events) and drop-out (missed events).

use crate::dataset::{Dataset, Sample, Split};
use crate::vision::VisionConfig;
use crate::{DataError, Result};
use dtsnn_tensor::{Tensor, TensorRng};

/// Configuration of a [`SyntheticEvents`] dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// Number of classes.
    pub classes: usize,
    /// Square frame extent.
    pub image_size: usize,
    /// Frames per sample (the paper uses T = 10 for CIFAR10-DVS).
    pub timesteps: usize,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Intensity change that triggers an event.
    pub event_threshold: f32,
    /// Exponent of the difficulty distribution (see [`VisionConfig`]).
    pub difficulty_exponent: f32,
    /// Probability of a spurious event per pixel at difficulty 1.
    pub max_noise_rate: f32,
    /// Probability of dropping a true event at difficulty 1.
    pub max_drop_rate: f32,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            classes: 10,
            image_size: 16,
            timesteps: 10,
            train_size: 512,
            test_size: 256,
            event_threshold: 0.08,
            difficulty_exponent: 2.5,
            max_noise_rate: 0.12,
            max_drop_rate: 0.5,
        }
    }
}

impl EventConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for zero extents or rates outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.classes < 2 {
            return Err(DataError::InvalidConfig("need at least 2 classes".into()));
        }
        if self.image_size == 0 || self.timesteps == 0 {
            return Err(DataError::InvalidConfig("image_size and timesteps must be nonzero".into()));
        }
        if self.train_size == 0 || self.test_size == 0 {
            return Err(DataError::InvalidConfig("train and test sizes must be nonzero".into()));
        }
        if self.event_threshold <= 0.0 {
            return Err(DataError::InvalidConfig("event_threshold must be positive".into()));
        }
        if self.difficulty_exponent <= 0.0 {
            return Err(DataError::InvalidConfig("difficulty_exponent must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.max_noise_rate) || !(0.0..=1.0).contains(&self.max_drop_rate)
        {
            return Err(DataError::InvalidConfig("event rates must be in [0,1]".into()));
        }
        Ok(())
    }
}

/// Generator for event-stream datasets.
#[derive(Debug, Clone)]
pub struct SyntheticEvents {
    prototypes: Vec<Tensor>,
    config: EventConfig,
}

impl SyntheticEvents {
    /// Generates a complete event dataset, deterministically in
    /// `(config, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for invalid configurations.
    pub fn generate(config: &EventConfig, seed: u64) -> Result<Dataset> {
        config.validate()?;
        let mut rng = TensorRng::seed_from(seed);
        // Reuse the vision prototype machinery with a single channel.
        let vis = VisionConfig {
            classes: config.classes,
            channels: 1,
            image_size: config.image_size,
            train_size: 1,
            test_size: 1,
            ..VisionConfig::default()
        };
        let prototypes = (0..config.classes)
            .map(|_| super::vision::SyntheticVision::prototype_for(&vis, &mut rng))
            .collect();
        let gen = SyntheticEvents { prototypes, config: *config };
        let train = gen.split(config.train_size, &mut rng.fork(1));
        let test = gen.split(config.test_size, &mut rng.fork(2));
        Ok(Dataset {
            name: format!("synth-dvs-{}c-{}t", config.classes, config.timesteps),
            classes: config.classes,
            channels: 2,
            image_size: config.image_size,
            frames_per_sample: config.timesteps,
            train,
            test,
        })
    }

    /// Renders one sample: the prototype translated along a random straight
    /// trajectory, differenced and thresholded into ON/OFF event frames.
    fn render(&self, label: usize, d: f32, rng: &mut TensorRng) -> Sample {
        let cfg = &self.config;
        let s = cfg.image_size;
        let proto = &self.prototypes[label];
        // random velocity, at most ~1.5 px/frame in each axis
        let vx = rng.uniform(-1.5, 1.5);
        let vy = rng.uniform(-1.5, 1.5);
        let noise_rate = cfg.max_noise_rate * d;
        let drop_rate = cfg.max_drop_rate * d;
        let intensity_at = |t: usize, y: usize, x: usize| -> f32 {
            // toroidal shift keeps the object in frame
            let sy = ((y as f32 - vy * t as f32).rem_euclid(s as f32)) as usize % s;
            let sx = ((x as f32 - vx * t as f32).rem_euclid(s as f32)) as usize % s;
            proto.at(&[0, sy, sx]).expect("in-range prototype index")
        };
        let mut frames = Vec::with_capacity(cfg.timesteps);
        for t in 0..cfg.timesteps {
            let mut frame = Tensor::zeros(&[2, s, s]);
            for y in 0..s {
                for x in 0..s {
                    let prev = intensity_at(t, y, x);
                    let cur = intensity_at(t + 1, y, x);
                    let delta = cur - prev;
                    let mut on = delta > cfg.event_threshold;
                    let mut off = delta < -cfg.event_threshold;
                    if (on || off) && rng.bernoulli(drop_rate) {
                        on = false;
                        off = false;
                    }
                    if !on && rng.bernoulli(noise_rate * 0.5) {
                        on = true;
                    }
                    if !off && rng.bernoulli(noise_rate * 0.5) {
                        off = true;
                    }
                    if on {
                        frame.set(&[0, y, x], 1.0).expect("in-range event index");
                    }
                    if off {
                        frame.set(&[1, y, x], 1.0).expect("in-range event index");
                    }
                }
            }
            frames.push(frame);
        }
        Sample { frames, label, difficulty: d }
    }

    fn split(&self, n: usize, rng: &mut TensorRng) -> Split {
        (0..n)
            .map(|i| {
                let label = i % self.config.classes;
                let d = rng.uniform(0.0, 1.0).powf(self.config.difficulty_exponent);
                self.render(label, d, rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> EventConfig {
        EventConfig { classes: 3, timesteps: 5, train_size: 12, test_size: 6, ..EventConfig::default() }
    }

    #[test]
    fn config_validation() {
        assert!(small_config().validate().is_ok());
        assert!(EventConfig { timesteps: 0, ..small_config() }.validate().is_err());
        assert!(EventConfig { max_noise_rate: 1.5, ..small_config() }.validate().is_err());
        assert!(EventConfig { event_threshold: 0.0, ..small_config() }.validate().is_err());
    }

    #[test]
    fn frames_are_binary_two_channel() {
        let ds = SyntheticEvents::generate(&small_config(), 7).unwrap();
        assert_eq!(ds.frames_per_sample, 5);
        for s in &ds.train.samples {
            assert_eq!(s.frames.len(), 5);
            for f in &s.frames {
                assert_eq!(f.dims(), &[2, 16, 16]);
                assert!(f.data().iter().all(|&v| v == 0.0 || v == 1.0));
            }
        }
    }

    #[test]
    fn moving_prototype_produces_events() {
        let ds = SyntheticEvents::generate(&small_config(), 8).unwrap();
        // at least some frames carry events for easy samples (NaN-safe
        // total_cmp ordering via Split::easiest)
        let easy = ds.train.easiest();
        let total: f32 = easy.unwrap().frames.iter().map(|f| f.sum()).sum();
        assert!(total > 0.0, "no events generated");
    }

    #[test]
    fn deterministic_in_seed() {
        let c = small_config();
        let a = SyntheticEvents::generate(&c, 3).unwrap();
        let b = SyntheticEvents::generate(&c, 3).unwrap();
        assert_eq!(a.train.samples[0].frames, b.train.samples[0].frames);
    }

    #[test]
    fn event_density_is_sparse() {
        let ds = SyntheticEvents::generate(&small_config(), 9).unwrap();
        let mut density = 0.0;
        let mut count = 0;
        for s in &ds.test.samples {
            for f in &s.frames {
                density += f.density();
                count += 1;
            }
        }
        let mean = density / count as f32;
        assert!(mean < 0.5, "event frames too dense: {mean}");
    }
}
