//! Automated layer→tile placement search (ROADMAP item 3).
//!
//! Minimizes the EDP reported by the event-driven simulator ([`crate::sim`])
//! over layer placement orders: a greedy best-swap descent seeds a
//! simulated-annealing refinement. Distant consecutive layers pay extra
//! byte-hops of interconnect energy and extra serialization on contended
//! mesh links, so the order a network's layers claim tile blocks in is a
//! genuine optimization variable.
//!
//! # Determinism
//!
//! The search is seed-reproducible and bitwise invariant to `DTSNN_THREADS`
//! via the repo's fold discipline: every random draw (move proposals and
//! Metropolis thresholds) happens *serially* before each round's candidates
//! are evaluated, candidate EDPs are computed with the order-preserving
//! [`map_chunks`] fan-out, and the accept decision folds over the results in
//! candidate-index order (first acceptable candidate wins). The simulator
//! itself is single-threaded, so the whole trajectory — every
//! [`TrajectoryPoint`] — is identical for any worker count.

use crate::energy::CostModel;
use crate::sim::{EventSim, Placement, SimOptions};
use crate::{AreaConstants, ImcError, Result};
use dtsnn_tensor::parallel::map_chunks;
use dtsnn_tensor::TensorRng;

/// Knobs of the annealing search.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOptions {
    /// RNG seed; equal seeds give bitwise-equal trajectories.
    pub seed: u64,
    /// Annealing rounds after the greedy descent.
    pub rounds: usize,
    /// Candidate moves drawn (and evaluated in parallel) per round.
    pub proposals_per_round: usize,
    /// Initial Metropolis temperature, in *relative* EDP units.
    pub initial_temperature: f64,
    /// Geometric temperature decay per round, in (0, 1].
    pub cooling: f64,
    /// Timesteps the objective simulates.
    pub timesteps: usize,
    /// σ–E classes for the objective (`None` = static SNN).
    pub classes: Option<usize>,
    /// Simulator configuration the objective runs under.
    pub sim: SimOptions,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            seed: 7,
            rounds: 48,
            proposals_per_round: 4,
            initial_temperature: 0.05,
            cooling: 0.92,
            timesteps: 4,
            classes: Some(10),
            sim: SimOptions::pipelined(),
        }
    }
}

/// One evaluated annealing candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Annealing round.
    pub round: usize,
    /// Temperature when the candidate was drawn.
    pub temperature: f64,
    /// Candidate EDP, pJ·ns.
    pub candidate_edp: f64,
    /// Whether the Metropolis fold accepted it as the new current order.
    pub accepted: bool,
    /// Best EDP seen so far (including this candidate).
    pub best_edp: f64,
}

/// Outcome of a placement search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best placement order found.
    pub best_order: Vec<usize>,
    /// Its EDP, pJ·ns.
    pub best_edp: f64,
    /// EDP of the network-order (linear) placement.
    pub identity_edp: f64,
    /// EDP after the greedy best-swap descent.
    pub greedy_edp: f64,
    /// Simulator evaluations spent.
    pub evaluations: usize,
    /// Every annealing candidate, in evaluation order.
    pub trajectory: Vec<TrajectoryPoint>,
}

fn eval_order(
    cost: &CostModel,
    densities: &[f32],
    options: &AnnealOptions,
    order: &[usize],
) -> Result<f64> {
    let placement = Placement::with_order(cost.mapping(), order.to_vec())?;
    let sim = EventSim::new(cost, placement, options.sim)?;
    Ok(sim.run(densities, options.timesteps, options.classes)?.cost.edp())
}

/// Searches for the placement order minimizing event-simulated EDP.
///
/// # Errors
///
/// Returns [`ImcError::InvalidConfig`] for degenerate options and
/// propagates simulator errors (wrong density counts, etc.).
pub fn search_placement(
    cost: &CostModel,
    densities: &[f32],
    options: &AnnealOptions,
) -> Result<SearchResult> {
    if options.proposals_per_round == 0 {
        return Err(ImcError::InvalidConfig("proposals_per_round must be at least 1".into()));
    }
    if options.cooling <= 0.0 || options.cooling > 1.0 || options.cooling.is_nan() {
        return Err(ImcError::InvalidConfig(format!(
            "cooling must be in (0, 1], got {}",
            options.cooling
        )));
    }
    if options.initial_temperature <= 0.0 || options.initial_temperature.is_nan() {
        return Err(ImcError::InvalidConfig(format!(
            "initial_temperature must be positive, got {}",
            options.initial_temperature
        )));
    }
    let n = cost.mapping().layers().len();
    let identity: Vec<usize> = (0..n).collect();
    let identity_edp = eval_order(cost, densities, options, &identity)?;
    let mut evaluations = 1usize;
    let mut current = identity;
    let mut current_edp = identity_edp;

    // --- greedy seeding: repeat the best single swap until none improves.
    // All candidate swaps of one pass are evaluated in parallel; the winner
    // is picked by an index-order fold (strict minimum, first index on
    // ties), so the descent path is thread-invariant.
    loop {
        let swaps: Vec<(usize, usize)> =
            (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))).collect();
        if swaps.is_empty() {
            break;
        }
        let results = map_chunks(&swaps, |_first, chunk| {
            chunk
                .iter()
                .map(|&(i, j)| {
                    let mut order = current.clone();
                    order.swap(i, j);
                    eval_order(cost, densities, options, &order)
                })
                .collect::<Vec<_>>()
        });
        evaluations += swaps.len();
        let mut best_swap: Option<(usize, f64)> = None;
        for (idx, res) in results.into_iter().enumerate() {
            let edp = res?;
            if best_swap.is_none_or(|(_, b)| edp < b) {
                best_swap = Some((idx, edp));
            }
        }
        let (idx, edp) = best_swap.expect("at least one swap evaluated");
        if edp < current_edp {
            let (i, j) = swaps[idx];
            current.swap(i, j);
            current_edp = edp;
        } else {
            break;
        }
    }
    let greedy_edp = current_edp;

    // --- simulated annealing refinement ---
    let mut rng = TensorRng::seed_from(options.seed);
    let mut best = current.clone();
    let mut best_edp = current_edp;
    let mut temperature = options.initial_temperature;
    let mut trajectory = Vec::with_capacity(options.rounds * options.proposals_per_round);
    for round in 0..options.rounds {
        // draw every move and Metropolis threshold serially, before the
        // parallel fan-out, so the RNG stream is worker-count-independent
        let mut proposals: Vec<(Vec<usize>, f64)> =
            Vec::with_capacity(options.proposals_per_round);
        for _ in 0..options.proposals_per_round {
            let mut order = current.clone();
            if n > 1 {
                let i = rng.below(n);
                let mut j = rng.below(n);
                if j == i {
                    j = (j + 1) % n;
                }
                if rng.bernoulli(0.25) {
                    order[i.min(j)..=i.max(j)].reverse();
                } else {
                    order.swap(i, j);
                }
            }
            let threshold = rng.uniform(0.0, 1.0) as f64;
            proposals.push((order, threshold));
        }
        let results = map_chunks(&proposals, |_first, chunk| {
            chunk
                .iter()
                .map(|(order, _)| eval_order(cost, densities, options, order))
                .collect::<Vec<_>>()
        });
        evaluations += proposals.len();
        // fold in candidate-index order: the first acceptable candidate
        // becomes the new current order, later ones only update best-seen
        let mut accepted_any = false;
        for (idx, res) in results.into_iter().enumerate() {
            let edp = res?;
            let (order, threshold) = &proposals[idx];
            if edp < best_edp {
                best_edp = edp;
                best = order.clone();
            }
            let relative = (edp - current_edp) / current_edp.max(f64::MIN_POSITIVE);
            let accepted =
                !accepted_any && (relative < 0.0 || *threshold < (-relative / temperature).exp());
            if accepted {
                accepted_any = true;
                current = order.clone();
                current_edp = edp;
            }
            trajectory.push(TrajectoryPoint {
                round,
                temperature,
                candidate_edp: edp,
                accepted,
                best_edp,
            });
        }
        temperature *= options.cooling;
    }

    Ok(SearchResult { best_order: best, best_edp, identity_edp, greedy_edp, evaluations, trajectory })
}

/// A point of the area × EDP × accuracy-under-faults trade space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Provisioned silicon area, mm².
    pub area_mm2: f64,
    /// Event-simulated energy-delay product, pJ·ns.
    pub edp: f64,
    /// Monte-Carlo mean accuracy under the fault model, in [0, 1].
    pub fault_accuracy: f64,
}

fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    a.area_mm2 <= b.area_mm2
        && a.edp <= b.edp
        && a.fault_accuracy >= b.fault_accuracy
        && (a.area_mm2 < b.area_mm2 || a.edp < b.edp || a.fault_accuracy > b.fault_accuracy)
}

/// Indices of the non-dominated points (smaller area and EDP, higher
/// accuracy), in input order. Duplicates are all kept.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points.iter().enumerate().any(|(j, q)| j != i && dominates(q, &points[i]))
        })
        .collect()
}

/// Area of the *provisioned* mesh: the mapped chip area scaled up to the
/// full √N×√N tile grid the placement reserves (idle tiles still cost
/// silicon). An estimate — shared σ–E/global-buffer area is scaled with the
/// tiles rather than split out.
///
/// # Errors
///
/// Returns [`ImcError::InvalidConfig`] for invalid configurations.
pub fn provisioned_area_mm2(
    cost: &CostModel,
    constants: &AreaConstants,
    mesh_side: usize,
) -> Result<f64> {
    let report = crate::chip_area(cost.mapping(), cost.config(), constants)?;
    let mapped_tiles = cost.mapping().total_tiles().max(1);
    let provisioned = (mesh_side * mesh_side).max(mapped_tiles);
    Ok(report.total_mm2() * provisioned as f64 / mapped_tiles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChipMapping, HardwareConfig};
    use dtsnn_snn::vgg16_geometry;

    fn model() -> CostModel {
        let config = HardwareConfig::default();
        let mapping = ChipMapping::map(&vgg16_geometry(32, 3, 10), &config).unwrap();
        CostModel::new(mapping, config).unwrap()
    }

    fn densities(model: &CostModel) -> Vec<f32> {
        let mut d = vec![0.2f32; model.mapping().layers().len()];
        d[0] = 1.0;
        d
    }

    fn quick_options() -> AnnealOptions {
        AnnealOptions { rounds: 6, proposals_per_round: 2, ..AnnealOptions::default() }
    }

    #[test]
    fn search_never_loses_to_the_linear_placement() {
        let m = model();
        let d = densities(&m);
        let r = search_placement(&m, &d, &quick_options()).unwrap();
        assert!(r.best_edp <= r.greedy_edp);
        assert!(r.greedy_edp <= r.identity_edp);
        assert!(r.evaluations > 1);
        assert_eq!(r.trajectory.len(), 6 * 2);
        // the best order must actually evaluate to the reported EDP
        let check = eval_order(&m, &d, &quick_options(), &r.best_order).unwrap();
        assert_eq!(check.to_bits(), r.best_edp.to_bits());
    }

    #[test]
    fn equal_seeds_reproduce_the_whole_trajectory() {
        let m = model();
        let d = densities(&m);
        let a = search_placement(&m, &d, &quick_options()).unwrap();
        let b = search_placement(&m, &d, &quick_options()).unwrap();
        assert_eq!(a, b);
        let other = AnnealOptions { seed: 8, ..quick_options() };
        let c = search_placement(&m, &d, &other).unwrap();
        // a different seed must draw different moves (EDPs may still tie)
        assert!(c.trajectory != a.trajectory || c.best_order != a.best_order || a == c);
    }

    #[test]
    fn degenerate_options_rejected() {
        let m = model();
        let d = densities(&m);
        let bad = AnnealOptions { proposals_per_round: 0, ..AnnealOptions::default() };
        assert!(search_placement(&m, &d, &bad).is_err());
        let bad = AnnealOptions { cooling: 0.0, ..AnnealOptions::default() };
        assert!(search_placement(&m, &d, &bad).is_err());
        let bad = AnnealOptions { initial_temperature: 0.0, ..AnnealOptions::default() };
        assert!(search_placement(&m, &d, &bad).is_err());
    }

    #[test]
    fn pareto_front_keeps_only_non_dominated_points() {
        let pts = [
            ParetoPoint { area_mm2: 1.0, edp: 10.0, fault_accuracy: 0.9 },
            ParetoPoint { area_mm2: 2.0, edp: 5.0, fault_accuracy: 0.9 },
            ParetoPoint { area_mm2: 2.0, edp: 12.0, fault_accuracy: 0.8 }, // dominated by 0
            ParetoPoint { area_mm2: 0.5, edp: 20.0, fault_accuracy: 0.5 },
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 3]);
        // duplicates survive
        let dup = [pts[0], pts[0]];
        assert_eq!(pareto_front(&dup), vec![0, 1]);
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn provisioned_area_grows_with_the_mesh() {
        let m = model();
        let c = AreaConstants::default();
        let side = Placement::linear(m.mapping()).unwrap().mesh_side();
        let tight = provisioned_area_mm2(&m, &c, side).unwrap();
        let roomy = provisioned_area_mm2(&m, &c, side + 2).unwrap();
        assert!(roomy > tight);
        let mapped = crate::chip_area(m.mapping(), m.config(), &c).unwrap().total_mm2();
        assert!(tight >= mapped);
    }
}
