//! Hardware configuration: Table I of the paper plus calibrated per-event
//! energy/latency constants.

use crate::faults::FaultModel;
use crate::{ImcError, Result};

/// Per-event dynamic energy constants, in picojoules.
///
/// Absolute values are calibration parameters of the analytical model; their
/// *ratios* are chosen so the VGG-16/CIFAR-10 mapping reproduces the
/// component breakdown of Fig. 1(A). See `crates/imc/src/energy.rs` tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConstants {
    /// One RRAM cell read (per active row × column × slice), pJ.
    pub cell_read: f64,
    /// One ADC conversion, pJ.
    pub adc_conversion: f64,
    /// One input-switch/wordline driver event (per active row per vector), pJ.
    pub input_switch: f64,
    /// One shift-&-add operation, pJ.
    pub shift_add: f64,
    /// One column-mux reconfiguration, pJ.
    pub mux: f64,
    /// One accumulator update (PE/tile/global averaged), pJ.
    pub accumulate: f64,
    /// One buffer byte access (hierarchy-averaged), pJ.
    pub buffer_byte: f64,
    /// One interconnect byte-hop (H-Tree + NoC averaged), pJ.
    pub interconnect_byte: f64,
    /// One LIF neuron membrane update, pJ.
    pub lif_update: f64,
    /// One σ–E module LUT lookup, pJ.
    pub lut_lookup: f64,
    /// One σ–E module MAC, pJ.
    pub sigma_e_mac: f64,
    /// One σ–E module FIFO push/pop, pJ.
    pub fifo_op: f64,
    /// Fixed per-inference energy (input load + weight-static leakage over
    /// the inference window), expressed as a fraction of the one-timestep
    /// dynamic energy at nominal activity. Chosen so E(T=8)/E(T=1) ≈ 4.9
    /// (Fig. 1(B)).
    pub fixed_fraction: f64,
}

impl Default for EnergyConstants {
    fn default() -> Self {
        // Calibrated against the VGG-16 (32×32) mapping at spike density 0.2:
        // digital peripherals ≈ 45%, crossbar ≈ 13%, ADC ≈ 12% (Fig. 1A).
        EnergyConstants {
            cell_read: 0.085,
            adc_conversion: 1.2,
            input_switch: 18.0,
            shift_add: 1.6,
            mux: 0.4,
            accumulate: 1.4,
            buffer_byte: 1.9,
            interconnect_byte: 1.2,
            lif_update: 1.1,
            lut_lookup: 0.9,
            sigma_e_mac: 1.3,
            fifo_op: 0.45,
            fixed_fraction: 0.795,
        }
    }
}

/// Per-operation latency constants, in clock cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyConstants {
    /// Cycles for one crossbar read (all rows in parallel).
    pub crossbar_read: u64,
    /// Cycles per ADC conversion.
    pub adc: u64,
    /// Cycles per shift-&-add.
    pub shift_add: u64,
    /// Fixed per-layer sequencing overhead, cycles.
    pub layer_overhead: u64,
    /// Cycles per σ–E module evaluation per class.
    pub sigma_e_per_class: u64,
    /// Clock period, nanoseconds (for absolute-time reporting).
    pub clock_ns: f64,
}

impl Default for LatencyConstants {
    fn default() -> Self {
        LatencyConstants {
            crossbar_read: 1,
            adc: 1,
            shift_add: 1,
            layer_overhead: 8,
            sigma_e_per_class: 4,
            clock_ns: 1.0,
        }
    }
}

/// The hardware parameters of Table I plus the calibrated cost constants.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareConfig {
    /// Crossbar rows = columns (Table I: 64).
    pub crossbar_size: usize,
    /// Crossbars per tile (Table I: 64).
    pub crossbars_per_tile: usize,
    /// Device precision in bits (Table I: 4-bit RRAM).
    pub device_bits: u32,
    /// Weight precision in bits (Table I: 8-bit).
    pub weight_bits: u32,
    /// Device conductance variation σ/μ (Table I: 20%).
    pub sigma_over_mu: f64,
    /// On-resistance, ohms (Table I: 20 kΩ).
    pub r_on: f64,
    /// R_off / R_on ratio (Table I: 10).
    pub r_off_ratio: f64,
    /// Column-mux sharing ratio (columns per ADC).
    pub adc_mux_ratio: usize,
    /// Global buffer size, bytes (Table I: 20 KB).
    pub global_buffer_bytes: usize,
    /// Tile buffer size, bytes (Table I: 10 KB).
    pub tile_buffer_bytes: usize,
    /// PE buffer size, bytes (Table I: 5 KB).
    pub pe_buffer_bytes: usize,
    /// Supply voltage, volts (Table I: 0.9 V).
    pub vdd: f64,
    /// Read voltage, volts (Table I: 0.1 V).
    pub v_read: f64,
    /// σ-LUT size, bytes (Table I: 3 KB).
    pub sigma_lut_bytes: usize,
    /// E-LUT size, bytes (Table I: 3 KB).
    pub entropy_lut_bytes: usize,
    /// Energy constants.
    pub energy: EnergyConstants,
    /// Latency constants.
    pub latency: LatencyConstants,
    /// Substrate fault model (stuck-at devices, drift, read noise, dead
    /// lines). Defaults to [`FaultModel::none`]: only quantization and the
    /// `sigma_over_mu` programming variation apply.
    pub fault: FaultModel,
}

impl Default for HardwareConfig {
    fn default() -> Self {
        HardwareConfig {
            crossbar_size: 64,
            crossbars_per_tile: 64,
            device_bits: 4,
            weight_bits: 8,
            sigma_over_mu: 0.20,
            r_on: 20_000.0,
            r_off_ratio: 10.0,
            adc_mux_ratio: 8,
            global_buffer_bytes: 20 * 1024,
            tile_buffer_bytes: 10 * 1024,
            pe_buffer_bytes: 5 * 1024,
            vdd: 0.9,
            v_read: 0.1,
            sigma_lut_bytes: 3 * 1024,
            entropy_lut_bytes: 3 * 1024,
            energy: EnergyConstants::default(),
            latency: LatencyConstants::default(),
            fault: FaultModel::none(),
        }
    }
}

impl HardwareConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for zero extents, non-positive
    /// electrical parameters, or device precision exceeding weight precision.
    pub fn validate(&self) -> Result<()> {
        if self.crossbar_size == 0 || self.crossbars_per_tile == 0 {
            return Err(ImcError::InvalidConfig("crossbar extents must be nonzero".into()));
        }
        if self.device_bits == 0 || self.weight_bits == 0 {
            return Err(ImcError::InvalidConfig("bit widths must be nonzero".into()));
        }
        if self.device_bits > self.weight_bits {
            return Err(ImcError::InvalidConfig(format!(
                "device precision ({}) exceeds weight precision ({})",
                self.device_bits, self.weight_bits
            )));
        }
        if self.adc_mux_ratio == 0 {
            return Err(ImcError::InvalidConfig("adc_mux_ratio must be nonzero".into()));
        }
        if self.r_on <= 0.0 || self.r_off_ratio <= 1.0 {
            return Err(ImcError::InvalidConfig("r_on must be positive and r_off_ratio > 1".into()));
        }
        if self.vdd <= 0.0 || self.v_read <= 0.0 || self.v_read > self.vdd {
            return Err(ImcError::InvalidConfig("need 0 < v_read ≤ vdd".into()));
        }
        if self.sigma_over_mu < 0.0 {
            return Err(ImcError::InvalidConfig("sigma_over_mu must be nonnegative".into()));
        }
        self.fault.validate()?;
        Ok(())
    }

    /// Bit-slices per weight: `ceil(weight_bits / device_bits)`, e.g. two
    /// 4-bit devices per 8-bit weight magnitude.
    pub fn slices_per_weight(&self) -> usize {
        self.weight_bits.div_ceil(self.device_bits) as usize
    }

    /// Conductance levels per device (`2^device_bits`).
    pub fn device_levels(&self) -> usize {
        1usize << self.device_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = HardwareConfig::default();
        assert_eq!(c.crossbar_size, 64);
        assert_eq!(c.crossbars_per_tile, 64);
        assert_eq!(c.device_bits, 4);
        assert_eq!(c.weight_bits, 8);
        assert!((c.sigma_over_mu - 0.20).abs() < 1e-12);
        assert!((c.r_on - 20_000.0).abs() < 1e-6);
        assert!((c.r_off_ratio - 10.0).abs() < 1e-12);
        assert_eq!(c.global_buffer_bytes, 20 * 1024);
        assert_eq!(c.tile_buffer_bytes, 10 * 1024);
        assert_eq!(c.pe_buffer_bytes, 5 * 1024);
        assert!((c.vdd - 0.9).abs() < 1e-12);
        assert!((c.v_read - 0.1).abs() < 1e-12);
        assert_eq!(c.sigma_lut_bytes, 3 * 1024);
        assert_eq!(c.entropy_lut_bytes, 3 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn derived_quantities() {
        let c = HardwareConfig::default();
        assert_eq!(c.slices_per_weight(), 2);
        assert_eq!(c.device_levels(), 16);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = HardwareConfig { crossbar_size: 0, ..HardwareConfig::default() };
        assert!(c.validate().is_err());
        let c = HardwareConfig { device_bits: 16, ..HardwareConfig::default() };
        assert!(c.validate().is_err());
        let c = HardwareConfig { r_off_ratio: 1.0, ..HardwareConfig::default() };
        assert!(c.validate().is_err());
        let c = HardwareConfig { v_read: 2.0, ..HardwareConfig::default() };
        assert!(c.validate().is_err());
        let bad_fault = FaultModel { stuck_on_rate: 1.5, ..FaultModel::none() };
        let c = HardwareConfig { fault: bad_fault, ..HardwareConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_fault_model_is_null() {
        assert!(HardwareConfig::default().fault.is_null());
    }

}
