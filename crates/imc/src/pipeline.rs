//! Timestep scheduling: sequential (the paper's DT-SNN choice) vs. pipelined.
//!
//! Sec. III-B: *"Timesteps are processed sequentially without pipelining.
//! This eliminates the delay and hardware overhead (energy and area cost)
//! required to empty the pipeline in case of dynamic timestep inference."*
//!
//! This module models the alternative the paper rejected, so the design
//! choice can be quantified: with layers pipelined across timesteps, a
//! static SNN gains throughput (latency ≈ fill + (T−1)·bottleneck), but a
//! dynamic-timestep SNN must keep *speculative* timesteps in flight while
//! the σ–E module decides whether to exit — on an early exit those
//! speculative timesteps are wasted energy and the pipeline must drain.

use crate::energy::{Component, CostModel, InferenceCost};
use crate::{ImcError, Result};

/// How timesteps are scheduled onto the tiled datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TimestepSchedule {
    /// One timestep fully traverses the network before the next starts —
    /// the paper's DT-SNN design point (no flush cost on exit).
    #[default]
    Sequential,
    /// Layers act as pipeline stages; timestep `t+1` enters layer 1 while
    /// timestep `t` is in layer 2, etc. Higher static throughput, but
    /// dynamic exits waste in-flight speculative timesteps.
    Pipelined,
}

/// Relative energy overhead of pipeline registers/control per dynamic
/// energy unit (the "hardware overhead" the paper mentions). Shared with
/// the event-driven simulator so both pipelined models charge the same tax.
pub(crate) const PIPELINE_ENERGY_OVERHEAD: f64 = 0.06;

impl CostModel {
    /// Cycles of the slowest pipeline stage (one layer, one timestep).
    pub fn bottleneck_stage_cycles(&self) -> u64 {
        self.mapping()
            .layers()
            .iter()
            .map(|layer| self.layer_compute_cycles(layer))
            .max()
            .unwrap_or(0)
    }

    /// Timesteps that are speculatively in flight when the exit decision for
    /// timestep `t` becomes available: the decision needs `t` to finish the
    /// whole pipeline, during which ⌈fill/bottleneck⌉ − 1 further timesteps
    /// have entered.
    pub fn speculative_depth(&self) -> f64 {
        let fill = self.timestep_latency() as f64;
        let stage = self.bottleneck_stage_cycles().max(1) as f64;
        (fill / stage - 1.0).max(0.0)
    }

    /// Cost of one inference under the given schedule.
    ///
    /// `timesteps` is the (possibly dataset-averaged, fractional) number of
    /// *useful* timesteps; for [`TimestepSchedule::Pipelined`] with a
    /// dynamic exit (`classes = Some(..)` and `timesteps < t_max`), the
    /// speculatively issued timesteps are charged as wasted energy, capped
    /// at `t_max`, and the drain delay is added to latency.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for non-positive or inconsistent
    /// timestep counts, plus density mismatches.
    pub fn inference_cost_scheduled(
        &self,
        densities: &[f32],
        timesteps: f64,
        t_max: usize,
        classes: Option<usize>,
        schedule: TimestepSchedule,
    ) -> Result<InferenceCost> {
        // Validate here so both arms reject, as documented: the Sequential
        // arm is covered transitively by `inference_cost`, but the Pipelined
        // arm would otherwise clamp latency and produce non-monotone energy
        // for non-positive timestep counts.
        if timesteps <= 0.0 {
            return Err(ImcError::InvalidConfig(format!(
                "timesteps must be positive, got {timesteps}"
            )));
        }
        if timesteps > t_max as f64 {
            return Err(ImcError::InvalidConfig(format!(
                "timesteps {timesteps} exceeds window {t_max}"
            )));
        }
        match schedule {
            TimestepSchedule::Sequential => self.inference_cost(densities, timesteps, classes),
            TimestepSchedule::Pipelined => {
                // energy: useful + speculative timesteps (dynamic exits only),
                // plus pipeline-register overhead on all dynamic energy
                let speculative = if classes.is_some() && timesteps < t_max as f64 {
                    self.speculative_depth().min(t_max as f64 - timesteps)
                } else {
                    0.0
                };
                let executed = timesteps + speculative;
                let per_t = self.timestep_energy(densities)?;
                let mut energy = per_t.scaled(executed * (1.0 + PIPELINE_ENERGY_OVERHEAD));
                energy.accumulate(&self.fixed_energy(densities)?);
                // latency: fill + (T_useful − 1) stages + drain of in-flight work
                let fill = self.timestep_latency() as f64;
                let stage = self.bottleneck_stage_cycles() as f64;
                let mut latency = fill + (timesteps - 1.0).max(0.0) * stage + speculative * stage;
                if let Some(k) = classes {
                    energy.add(Component::SigmaE, self.sigma_e_energy(k) * timesteps);
                    latency += self.sigma_e_latency(k) as f64 * timesteps;
                }
                Ok(InferenceCost {
                    energy,
                    latency_cycles: latency.round() as u64,
                    clock_ns: self.config().latency.clock_ns,
                    timesteps: executed,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChipMapping, HardwareConfig};
    use dtsnn_snn::{vgg16_geometry, LayerGeometry};

    fn model() -> CostModel {
        let config = HardwareConfig::default();
        let mapping = ChipMapping::map(&vgg16_geometry(32, 3, 10), &config).unwrap();
        CostModel::new(mapping, config).unwrap()
    }

    fn densities(model: &CostModel) -> Vec<f32> {
        let mut d = vec![0.2f32; model.mapping().layers().len()];
        d[0] = 1.0;
        d
    }

    #[test]
    fn bottleneck_is_at_most_the_full_traversal() {
        let m = model();
        assert!(m.bottleneck_stage_cycles() > 0);
        assert!(m.bottleneck_stage_cycles() <= m.timestep_latency());
        assert!(m.speculative_depth() >= 0.0);
    }

    #[test]
    fn pipelining_wins_for_static_inference_latency() {
        // the classic trade: static SNN throughput benefits from pipelining
        let m = model();
        let d = densities(&m);
        let seq = m
            .inference_cost_scheduled(&d, 4.0, 4, None, TimestepSchedule::Sequential)
            .unwrap();
        let pipe = m
            .inference_cost_scheduled(&d, 4.0, 4, None, TimestepSchedule::Pipelined)
            .unwrap();
        assert!(pipe.latency_cycles < seq.latency_cycles);
    }

    #[test]
    fn sequential_wins_for_dynamic_exit_energy() {
        // the paper's design point: with early exits the pipelined schedule
        // wastes speculative timesteps
        let m = model();
        let d = densities(&m);
        let seq = m
            .inference_cost_scheduled(&d, 1.5, 4, Some(10), TimestepSchedule::Sequential)
            .unwrap();
        let pipe = m
            .inference_cost_scheduled(&d, 1.5, 4, Some(10), TimestepSchedule::Pipelined)
            .unwrap();
        assert!(
            pipe.energy_pj() > seq.energy_pj(),
            "pipelined {} should waste speculative energy vs sequential {}",
            pipe.energy_pj(),
            seq.energy_pj()
        );
        // executed timesteps include the speculation
        assert!(pipe.timesteps > seq.timesteps);
    }

    #[test]
    fn no_speculation_at_full_window() {
        let m = model();
        let d = densities(&m);
        let pipe = m
            .inference_cost_scheduled(&d, 4.0, 4, Some(10), TimestepSchedule::Pipelined)
            .unwrap();
        assert!((pipe.timesteps - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_timesteps_beyond_window() {
        let m = model();
        let d = densities(&m);
        assert!(m
            .inference_cost_scheduled(&d, 5.0, 4, None, TimestepSchedule::Pipelined)
            .is_err());
    }

    #[test]
    fn rejects_non_positive_timesteps_in_both_arms() {
        // Regression: the Pipelined arm used to skip the documented
        // non-positive check, silently clamping latency and producing
        // non-monotone energy for timesteps ≤ 0.
        let m = model();
        let d = densities(&m);
        for t in [0.0, -1.0, -0.5] {
            for schedule in [TimestepSchedule::Sequential, TimestepSchedule::Pipelined] {
                assert!(
                    matches!(
                        m.inference_cost_scheduled(&d, t, 4, Some(10), schedule),
                        Err(ImcError::InvalidConfig(_))
                    ),
                    "timesteps {t} must be rejected under {schedule:?}"
                );
            }
        }
    }

    fn single_layer_model() -> CostModel {
        let config = HardwareConfig::default();
        let mapping = ChipMapping::map(
            &[LayerGeometry::Fc { in_features: 64, out_features: 10 }],
            &config,
        )
        .unwrap();
        CostModel::new(mapping, config).unwrap()
    }

    #[test]
    fn single_layer_speculative_depth_is_zero() {
        // Boundary: with one layer the bottleneck stage IS the full
        // traversal, so no timesteps can be speculatively in flight.
        let m = single_layer_model();
        assert_eq!(m.bottleneck_stage_cycles(), m.timestep_latency());
        assert_eq!(m.speculative_depth(), 0.0);
    }

    #[test]
    fn single_layer_network_through_both_schedules() {
        // With one pipeline stage there is nothing to overlap: latency is
        // identical under both schedules, and the pipelined arm only adds
        // the register-overhead tax on dynamic energy.
        let m = single_layer_model();
        let d = [1.0f32];
        let seq = m
            .inference_cost_scheduled(&d, 2.0, 4, Some(10), TimestepSchedule::Sequential)
            .unwrap();
        let pipe = m
            .inference_cost_scheduled(&d, 2.0, 4, Some(10), TimestepSchedule::Pipelined)
            .unwrap();
        assert_eq!(pipe.latency_cycles, seq.latency_cycles);
        let ratio = pipe.energy_pj() / seq.energy_pj();
        assert!(
            (1.0..=1.0 + PIPELINE_ENERGY_OVERHEAD + 1e-9).contains(&ratio),
            "ratio {ratio}"
        );
        // no speculation possible: executed timesteps match the useful ones
        assert!((pipe.timesteps - seq.timesteps).abs() < 1e-12);
    }

    #[test]
    fn sequential_schedule_matches_plain_cost() {
        let m = model();
        let d = densities(&m);
        let a = m.inference_cost(&d, 2.0, Some(10)).unwrap();
        let b = m
            .inference_cost_scheduled(&d, 2.0, 4, Some(10), TimestepSchedule::Sequential)
            .unwrap();
        assert_eq!(a.latency_cycles, b.latency_cycles);
        assert!((a.energy_pj() - b.energy_pj()).abs() < 1e-9);
    }
}
