//! Network-on-chip model for inter-tile traffic (Fig. 3(a): "at the tile
//! level, all modules are connected via a NoC interconnect").
//!
//! The coarse per-byte constant in the [`crate::CostModel`] captures the
//! calibrated average; this module provides the structural view: tiles are
//! placed on a √N×√N mesh in layer order, each layer's output spikes travel
//! from its tile range to the next layer's tile range under XY routing, and
//! energy/latency follow from byte·hop counts. Useful for floorplanning
//! questions (how does tile count change NoC load?) that a flat constant
//! cannot answer.

use crate::mapping::ChipMapping;
use crate::{HardwareConfig, ImcError, Result};

/// Traffic of one layer-to-layer link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkTraffic {
    /// Producing layer index.
    pub from_layer: usize,
    /// Bytes of spike payload per timestep (packed 1 bit/spike).
    pub bytes_per_timestep: f64,
    /// Mean Manhattan hop count between the two layers' tile centroids.
    pub mean_hops: f64,
}

/// Mesh NoC bound to a mapping.
#[derive(Debug, Clone)]
pub struct NocModel {
    links: Vec<LinkTraffic>,
    mesh_side: usize,
    /// Energy per byte per hop, pJ.
    energy_per_byte_hop: f64,
    /// Cycles per hop for the head flit.
    cycles_per_hop: u64,
}

impl NocModel {
    /// Builds the mesh model: tiles are numbered in layer order and placed
    /// row-major on the smallest square mesh that fits them.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for invalid hardware parameters
    /// or an empty mapping.
    pub fn new(mapping: &ChipMapping, config: &HardwareConfig) -> Result<Self> {
        config.validate()?;
        let layers = mapping.layers();
        if layers.is_empty() {
            return Err(ImcError::InvalidConfig("cannot build a NoC for an empty mapping".into()));
        }
        let total_tiles: usize = layers.iter().map(|l| l.tiles).sum();
        let mesh_side = (total_tiles as f64).sqrt().ceil() as usize;
        let pos = |tile: usize| -> (f64, f64) {
            ((tile % mesh_side) as f64, (tile / mesh_side) as f64)
        };
        // centroid of each layer's tile range
        let mut centroids = Vec::with_capacity(layers.len());
        let mut next_tile = 0usize;
        for layer in layers {
            let range = next_tile..next_tile + layer.tiles;
            let (mut cx, mut cy) = (0.0, 0.0);
            for t in range.clone() {
                let (x, y) = pos(t);
                cx += x;
                cy += y;
            }
            let n = layer.tiles.max(1) as f64;
            centroids.push((cx / n, cy / n));
            next_tile += layer.tiles;
        }
        let links = layers
            .iter()
            .enumerate()
            .take(layers.len() - 1)
            .map(|(i, layer)| {
                let (ax, ay) = centroids[i];
                let (bx, by) = centroids[i + 1];
                LinkTraffic {
                    from_layer: i,
                    bytes_per_timestep: layer.output_neurons as f64 / 8.0,
                    mean_hops: ((ax - bx).abs() + (ay - by).abs()).max(1.0),
                }
            })
            .collect();
        Ok(NocModel {
            links,
            mesh_side,
            energy_per_byte_hop: config.energy.interconnect_byte,
            cycles_per_hop: 1,
        })
    }

    /// Mesh side length (tiles per row).
    pub fn mesh_side(&self) -> usize {
        self.mesh_side
    }

    /// Per-link traffic, in network order.
    pub fn links(&self) -> &[LinkTraffic] {
        &self.links
    }

    /// Total byte·hops per timestep at the given per-layer output densities
    /// (spikes are packed, so payload scales with density).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::LinkDensityMismatch`] when `densities` does not
    /// have one entry per *link source* layer (layers.len() − 1 entries
    /// needed at minimum; extra entries are ignored).
    pub fn byte_hops_per_timestep(&self, densities: &[f32]) -> Result<f64> {
        if densities.len() < self.links.len() {
            return Err(ImcError::LinkDensityMismatch {
                links: self.links.len(),
                densities: densities.len(),
            });
        }
        Ok(self
            .links
            .iter()
            .map(|l| l.bytes_per_timestep * densities[l.from_layer].clamp(0.0, 1.0) as f64 * l.mean_hops)
            .sum())
    }

    /// NoC energy per timestep, pJ.
    ///
    /// # Errors
    ///
    /// See [`NocModel::byte_hops_per_timestep`].
    pub fn timestep_energy(&self, densities: &[f32]) -> Result<f64> {
        Ok(self.byte_hops_per_timestep(densities)? * self.energy_per_byte_hop)
    }

    /// Worst single-link latency per timestep, cycles (head-flit hops; the
    /// payload streams behind and overlaps with compute).
    pub fn timestep_latency(&self) -> u64 {
        self.links
            .iter()
            .map(|l| (l.mean_hops.ceil() as u64) * self.cycles_per_hop)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipMapping;
    use dtsnn_snn::{vgg16_geometry, LayerGeometry};

    fn vgg16() -> (ChipMapping, HardwareConfig) {
        let config = HardwareConfig::default();
        let mapping = ChipMapping::map(&vgg16_geometry(32, 3, 10), &config).unwrap();
        (mapping, config)
    }

    #[test]
    fn mesh_fits_all_tiles() {
        let (mapping, config) = vgg16();
        let noc = NocModel::new(&mapping, &config).unwrap();
        assert!(noc.mesh_side() * noc.mesh_side() >= mapping.total_tiles());
        assert_eq!(noc.links().len(), mapping.layers().len() - 1);
    }

    #[test]
    fn traffic_scales_with_density() {
        let (mapping, config) = vgg16();
        let noc = NocModel::new(&mapping, &config).unwrap();
        let n = mapping.layers().len();
        let lo = noc.timestep_energy(&vec![0.1; n]).unwrap();
        let hi = noc.timestep_energy(&vec![0.4; n]).unwrap();
        assert!((hi / lo - 4.0).abs() < 1e-6, "traffic must be linear in density");
    }

    #[test]
    fn hops_at_least_one_and_latency_positive() {
        let (mapping, config) = vgg16();
        let noc = NocModel::new(&mapping, &config).unwrap();
        for l in noc.links() {
            assert!(l.mean_hops >= 1.0);
            assert!(l.bytes_per_timestep > 0.0);
        }
        assert!(noc.timestep_latency() >= 1);
    }

    #[test]
    fn bigger_network_means_bigger_mesh_and_more_hops() {
        let config = HardwareConfig::default();
        let small = ChipMapping::map(
            &[
                LayerGeometry::Fc { in_features: 64, out_features: 64 },
                LayerGeometry::Fc { in_features: 64, out_features: 10 },
            ],
            &config,
        )
        .unwrap();
        let (large, _) = vgg16();
        let noc_small = NocModel::new(&small, &config).unwrap();
        let noc_large = NocModel::new(&large, &config).unwrap();
        assert!(noc_large.mesh_side() > noc_small.mesh_side());
        let max_hops_large =
            noc_large.links().iter().map(|l| l.mean_hops).fold(0.0f64, f64::max);
        let max_hops_small =
            noc_small.links().iter().map(|l| l.mean_hops).fold(0.0f64, f64::max);
        assert!(max_hops_large > max_hops_small);
    }

    #[test]
    fn density_count_validated() {
        let (mapping, config) = vgg16();
        let noc = NocModel::new(&mapping, &config).unwrap();
        assert!(noc.byte_hops_per_timestep(&[0.5]).is_err());
    }

    #[test]
    fn short_density_error_reports_the_link_count() {
        // Regression: this used to raise ActivityMismatch with the *link*
        // count in its `layers` field, so the rendered message misstated the
        // required density count by one ("mapping has N−1 layers ...").
        let (mapping, config) = vgg16();
        let noc = NocModel::new(&mapping, &config).unwrap();
        let err = noc.byte_hops_per_timestep(&[0.5]).unwrap_err();
        assert_eq!(
            err,
            ImcError::LinkDensityMismatch { links: noc.links().len(), densities: 1 }
        );
        assert_eq!(
            err.to_string(),
            format!(
                "noc has {} inter-layer links but 1 density entries supplied \
                 (need one per link source layer)",
                noc.links().len()
            )
        );
    }

    #[test]
    fn single_layer_network_has_no_links_and_zero_noc_cost() {
        // A one-layer network never leaves its tile range: the NoC must
        // report zero traffic, zero energy and zero latency without
        // panicking, for any density slice (no links need entries).
        let config = HardwareConfig::default();
        let mapping = ChipMapping::map(
            &[LayerGeometry::Fc { in_features: 64, out_features: 10 }],
            &config,
        )
        .unwrap();
        let noc = NocModel::new(&mapping, &config).unwrap();
        assert!(noc.links().is_empty());
        assert_eq!(noc.mesh_side(), 1);
        assert_eq!(noc.timestep_latency(), 0);
        assert_eq!(noc.byte_hops_per_timestep(&[1.0]).unwrap(), 0.0);
        assert_eq!(noc.timestep_energy(&[1.0]).unwrap(), 0.0);
        assert_eq!(noc.timestep_energy(&[]).unwrap(), 0.0);
    }
}
