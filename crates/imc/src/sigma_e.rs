//! Functional model of the σ–E module (Fig. 3(b)).
//!
//! The hardware computes softmax and entropy with lookup tables: classifier
//! outputs are quantized into the y-FIFO, exponentials come from the σ-LUT,
//! logarithms from the E-LUT, and a multiplier-accumulator folds Eq. 7. This
//! module reproduces that datapath bit-faithfully enough to quantify the
//! quantization error against exact floating-point entropy — the exit
//! decisions made on hardware match the algorithmic ones for any sane
//! threshold.

use crate::{HardwareConfig, ImcError, Result};

/// One σ–E evaluation: quantized softmax, entropy, and the exit decision.
#[derive(Debug, Clone, PartialEq)]
pub struct SigmaEReading {
    /// LUT-computed class probabilities.
    pub probabilities: Vec<f32>,
    /// LUT-computed normalized entropy (Eq. 7), in `[0, 1]`.
    pub entropy: f32,
    /// Whether `entropy < θ` — terminate inference and load the next input.
    pub exit: bool,
}

/// LUT-based softmax + entropy engine with the paper's 3 KB tables.
#[derive(Debug, Clone)]
pub struct SigmaEModule {
    /// exp LUT over the clamped logit range.
    exp_lut: Vec<f32>,
    /// −p·log(p) LUT over p ∈ [0, 1].
    plogp_lut: Vec<f32>,
    /// Quantization range for logits (symmetric ±range).
    logit_range: f32,
}

impl SigmaEModule {
    /// Builds the LUTs from the hardware configuration (entry counts are
    /// `table_bytes / 4` for f32 entries, as in Table I's 3 KB σ and E LUTs).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] when a table is smaller than 16
    /// entries.
    pub fn new(config: &HardwareConfig) -> Result<Self> {
        let exp_entries = config.sigma_lut_bytes / 4;
        let log_entries = config.entropy_lut_bytes / 4;
        if exp_entries < 16 || log_entries < 16 {
            return Err(ImcError::InvalidConfig("σ/E LUTs need at least 64 bytes".into()));
        }
        let logit_range = 8.0f32;
        let exp_lut = (0..exp_entries)
            .map(|i| {
                // address space covers [-2·range, 0] after max-subtraction
                let x = -2.0 * logit_range * (1.0 - i as f32 / (exp_entries - 1) as f32);
                x.exp()
            })
            .collect();
        let plogp_lut = (0..log_entries)
            .map(|i| {
                let p = i as f32 / (log_entries - 1) as f32;
                if p <= 0.0 {
                    0.0
                } else {
                    -p * p.ln()
                }
            })
            .collect();
        Ok(SigmaEModule { exp_lut, plogp_lut, logit_range })
    }

    /// Entries in the σ (exp) LUT.
    pub fn sigma_lut_len(&self) -> usize {
        self.exp_lut.len()
    }

    /// Entries in the E (−p·log p) LUT.
    pub fn entropy_lut_len(&self) -> usize {
        self.plogp_lut.len()
    }

    fn exp_lookup(&self, shifted_logit: f32) -> f32 {
        // shifted logits are ≤ 0 after max subtraction; clamp to LUT domain
        let x = shifted_logit.clamp(-2.0 * self.logit_range, 0.0);
        let frac = 1.0 + x / (2.0 * self.logit_range);
        let idx = (frac * (self.exp_lut.len() - 1) as f32).round() as usize;
        self.exp_lut[idx.min(self.exp_lut.len() - 1)]
    }

    fn plogp_lookup(&self, p: f32) -> f32 {
        let p = p.clamp(0.0, 1.0);
        let idx = (p * (self.plogp_lut.len() - 1) as f32).round() as usize;
        self.plogp_lut[idx.min(self.plogp_lut.len() - 1)]
    }

    /// Evaluates one timestep's accumulated classifier output against the
    /// exit threshold `theta` (Eq. 8's comparison for a single candidate T̂).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for fewer than 2 classes.
    pub fn evaluate(&self, logits: &[f32], theta: f32) -> Result<SigmaEReading> {
        let k = logits.len();
        if k < 2 {
            return Err(ImcError::InvalidConfig("σ–E module needs ≥ 2 classes".into()));
        }
        // y-FIFO → σ-LUT: exp of max-shifted logits.
        let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&y| self.exp_lookup(y - mx)).collect();
        let z: f32 = exps.iter().sum();
        let probabilities: Vec<f32> = exps.iter().map(|&e| e / z.max(1e-12)).collect();
        // Entropy module: Σ −p·log p via LUT + MAC, normalized by log K.
        let raw: f32 = probabilities.iter().map(|&p| self.plogp_lookup(p)).sum();
        let entropy = (raw / (k as f32).ln()).clamp(0.0, 1.0);
        Ok(SigmaEReading { probabilities, entropy, exit: entropy < theta })
    }
}

/// Exact (floating-point) normalized entropy of Eq. 7 — the reference the
/// LUT datapath is validated against, and the function the algorithmic
/// policy in `dtsnn-core` uses.
pub fn exact_normalized_entropy(probabilities: &[f32]) -> f32 {
    let k = probabilities.len().max(2);
    let raw: f32 = probabilities
        .iter()
        .map(|&p| if p > 0.0 { -p * p.ln() } else { 0.0 })
        .sum();
    (raw / (k as f32).ln()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsnn_tensor::TensorRng;

    fn module() -> SigmaEModule {
        SigmaEModule::new(&HardwareConfig::default()).unwrap()
    }

    #[test]
    fn lut_sizes_match_table1_budget() {
        let m = module();
        // 3 KB of f32 entries = 768
        assert_eq!(m.sigma_lut_len(), 768);
        assert_eq!(m.entropy_lut_len(), 768);
    }

    #[test]
    fn uniform_logits_read_entropy_one() {
        let m = module();
        let r = m.evaluate(&[0.3; 10], 0.5).unwrap();
        assert!((r.entropy - 1.0).abs() < 0.02, "entropy {}", r.entropy);
        assert!(!r.exit);
        for p in &r.probabilities {
            assert!((p - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn confident_logits_read_entropy_near_zero_and_exit() {
        let m = module();
        let mut logits = [0.0f32; 10];
        logits[3] = 12.0;
        let r = m.evaluate(&logits, 0.1).unwrap();
        assert!(r.entropy < 0.05, "entropy {}", r.entropy);
        assert!(r.exit);
        assert!(r.probabilities[3] > 0.95);
    }

    #[test]
    fn lut_entropy_tracks_exact_entropy() {
        let m = module();
        let mut rng = TensorRng::seed_from(1);
        let mut max_err = 0.0f32;
        for _ in 0..200 {
            let logits: Vec<f32> = (0..10).map(|_| rng.uniform(-4.0, 4.0)).collect();
            let r = m.evaluate(&logits, 0.5).unwrap();
            // exact softmax for reference
            let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&y| (y - mx).exp()).collect();
            let z: f32 = exps.iter().sum();
            let p: Vec<f32> = exps.iter().map(|&e| e / z).collect();
            let exact = exact_normalized_entropy(&p);
            max_err = max_err.max((r.entropy - exact).abs());
        }
        assert!(max_err < 0.02, "max LUT entropy error {max_err}");
    }

    #[test]
    fn exit_decisions_match_exact_policy() {
        // For thresholds away from the quantization error the hardware and
        // the algorithmic policy agree on exit/continue.
        let m = module();
        let mut rng = TensorRng::seed_from(2);
        let mut agreements = 0;
        let n = 300;
        for _ in 0..n {
            let logits: Vec<f32> = (0..10).map(|_| rng.uniform(-5.0, 5.0)).collect();
            let theta = rng.uniform(0.1, 0.9);
            let r = m.evaluate(&logits, theta).unwrap();
            let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&y| (y - mx).exp()).collect();
            let z: f32 = exps.iter().sum();
            let p: Vec<f32> = exps.iter().map(|&e| e / z).collect();
            let exact_exit = exact_normalized_entropy(&p) < theta;
            if exact_exit == r.exit {
                agreements += 1;
            }
        }
        assert!(agreements as f32 / n as f32 > 0.97, "agreement {agreements}/{n}");
    }

    #[test]
    fn exact_entropy_bounds() {
        assert_eq!(exact_normalized_entropy(&[1.0, 0.0]), 0.0);
        let u = exact_normalized_entropy(&[0.25; 4]);
        assert!((u - 1.0).abs() < 1e-6);
    }

    #[test]
    fn too_few_classes_rejected() {
        let m = module();
        assert!(m.evaluate(&[1.0], 0.5).is_err());
    }

    #[test]
    fn tiny_lut_rejected() {
        let c = HardwareConfig { sigma_lut_bytes: 8, ..HardwareConfig::default() };
        assert!(SigmaEModule::new(&c).is_err());
    }
}
