use std::fmt;

/// Errors produced by the IMC simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ImcError {
    /// A hardware configuration value was outside its documented domain.
    InvalidConfig(String),
    /// A layer geometry cannot be mapped (zero extent).
    UnmappableLayer(String),
    /// Activity statistics disagree with the mapping.
    ActivityMismatch {
        /// Layers in the mapping.
        layers: usize,
        /// Density entries supplied.
        densities: usize,
    },
    /// Density entries supplied to the NoC disagree with its link count.
    LinkDensityMismatch {
        /// Inter-layer links in the NoC.
        links: usize,
        /// Density entries supplied.
        densities: usize,
    },
    /// A network's crossbar-mapped parameters disagree with the chip mapping
    /// they are being injected through.
    NetworkMismatch(String),
}

impl fmt::Display for ImcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImcError::InvalidConfig(msg) => write!(f, "invalid hardware configuration: {msg}"),
            ImcError::UnmappableLayer(msg) => write!(f, "unmappable layer: {msg}"),
            ImcError::ActivityMismatch { layers, densities } => {
                write!(f, "mapping has {layers} layers but {densities} density entries supplied")
            }
            ImcError::LinkDensityMismatch { links, densities } => {
                write!(
                    f,
                    "noc has {links} inter-layer links but {densities} density entries \
                     supplied (need one per link source layer)"
                )
            }
            ImcError::NetworkMismatch(msg) => {
                write!(f, "network does not match chip mapping: {msg}")
            }
        }
    }
}

impl std::error::Error for ImcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            ImcError::InvalidConfig("x".into()),
            ImcError::UnmappableLayer("y".into()),
            ImcError::ActivityMismatch { layers: 3, densities: 2 },
            ImcError::LinkDensityMismatch { links: 2, densities: 1 },
            ImcError::NetworkMismatch("z".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImcError>();
    }
}
