//! Layer → crossbar/PE/tile mapping (Sec. III-B).
//!
//! Each weight-bearing layer is unrolled into a `[fan_in, fan_out]` matrix.
//! Rows are split across ⌈rows/64⌉ crossbar row-groups; every weight needs
//! `slices_per_weight` devices for magnitude plus a differential column pair
//! for sign, so the column count per weight is `2 × slices`. The number of
//! tiles a layer occupies follows from the crossbars-per-tile budget —
//! exactly the factors the paper lists (crossbar size, channels, kernel
//! size, crossbars per tile).

use crate::{HardwareConfig, ImcError, Result};
use dtsnn_snn::LayerGeometry;

/// One layer's placement on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedLayer {
    /// Unrolled weight-matrix rows (fan-in / crossbar wordlines).
    pub rows: usize,
    /// Unrolled weight-matrix columns (fan-out, before slicing).
    pub cols: usize,
    /// Physical columns after bit-slicing and differential pairing.
    pub physical_cols: usize,
    /// Row groups: ⌈rows / crossbar_size⌉.
    pub row_segments: usize,
    /// Column groups: ⌈physical_cols / crossbar_size⌉.
    pub col_segments: usize,
    /// Crossbars = row_segments × col_segments.
    pub crossbars: usize,
    /// Tiles = ⌈crossbars / crossbars_per_tile⌉.
    pub tiles: usize,
    /// Input-vector presentations per timestep (output pixels for convs).
    pub vector_presentations: usize,
    /// Output neurons per timestep (`cols × presentations`).
    pub output_neurons: usize,
    /// Whether the layer is the final classifier (drives the σ–E module).
    pub is_classifier: bool,
}

/// A whole network mapped onto the chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipMapping {
    layers: Vec<MappedLayer>,
    crossbar_size: usize,
}

impl ChipMapping {
    /// Maps a network's layer geometries onto the architecture. The last
    /// layer is marked as the classifier.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for invalid hardware parameters
    /// and [`ImcError::UnmappableLayer`] for zero-extent layers.
    pub fn map(geometries: &[LayerGeometry], config: &HardwareConfig) -> Result<Self> {
        config.validate()?;
        if geometries.is_empty() {
            return Err(ImcError::UnmappableLayer("empty network".into()));
        }
        let n = geometries.len();
        let layers = geometries
            .iter()
            .enumerate()
            .map(|(i, g)| Self::map_layer(g, config, i == n - 1))
            .collect::<Result<Vec<_>>>()?;
        Ok(ChipMapping { layers, crossbar_size: config.crossbar_size })
    }

    fn map_layer(
        geometry: &LayerGeometry,
        config: &HardwareConfig,
        is_classifier: bool,
    ) -> Result<MappedLayer> {
        let (rows, cols) = geometry.matrix_shape();
        if rows == 0 || cols == 0 {
            return Err(ImcError::UnmappableLayer(format!("zero-extent layer {geometry:?}")));
        }
        let xb = config.crossbar_size;
        // 2 columns per slice: differential pair encodes signed weights.
        let physical_cols = cols * config.slices_per_weight() * 2;
        let row_segments = rows.div_ceil(xb);
        let col_segments = physical_cols.div_ceil(xb);
        let crossbars = row_segments * col_segments;
        let tiles = crossbars.div_ceil(config.crossbars_per_tile);
        let vector_presentations = geometry.vector_presentations();
        Ok(MappedLayer {
            rows,
            cols,
            physical_cols,
            row_segments,
            col_segments,
            crossbars,
            tiles,
            vector_presentations,
            output_neurons: cols * vector_presentations,
            is_classifier,
        })
    }

    /// Per-layer placements, in network order.
    pub fn layers(&self) -> &[MappedLayer] {
        &self.layers
    }

    /// Total crossbars occupied by the network.
    pub fn total_crossbars(&self) -> usize {
        self.layers.iter().map(|l| l.crossbars).sum()
    }

    /// Total tiles occupied by the network.
    pub fn total_tiles(&self) -> usize {
        self.layers.iter().map(|l| l.tiles).sum()
    }

    /// Total RRAM devices (cells) programmed.
    pub fn total_devices(&self) -> usize {
        self.total_crossbars() * self.crossbar_size * self.crossbar_size
    }

    /// Device utilization: programmed weights / available cells.
    pub fn utilization(&self) -> f64 {
        let used: usize = self
            .layers
            .iter()
            .map(|l| l.rows * l.physical_cols)
            .sum();
        used as f64 / self.total_devices().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsnn_snn::{resnet19_geometry, vgg16_geometry};

    fn config() -> HardwareConfig {
        HardwareConfig::default()
    }

    #[test]
    fn single_small_layer_fits_one_crossbar_group() {
        // 27×8 conv: rows 27 ≤ 64; physical cols = 8×2×2 = 32 ≤ 64.
        let g = [LayerGeometry::Conv {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: 16,
            in_w: 16,
        }];
        let m = ChipMapping::map(&g, &config()).unwrap();
        let l = &m.layers()[0];
        assert_eq!(l.rows, 27);
        assert_eq!(l.physical_cols, 32);
        assert_eq!(l.row_segments, 1);
        assert_eq!(l.col_segments, 1);
        assert_eq!(l.crossbars, 1);
        assert_eq!(l.tiles, 1);
        assert!(l.is_classifier);
    }

    #[test]
    fn crossbar_count_scales_with_layer_size() {
        // 512→512 3×3 conv: rows 4608 → 72 segments; cols 512×4=2048 → 32.
        let g = [LayerGeometry::Conv {
            in_channels: 512,
            out_channels: 512,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: 2,
            in_w: 2,
        }];
        let m = ChipMapping::map(&g, &config()).unwrap();
        let l = &m.layers()[0];
        assert_eq!(l.row_segments, 72);
        assert_eq!(l.col_segments, 32);
        assert_eq!(l.crossbars, 72 * 32);
        assert_eq!(l.tiles, (72 * 32usize).div_ceil(64));
    }

    #[test]
    fn vgg16_mapping_totals() {
        let m = ChipMapping::map(&vgg16_geometry(32, 3, 10), &config()).unwrap();
        assert_eq!(m.layers().len(), 16);
        assert!(m.total_crossbars() > 1000, "{}", m.total_crossbars());
        assert!(m.total_tiles() >= m.layers().len());
        // only the last layer is the classifier
        let classifiers = m.layers().iter().filter(|l| l.is_classifier).count();
        assert_eq!(classifiers, 1);
        assert!(m.layers().last().unwrap().is_classifier);
        let u = m.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn resnet19_maps() {
        let m = ChipMapping::map(&resnet19_geometry(32, 3, 10), &config()).unwrap();
        assert!(m.total_crossbars() > 500);
    }

    #[test]
    fn empty_network_rejected() {
        assert!(matches!(
            ChipMapping::map(&[], &config()),
            Err(ImcError::UnmappableLayer(_))
        ));
    }

    #[test]
    fn wider_devices_halve_slices_and_columns() {
        let g = [LayerGeometry::Fc { in_features: 64, out_features: 64 }];
        let narrow = ChipMapping::map(&g, &config()).unwrap();
        let mut wide_cfg = config();
        wide_cfg.device_bits = 8;
        let wide = ChipMapping::map(&g, &wide_cfg).unwrap();
        assert_eq!(narrow.layers()[0].physical_cols, 2 * wide.layers()[0].physical_cols);
    }
}
