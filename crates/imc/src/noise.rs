//! Device non-idealities (Fig. 6(B)).
//!
//! Weights deployed on RRAM are quantized to `weight_bits`, the magnitude is
//! split into `device_bits` slices stored on a differential column pair, and
//! every device's conductance carries multiplicative Gaussian variation
//! (σ/μ = 20% in Table I). The finite `R_off/R_on` ratio leaves a nonzero
//! "off" conductance whose variation does not cancel between the
//! differential columns. [`perturb_network`] applies this model post-training
//! to a trained [`Snn`], exactly as the paper does ("adding noise to the
//! weights post-training").

use crate::{HardwareConfig, Result};
use dtsnn_snn::Snn;
use dtsnn_tensor::TensorRng;

/// Device-variation model bound to a hardware configuration.
#[derive(Debug, Clone)]
pub struct DeviceNoise {
    levels: i64,
    slices: usize,
    device_bits: u32,
    sigma_over_mu: f64,
    /// g_min / g_max = R_on / R_off (conductance of the "off" level relative
    /// to full scale).
    g_min_ratio: f64,
}

impl DeviceNoise {
    /// Builds the noise model.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ImcError::InvalidConfig`] for invalid hardware parameters.
    pub fn new(config: &HardwareConfig) -> Result<Self> {
        config.validate()?;
        Ok(DeviceNoise {
            levels: 1i64 << (config.weight_bits - 1),
            slices: config.slices_per_weight(),
            device_bits: config.device_bits,
            sigma_over_mu: config.sigma_over_mu,
            g_min_ratio: 1.0 / config.r_off_ratio,
        })
    }

    /// Quantizes a weight tensor's values to `weight_bits` signed levels and
    /// reconstructs them through the noisy device model.
    ///
    /// `scale` is the full-scale weight magnitude (max |w| of the tensor).
    pub fn read_weight(&self, w: f32, scale: f32, rng: &mut TensorRng) -> f32 {
        if scale <= 0.0 {
            return 0.0;
        }
        let delta = scale / self.levels as f32;
        let q = ((w / delta).round() as i64).clamp(-self.levels, self.levels - 1);
        let magnitude = q.unsigned_abs();
        let sign = if q < 0 { -1.0 } else { 1.0 };
        // split magnitude into device_bits slices, most significant first
        let device_levels = (1u64 << self.device_bits) - 1;
        let mut reconstructed = 0.0f64;
        let mut weight_of_slice = 1u64 << (self.device_bits * (self.slices as u32 - 1));
        for s in 0..self.slices {
            let lvl = (magnitude >> (self.device_bits * (self.slices - 1 - s) as u32))
                & device_levels;
            // conductance: g_min + lvl/levels_max × (1 − g_min); both the
            // positive device and its differential reference carry variation.
            let g_ideal = self.g_min_ratio + (lvl as f64 / device_levels as f64) * (1.0 - self.g_min_ratio);
            let g_noisy = g_ideal * (1.0 + rng.normal(0.0, self.sigma_over_mu as f32) as f64);
            let g_ref_noisy =
                self.g_min_ratio * (1.0 + rng.normal(0.0, self.sigma_over_mu as f32) as f64);
            let lvl_read = (g_noisy - g_ref_noisy) / (1.0 - self.g_min_ratio)
                * device_levels as f64;
            reconstructed += lvl_read * weight_of_slice as f64;
            weight_of_slice >>= self.device_bits;
        }
        sign * (reconstructed as f32) * delta
    }
}

/// Quantize-then-dequantize a weight without device noise (the ideal 8-bit
/// deployment). Useful for separating quantization loss from variation loss.
///
/// Delegates to [`dtsnn_tensor::quant::quantize_dequantize`] — the same
/// grid the quantized kernel backend snaps weights onto — so the hardware
/// model and the inference backend can never disagree about the grid.
pub fn quantize_dequantize(w: f32, scale: f32, weight_bits: u32) -> f32 {
    dtsnn_tensor::quant::quantize_dequantize(w, scale, weight_bits)
}

/// Applies the device model to every crossbar-mapped parameter of a trained
/// network (those with weight decay: conv and linear weights; BN parameters
/// and biases stay digital).
///
/// # Errors
///
/// Returns [`crate::ImcError::InvalidConfig`] for invalid hardware parameters.
pub fn perturb_network(
    network: &mut Snn,
    config: &HardwareConfig,
    rng: &mut TensorRng,
) -> Result<()> {
    let model = DeviceNoise::new(config)?;
    let mut local = rng.fork(0x1107);
    network.visit_params(&mut |p| {
        if !p.decay {
            return;
        }
        let scale = p.value.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for v in p.value.data_mut() {
            *v = model.read_weight(*v, scale, &mut local);
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsnn_snn::{vgg_small, ModelConfig};

    #[test]
    fn quantization_is_exact_for_grid_values() {
        // values on the quantization grid survive round-trip
        let scale = 1.0;
        for q in [-128i64, -64, 0, 63, 127] {
            let w = q as f32 / 128.0;
            let back = quantize_dequantize(w, scale, 8);
            assert!((back - w).abs() < 1e-6, "{w} → {back}");
        }
        assert_eq!(quantize_dequantize(0.5, 0.0, 8), 0.0);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let scale = 1.0;
        let lsb = 1.0 / 128.0;
        let mut w = -0.999;
        while w < 0.999 {
            let back = quantize_dequantize(w, scale, 8);
            assert!((back - w).abs() <= 0.5 * lsb + 1e-6, "w={w} err={}", (back - w).abs());
            w += 0.0137;
        }
    }

    #[test]
    fn quantized_backend_weights_land_on_the_hardware_grid_bitwise() {
        // The kernel backend's QuantizedWeights and this module's
        // quantize_dequantize must describe the same grid: elementwise
        // bitwise equality, and the snapped weights are a fixed point of a
        // re-snap at the same scale (the PR 4 "unfaulted weights stay
        // on-grid" invariant, now extended to the quantized backend).
        let mut rng = TensorRng::seed_from(31);
        let w = dtsnn_tensor::Tensor::randn(&[6, 17], 0.0, 0.4, &mut rng);
        let scale = w.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let bits = HardwareConfig::default().weight_bits;
        let qw = dtsnn_tensor::QuantizedWeights::from_tensor(&w, bits).unwrap();
        for (&orig, &snapped) in w.data().iter().zip(qw.dequantized().data()) {
            assert_eq!(quantize_dequantize(orig, scale, bits).to_bits(), snapped.to_bits());
            assert_eq!(quantize_dequantize(snapped, scale, bits).to_bits(), snapped.to_bits());
        }
    }

    #[test]
    fn noiseless_device_model_matches_quantization() {
        let c = HardwareConfig { sigma_over_mu: 0.0, ..HardwareConfig::default() };
        let model = DeviceNoise::new(&c).unwrap();
        let mut rng = TensorRng::seed_from(1);
        for &w in &[-0.7f32, -0.2, 0.0, 0.33, 0.91] {
            let read = model.read_weight(w, 1.0, &mut rng);
            let ideal = quantize_dequantize(w, 1.0, 8);
            assert!((read - ideal).abs() < 1e-4, "{w}: {read} vs {ideal}");
        }
    }

    #[test]
    fn noise_is_zero_mean_and_proportional() {
        let model = DeviceNoise::new(&HardwareConfig::default()).unwrap();
        let mut rng = TensorRng::seed_from(2);
        let w = 0.5f32;
        let n = 4000;
        let reads: Vec<f32> = (0..n).map(|_| model.read_weight(w, 1.0, &mut rng)).collect();
        let mean = reads.iter().sum::<f32>() / n as f32;
        assert!((mean - w).abs() < 0.01, "mean {mean}");
        let std = (reads.iter().map(|r| (r - mean).powi(2)).sum::<f32>() / n as f32).sqrt();
        assert!(std > 0.01 && std < 0.2, "std {std}");
    }

    #[test]
    fn higher_variation_gives_noisier_reads() {
        let lo_cfg = HardwareConfig { sigma_over_mu: 0.05, ..HardwareConfig::default() };
        let hi_cfg = HardwareConfig { sigma_over_mu: 0.40, ..HardwareConfig::default() };
        let lo = DeviceNoise::new(&lo_cfg).unwrap();
        let hi = DeviceNoise::new(&hi_cfg).unwrap();
        let spread = |m: &DeviceNoise, seed| {
            let mut rng = TensorRng::seed_from(seed);
            let reads: Vec<f32> = (0..2000).map(|_| m.read_weight(0.5, 1.0, &mut rng)).collect();
            let mean = reads.iter().sum::<f32>() / reads.len() as f32;
            (reads.iter().map(|r| (r - mean).powi(2)).sum::<f32>() / reads.len() as f32).sqrt()
        };
        assert!(spread(&hi, 3) > 2.0 * spread(&lo, 3));
    }

    #[test]
    fn perturb_network_changes_only_decayed_params() {
        let mut rng = TensorRng::seed_from(4);
        let cfg = ModelConfig::default();
        let mut net = vgg_small(&cfg, &mut rng).unwrap();
        // snapshot params
        let mut before_decay = Vec::new();
        let mut before_rest = Vec::new();
        net.visit_params(&mut |p| {
            if p.decay {
                before_decay.push(p.value.clone());
            } else {
                before_rest.push(p.value.clone());
            }
        });
        perturb_network(&mut net, &HardwareConfig::default(), &mut rng).unwrap();
        let mut after_decay = Vec::new();
        let mut after_rest = Vec::new();
        net.visit_params(&mut |p| {
            if p.decay {
                after_decay.push(p.value.clone());
            } else {
                after_rest.push(p.value.clone());
            }
        });
        assert_eq!(before_rest, after_rest, "non-crossbar params must be untouched");
        let changed = before_decay
            .iter()
            .zip(&after_decay)
            .any(|(a, b)| a.data().iter().zip(b.data()).any(|(x, y)| (x - y).abs() > 1e-6));
        assert!(changed, "crossbar weights must be perturbed");
        // perturbation is bounded: relative Frobenius error below 100%
        let num: f32 = before_decay
            .iter()
            .zip(&after_decay)
            .map(|(a, b)| a.sub(b).unwrap().norm_sq())
            .sum();
        let den: f32 = before_decay.iter().map(|a| a.norm_sq()).sum();
        assert!(num / den < 1.0, "relative error {}", num / den);
    }
}
