//! Area accounting for the mapped chip (32 nm, Table I).
//!
//! The paper motivates ADC sharing ("multiplexers enable resource sharing of
//! ADCs and Shift-&-Add circuits among multiple crossbar columns to reduce
//! the area overheads") and budgets the σ–E module at 2 × 3 KB of LUT. This
//! module provides the corresponding silicon accounting: per-component areas
//! scale with the mapping, SRAM macros scale with their byte budgets, and
//! the ADC count reflects the mux ratio.

use crate::mapping::ChipMapping;
use crate::{HardwareConfig, Result};

/// Per-unit area constants, in µm² (32 nm-class estimates; calibration
/// parameters of the analytical model, like [`crate::EnergyConstants`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaConstants {
    /// One RRAM cell (4F² at F = 32 nm plus access overhead), µm².
    pub cell: f64,
    /// One ADC, µm².
    pub adc: f64,
    /// Switch matrix + wordline drivers per crossbar row, µm².
    pub driver_per_row: f64,
    /// One shift-&-add unit, µm².
    pub shift_add: f64,
    /// One column mux (per ADC), µm².
    pub mux: f64,
    /// One accumulator, µm².
    pub accumulator: f64,
    /// SRAM density, µm² per byte.
    pub sram_per_byte: f64,
    /// LIF neuron module per 64 neurons (time-multiplexed), µm².
    pub lif_module: f64,
    /// σ–E module control logic (FIFOs, MAC, comparator), µm².
    pub sigma_e_logic: f64,
}

impl Default for AreaConstants {
    fn default() -> Self {
        AreaConstants {
            cell: 0.05,
            adc: 1500.0,
            driver_per_row: 1.2,
            shift_add: 250.0,
            mux: 80.0,
            accumulator: 300.0,
            sram_per_byte: 1.4,
            lif_module: 900.0,
            sigma_e_logic: 4200.0,
        }
    }
}

/// Area split of a mapped network, µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Crossbar arrays.
    pub crossbars: f64,
    /// ADCs (shared `adc_mux_ratio`:1 across columns).
    pub adcs: f64,
    /// Drivers, muxes, shift-&-add (the digital peripherals).
    pub peripherals: f64,
    /// PE/tile/global accumulators.
    pub accumulators: f64,
    /// PE/tile/global SRAM buffers.
    pub buffers: f64,
    /// LIF neuron modules.
    pub lif_modules: f64,
    /// σ–E module (both LUTs + logic).
    pub sigma_e: f64,
}

impl AreaReport {
    /// Total area, µm².
    pub fn total(&self) -> f64 {
        self.crossbars
            + self.adcs
            + self.peripherals
            + self.accumulators
            + self.buffers
            + self.lif_modules
            + self.sigma_e
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total() / 1e6
    }
}

/// Computes the silicon area of a mapped network.
///
/// # Errors
///
/// Returns [`crate::ImcError::InvalidConfig`] for invalid configurations.
pub fn chip_area(
    mapping: &ChipMapping,
    config: &HardwareConfig,
    constants: &AreaConstants,
) -> Result<AreaReport> {
    config.validate()?;
    let xb = config.crossbar_size as f64;
    let n_xbar = mapping.total_crossbars() as f64;
    let n_tiles = mapping.total_tiles() as f64;
    // per crossbar: cells, one ADC group (columns / mux), drivers per row
    let adcs_per_xbar = (config.crossbar_size as f64 / config.adc_mux_ratio as f64).ceil();
    let crossbars = n_xbar * xb * xb * constants.cell;
    let adcs = n_xbar * adcs_per_xbar * constants.adc;
    let peripherals = n_xbar
        * (xb * constants.driver_per_row
            + adcs_per_xbar * constants.mux
            + config.slices_per_weight() as f64 * constants.shift_add);
    // accumulators: one per crossbar (PE), one per tile, one global
    let accumulators = (n_xbar + n_tiles + 1.0) * constants.accumulator;
    // buffers: per-PE (crossbar group ≈ 4 crossbars), per tile, one global
    let pe_groups = (n_xbar / 4.0).ceil();
    let buffers = constants.sram_per_byte
        * (pe_groups * config.pe_buffer_bytes as f64
            + n_tiles * config.tile_buffer_bytes as f64
            + config.global_buffer_bytes as f64);
    // LIF modules: one per tile (time-multiplexed over the tile's neurons)
    let lif_modules = n_tiles * constants.lif_module;
    let sigma_e = constants.sram_per_byte
        * (config.sigma_lut_bytes + config.entropy_lut_bytes) as f64
        + constants.sigma_e_logic;
    Ok(AreaReport { crossbars, adcs, peripherals, accumulators, buffers, lif_modules, sigma_e })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipMapping;
    use dtsnn_snn::{vgg16_geometry, LayerGeometry};

    fn vgg16_mapping() -> (ChipMapping, HardwareConfig) {
        let config = HardwareConfig::default();
        let mapping = ChipMapping::map(&vgg16_geometry(32, 3, 10), &config).unwrap();
        (mapping, config)
    }

    #[test]
    fn area_is_positive_and_dominated_by_arrays_or_adcs() {
        let (mapping, config) = vgg16_mapping();
        let report = chip_area(&mapping, &config, &AreaConstants::default()).unwrap();
        assert!(report.total() > 0.0);
        assert!(report.total_mm2() > 0.1, "VGG-16 should be ≥ 0.1 mm²");
        // σ–E is a negligible fraction of the chip (the paper's design point)
        assert!(report.sigma_e / report.total() < 0.01);
    }

    #[test]
    fn higher_mux_ratio_reduces_adc_area() {
        let (mapping, mut config) = vgg16_mapping();
        let a8 = chip_area(&mapping, &config, &AreaConstants::default()).unwrap();
        config.adc_mux_ratio = 16;
        let a16 = chip_area(&mapping, &config, &AreaConstants::default()).unwrap();
        assert!(a16.adcs < a8.adcs);
    }

    #[test]
    fn area_scales_with_network_size() {
        let config = HardwareConfig::default();
        let small = ChipMapping::map(
            &[LayerGeometry::Fc { in_features: 64, out_features: 10 }],
            &config,
        )
        .unwrap();
        let (large, _) = vgg16_mapping();
        let a_small = chip_area(&small, &config, &AreaConstants::default()).unwrap();
        let a_large = chip_area(&large, &config, &AreaConstants::default()).unwrap();
        assert!(a_large.total() > 10.0 * a_small.total());
    }

    #[test]
    fn sigma_e_area_tracks_lut_budget() {
        let (mapping, mut config) = vgg16_mapping();
        let base = chip_area(&mapping, &config, &AreaConstants::default()).unwrap();
        config.sigma_lut_bytes *= 4;
        config.entropy_lut_bytes *= 4;
        let big = chip_area(&mapping, &config, &AreaConstants::default()).unwrap();
        assert!(big.sigma_e > base.sigma_e);
        assert_eq!(big.crossbars, base.crossbars);
    }
}
