//! Event-driven multi-tile simulator (SpikeSim-grade; ROADMAP item 3).
//!
//! The analytical [`CostModel`] sums component latencies; this module builds
//! the *critical path through an event graph* instead. Each layer occupies a
//! block of tiles on the √N×√N mesh (a [`Placement`]), computes one
//! timestep's worth of crossbar reads / ADC conversions / shift-&-adds as a
//! serialized datapath occupation, then streams its packed output spikes to
//! the next layer's tiles over XY-routed mesh links. Three resources make
//! latency emergent rather than additive:
//!
//! * **datapath** — a layer processes one timestep at a time
//!   (`compute(t, l)` waits for `compute(t−1, l)`),
//! * **links** — directed mesh links serve one transfer at a time in
//!   arrival order (FIFO arbitration; XY routes are reserved hop-by-hop when
//!   the transfer is injected), and
//! * **output buffers** — a layer holds at most `buffer_slots` produced
//!   timesteps; a slot frees when the forward transfer completes, so slow
//!   consumers backpressure fast producers.
//!
//! Under [`TimestepSchedule::Sequential`] timestep `t+1` may only enter
//! layer 0 once timestep `t` has fully left the chip (the paper's DT-SNN
//! design point). Under [`TimestepSchedule::Pipelined`] timesteps flow
//! through the layer pipeline like a flow shop, and the σ–E module acts as
//! one more serialized stage.
//!
//! # Parity guarantee (fuzz oracle 11)
//!
//! With the default options — Sequential schedule, contention off — the
//! simulator reproduces [`CostModel::inference_cost`] *exactly*: bitwise on
//! latency cycles and on the energy breakdown. Both models share the same
//! per-layer cycle and energy kernels (`layer_compute_cycles`,
//! `layer_timestep_energy`), so they cannot drift apart silently. Every
//! pipelining/contention feature is therefore a measured *delta* against
//! the paper's calibrated ledger, never a reinterpretation of it.
//!
//! The engine is single-threaded and pops events from a binary heap keyed
//! `(time, sequence)`, so runs are deterministic and trivially invariant to
//! `DTSNN_THREADS`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::energy::{Component, CostModel, InferenceCost};
use crate::mapping::ChipMapping;
use crate::pipeline::{TimestepSchedule, PIPELINE_ENERGY_OVERHEAD};
use crate::{ImcError, Result};

/// Assignment of layers to tile blocks on the mesh.
///
/// Tiles are numbered row-major on the smallest square mesh that fits the
/// mapping's total tile count. Layers claim contiguous tile ranges in a
/// caller-chosen *placement order* (a permutation of the layer indices);
/// each layer is then represented by the tile nearest its block centroid,
/// and consecutive layers communicate over the XY route between their
/// representative tiles. [`Placement::linear`] — network order — matches
/// the [`crate::NocModel`] floorplan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    mesh_side: usize,
    order: Vec<usize>,
    anchors: Vec<(usize, usize)>,
}

impl Placement {
    /// Places layers in network order (the `NocModel` floorplan).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for an empty mapping.
    pub fn linear(mapping: &ChipMapping) -> Result<Self> {
        Self::with_order(mapping, (0..mapping.layers().len()).collect())
    }

    /// Places layers in the given order (a permutation of `0..layers`).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for an empty mapping or when
    /// `order` is not a permutation of the layer indices.
    pub fn with_order(mapping: &ChipMapping, order: Vec<usize>) -> Result<Self> {
        let layers = mapping.layers();
        let n = layers.len();
        if n == 0 {
            return Err(ImcError::InvalidConfig("cannot place an empty mapping".into()));
        }
        if order.len() != n {
            return Err(ImcError::InvalidConfig(format!(
                "placement order has {} entries for {n} layers",
                order.len()
            )));
        }
        let mut seen = vec![false; n];
        for &l in &order {
            if l >= n || seen[l] {
                return Err(ImcError::InvalidConfig(format!(
                    "placement order is not a permutation of 0..{n}"
                )));
            }
            seen[l] = true;
        }
        let total_tiles: usize = layers.iter().map(|l| l.tiles).sum();
        let mesh_side = (total_tiles as f64).sqrt().ceil() as usize;
        let mut anchors = vec![(0usize, 0usize); n];
        let mut next_tile = 0usize;
        for &layer in &order {
            let tiles = layers[layer].tiles;
            let (mut cx, mut cy) = (0.0f64, 0.0f64);
            for t in next_tile..next_tile + tiles {
                cx += (t % mesh_side) as f64;
                cy += (t / mesh_side) as f64;
            }
            let nt = tiles.max(1) as f64;
            let ax = ((cx / nt).round() as usize).min(mesh_side - 1);
            let ay = ((cy / nt).round() as usize).min(mesh_side - 1);
            anchors[layer] = (ax, ay);
            next_tile += tiles;
        }
        Ok(Placement { mesh_side, order, anchors })
    }

    /// Mesh side length (tiles per row).
    pub fn mesh_side(&self) -> usize {
        self.mesh_side
    }

    /// The placement order: `order()[k]` is the layer holding the `k`-th
    /// tile block.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Representative tile (x, y) of a layer's block.
    pub fn anchor(&self, layer: usize) -> (usize, usize) {
        self.anchors[layer]
    }

    /// Manhattan hop count between two layers' representative tiles.
    pub fn hops(&self, from: usize, to: usize) -> usize {
        let (ax, ay) = self.anchors[from];
        let (bx, by) = self.anchors[to];
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// XY route between two layers as directed mesh-link ids: first along
    /// x, then along y. Empty when both anchors share a tile.
    fn route(&self, from: usize, to: usize) -> Vec<usize> {
        let (mut x, mut y) = self.anchors[from];
        let (bx, by) = self.anchors[to];
        let mut links = Vec::with_capacity(self.hops(from, to));
        // directions: 0 = +x, 1 = −x, 2 = +y, 3 = −y
        while x != bx {
            let dir = if bx > x { 0 } else { 1 };
            links.push((y * self.mesh_side + x) * 4 + dir);
            x = if bx > x { x + 1 } else { x - 1 };
        }
        while y != by {
            let dir = if by > y { 2 } else { 3 };
            links.push((y * self.mesh_side + x) * 4 + dir);
            y = if by > y { y + 1 } else { y - 1 };
        }
        links
    }
}

/// Knobs of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Timestep schedule (sequential = the paper's design point).
    pub schedule: TimestepSchedule,
    /// Model NoC link occupancy and buffer backpressure. Off, transfers are
    /// instantaneous and overlap with compute — exactly the analytical
    /// ledger's assumption.
    pub contention: bool,
    /// Link bandwidth: packed spike bytes a mesh link moves per cycle.
    pub link_bytes_per_cycle: f64,
    /// Produced timesteps a layer can hold before backpressuring (≥ 1).
    pub buffer_slots: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            schedule: TimestepSchedule::Sequential,
            contention: false,
            link_bytes_per_cycle: 4.0,
            buffer_slots: 2,
        }
    }
}

impl SimOptions {
    /// The oracle configuration: must reproduce the analytical ledger.
    pub fn analytical_parity() -> Self {
        SimOptions::default()
    }

    /// Full pipelining with contention — the configuration the mapping
    /// search optimizes.
    pub fn pipelined() -> Self {
        SimOptions {
            schedule: TimestepSchedule::Pipelined,
            contention: true,
            ..SimOptions::default()
        }
    }
}

/// What one simulation run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Energy / latency / EDP of the simulated inference.
    pub cost: InferenceCost,
    /// Crossbar read events (vector presentations × crossbars, summed).
    pub crossbar_reads: u64,
    /// ADC conversion events (ledger count: vp × physical cols × segments).
    pub adc_conversions: u64,
    /// Link-hop traversals injected into the mesh.
    pub link_flits: u64,
    /// Cycles transfers spent queued behind busy links.
    pub link_stall_cycles: u64,
    /// Cycles computes spent waiting on output-buffer credits.
    pub buffer_stall_cycles: u64,
    /// Chip-exit time of each timestep, cycles.
    pub timestep_finish: Vec<u64>,
    /// Discrete events processed.
    pub events: u64,
}

/// Heap events, keyed by completion time (ties broken by push sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// `compute(t, l)` left the layer datapath.
    Compute { t: usize, l: usize },
    /// The transfer of timestep `t` from layer `l` reached layer `l + 1`.
    Transfer { t: usize, l: usize },
    /// The σ–E module finished scoring timestep `t`.
    Sigma { t: usize },
}

/// The event-driven simulator, bound to a cost model and a placement.
#[derive(Debug, Clone)]
pub struct EventSim<'a> {
    cost: &'a CostModel,
    placement: Placement,
    options: SimOptions,
}

impl<'a> EventSim<'a> {
    /// Binds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] when the placement does not
    /// cover the mapping's layers or the options are degenerate.
    pub fn new(cost: &'a CostModel, placement: Placement, options: SimOptions) -> Result<Self> {
        let n = cost.mapping().layers().len();
        if placement.order.len() != n {
            return Err(ImcError::InvalidConfig(format!(
                "placement covers {} layers, mapping has {n}",
                placement.order.len()
            )));
        }
        if options.buffer_slots == 0 {
            return Err(ImcError::InvalidConfig("buffer_slots must be at least 1".into()));
        }
        if options.link_bytes_per_cycle <= 0.0 || options.link_bytes_per_cycle.is_nan() {
            return Err(ImcError::InvalidConfig(format!(
                "link_bytes_per_cycle must be positive, got {}",
                options.link_bytes_per_cycle
            )));
        }
        Ok(EventSim { cost, placement, options })
    }

    /// The placement being simulated.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Simulates one inference of `timesteps` steps at the given per-layer
    /// input spike densities, with the σ–E module engaged when `classes` is
    /// `Some`.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::ActivityMismatch`] for wrong density counts and
    /// [`ImcError::InvalidConfig`] for zero timesteps.
    pub fn run(
        &self,
        densities: &[f32],
        timesteps: usize,
        classes: Option<usize>,
    ) -> Result<SimReport> {
        if timesteps == 0 {
            return Err(ImcError::InvalidConfig("timesteps must be positive, got 0".into()));
        }
        let layers = self.cost.mapping().layers();
        let n = layers.len();
        self.cost.check_densities(densities)?;
        let t_f = timesteps as f64;

        // --- static per-layer quantities (same kernels as the ledger) ---
        let durations: Vec<u64> =
            layers.iter().map(|l| self.cost.layer_compute_cycles(l)).collect();
        let sigma_cycles = classes.map(|k| self.cost.sigma_e_latency(k)).unwrap_or(0);
        // forward routes + per-hop serialization cycles (contention only)
        let mut routes: Vec<Vec<usize>> = Vec::with_capacity(n.saturating_sub(1));
        let mut service: Vec<u64> = Vec::with_capacity(n.saturating_sub(1));
        for l in 0..n.saturating_sub(1) {
            routes.push(self.placement.route(l, l + 1));
            // packed spikes, scaled by the consumer's input density
            let bytes = layers[l].output_neurons as f64 / 8.0 * densities[l + 1] as f64;
            service.push(((bytes / self.options.link_bytes_per_cycle).ceil() as u64).max(1));
        }
        let sequential = self.options.schedule == TimestepSchedule::Sequential;

        // --- mutable engine state ---
        fn push(
            heap: &mut BinaryHeap<Reverse<(u64, u64, Event)>>,
            seq: &mut u64,
            time: u64,
            ev: Event,
        ) {
            heap.push(Reverse((time, *seq, ev)));
            *seq += 1;
        }
        let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
        let mut seq = 0u64;
        // arrivals[l][t]: when timestep t's input is resident at layer l
        let mut arrivals: Vec<Vec<Option<u64>>> = vec![vec![None; timesteps]; n];
        arrivals[0] = vec![Some(0); timesteps]; // encoded input is on-chip
        // gate[t]: when timestep t may enter layer 0 (sequential schedule)
        let mut gate: Vec<Option<u64>> = vec![None; timesteps];
        gate[0] = Some(0);
        if !sequential {
            gate = vec![Some(0); timesteps];
        }
        let mut next_t: Vec<usize> = vec![0; n];
        let mut layer_free: Vec<u64> = vec![0; n];
        // FIFO of times at which an output-buffer credit became available
        let mut credits: Vec<VecDeque<u64>> = (0..n)
            .map(|_| (0..self.options.buffer_slots).map(|_| 0u64).collect())
            .collect();
        let mut link_free: Vec<u64> = vec![0; self.placement.mesh_side * self.placement.mesh_side * 4];
        let mut sigma_free = 0u64;
        let mut finish: Vec<u64> = vec![0; timesteps];
        let mut link_stall_cycles = 0u64;
        let mut buffer_stall_cycles = 0u64;
        let mut link_flits = 0u64;
        let mut events = 0u64;

        // Schedules every currently startable compute, eagerly per layer.
        // Start time = max of the enabling condition times, all of which are
        // already known, so eager scheduling cannot distort the chronology.
        let try_schedule =
            |heap: &mut BinaryHeap<Reverse<(u64, u64, Event)>>,
             seq: &mut u64,
             arrivals: &[Vec<Option<u64>>],
             gate: &[Option<u64>],
             next_t: &mut [usize],
             layer_free: &mut [u64],
             credits: &mut [VecDeque<u64>],
             buffer_stall_cycles: &mut u64| {
                for l in 0..n {
                    loop {
                        let t = next_t[l];
                        if t >= timesteps {
                            break;
                        }
                        let Some(arrival) = arrivals[l][t] else { break };
                        let gate_time = if l == 0 {
                            match gate[t] {
                                Some(g) => g,
                                None => break,
                            }
                        } else {
                            0
                        };
                        // the classifier's output goes straight to σ–E /
                        // off-chip, so only interior layers need a credit
                        let needs_credit = l + 1 < n;
                        if needs_credit && credits[l].is_empty() {
                            break;
                        }
                        let ready = arrival.max(gate_time).max(layer_free[l]);
                        let start = if needs_credit {
                            let credit = credits[l].pop_front().expect("checked non-empty");
                            if credit > ready {
                                *buffer_stall_cycles += credit - ready;
                            }
                            ready.max(credit)
                        } else {
                            ready
                        };
                        layer_free[l] = start + durations[l];
                        next_t[l] = t + 1;
                        push(heap, seq, start + durations[l], Event::Compute { t, l });
                    }
                }
            };

        try_schedule(
            &mut heap,
            &mut seq,
            &arrivals,
            &gate,
            &mut next_t,
            &mut layer_free,
            &mut credits,
            &mut buffer_stall_cycles,
        );

        while let Some(Reverse((now, _, event))) = heap.pop() {
            events += 1;
            match event {
                Event::Compute { t, l } => {
                    if l + 1 < n {
                        if !self.options.contention || routes[l].is_empty() {
                            // transfer is free: it overlaps with compute
                            // (the ledger's assumption) or stays on-tile
                            arrivals[l + 1][t] = Some(now);
                            credits[l].push_back(now);
                        } else {
                            // reserve the XY route hop by hop, FIFO per link
                            let mut tau = now;
                            for &link in &routes[l] {
                                let start = tau.max(link_free[link]);
                                link_stall_cycles += start - tau;
                                link_free[link] = start + service[l];
                                tau = start + service[l];
                            }
                            link_flits += routes[l].len() as u64;
                            push(&mut heap, &mut seq, tau, Event::Transfer { t, l });
                        }
                    } else if classes.is_some() {
                        // σ–E is one more serialized stage
                        let start = now.max(sigma_free);
                        sigma_free = start + sigma_cycles;
                        push(&mut heap, &mut seq, start + sigma_cycles, Event::Sigma { t });
                    } else {
                        finish[t] = now;
                        if sequential && t + 1 < timesteps {
                            gate[t + 1] = Some(now);
                        }
                    }
                }
                Event::Transfer { t, l } => {
                    arrivals[l + 1][t] = Some(now);
                    credits[l].push_back(now);
                }
                Event::Sigma { t } => {
                    finish[t] = now;
                    if sequential && t + 1 < timesteps {
                        gate[t + 1] = Some(now);
                    }
                }
            }
            try_schedule(
                &mut heap,
                &mut seq,
                &arrivals,
                &gate,
                &mut next_t,
                &mut layer_free,
                &mut credits,
                &mut buffer_stall_cycles,
            );
        }

        if next_t.iter().any(|&t| t < timesteps) {
            return Err(ImcError::InvalidConfig(
                "event simulator deadlocked before completing all timesteps".into(),
            ));
        }
        let latency_cycles = finish.iter().copied().max().unwrap_or(0);

        // --- energy: same activity counts as the ledger, so the breakdown
        // is reproduced bitwise in parity mode ---
        let per_t = self.cost.timestep_energy(densities)?;
        let overhead = match self.options.schedule {
            TimestepSchedule::Sequential => 1.0,
            TimestepSchedule::Pipelined => 1.0 + PIPELINE_ENERGY_OVERHEAD,
        };
        let mut energy = per_t.scaled(t_f * overhead);
        energy.accumulate(&self.cost.fixed_energy(densities)?);
        if let Some(k) = classes {
            energy.add(Component::SigmaE, self.cost.sigma_e_energy(k) * t_f);
        }
        if self.options.contention {
            // placement-aware surcharge: the ledger's flat interconnect term
            // already charges one traversal per output byte; every extra XY
            // hop beyond the first costs another byte-hop. This is what
            // gives the mapping search its spatial gradient.
            let e_byte = self.cost.config().energy.interconnect_byte;
            for l in 0..n.saturating_sub(1) {
                let extra_hops = self.placement.hops(l, l + 1).saturating_sub(1) as f64;
                let bytes = layers[l].output_neurons as f64 / 8.0 * densities[l + 1] as f64;
                energy.add(Component::Interconnect, bytes * extra_hops * e_byte * t_f);
            }
        }

        // event tallies from the same counts the ledger integrates
        let mut crossbar_reads = 0u64;
        let mut adc_conversions = 0u64;
        for layer in layers {
            let vp = layer.vector_presentations as u64;
            crossbar_reads += vp * layer.crossbars as u64 * timesteps as u64;
            adc_conversions += vp
                * layer.physical_cols as u64
                * layer.row_segments as u64
                * timesteps as u64;
        }

        Ok(SimReport {
            cost: InferenceCost {
                energy,
                latency_cycles,
                clock_ns: self.cost.config().latency.clock_ns,
                timesteps: t_f,
            },
            crossbar_reads,
            adc_conversions,
            link_flits,
            link_stall_cycles,
            buffer_stall_cycles,
            timestep_finish: finish,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChipMapping, HardwareConfig};
    use dtsnn_snn::{vgg16_geometry, LayerGeometry};

    fn model() -> CostModel {
        let config = HardwareConfig::default();
        let mapping = ChipMapping::map(&vgg16_geometry(32, 3, 10), &config).unwrap();
        CostModel::new(mapping, config).unwrap()
    }

    fn densities(model: &CostModel) -> Vec<f32> {
        let mut d = vec![0.2f32; model.mapping().layers().len()];
        d[0] = 1.0;
        d
    }

    #[test]
    fn parity_mode_reproduces_the_ledger_bitwise() {
        let m = model();
        let d = densities(&m);
        let sim = EventSim::new(&m, Placement::linear(m.mapping()).unwrap(), SimOptions::analytical_parity())
            .unwrap();
        for t in 1..=4usize {
            for classes in [None, Some(10)] {
                let ledger = m.inference_cost(&d, t as f64, classes).unwrap();
                let report = sim.run(&d, t, classes).unwrap();
                assert_eq!(report.cost.latency_cycles, ledger.latency_cycles, "T={t}");
                for c in Component::ALL {
                    assert_eq!(
                        report.cost.energy.component(c).to_bits(),
                        ledger.energy.component(c).to_bits(),
                        "component {} at T={t}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn placement_rejects_non_permutations() {
        let m = model();
        let n = m.mapping().layers().len();
        assert!(Placement::with_order(m.mapping(), vec![0; n]).is_err());
        assert!(Placement::with_order(m.mapping(), vec![0, 1]).is_err());
        assert!(Placement::with_order(m.mapping(), (0..n).map(|i| i + 1).collect()).is_err());
        assert!(Placement::with_order(m.mapping(), (0..n).rev().collect()).is_ok());
    }

    #[test]
    fn degenerate_options_rejected() {
        let m = model();
        let p = Placement::linear(m.mapping()).unwrap();
        let bad = SimOptions { buffer_slots: 0, ..SimOptions::default() };
        assert!(EventSim::new(&m, p.clone(), bad).is_err());
        let bad = SimOptions { link_bytes_per_cycle: 0.0, ..SimOptions::default() };
        assert!(EventSim::new(&m, p.clone(), bad).is_err());
        let sim = EventSim::new(&m, p, SimOptions::default()).unwrap();
        let d = densities(&m);
        assert!(sim.run(&d, 0, None).is_err());
        assert!(sim.run(&[0.5], 1, None).is_err());
    }

    #[test]
    fn single_layer_network_simulates_under_both_schedules() {
        let config = HardwareConfig::default();
        let mapping = ChipMapping::map(
            &[LayerGeometry::Fc { in_features: 64, out_features: 10 }],
            &config,
        )
        .unwrap();
        let m = CostModel::new(mapping, config).unwrap();
        let d = [1.0f32];
        let stage = m.timestep_latency();
        let sigma = m.sigma_e_latency(10);
        // sequential: each timestep fully exits before the next enters
        let sim = EventSim::new(&m, Placement::linear(m.mapping()).unwrap(), SimOptions::analytical_parity())
            .unwrap();
        let report = sim.run(&d, 3, Some(10)).unwrap();
        assert_eq!(report.cost.latency_cycles, 3 * (stage + sigma));
        assert_eq!(report.link_flits, 0);
        // pipelined: the single compute stage and σ–E overlap as a 2-stage
        // flow shop: Σ stages + (T−1) · bottleneck
        let sim = EventSim::new(&m, Placement::linear(m.mapping()).unwrap(), SimOptions::pipelined())
            .unwrap();
        let report = sim.run(&d, 3, Some(10)).unwrap();
        assert_eq!(report.cost.latency_cycles, stage + sigma + 2 * stage.max(sigma));
        assert_eq!(report.link_flits, 0);
        assert_eq!(report.link_stall_cycles, 0);
    }
}
