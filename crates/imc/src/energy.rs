//! Analytical energy / latency / EDP model (Figs. 1 and 4 of the paper).
//!
//! Dynamic energy is accumulated per *event* (cell read, ADC conversion,
//! driver switch, …) so that it scales with actual spike activity and with
//! the number of timesteps, exactly as the paper observes: energy and
//! latency grow linearly in `T`, and a fixed per-inference component (input
//! loading + static leakage across the inference window) makes the T=8/T=1
//! energy ratio ≈ 4.9 rather than 8 (Fig. 1(B)).

use crate::mapping::{ChipMapping, MappedLayer};
use crate::{HardwareConfig, ImcError, Result};

/// Chip components tracked by the energy breakdown (Fig. 1(A)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// RRAM crossbar arrays (analog MAC).
    Crossbar,
    /// Analog-to-digital converters.
    Adc,
    /// Digital peripherals: input switch matrix / wordline drivers, column
    /// muxes, shift-&-add circuits.
    DigitalPeripherals,
    /// PE / tile / global accumulators.
    Accumulators,
    /// PE / tile / global buffers.
    Buffers,
    /// H-Tree and NoC interconnect.
    Interconnect,
    /// LIF neuron modules.
    LifModule,
    /// The DT-SNN σ–E module (softmax + entropy + threshold compare).
    SigmaE,
    /// Fixed per-inference energy: input loading and static leakage.
    Static,
}

impl Component {
    /// All components, in display order.
    pub const ALL: [Component; 9] = [
        Component::DigitalPeripherals,
        Component::Crossbar,
        Component::Adc,
        Component::Buffers,
        Component::Accumulators,
        Component::Interconnect,
        Component::LifModule,
        Component::SigmaE,
        Component::Static,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Crossbar => "crossbar",
            Component::Adc => "adc",
            Component::DigitalPeripherals => "digital-peripherals",
            Component::Accumulators => "accumulators",
            Component::Buffers => "buffers",
            Component::Interconnect => "interconnect",
            Component::LifModule => "lif-module",
            Component::SigmaE => "sigma-e",
            Component::Static => "static",
        }
    }

    fn index(&self) -> usize {
        Component::ALL.iter().position(|c| c == self).expect("component in ALL")
    }
}

/// Energy split across chip components, in picojoules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyBreakdown {
    per_component: [f64; 9],
}

impl EnergyBreakdown {
    /// Creates an all-zero breakdown.
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    /// Adds `pj` picojoules to `component`.
    pub fn add(&mut self, component: Component, pj: f64) {
        self.per_component[component.index()] += pj;
    }

    /// Energy of one component, pJ.
    pub fn component(&self, component: Component) -> f64 {
        self.per_component[component.index()]
    }

    /// Total energy, pJ.
    pub fn total(&self) -> f64 {
        self.per_component.iter().sum()
    }

    /// Fraction of the total attributed to `component` (0 if total is 0).
    pub fn fraction(&self, component: Component) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.component(component) / t
        }
    }

    /// Elementwise sum.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        for (a, b) in self.per_component.iter_mut().zip(&other.per_component) {
            *a += b;
        }
    }

    /// Elementwise scale.
    pub fn scaled(&self, s: f64) -> EnergyBreakdown {
        let mut out = self.clone();
        for v in &mut out.per_component {
            *v *= s;
        }
        out
    }
}

/// Full cost of one inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceCost {
    /// Energy by component, pJ.
    pub energy: EnergyBreakdown,
    /// Latency, clock cycles.
    pub latency_cycles: u64,
    /// Clock period used for absolute time, ns.
    pub clock_ns: f64,
    /// Timesteps executed.
    pub timesteps: f64,
}

impl InferenceCost {
    /// Total energy, pJ.
    pub fn energy_pj(&self) -> f64 {
        self.energy.total()
    }

    /// Latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        self.latency_cycles as f64 * self.clock_ns
    }

    /// Energy-delay product, pJ·ns.
    pub fn edp(&self) -> f64 {
        self.energy_pj() * self.latency_ns()
    }
}

/// The per-event cost model bound to a mapping.
#[derive(Debug, Clone)]
pub struct CostModel {
    mapping: ChipMapping,
    config: HardwareConfig,
}

impl CostModel {
    /// Binds a mapping to a hardware configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for invalid configurations.
    pub fn new(mapping: ChipMapping, config: HardwareConfig) -> Result<Self> {
        config.validate()?;
        Ok(CostModel { mapping, config })
    }

    /// The underlying mapping.
    pub fn mapping(&self) -> &ChipMapping {
        &self.mapping
    }

    /// The hardware configuration.
    pub fn config(&self) -> &HardwareConfig {
        &self.config
    }

    pub(crate) fn check_densities(&self, densities: &[f32]) -> Result<()> {
        if densities.len() != self.mapping.layers().len() {
            return Err(ImcError::ActivityMismatch {
                layers: self.mapping.layers().len(),
                densities: densities.len(),
            });
        }
        for &d in densities {
            if !(0.0..=1.0).contains(&d) {
                return Err(ImcError::InvalidConfig(format!("density {d} outside [0,1]")));
            }
        }
        Ok(())
    }

    /// Dynamic energy of **one timestep**, given each layer's input spike
    /// density (1.0 for the analog-encoded first layer).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::ActivityMismatch`] for wrong density counts.
    pub fn timestep_energy(&self, densities: &[f32]) -> Result<EnergyBreakdown> {
        self.check_densities(densities)?;
        let mut out = EnergyBreakdown::new();
        for (layer, &density) in self.mapping.layers().iter().zip(densities) {
            out.accumulate(&self.layer_timestep_energy(layer, density));
        }
        Ok(out)
    }

    /// Dynamic energy of one layer for one timestep at the given input spike
    /// density. Shared by the analytical ledger above and the event-driven
    /// simulator ([`crate::EventSim`]) so the two models cannot drift.
    pub(crate) fn layer_timestep_energy(
        &self,
        layer: &MappedLayer,
        density: f32,
    ) -> EnergyBreakdown {
        let e = &self.config.energy;
        let mux = self.config.adc_mux_ratio as f64;
        let mut out = EnergyBreakdown::new();
        let d = density as f64;
        let vp = layer.vector_presentations as f64;
        let rows = layer.rows as f64;
        let pcols = layer.physical_cols as f64;
        let cols = layer.cols as f64;
        let rs = layer.row_segments as f64;

        // Crossbar: every active row charges every physical column it
        // crosses (one device per crossing).
        out.add(Component::Crossbar, vp * rows * d * pcols * e.cell_read);
        // ADC: one conversion per physical column per row segment per
        // vector (partial sums of each segment are digitized separately).
        let conversions = vp * pcols * rs;
        out.add(Component::Adc, conversions * e.adc_conversion);
        // Digital peripherals: wordline drivers for active rows, column
        // muxes for each conversion, shift-&-add to recombine bit slices.
        let driver = vp * rows * d * e.input_switch;
        let mux_e = conversions * e.mux * mux;
        let shift = vp * cols * self.config.slices_per_weight() as f64 * rs * e.shift_add;
        out.add(Component::DigitalPeripherals, driver + mux_e + shift);
        // Accumulators: PE-level (per row segment) plus tile and global.
        out.add(Component::Accumulators, vp * cols * (rs + 2.0) * e.accumulate);
        // Buffers: packed input spikes read+write, partial-sum bytes,
        // packed output spikes.
        let input_bytes = vp * rows * d / 8.0;
        let psum_bytes = vp * cols * rs;
        let output_bytes = layer.output_neurons as f64 / 8.0;
        out.add(
            Component::Buffers,
            (2.0 * input_bytes + psum_bytes + output_bytes) * e.buffer_byte,
        );
        // Interconnect: partial sums between PEs/tiles + spikes onward.
        let noc_bytes = psum_bytes / 4.0 + output_bytes;
        out.add(Component::Interconnect, noc_bytes * e.interconnect_byte);
        // LIF modules update each output neuron once per timestep (the
        // classifier output goes to the σ–E module instead).
        if !layer.is_classifier {
            out.add(Component::LifModule, layer.output_neurons as f64 * e.lif_update);
        }
        out
    }

    /// σ–E module energy for **one timestep** of a `classes`-way classifier
    /// (Fig. 3(b)): per class two LUT lookups (σ and log σ), one MAC and two
    /// FIFO operations.
    pub fn sigma_e_energy(&self, classes: usize) -> f64 {
        let e = &self.config.energy;
        classes as f64 * (2.0 * e.lut_lookup + e.sigma_e_mac + 2.0 * e.fifo_op)
    }

    /// Latency of **one timestep** in clock cycles. Crossbars operate in
    /// parallel; within a crossbar the ADC is shared by `adc_mux_ratio`
    /// columns; layers execute sequentially (timesteps are not pipelined —
    /// the paper's DT-SNN-specific choice).
    pub fn timestep_latency(&self) -> u64 {
        self.mapping.layers().iter().map(|layer| self.layer_compute_cycles(layer)).sum()
    }

    /// Cycles one layer occupies its datapath for one timestep: sequencing
    /// overhead plus, per vector presentation, a crossbar read, the muxed ADC
    /// conversions and a shift-&-add. Shared by the sequential ledger, the
    /// pipeline stage model and the event-driven simulator.
    pub(crate) fn layer_compute_cycles(&self, layer: &MappedLayer) -> u64 {
        let l = &self.config.latency;
        let xb = self.config.crossbar_size as u64;
        let mux = self.config.adc_mux_ratio as u64;
        let cols_per_xbar = (layer.physical_cols as u64).min(xb);
        let conversions = cols_per_xbar.div_ceil(mux);
        let per_vector = l.crossbar_read + conversions * l.adc + l.shift_add;
        l.layer_overhead + layer.vector_presentations as u64 * per_vector
    }

    /// σ–E module latency per timestep, cycles.
    pub fn sigma_e_latency(&self, classes: usize) -> u64 {
        classes as u64 * self.config.latency.sigma_e_per_class
    }

    /// Fixed per-inference energy (input loading + leakage), defined as
    /// `fixed_fraction ×` the one-timestep dynamic energy at the given
    /// nominal densities, split between peripherals and buffers.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::ActivityMismatch`] for wrong density counts.
    pub fn fixed_energy(&self, densities: &[f32]) -> Result<EnergyBreakdown> {
        let dynamic = self.timestep_energy(densities)?;
        let fixed = dynamic.total() * self.config.energy.fixed_fraction;
        let mut out = EnergyBreakdown::new();
        out.add(Component::Static, fixed);
        Ok(out)
    }

    /// Full cost of one inference running `timesteps` steps (possibly
    /// fractional, for dataset-averaged dynamic timesteps), with the σ–E
    /// module engaged when `classes` is `Some` (DT-SNN) or absent (static
    /// SNN).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::ActivityMismatch`] for wrong density counts and
    /// [`ImcError::InvalidConfig`] for non-positive timesteps.
    pub fn inference_cost(
        &self,
        densities: &[f32],
        timesteps: f64,
        classes: Option<usize>,
    ) -> Result<InferenceCost> {
        if timesteps <= 0.0 {
            return Err(ImcError::InvalidConfig(format!(
                "timesteps must be positive, got {timesteps}"
            )));
        }
        let per_t = self.timestep_energy(densities)?;
        let mut energy = per_t.scaled(timesteps);
        energy.accumulate(&self.fixed_energy(densities)?);
        // Accumulate latency in f64 and round once at the end: rounding the
        // timestep and σ–E terms separately drifts up to one cycle on
        // fractional (dataset-averaged) timesteps and disagrees with the
        // pipelined arm, which rounds once.
        let mut latency = self.timestep_latency() as f64 * timesteps;
        if let Some(k) = classes {
            energy.add(Component::SigmaE, self.sigma_e_energy(k) * timesteps);
            latency += self.sigma_e_latency(k) as f64 * timesteps;
        }
        Ok(InferenceCost {
            energy,
            latency_cycles: latency.round() as u64,
            clock_ns: self.config.latency.clock_ns,
            timesteps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsnn_snn::vgg16_geometry;

    fn vgg16_model() -> CostModel {
        let config = HardwareConfig::default();
        let mapping = ChipMapping::map(&vgg16_geometry(32, 3, 10), &config).unwrap();
        CostModel::new(mapping, config).unwrap()
    }

    fn nominal_densities(model: &CostModel) -> Vec<f32> {
        let n = model.mapping().layers().len();
        let mut d = vec![0.2f32; n];
        d[0] = 1.0; // analog-encoded input layer
        d
    }

    #[test]
    fn breakdown_bookkeeping() {
        let mut b = EnergyBreakdown::new();
        b.add(Component::Adc, 2.0);
        b.add(Component::Crossbar, 3.0);
        assert_eq!(b.total(), 5.0);
        assert_eq!(b.component(Component::Adc), 2.0);
        assert!((b.fraction(Component::Crossbar) - 0.6).abs() < 1e-12);
        let s = b.scaled(2.0);
        assert_eq!(s.total(), 10.0);
        let mut c = b.clone();
        c.accumulate(&s);
        assert_eq!(c.total(), 15.0);
    }

    #[test]
    fn fig1a_component_breakdown_reproduced() {
        // Paper Fig. 1(A): digital peripherals highest (~45%), crossbar + ADC
        // second (~25%) for VGG-16 on CIFAR-10.
        let model = vgg16_model();
        let d = nominal_densities(&model);
        // Breakdown at T=4 including fixed energy, like the paper's chart.
        let cost = model.inference_cost(&d, 4.0, None).unwrap();
        let total = cost.energy_pj();
        let peri = cost.energy.component(Component::DigitalPeripherals) / total;
        let xbar_adc = (cost.energy.component(Component::Crossbar)
            + cost.energy.component(Component::Adc))
            / total;
        assert!((0.38..=0.52).contains(&peri), "digital peripherals fraction {peri}");
        assert!((0.18..=0.32).contains(&xbar_adc), "crossbar+adc fraction {xbar_adc}");
        // peripherals must dominate, crossbar+ADC second (as in Fig. 1A)
        let others = 1.0 - peri - xbar_adc;
        assert!(peri > xbar_adc);
        assert!(peri > others * 0.9, "peri {peri} others {others}");
    }

    #[test]
    fn fig1b_energy_and_latency_scaling() {
        // Paper Fig. 1(B): T=8 costs ≈ 4.9× the energy and exactly 8× the
        // latency of T=1.
        let model = vgg16_model();
        let d = nominal_densities(&model);
        let c1 = model.inference_cost(&d, 1.0, None).unwrap();
        let c8 = model.inference_cost(&d, 8.0, None).unwrap();
        let e_ratio = c8.energy_pj() / c1.energy_pj();
        let l_ratio = c8.latency_ns() / c1.latency_ns();
        assert!((4.4..=5.4).contains(&e_ratio), "energy ratio {e_ratio}");
        assert!((l_ratio - 8.0).abs() < 1e-9, "latency ratio {l_ratio}");
    }

    #[test]
    fn energy_scales_linearly_in_timesteps() {
        let model = vgg16_model();
        let d = nominal_densities(&model);
        let e: Vec<f64> = (1..=4)
            .map(|t| model.inference_cost(&d, t as f64, None).unwrap().energy_pj())
            .collect();
        // constant first differences
        let d1 = e[1] - e[0];
        for w in e.windows(2) {
            assert!(((w[1] - w[0]) - d1).abs() / d1 < 1e-9);
        }
    }

    #[test]
    fn energy_monotone_in_density() {
        let model = vgg16_model();
        let lo = vec![0.05f32; model.mapping().layers().len()];
        let hi = vec![0.6f32; model.mapping().layers().len()];
        let e_lo = model.timestep_energy(&lo).unwrap().total();
        let e_hi = model.timestep_energy(&hi).unwrap().total();
        assert!(e_hi > e_lo);
    }

    #[test]
    fn sigma_e_overhead_is_negligible() {
        // Paper Sec. III-B: σ–E energy per timestep ≈ 2e-5 × one-timestep
        // inference energy.
        let model = vgg16_model();
        let d = nominal_densities(&model);
        let one_t = model.timestep_energy(&d).unwrap().total();
        let se = model.sigma_e_energy(10);
        let ratio = se / one_t;
        assert!(ratio < 5e-5, "σ–E ratio {ratio}");
        assert!(ratio > 0.0);
    }

    #[test]
    fn dtsnn_cost_adds_sigma_e_but_stays_close() {
        let model = vgg16_model();
        let d = nominal_densities(&model);
        let plain = model.inference_cost(&d, 4.0, None).unwrap();
        let dt = model.inference_cost(&d, 4.0, Some(10)).unwrap();
        let overhead = dt.energy_pj() / plain.energy_pj() - 1.0;
        assert!(overhead > 0.0 && overhead < 1e-3, "overhead {overhead}");
        assert!(dt.latency_cycles >= plain.latency_cycles);
    }

    #[test]
    fn fractional_timesteps_supported() {
        // DT-SNN reports dataset-average timesteps like 1.46.
        let model = vgg16_model();
        let d = nominal_densities(&model);
        let c = model.inference_cost(&d, 1.46, Some(10)).unwrap();
        let c1 = model.inference_cost(&d, 1.0, Some(10)).unwrap();
        let c2 = model.inference_cost(&d, 2.0, Some(10)).unwrap();
        assert!(c.energy_pj() > c1.energy_pj() && c.energy_pj() < c2.energy_pj());
    }

    #[test]
    fn fractional_timesteps_latency_rounds_once() {
        // Regression: the timestep and σ–E latency terms used to be rounded
        // to u64 separately before summing, drifting up to one cycle on
        // fractional T̂ vs the single rounding the pipelined arm applies.
        let model = vgg16_model();
        let d = nominal_densities(&model);
        let lt = model.timestep_latency() as f64;
        let st = model.sigma_e_latency(10) as f64;
        // find a fractional T̂ where the two rounding orders disagree
        let t_hat = (1..4000)
            .map(|i| 1.0 + i as f64 / 1000.0)
            .find(|t| (lt * t).round() + (st * t).round() != (lt * t + st * t).round())
            .expect("a discriminating fractional T̂ exists");
        let c = model.inference_cost(&d, t_hat, Some(10)).unwrap();
        assert_eq!(c.latency_cycles, (lt * t_hat + st * t_hat).round() as u64);
        // and the sequential scheduled path (which delegates here) agrees
        let s = model
            .inference_cost_scheduled(
                &d,
                t_hat,
                8,
                Some(10),
                crate::pipeline::TimestepSchedule::Sequential,
            )
            .unwrap();
        assert_eq!(c.latency_cycles, s.latency_cycles);
    }

    #[test]
    fn density_validation() {
        let model = vgg16_model();
        assert!(matches!(
            model.timestep_energy(&[0.5]),
            Err(ImcError::ActivityMismatch { .. })
        ));
        let mut d = nominal_densities(&model);
        d[3] = 1.5;
        assert!(model.timestep_energy(&d).is_err());
        let d = nominal_densities(&model);
        assert!(model.inference_cost(&d, 0.0, None).is_err());
    }

    #[test]
    fn edp_combines_energy_and_latency() {
        let model = vgg16_model();
        let d = nominal_densities(&model);
        let c = model.inference_cost(&d, 2.0, None).unwrap();
        assert!((c.edp() - c.energy_pj() * c.latency_ns()).abs() < 1e-6);
    }
}
