//! Tiled RRAM in-memory-computing architecture simulator (Sec. III-B of the
//! paper).
//!
//! The simulator models the monolithic tiled chip of Fig. 3(a): layers are
//! unrolled onto 64×64 crossbars of 4-bit RRAM devices (two bit-slices per
//! 8-bit weight, differential columns for sign), crossbars are grouped into
//! PEs and tiles with hierarchical buffers and accumulators, ADCs are shared
//! across columns by a multiplexer, and tiles communicate over a NoC. The
//! DT-SNN-specific σ–E module (LUT-based softmax + entropy, Fig. 3(b)) is
//! modelled both *functionally* (quantized LUT arithmetic you can execute)
//! and *energetically*.
//!
//! Energy, latency and area are analytical per-event models whose leaf
//! constants are calibrated so that the VGG-16/CIFAR-10 mapping reproduces
//! the paper's Fig. 1(A) component breakdown (digital peripherals ≈ 45%,
//! crossbar + ADC ≈ 25%) and Fig. 1(B) scaling (≈ 4.9× energy and 8×
//! latency from T = 1 → 8). Everything else — scaling with spike activity,
//! with timesteps, the ≈ 2·10⁻⁵ σ–E overhead — follows structurally.
//!
//! # Example
//!
//! ```
//! use dtsnn_imc::{ChipMapping, HardwareConfig};
//! use dtsnn_snn::vgg16_geometry;
//!
//! # fn main() -> Result<(), dtsnn_imc::ImcError> {
//! let config = HardwareConfig::default();
//! let mapping = ChipMapping::map(&vgg16_geometry(32, 3, 10), &config)?;
//! assert!(mapping.total_crossbars() > 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod config;
mod energy;
mod error;
mod faults;
mod mapping;
mod noc;
mod noise;
mod pipeline;
mod search;
mod sigma_e;
mod sim;

pub use area::{chip_area, AreaConstants, AreaReport};
pub use config::{EnergyConstants, HardwareConfig, LatencyConstants};
pub use energy::{Component, CostModel, EnergyBreakdown, InferenceCost};
pub use error::ImcError;
pub use faults::{FaultInjector, FaultModel, FaultReport};
pub use mapping::{ChipMapping, MappedLayer};
pub use noc::{LinkTraffic, NocModel};
pub use noise::{perturb_network, quantize_dequantize, DeviceNoise};
pub use pipeline::TimestepSchedule;
pub use search::{
    pareto_front, provisioned_area_mm2, search_placement, AnnealOptions, ParetoPoint,
    SearchResult, TrajectoryPoint,
};
pub use sigma_e::{exact_normalized_entropy, SigmaEModule, SigmaEReading};
pub use sim::{EventSim, Placement, SimOptions, SimReport};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ImcError>;
