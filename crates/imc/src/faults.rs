//! Mapping-aware RRAM fault injection (the robustness half of Fig. 6(B)).
//!
//! [`crate::perturb_network`] models exactly one non-ideality — a single draw
//! of Gaussian programming variation. Real CiM substrates additionally suffer
//! *discrete* defects: devices stuck at G_on/G_off, conductance drift toward
//! the off state, per-read noise on top of the programmed value, and whole
//! wordlines/bitlines lost to driver or mux failures. [`FaultModel`] composes
//! all of these; [`FaultInjector`] applies them to a trained network through
//! the [`ChipMapping`] coordinates, so a dead line damages the physically
//! co-located weights (a contiguous row or column strip of one crossbar)
//! rather than a random scatter.
//!
//! # Physical model
//!
//! Each weight is quantized to `weight_bits` signed levels and split into
//! `slices_per_weight` devices plus a differential reference per slice, as in
//! [`crate::DeviceNoise`]. Per device, in order:
//!
//! 1. **Programming variation** — multiplicative Gaussian, σ/μ from
//!    [`HardwareConfig::sigma_over_mu`] (one-shot, as in `perturb_network`);
//! 2. **Stuck-at faults** — with `stuck_on_rate` the device reads full-scale
//!    conductance regardless of the programmed level; else with
//!    `stuck_off_rate` it reads `g_min` (the draws are exclusive: a device
//!    cannot be stuck both ways, so the effective off rate is
//!    `(1 − p_on)·p_off`);
//! 3. **Drift** — surviving devices relax toward `g_min` by the fraction
//!    `drift` (retention loss between programming and read-out);
//! 4. **Read noise** — multiplicative Gaussian of width `read_sigma` drawn
//!    per read, *distinct from* the one-shot programming variation. One
//!    [`FaultInjector::inject`] call materializes one program-then-read
//!    instance; Monte-Carlo trials re-draw everything per trial.
//!
//! Dead wordlines zero the current of every device on the affected crossbar
//! row; dead bitlines zero one physical column strip. Both are drawn per
//! physical line through the mapping geometry.
//!
//! # Exactness contract
//!
//! A slice whose two devices are untouched by every enabled knob is read back
//! through an integer fast path, so with a null model and `sigma_over_mu = 0`
//! the injector reduces **bitwise** to [`crate::quantize_dequantize`], and
//! under a sparse model every unfaulted weight stays exactly on the
//! quantization grid — fault locality is observable in the weights.

use crate::{ChipMapping, HardwareConfig, ImcError, MappedLayer, Result};
use dtsnn_snn::{LayerGeometry, Snn};
use dtsnn_tensor::TensorRng;

/// Composable description of the substrate's non-idealities.
///
/// All rates are per-entity probabilities in `[0, 1]`; `read_sigma` is the
/// σ/μ of the per-read conductance noise and `drift` the fractional
/// relaxation toward `g_min`. [`FaultModel::none`] (= `Default`) disables
/// everything, leaving only quantization and the config's programming
/// variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability that a device is stuck at full-scale conductance (G_on).
    pub stuck_on_rate: f64,
    /// Probability that a device is stuck at minimum conductance (G_off).
    pub stuck_off_rate: f64,
    /// σ/μ of multiplicative Gaussian read noise, drawn per read.
    pub read_sigma: f64,
    /// Fractional conductance relaxation toward `g_min` in `[0, 1]`.
    pub drift: f64,
    /// Probability that a crossbar wordline (row driver) is dead.
    pub dead_wordline_rate: f64,
    /// Probability that a crossbar bitline (column) is dead.
    pub dead_bitline_rate: f64,
}

impl FaultModel {
    /// The fault-free model: every knob zero.
    pub fn none() -> Self {
        FaultModel {
            stuck_on_rate: 0.0,
            stuck_off_rate: 0.0,
            read_sigma: 0.0,
            drift: 0.0,
            dead_wordline_rate: 0.0,
            dead_bitline_rate: 0.0,
        }
    }

    /// Whether every knob is zero (injection degenerates to quantization
    /// plus the config's programming variation).
    pub fn is_null(&self) -> bool {
        self == &FaultModel::none()
    }

    /// Validates every knob's domain.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for rates outside `[0, 1]`,
    /// combined stuck rates above 1, negative `read_sigma`, drift outside
    /// `[0, 1]`, or any non-finite value.
    pub fn validate(&self) -> Result<()> {
        let rates = [
            ("stuck_on_rate", self.stuck_on_rate),
            ("stuck_off_rate", self.stuck_off_rate),
            ("dead_wordline_rate", self.dead_wordline_rate),
            ("dead_bitline_rate", self.dead_bitline_rate),
            ("drift", self.drift),
        ];
        for (name, r) in rates {
            if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                return Err(ImcError::InvalidConfig(format!(
                    "fault model: {name} must lie in [0, 1], got {r}"
                )));
            }
        }
        if self.stuck_on_rate + self.stuck_off_rate > 1.0 {
            return Err(ImcError::InvalidConfig(format!(
                "fault model: stuck_on_rate + stuck_off_rate must not exceed 1, got {}",
                self.stuck_on_rate + self.stuck_off_rate
            )));
        }
        if !self.read_sigma.is_finite() || self.read_sigma < 0.0 {
            return Err(ImcError::InvalidConfig(format!(
                "fault model: read_sigma must be nonnegative, got {}",
                self.read_sigma
            )));
        }
        Ok(())
    }

    /// Scales every knob by `severity` (clamped back into its domain), the
    /// x-axis of a graceful-degradation sweep. `scaled(0.0)` is the null
    /// model; `scaled(1.0)` is `self`. Scaling a valid model always yields a
    /// valid model: rates clamp at 1 and the stuck pair is renormalized when
    /// its scaled sum would exceed 1.
    pub fn scaled(&self, severity: f64) -> FaultModel {
        let s = severity.max(0.0);
        let rate = |r: f64| (r * s).clamp(0.0, 1.0);
        let (mut on, mut off) = (rate(self.stuck_on_rate), rate(self.stuck_off_rate));
        if on + off > 1.0 {
            let k = 1.0 / (on + off);
            on *= k;
            off *= k;
        }
        FaultModel {
            stuck_on_rate: on,
            stuck_off_rate: off,
            read_sigma: (self.read_sigma * s).max(0.0),
            drift: rate(self.drift),
            dead_wordline_rate: rate(self.dead_wordline_rate),
            dead_bitline_rate: rate(self.dead_bitline_rate),
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// What one [`FaultInjector::inject`] call actually did: entity totals and
/// the number of faults that landed on each. All counts are exact, so
/// property tests can check that configured rates are honored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Crossbar-mapped parameter tensors visited.
    pub layers: usize,
    /// Logical weights read through the device model.
    pub weights: usize,
    /// Weights touched by a discrete fault (stuck device or dead line).
    pub weights_faulted: usize,
    /// RRAM devices read (`weights × slices × 2` for processed layers).
    pub devices: usize,
    /// Devices stuck at G_on.
    pub stuck_on: usize,
    /// Devices stuck at G_off.
    pub stuck_off: usize,
    /// Physical wordlines spanned by the mapping.
    pub wordlines: usize,
    /// Wordlines drawn dead.
    pub dead_wordlines: usize,
    /// Physical bitlines spanned by the mapping.
    pub bitlines: usize,
    /// Bitlines drawn dead.
    pub dead_bitlines: usize,
}

impl FaultReport {
    /// Fraction of devices carrying a stuck-at fault.
    pub fn stuck_fraction(&self) -> f64 {
        (self.stuck_on + self.stuck_off) as f64 / self.devices.max(1) as f64
    }
}

/// Per-device read result (conductance normalized to full scale).
struct DeviceRead {
    g: f64,
    /// No enabled knob touched this device: the integer fast path applies.
    pristine: bool,
    stuck: bool,
}

/// Applies a [`FaultModel`] to a trained network through its chip mapping.
///
/// The injector is bound to one `(model, mapping, config)` triple at
/// construction; [`FaultInjector::inject`] then perturbs the crossbar-mapped
/// parameters (those with weight decay, exactly the set `perturb_network`
/// touches) of any network whose geometry matches the mapping.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    model: FaultModel,
    layers: Vec<MappedLayer>,
    crossbar_size: usize,
    levels: i64,
    slices: usize,
    device_bits: u32,
    device_levels_max: u64,
    prog_sigma: f64,
    g_min: f64,
}

impl FaultInjector {
    /// Builds an injector for a pre-computed mapping.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for invalid hardware parameters
    /// or an invalid fault model.
    pub fn new(model: FaultModel, mapping: &ChipMapping, config: &HardwareConfig) -> Result<Self> {
        config.validate()?;
        model.validate()?;
        Ok(FaultInjector {
            model,
            layers: mapping.layers().to_vec(),
            crossbar_size: config.crossbar_size,
            levels: 1i64 << (config.weight_bits - 1),
            slices: config.slices_per_weight(),
            device_bits: config.device_bits,
            device_levels_max: (1u64 << config.device_bits) - 1,
            prog_sigma: config.sigma_over_mu,
            g_min: 1.0 / config.r_off_ratio,
        })
    }

    /// Convenience constructor: maps `geometries` onto `config` first.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChipMapping::map`] and [`FaultInjector::new`].
    pub fn for_geometry(
        model: FaultModel,
        geometries: &[LayerGeometry],
        config: &HardwareConfig,
    ) -> Result<Self> {
        let mapping = ChipMapping::map(geometries, config)?;
        FaultInjector::new(model, &mapping, config)
    }

    /// The bound fault model.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Programs the network onto the faulty substrate and reads it back:
    /// every crossbar-mapped parameter is quantized, sliced onto devices,
    /// passed through the per-device fault chain and reconstructed. BN
    /// parameters and biases (digital) are untouched.
    ///
    /// All randomness comes from a single forked stream consumed in a fixed
    /// order (per layer: wordline draws, then bitline draws, then per-weight
    /// slice draws, positive device before reference), so one seed fully
    /// determines the damaged network for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::NetworkMismatch`] when the network's
    /// crossbar-mapped parameters disagree with the bound mapping (count or
    /// per-layer element count).
    pub fn inject(&self, network: &mut Snn, rng: &mut TensorRng) -> Result<FaultReport> {
        // validation pass: the decayed params must align 1:1 with the mapping
        let mut shapes: Vec<usize> = Vec::new();
        network.visit_params(&mut |p| {
            if p.decay {
                shapes.push(p.value.data().len());
            }
        });
        if shapes.len() != self.layers.len() {
            return Err(ImcError::NetworkMismatch(format!(
                "network has {} crossbar-mapped parameters, mapping has {} layers",
                shapes.len(),
                self.layers.len()
            )));
        }
        for (i, (&elems, layer)) in shapes.iter().zip(&self.layers).enumerate() {
            if elems != layer.rows * layer.cols {
                return Err(ImcError::NetworkMismatch(format!(
                    "layer {i}: parameter has {elems} weights, mapping expects {}×{}",
                    layer.rows, layer.cols
                )));
            }
        }
        let mut local = rng.fork(0xFA01);
        let mut report = FaultReport::default();
        let mut li = 0usize;
        network.visit_params(&mut |p| {
            if !p.decay {
                return;
            }
            let layer = self.layers[li];
            li += 1;
            let scale = p.value.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if scale <= 0.0 {
                // an all-zero tensor maps to all-off devices; nothing to read
                return;
            }
            report.layers += 1;
            report.weights += layer.rows * layer.cols;
            // dead-line tables, drawn per physical line in a fixed order
            let wordlines = layer.rows * layer.col_segments;
            let bitlines = layer.row_segments * layer.physical_cols;
            report.wordlines += wordlines;
            report.bitlines += bitlines;
            let dead_wl: Vec<bool> = if self.model.dead_wordline_rate > 0.0 {
                (0..wordlines)
                    .map(|_| local.bernoulli(self.model.dead_wordline_rate as f32))
                    .collect()
            } else {
                Vec::new()
            };
            let dead_bl: Vec<bool> = if self.model.dead_bitline_rate > 0.0 {
                (0..bitlines)
                    .map(|_| local.bernoulli(self.model.dead_bitline_rate as f32))
                    .collect()
            } else {
                Vec::new()
            };
            report.dead_wordlines += dead_wl.iter().filter(|&&d| d).count();
            report.dead_bitlines += dead_bl.iter().filter(|&&d| d).count();
            let delta = scale / self.levels as f32;
            for (i, w) in p.value.data_mut().iter_mut().enumerate() {
                // unrolled weight matrix is [fan_in, fan_out] column-major
                // over the flat [out, in] parameter: element i sits at
                // wordline row = i % rows, logical column col = i / rows
                let col = i / layer.rows;
                let row = i % layer.rows;
                let q = ((*w / delta).round() as i64).clamp(-self.levels, self.levels - 1);
                let magnitude = q.unsigned_abs();
                let sign = if q < 0 { -1.0f32 } else { 1.0f32 };
                let mut level_sum = 0.0f64;
                let mut weight_of_slice = 1u64 << (self.device_bits * (self.slices as u32 - 1));
                let mut faulted = false;
                for s in 0..self.slices {
                    let lvl = (magnitude >> (self.device_bits * (self.slices - 1 - s) as u32))
                        & self.device_levels_max;
                    let pos_col = (col * self.slices + s) * 2;
                    let ref_col = pos_col + 1;
                    let pos_dead = self.line_dead(&layer, &dead_wl, &dead_bl, row, pos_col);
                    let ref_dead = self.line_dead(&layer, &dead_wl, &dead_bl, row, ref_col);
                    let pos = self.read_device(lvl, &mut local, &mut report);
                    let refr = self.read_device(0, &mut local, &mut report);
                    if pos.stuck || refr.stuck || pos_dead || ref_dead {
                        faulted = true;
                    }
                    if pos.pristine && refr.pristine && !pos_dead && !ref_dead {
                        // integer fast path: an untouched differential pair
                        // reads back the exact programmed level
                        level_sum += lvl as f64 * weight_of_slice as f64;
                    } else {
                        let g_pos = if pos_dead { 0.0 } else { pos.g };
                        let g_ref = if ref_dead { 0.0 } else { refr.g };
                        let lvl_read =
                            (g_pos - g_ref) / (1.0 - self.g_min) * self.device_levels_max as f64;
                        level_sum += lvl_read * weight_of_slice as f64;
                    }
                    weight_of_slice >>= self.device_bits;
                }
                report.weights_faulted += faulted as usize;
                *w = sign * (level_sum as f32) * delta;
            }
        });
        Ok(report)
    }

    /// Whether the line carrying (`row`, physical column `pc`) is dead.
    fn line_dead(
        &self,
        layer: &MappedLayer,
        dead_wl: &[bool],
        dead_bl: &[bool],
        row: usize,
        pc: usize,
    ) -> bool {
        // a wordline is one crossbar row: indexed by (row, column segment);
        // a bitline is one physical column within a row segment
        let wl = !dead_wl.is_empty() && dead_wl[row * layer.col_segments + pc / self.crossbar_size];
        let bl = !dead_bl.is_empty() && dead_bl[(row / self.crossbar_size) * layer.physical_cols + pc];
        wl || bl
    }

    /// One device through the fault chain; see the module docs for the
    /// ordering. Draws are skipped entirely for disabled knobs, so a null
    /// model consumes no randomness and stays on the integer fast path.
    fn read_device(&self, lvl: u64, rng: &mut TensorRng, report: &mut FaultReport) -> DeviceRead {
        report.devices += 1;
        let mut pristine = true;
        let mut g = self.g_min + (lvl as f64 / self.device_levels_max as f64) * (1.0 - self.g_min);
        if self.prog_sigma > 0.0 {
            g *= 1.0 + rng.normal(0.0, self.prog_sigma as f32) as f64;
            pristine = false;
        }
        let mut stuck = false;
        if self.model.stuck_on_rate > 0.0 && rng.bernoulli(self.model.stuck_on_rate as f32) {
            g = 1.0;
            stuck = true;
            report.stuck_on += 1;
        } else if self.model.stuck_off_rate > 0.0
            && rng.bernoulli(self.model.stuck_off_rate as f32)
        {
            g = self.g_min;
            stuck = true;
            report.stuck_off += 1;
        }
        if stuck {
            pristine = false;
        } else if self.model.drift > 0.0 {
            g = self.g_min + (g - self.g_min) * (1.0 - self.model.drift);
            pristine = false;
        }
        if self.model.read_sigma > 0.0 {
            g *= 1.0 + rng.normal(0.0, self.model.read_sigma as f32) as f64;
            pristine = false;
        }
        DeviceRead { g, pristine, stuck }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::quantize_dequantize;
    use dtsnn_snn::{vgg_small, vgg_small_geometry, Layer, Linear, Flatten, ModelConfig};
    use dtsnn_tensor::parallel;

    fn decayed_params(net: &mut Snn) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        net.visit_params(&mut |p| {
            if p.decay {
                out.push(p.value.data().to_vec());
            }
        });
        out
    }

    fn all_params(net: &mut Snn) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        net.visit_params(&mut |p| out.push(p.value.data().to_vec()));
        out
    }

    /// One 128×128 FC layer: rows 128, physical cols 512 under the default
    /// config, big enough for rate statistics.
    fn fc_fixture(seed: u64) -> (Snn, Vec<LayerGeometry>) {
        let mut rng = TensorRng::seed_from(seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(128, 128, &mut rng)),
        ];
        (Snn::from_layers(layers), vec![LayerGeometry::Fc { in_features: 128, out_features: 128 }])
    }

    #[test]
    fn null_model_with_zero_sigma_is_bitwise_quantization() {
        let cfg = HardwareConfig { sigma_over_mu: 0.0, ..HardwareConfig::default() };
        let model_cfg = ModelConfig { num_classes: 4, ..ModelConfig::default() };
        let mut rng = TensorRng::seed_from(11);
        let mut net = vgg_small(&model_cfg, &mut rng).unwrap();
        let before = all_params(&mut net);
        let before_decay = decayed_params(&mut net);
        let inj =
            FaultInjector::for_geometry(FaultModel::none(), &vgg_small_geometry(&model_cfg), &cfg)
                .unwrap();
        let report = inj.inject(&mut net, &mut rng).unwrap();
        assert_eq!(report.stuck_on + report.stuck_off, 0);
        assert_eq!(report.dead_wordlines + report.dead_bitlines, 0);
        assert_eq!(report.weights_faulted, 0);
        assert!(report.devices > 0);
        // decayed params reduce bitwise to quantize_dequantize
        let mut di = 0;
        let mut pi = 0;
        net.visit_params(&mut |p| {
            if p.decay {
                let orig = &before_decay[di];
                let scale = orig.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                for (a, &o) in p.value.data().iter().zip(orig) {
                    let want = quantize_dequantize(o, scale, 8);
                    assert_eq!(a.to_bits(), want.to_bits(), "{o} → {a} vs {want}");
                }
                di += 1;
            } else {
                assert_eq!(p.value.data(), before[pi].as_slice(), "digital param touched");
            }
            pi += 1;
        });
    }

    #[test]
    fn stuck_rates_are_honored_within_tolerance() {
        let cfg = HardwareConfig { sigma_over_mu: 0.0, ..HardwareConfig::default() };
        let (mut net, geom) = fc_fixture(21);
        let model = FaultModel {
            stuck_on_rate: 0.05,
            stuck_off_rate: 0.10,
            ..FaultModel::none()
        };
        let inj = FaultInjector::for_geometry(model, &geom, &cfg).unwrap();
        let mut rng = TensorRng::seed_from(22);
        let report = inj.inject(&mut net, &mut rng).unwrap();
        // 128×128 weights × 2 slices × 2 devices = 65536 devices
        assert_eq!(report.devices, 128 * 128 * 4);
        let on = report.stuck_on as f64 / report.devices as f64;
        // off draws only happen on devices not stuck on
        let off = report.stuck_off as f64 / (report.devices as f64 * (1.0 - 0.05));
        assert!((on - 0.05).abs() < 0.01, "stuck-on rate {on}");
        assert!((off - 0.10).abs() < 0.01, "stuck-off rate {off}");
        assert!(report.weights_faulted > 0);
    }

    #[test]
    fn dead_line_rates_are_honored_within_tolerance() {
        let cfg = HardwareConfig { sigma_over_mu: 0.0, ..HardwareConfig::default() };
        let (mut net, geom) = fc_fixture(31);
        let model = FaultModel {
            dead_wordline_rate: 0.10,
            dead_bitline_rate: 0.20,
            ..FaultModel::none()
        };
        let inj = FaultInjector::for_geometry(model, &geom, &cfg).unwrap();
        let mut rng = TensorRng::seed_from(32);
        let report = inj.inject(&mut net, &mut rng).unwrap();
        // 128 rows × 8 col segments = 1024 wordlines; 2 row segments × 512
        // physical cols = 1024 bitlines
        assert_eq!(report.wordlines, 1024);
        assert_eq!(report.bitlines, 1024);
        let wl = report.dead_wordlines as f64 / report.wordlines as f64;
        let bl = report.dead_bitlines as f64 / report.bitlines as f64;
        assert!((wl - 0.10).abs() < 0.05, "dead-wordline rate {wl}");
        assert!((bl - 0.20).abs() < 0.06, "dead-bitline rate {bl}");
    }

    #[test]
    fn all_lines_dead_reads_every_weight_as_zero() {
        let cfg = HardwareConfig { sigma_over_mu: 0.0, ..HardwareConfig::default() };
        for model in [
            FaultModel { dead_wordline_rate: 1.0, ..FaultModel::none() },
            FaultModel { dead_bitline_rate: 1.0, ..FaultModel::none() },
        ] {
            let (mut net, geom) = fc_fixture(41);
            let inj = FaultInjector::for_geometry(model, &geom, &cfg).unwrap();
            let mut rng = TensorRng::seed_from(42);
            let report = inj.inject(&mut net, &mut rng).unwrap();
            assert_eq!(report.weights_faulted, report.weights);
            for t in decayed_params(&mut net) {
                assert!(t.iter().all(|&v| v == 0.0), "dead lines must zero all reads");
            }
        }
    }

    #[test]
    fn unfaulted_weights_stay_on_the_quantization_grid() {
        // discrete faults only: every weight either carries a fault or reads
        // back exactly its quantized value (fault locality)
        let cfg = HardwareConfig { sigma_over_mu: 0.0, ..HardwareConfig::default() };
        let (mut net, geom) = fc_fixture(51);
        let before = decayed_params(&mut net);
        let model = FaultModel {
            stuck_on_rate: 0.01,
            stuck_off_rate: 0.02,
            dead_wordline_rate: 0.01,
            ..FaultModel::none()
        };
        let inj = FaultInjector::for_geometry(model, &geom, &cfg).unwrap();
        let mut rng = TensorRng::seed_from(52);
        let report = inj.inject(&mut net, &mut rng).unwrap();
        let after = decayed_params(&mut net);
        let scale = before[0].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let changed = before[0]
            .iter()
            .zip(&after[0])
            .filter(|(&o, &a)| a.to_bits() != quantize_dequantize(o, scale, 8).to_bits())
            .count();
        assert!(changed > 0, "faults must be visible");
        assert!(
            changed <= report.weights_faulted,
            "{changed} off-grid weights vs {} faulted",
            report.weights_faulted
        );
    }

    #[test]
    fn injection_is_deterministic_and_thread_invariant() {
        let cfg = HardwareConfig::default();
        let model = FaultModel {
            stuck_on_rate: 0.02,
            stuck_off_rate: 0.03,
            read_sigma: 0.05,
            drift: 0.05,
            dead_wordline_rate: 0.01,
            dead_bitline_rate: 0.01,
        };
        let run = |threads: usize| {
            parallel::with_threads(threads, || {
                let (mut net, geom) = fc_fixture(61);
                let inj = FaultInjector::for_geometry(model, &geom, &cfg).unwrap();
                let mut rng = TensorRng::seed_from(62);
                let report = inj.inject(&mut net, &mut rng).unwrap();
                (decayed_params(&mut net), report)
            })
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a, b, "same seed must reproduce the damaged network");
        let c = run(4);
        assert_eq!(a, c, "injection must be thread-count invariant");
    }

    #[test]
    fn drift_pulls_magnitudes_toward_zero() {
        let cfg = HardwareConfig { sigma_over_mu: 0.0, ..HardwareConfig::default() };
        let (mut net, geom) = fc_fixture(71);
        let before = decayed_params(&mut net);
        let model = FaultModel { drift: 0.5, ..FaultModel::none() };
        let inj = FaultInjector::for_geometry(model, &geom, &cfg).unwrap();
        let mut rng = TensorRng::seed_from(72);
        inj.inject(&mut net, &mut rng).unwrap();
        let after = decayed_params(&mut net);
        let norm = |v: &[f32]| v.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
        assert!(
            norm(&after[0]) < 0.9 * norm(&before[0]),
            "50% drift must shrink the weight norm"
        );
    }

    #[test]
    fn mismatched_network_is_rejected() {
        let cfg = HardwareConfig::default();
        let (_, geom) = fc_fixture(81);
        let inj = FaultInjector::for_geometry(FaultModel::none(), &geom, &cfg).unwrap();
        let mut rng = TensorRng::seed_from(82);
        let mut other = {
            let mut r = TensorRng::seed_from(83);
            let layers: Vec<Box<dyn Layer>> =
                vec![Box::new(Flatten::new()), Box::new(Linear::new(64, 32, &mut r))];
            Snn::from_layers(layers)
        };
        assert!(matches!(
            inj.inject(&mut other, &mut rng),
            Err(ImcError::NetworkMismatch(_))
        ));
    }

    #[test]
    fn model_validation_and_scaling() {
        assert!(FaultModel::none().validate().is_ok());
        assert!(FaultModel { stuck_on_rate: -0.1, ..FaultModel::none() }.validate().is_err());
        assert!(FaultModel { stuck_off_rate: 1.5, ..FaultModel::none() }.validate().is_err());
        assert!(FaultModel { stuck_on_rate: 0.6, stuck_off_rate: 0.6, ..FaultModel::none() }
            .validate()
            .is_err());
        assert!(FaultModel { read_sigma: -1.0, ..FaultModel::none() }.validate().is_err());
        assert!(FaultModel { drift: 2.0, ..FaultModel::none() }.validate().is_err());
        assert!(FaultModel { drift: f64::NAN, ..FaultModel::none() }.validate().is_err());
        let base = FaultModel {
            stuck_on_rate: 0.4,
            stuck_off_rate: 0.3,
            read_sigma: 0.1,
            drift: 0.2,
            dead_wordline_rate: 0.6,
            dead_bitline_rate: 0.01,
        };
        assert!(base.scaled(0.0).is_null());
        assert_eq!(base.scaled(1.0), base);
        let hot = base.scaled(2.0);
        assert_eq!(hot.dead_wordline_rate, 1.0, "rates must clamp at 1");
        assert!(hot.validate().is_ok(), "scaling a valid model must stay valid");
        assert!(hot.stuck_on_rate + hot.stuck_off_rate <= 1.0 + 1e-12);
        assert!((hot.read_sigma - 0.2).abs() < 1e-12);
        assert!(base.scaled(-3.0).is_null(), "negative severity clamps to null");
    }
}
