//! Event-driven simulator and mapping-search properties (the `ci.sh`
//! simulator stage runs this file at `DTSNN_THREADS=1` and `4`).
//!
//! The load-bearing guarantees, in order: (1) with pipelining and
//! contention disabled the event model reproduces the analytical
//! `CostModel::inference_cost` ledger exactly — bitwise cycles, bitwise
//! energy components; (2) with unlimited buffers and no contention the
//! pipelined schedule lands exactly on the flow-shop closed form
//! `Σ stages + (T−1)·bottleneck`; (3) contention and finite buffers only
//! ever add latency; (4) the annealing search is seed-reproducible and
//! bitwise invariant to the worker count.

use dtsnn_imc::{
    search_placement, AnnealOptions, ChipMapping, Component, CostModel, EventSim,
    HardwareConfig, Placement, SimOptions, TimestepSchedule,
};
use dtsnn_snn::{resnet19_geometry, vgg16_geometry};
use dtsnn_tensor::parallel::with_threads;

fn model(geometries: &[dtsnn_snn::LayerGeometry]) -> CostModel {
    let config = HardwareConfig::default();
    let mapping = ChipMapping::map(geometries, &config).unwrap();
    CostModel::new(mapping, config).unwrap()
}

fn densities(model: &CostModel) -> Vec<f32> {
    let mut d = vec![0.2f32; model.mapping().layers().len()];
    d[0] = 1.0;
    d
}

#[test]
fn parity_mode_matches_the_ledger_bitwise_for_both_networks() {
    for geometries in [vgg16_geometry(32, 3, 10), resnet19_geometry(32, 3, 10)] {
        let m = model(&geometries);
        let d = densities(&m);
        let sim = EventSim::new(
            &m,
            Placement::linear(m.mapping()).unwrap(),
            SimOptions::analytical_parity(),
        )
        .unwrap();
        for t in [1usize, 2, 4, 8] {
            for classes in [None, Some(10)] {
                let ledger = m.inference_cost(&d, t as f64, classes).unwrap();
                let report = sim.run(&d, t, classes).unwrap();
                assert_eq!(
                    report.cost.latency_cycles, ledger.latency_cycles,
                    "latency at T={t} classes={classes:?}"
                );
                for c in Component::ALL {
                    assert_eq!(
                        report.cost.energy.component(c).to_bits(),
                        ledger.energy.component(c).to_bits(),
                        "energy component {} at T={t} classes={classes:?}",
                        c.name()
                    );
                }
            }
        }
    }
}

#[test]
fn pipelined_no_contention_lands_on_the_flow_shop_closed_form() {
    // With unlimited buffers and free transfers the event graph's critical
    // path must equal the permutation-flow-shop closed form with the σ–E
    // module as one more stage: Σ d_l + S + (T−1) · max(max_l d_l, S).
    let m = model(&vgg16_geometry(32, 3, 10));
    let d = densities(&m);
    let options = SimOptions {
        schedule: TimestepSchedule::Pipelined,
        contention: false,
        buffer_slots: 64, // effectively unlimited
        ..SimOptions::default()
    };
    let sim = EventSim::new(&m, Placement::linear(m.mapping()).unwrap(), options).unwrap();
    for t in [1u64, 2, 4, 8] {
        let report = sim.run(&d, t as usize, Some(10)).unwrap();
        let fill = m.timestep_latency() + m.sigma_e_latency(10);
        let bottleneck = m.bottleneck_stage_cycles().max(m.sigma_e_latency(10));
        assert_eq!(report.cost.latency_cycles, fill + (t - 1) * bottleneck, "T={t}");
    }
}

#[test]
fn pipelining_overlaps_and_contention_only_adds_latency() {
    let m = model(&vgg16_geometry(32, 3, 10));
    let d = densities(&m);
    let linear = || Placement::linear(m.mapping()).unwrap();
    let seq = EventSim::new(&m, linear(), SimOptions::analytical_parity())
        .unwrap()
        .run(&d, 4, Some(10))
        .unwrap();
    let pipe_free = EventSim::new(
        &m,
        linear(),
        SimOptions {
            schedule: TimestepSchedule::Pipelined,
            contention: false,
            ..SimOptions::default()
        },
    )
    .unwrap()
    .run(&d, 4, Some(10))
    .unwrap();
    let pipe_contended = EventSim::new(&m, linear(), SimOptions::pipelined())
        .unwrap()
        .run(&d, 4, Some(10))
        .unwrap();
    let pipe_starved = EventSim::new(
        &m,
        linear(),
        SimOptions { buffer_slots: 1, ..SimOptions::pipelined() },
    )
    .unwrap()
    .run(&d, 4, Some(10))
    .unwrap();
    // pipelining genuinely overlaps: strictly faster than sequential
    assert!(pipe_free.cost.latency_cycles < seq.cost.latency_cycles);
    // modelling link occupancy can only slow things down
    assert!(pipe_contended.cost.latency_cycles >= pipe_free.cost.latency_cycles);
    // starving the output buffers can only slow things down further
    assert!(pipe_starved.cost.latency_cycles >= pipe_contended.cost.latency_cycles);
    // and the contended run observed real mesh traffic
    assert!(pipe_contended.link_flits > 0);
}

#[test]
fn simulator_is_thread_count_invariant() {
    let m = model(&resnet19_geometry(32, 3, 10));
    let d = densities(&m);
    let run = || {
        EventSim::new(&m, Placement::linear(m.mapping()).unwrap(), SimOptions::pipelined())
            .unwrap()
            .run(&d, 4, Some(10))
            .unwrap()
    };
    let one = with_threads(1, run);
    let four = with_threads(4, run);
    assert_eq!(one, four);
}

fn smoke_search_options() -> AnnealOptions {
    AnnealOptions { rounds: 8, proposals_per_round: 3, timesteps: 2, ..AnnealOptions::default() }
}

#[test]
fn annealing_trajectory_is_bitwise_thread_count_invariant() {
    let m = model(&vgg16_geometry(32, 3, 10));
    let d = densities(&m);
    let options = smoke_search_options();
    let one = with_threads(1, || search_placement(&m, &d, &options).unwrap());
    let four = with_threads(4, || search_placement(&m, &d, &options).unwrap());
    // SearchResult derives PartialEq over every field, including the full
    // trajectory's f64 EDPs and temperatures — this is a bitwise check.
    assert_eq!(one, four);
    assert_eq!(one.trajectory.len(), 8 * 3);
    for (a, b) in one.trajectory.iter().zip(&four.trajectory) {
        assert_eq!(a.candidate_edp.to_bits(), b.candidate_edp.to_bits());
        assert_eq!(a.best_edp.to_bits(), b.best_edp.to_bits());
    }
    assert!(one.best_edp <= one.identity_edp);
}

#[test]
fn annealing_is_seed_reproducible() {
    let m = model(&vgg16_geometry(32, 3, 10));
    let d = densities(&m);
    let options = smoke_search_options();
    let a = search_placement(&m, &d, &options).unwrap();
    let b = search_placement(&m, &d, &options).unwrap();
    assert_eq!(a, b);
}
