//! Property-based tests of the hardware model: mapping arithmetic, cost
//! additivity, device-model bounds.

use dtsnn_imc::{
    exact_normalized_entropy, quantize_dequantize, ChipMapping, CostModel, DeviceNoise,
    HardwareConfig, NocModel, SigmaEModule, TimestepSchedule,
};
use dtsnn_snn::LayerGeometry;
use dtsnn_tensor::TensorRng;
use proptest::prelude::*;

fn conv_geometry(cin: usize, cout: usize, k: usize, hw: usize) -> LayerGeometry {
    LayerGeometry::Conv {
        in_channels: cin,
        out_channels: cout,
        kernel: k,
        stride: 1,
        padding: k / 2,
        in_h: hw,
        in_w: hw,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapping_covers_all_weights(
        cin in 1usize..64,
        cout in 1usize..128,
        k in prop::sample::select(vec![1usize, 3, 5]),
        hw in 4usize..16,
    ) {
        let config = HardwareConfig::default();
        let g = [conv_geometry(cin, cout, k, hw)];
        let m = ChipMapping::map(&g, &config).unwrap();
        let layer = &m.layers()[0];
        // every physical column/row is covered by the allocated crossbars
        prop_assert!(layer.row_segments * config.crossbar_size >= layer.rows);
        prop_assert!(layer.col_segments * config.crossbar_size >= layer.physical_cols);
        prop_assert_eq!(layer.crossbars, layer.row_segments * layer.col_segments);
        prop_assert!(layer.tiles * config.crossbars_per_tile >= layer.crossbars);
        let u = m.utilization();
        prop_assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn energy_is_additive_over_layers(
        cout1 in 2usize..32,
        cout2 in 2usize..32,
        density in 0.05f32..0.9,
    ) {
        // the cost of a two-layer network equals the sum of the single-layer
        // costs at the same densities
        let config = HardwareConfig::default();
        let g1 = conv_geometry(3, cout1, 3, 8);
        let g2 = conv_geometry(cout1, cout2, 3, 8);
        let both = CostModel::new(ChipMapping::map(&[g1, g2], &config).unwrap(), config.clone()).unwrap();
        let only1 = CostModel::new(ChipMapping::map(&[g1], &config).unwrap(), config.clone()).unwrap();
        let only2 = CostModel::new(ChipMapping::map(&[g2], &config).unwrap(), config.clone()).unwrap();
        let e_both = both.timestep_energy(&[1.0, density]).unwrap().total();
        let e_sum = only1.timestep_energy(&[1.0]).unwrap().total()
            + only2.timestep_energy(&[density]).unwrap().total();
        // the last layer of every mapping is the classifier and skips LIF
        // energy, so the stacked network carries exactly one extra LIF term
        // for its (now non-final) first layer
        let lif_extra = both.mapping().layers()[0].output_neurons as f64
            * both.config().energy.lif_update;
        prop_assert!(
            (e_both - (e_sum + lif_extra)).abs() < 1e-6 * e_sum.max(1.0),
            "both {e_both} vs sum {e_sum} + lif {lif_extra}"
        );
    }

    #[test]
    fn latency_additive_and_pipeline_bounded(
        cout1 in 2usize..32,
        cout2 in 2usize..32,
    ) {
        let config = HardwareConfig::default();
        let g = [conv_geometry(3, cout1, 3, 8), conv_geometry(cout1, cout2, 3, 8)];
        let model = CostModel::new(ChipMapping::map(&g, &config).unwrap(), config).unwrap();
        // the bottleneck stage can never exceed the full traversal
        prop_assert!(model.bottleneck_stage_cycles() <= model.timestep_latency());
        // pipelined static latency never exceeds sequential
        let d = [1.0f32, 0.3];
        let seq = model
            .inference_cost_scheduled(&d, 4.0, 4, None, TimestepSchedule::Sequential)
            .unwrap();
        let pipe = model
            .inference_cost_scheduled(&d, 4.0, 4, None, TimestepSchedule::Pipelined)
            .unwrap();
        prop_assert!(pipe.latency_cycles <= seq.latency_cycles);
    }

    #[test]
    fn device_read_error_is_bounded(
        w in -1.0f32..1.0,
        sigma in 0.0f64..0.3,
        seed in 0u64..500,
    ) {
        let config = HardwareConfig { sigma_over_mu: sigma, ..HardwareConfig::default() };
        let model = DeviceNoise::new(&config).unwrap();
        let mut rng = TensorRng::seed_from(seed);
        let read = model.read_weight(w, 1.0, &mut rng);
        prop_assert!(read.is_finite());
        // reads stay within a generous envelope of the true value
        prop_assert!((read - w).abs() < 1.0 + 4.0 * sigma as f32, "w={w} read={read}");
    }

    #[test]
    fn quantization_error_bounded_by_one_lsb(w in -1.0f32..1.0, bits in 2u32..10) {
        let q = quantize_dequantize(w, 1.0, bits);
        let lsb = 1.0 / (1i64 << (bits - 1)) as f32;
        // half an LSB inside the representable range; up to one LSB at the
        // positive rail, where the signed code clamps at scale − LSB
        let bound = if w > 1.0 - lsb { lsb } else { 0.5 * lsb };
        prop_assert!((q - w).abs() <= bound + 1e-6, "w={w} q={q} lsb={lsb}");
    }

    #[test]
    fn sigma_e_entropy_in_unit_interval(
        logits in proptest::collection::vec(-8.0f32..8.0, 4..16),
        theta in 0.05f32..0.95,
    ) {
        let module = SigmaEModule::new(&HardwareConfig::default()).unwrap();
        let r = module.evaluate(&logits, theta).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.entropy));
        let s: f32 = r.probabilities.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-3);
        // exit decision is consistent with the reported entropy
        prop_assert_eq!(r.exit, r.entropy < theta);
        // LUT entropy close to exact entropy of the LUT's own distribution
        let exact = exact_normalized_entropy(&r.probabilities);
        prop_assert!((r.entropy - exact).abs() < 0.05);
    }

    #[test]
    fn noc_energy_scales_linearly(
        cout in 4usize..64,
        d1 in 0.05f32..0.45,
    ) {
        let config = HardwareConfig::default();
        let g = [conv_geometry(3, cout, 3, 8), conv_geometry(cout, cout, 3, 8)];
        let mapping = ChipMapping::map(&g, &config).unwrap();
        let noc = NocModel::new(&mapping, &config).unwrap();
        let e1 = noc.timestep_energy(&[d1, d1]).unwrap();
        let e2 = noc.timestep_energy(&[2.0 * d1, 2.0 * d1]).unwrap();
        prop_assert!((e2 / e1 - 2.0).abs() < 1e-6);
    }
}
