//! Property-based tests of the hardware model: mapping arithmetic, cost
//! additivity, device-model bounds.
//!
//! Cases come from a seeded [`TensorRng`] (48 per property, matching the
//! previous proptest configuration) so failures reproduce from the case index
//! alone and the suite needs no external crates.

use dtsnn_imc::{
    exact_normalized_entropy, quantize_dequantize, ChipMapping, CostModel, DeviceNoise,
    HardwareConfig, NocModel, SigmaEModule, TimestepSchedule,
};
use dtsnn_snn::LayerGeometry;
use dtsnn_tensor::TensorRng;

const CASES: u64 = 48;

fn case_rng(case: u64) -> TensorRng {
    TensorRng::seed_from(0x1AC ^ case.wrapping_mul(0x9E37_79B9))
}

fn conv_geometry(cin: usize, cout: usize, k: usize, hw: usize) -> LayerGeometry {
    LayerGeometry::Conv {
        in_channels: cin,
        out_channels: cout,
        kernel: k,
        stride: 1,
        padding: k / 2,
        in_h: hw,
        in_w: hw,
    }
}

#[test]
fn mapping_covers_all_weights() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let cin = 1 + params.below(63);
        let cout = 1 + params.below(127);
        let k = [1usize, 3, 5][params.below(3)];
        let hw = 4 + params.below(12);
        let config = HardwareConfig::default();
        let g = [conv_geometry(cin, cout, k, hw)];
        let m = ChipMapping::map(&g, &config).unwrap();
        let layer = &m.layers()[0];
        // every physical column/row is covered by the allocated crossbars
        assert!(layer.row_segments * config.crossbar_size >= layer.rows, "case {case}");
        assert!(layer.col_segments * config.crossbar_size >= layer.physical_cols, "case {case}");
        assert_eq!(layer.crossbars, layer.row_segments * layer.col_segments, "case {case}");
        assert!(layer.tiles * config.crossbars_per_tile >= layer.crossbars, "case {case}");
        let u = m.utilization();
        assert!(u > 0.0 && u <= 1.0, "case {case}: utilization {u}");
    }
}

#[test]
fn energy_is_additive_over_layers() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let cout1 = 2 + params.below(30);
        let cout2 = 2 + params.below(30);
        let density = params.uniform(0.05, 0.9);
        // the cost of a two-layer network equals the sum of the single-layer
        // costs at the same densities
        let config = HardwareConfig::default();
        let g1 = conv_geometry(3, cout1, 3, 8);
        let g2 = conv_geometry(cout1, cout2, 3, 8);
        let both =
            CostModel::new(ChipMapping::map(&[g1, g2], &config).unwrap(), config.clone()).unwrap();
        let only1 =
            CostModel::new(ChipMapping::map(&[g1], &config).unwrap(), config.clone()).unwrap();
        let only2 =
            CostModel::new(ChipMapping::map(&[g2], &config).unwrap(), config.clone()).unwrap();
        let e_both = both.timestep_energy(&[1.0, density]).unwrap().total();
        let e_sum = only1.timestep_energy(&[1.0]).unwrap().total()
            + only2.timestep_energy(&[density]).unwrap().total();
        // the last layer of every mapping is the classifier and skips LIF
        // energy, so the stacked network carries exactly one extra LIF term
        // for its (now non-final) first layer
        let lif_extra = both.mapping().layers()[0].output_neurons as f64
            * both.config().energy.lif_update;
        assert!(
            (e_both - (e_sum + lif_extra)).abs() < 1e-6 * e_sum.max(1.0),
            "case {case}: both {e_both} vs sum {e_sum} + lif {lif_extra}"
        );
    }
}

#[test]
fn latency_additive_and_pipeline_bounded() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let cout1 = 2 + params.below(30);
        let cout2 = 2 + params.below(30);
        let config = HardwareConfig::default();
        let g = [conv_geometry(3, cout1, 3, 8), conv_geometry(cout1, cout2, 3, 8)];
        let model = CostModel::new(ChipMapping::map(&g, &config).unwrap(), config).unwrap();
        // the bottleneck stage can never exceed the full traversal
        assert!(model.bottleneck_stage_cycles() <= model.timestep_latency(), "case {case}");
        // pipelined static latency never exceeds sequential
        let d = [1.0f32, 0.3];
        let seq = model
            .inference_cost_scheduled(&d, 4.0, 4, None, TimestepSchedule::Sequential)
            .unwrap();
        let pipe = model
            .inference_cost_scheduled(&d, 4.0, 4, None, TimestepSchedule::Pipelined)
            .unwrap();
        assert!(pipe.latency_cycles <= seq.latency_cycles, "case {case}");
    }
}

#[test]
fn device_read_error_is_bounded() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let w = params.uniform(-1.0, 1.0);
        let sigma = params.uniform(0.0, 0.3) as f64;
        let config = HardwareConfig { sigma_over_mu: sigma, ..HardwareConfig::default() };
        let model = DeviceNoise::new(&config).unwrap();
        let mut rng = TensorRng::seed_from(case);
        let read = model.read_weight(w, 1.0, &mut rng);
        assert!(read.is_finite(), "case {case}");
        // reads stay within a generous envelope of the true value
        assert!((read - w).abs() < 1.0 + 4.0 * sigma as f32, "case {case}: w={w} read={read}");
    }
}

#[test]
fn quantization_error_bounded_by_one_lsb() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let w = params.uniform(-1.0, 1.0);
        let bits = 2 + params.below(8) as u32;
        let q = quantize_dequantize(w, 1.0, bits);
        let lsb = 1.0 / (1i64 << (bits - 1)) as f32;
        // half an LSB inside the representable range; up to one LSB at the
        // positive rail, where the signed code clamps at scale − LSB
        let bound = if w > 1.0 - lsb { lsb } else { 0.5 * lsb };
        assert!((q - w).abs() <= bound + 1e-6, "case {case}: w={w} q={q} lsb={lsb}");
    }
}

#[test]
fn sigma_e_entropy_in_unit_interval() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let len = 4 + params.below(12);
        let logits: Vec<f32> = (0..len).map(|_| params.uniform(-8.0, 8.0)).collect();
        let theta = params.uniform(0.05, 0.95);
        let module = SigmaEModule::new(&HardwareConfig::default()).unwrap();
        let r = module.evaluate(&logits, theta).unwrap();
        assert!((0.0..=1.0).contains(&r.entropy), "case {case}");
        let s: f32 = r.probabilities.iter().sum();
        assert!((s - 1.0).abs() < 1e-3, "case {case}");
        // exit decision is consistent with the reported entropy
        assert_eq!(r.exit, r.entropy < theta, "case {case}");
        // LUT entropy close to exact entropy of the LUT's own distribution
        let exact = exact_normalized_entropy(&r.probabilities);
        assert!((r.entropy - exact).abs() < 0.05, "case {case}");
    }
}

#[test]
fn noc_energy_scales_linearly() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let cout = 4 + params.below(60);
        let d1 = params.uniform(0.05, 0.45);
        let config = HardwareConfig::default();
        let g = [conv_geometry(3, cout, 3, 8), conv_geometry(cout, cout, 3, 8)];
        let mapping = ChipMapping::map(&g, &config).unwrap();
        let noc = NocModel::new(&mapping, &config).unwrap();
        let e1 = noc.timestep_energy(&[d1, d1]).unwrap();
        let e2 = noc.timestep_energy(&[2.0 * d1, 2.0 * d1]).unwrap();
        assert!((e2 / e1 - 2.0).abs() < 1e-6, "case {case}");
    }
}
