//! Criterion micro-benches for the hot kernels: entropy/softmax (the σ–E
//! datapath), LIF stepping, conv2d forward, and the crossbar cost model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dtsnn_imc::{ChipMapping, CostModel, HardwareConfig, SigmaEModule};
use dtsnn_snn::{Layer, LifConfig, LifNeuron, Mode};
use dtsnn_tensor::{conv2d, softmax_rows, Conv2dSpec, Tensor, TensorRng};

fn bench_softmax_entropy(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(1);
    let logits = Tensor::randn(&[1, 100], 0.0, 2.0, &mut rng);
    c.bench_function("softmax_rows_100c", |b| {
        b.iter(|| softmax_rows(std::hint::black_box(&logits)).unwrap())
    });
    let module = SigmaEModule::new(&HardwareConfig::default()).unwrap();
    let raw: Vec<f32> = logits.data().to_vec();
    c.bench_function("sigma_e_lut_evaluate_100c", |b| {
        b.iter(|| module.evaluate(std::hint::black_box(&raw), 0.3).unwrap())
    });
}

fn bench_lif_step(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(2);
    let input = Tensor::randn(&[32, 4096], 0.5, 0.5, &mut rng);
    c.bench_function("lif_step_32x4096", |b| {
        b.iter_batched(
            || LifNeuron::new(LifConfig::default()),
            |mut lif| lif.forward(std::hint::black_box(&input), Mode::Eval).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(3);
    let spec = Conv2dSpec::new(32, 64, 3, 1, 1).unwrap();
    let x = Tensor::randn(&[1, 32, 16, 16], 0.0, 1.0, &mut rng);
    let w = Tensor::randn(&[64, spec.patch_len()], 0.0, 0.1, &mut rng);
    c.bench_function("conv2d_32to64_16px", |b| {
        b.iter(|| conv2d(std::hint::black_box(&x), &w, None, &spec).unwrap())
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let config = HardwareConfig::default();
    let geometry = dtsnn_snn::vgg16_geometry(32, 3, 10);
    let mapping = ChipMapping::map(&geometry, &config).unwrap();
    let model = CostModel::new(mapping, config).unwrap();
    let mut densities = vec![0.2f32; geometry.len()];
    densities[0] = 1.0;
    c.bench_function("vgg16_timestep_energy", |b| {
        b.iter(|| model.timestep_energy(std::hint::black_box(&densities)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_softmax_entropy,
    bench_lif_step,
    bench_conv2d,
    bench_cost_model
);
criterion_main!(benches);
