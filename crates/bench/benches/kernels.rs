//! Self-timed micro-benches for the hot kernels: entropy/softmax (the σ–E
//! datapath), LIF stepping, matmul/conv2d forward, and the crossbar cost
//! model. The threaded kernels (matmul, conv2d) are timed at 1 worker and at
//! `DTSNN_BENCH_THREADS` (default 4) workers to report the speedup; outputs
//! are bitwise identical either way, so only wall-clock changes.

use dtsnn_bench::{print_table, time_it};
use dtsnn_imc::{ChipMapping, CostModel, HardwareConfig, SigmaEModule};
use dtsnn_snn::{Layer, LifConfig, LifNeuron, Mode};
use dtsnn_tensor::{conv2d, parallel, softmax_rows, Conv2dSpec, Tensor, TensorRng};

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.3} ms", secs * 1e3)
    }
}

fn main() {
    let n_threads = std::env::var("DTSNN_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut rows: Vec<Vec<String>> = Vec::new();
    // serial-only kernels: one measurement each
    fn serial(rows: &mut Vec<Vec<String>>, name: &str, secs: f64) {
        rows.push(vec![name.to_string(), fmt_time(secs), "-".into(), "-".into()]);
    }
    // threaded kernels: 1 worker vs n_threads workers
    fn pair(rows: &mut Vec<Vec<String>>, n_threads: usize, name: &str, mut f: impl FnMut()) {
        let t1 = parallel::with_threads(1, || time_it(&mut f));
        let tn = parallel::with_threads(n_threads, || time_it(&mut f));
        rows.push(vec![
            name.to_string(),
            fmt_time(t1),
            fmt_time(tn),
            format!("{:.2}×", t1 / tn),
        ]);
    }

    let mut rng = TensorRng::seed_from(1);
    let logits = Tensor::randn(&[1, 100], 0.0, 2.0, &mut rng);
    serial(&mut rows, "softmax_rows_100c", time_it(|| softmax_rows(&logits).unwrap()));

    let module = SigmaEModule::new(&HardwareConfig::default()).unwrap();
    let raw: Vec<f32> = logits.data().to_vec();
    serial(&mut rows, "sigma_e_lut_evaluate_100c", time_it(|| module.evaluate(&raw, 0.3).unwrap()));

    let lif_input = Tensor::randn(&[32, 4096], 0.5, 0.5, &mut rng);
    serial(
        &mut rows,
        "lif_step_32x4096",
        time_it(|| {
            let mut lif = LifNeuron::new(LifConfig::default());
            lif.forward(&lif_input, Mode::Eval).unwrap()
        }),
    );

    let config = HardwareConfig::default();
    let geometry = dtsnn_snn::vgg16_geometry(32, 3, 10);
    let mapping = ChipMapping::map(&geometry, &config).unwrap();
    let model = CostModel::new(mapping, config).unwrap();
    let mut densities = vec![0.2f32; geometry.len()];
    densities[0] = 1.0;
    serial(&mut rows, "vgg16_timestep_energy", time_it(|| model.timestep_energy(&densities).unwrap()));

    let a = Tensor::randn(&[256, 256], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[256, 256], 0.0, 1.0, &mut rng);
    pair(&mut rows, n_threads, "matmul_256x256x256", || {
        a.matmul(&b).unwrap();
    });

    let spec = Conv2dSpec::new(32, 64, 3, 1, 1).unwrap();
    let x = Tensor::randn(&[8, 32, 16, 16], 0.0, 1.0, &mut rng);
    let w = Tensor::randn(&[64, spec.patch_len()], 0.0, 0.1, &mut rng);
    pair(&mut rows, n_threads, "conv2d_32to64_16px_n8", || {
        conv2d(&x, &w, None, &spec).unwrap();
    });

    print_table(
        &format!("kernel micro-benches (1 thread vs {n_threads} threads)"),
        &["kernel", "1 thread", &format!("{n_threads} threads"), "speedup"],
        &rows,
    );
}
