//! Self-timed bench of the active-set compaction engine behind
//! `DynamicEvaluation::run_batched`.
//!
//! The claim under test: once samples exit early, the compacted batched
//! evaluator does proportionally less work per timestep, so its wall-clock
//! beats the same batched evaluation forced through the full window — while
//! staying bitwise identical to the sequential per-sample runner (asserted
//! before any number is written). Results land in
//! `bench-results/batched_compaction.json`.

use dtsnn_bench::{json, print_table, time_it, write_json};
use dtsnn_core::{DynamicEvaluation, DynamicInference, ExitPolicy};
use dtsnn_snn::{vgg_small, ModelConfig, Snn};
use dtsnn_tensor::{simd, Tensor, TensorRng};

fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.3} ms", secs * 1e3)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SAMPLES: usize = 64;
    const BATCH: usize = 16;
    const T: usize = 4;
    let mut rng = TensorRng::seed_from(1);
    let cfg = ModelConfig::default();
    let mut net = vgg_small(&cfg, &mut rng)?;
    let frames: Vec<Vec<Tensor>> =
        (0..SAMPLES).map(|_| vec![Tensor::randn(&[3, 16, 16], 0.5, 0.3, &mut rng)]).collect();
    let labels: Vec<usize> = (0..SAMPLES).map(|i| i % cfg.num_classes).collect();
    let diffs: Vec<f32> = (0..SAMPLES).map(|i| i as f32 / SAMPLES as f32).collect();

    // An untrained net emits near-uniform logits, so the exit split is
    // forced per policy: max-prob at threshold 0 fires at t=1 for every
    // sample (best case for compaction — the active set collapses after one
    // timestep), while an entropy threshold of 1e-6 never fires (worst
    // case — the full T×batch window runs, compaction never triggers).
    let early = DynamicInference::new(ExitPolicy::max_prob(0.0)?, T)?;
    let full = DynamicInference::new(ExitPolicy::entropy(1e-6)?, T)?;

    // parity gate: the compacted batched path must reproduce the sequential
    // runner bitwise (outcomes, histogram AND spike activity) before its
    // timings mean anything
    for runner in [&early, &full] {
        let seq = DynamicEvaluation::run(&mut net, runner, &frames, &labels, Some(&diffs))?;
        let bat =
            DynamicEvaluation::run_batched(&mut net, runner, &frames, &labels, Some(&diffs), BATCH)?;
        assert_eq!(seq, bat, "batched evaluation diverged from sequential");
    }

    let bench = |runner: &DynamicInference, net: &mut Snn, batch: usize| {
        time_it(|| {
            DynamicEvaluation::run_batched(net, runner, &frames, &labels, Some(&diffs), batch)
                .unwrap()
        })
    };
    let bat_full = bench(&full, &mut net, BATCH);
    let bat_early = bench(&early, &mut net, BATCH);
    // sequential context: the batch-1 runner on the same early-exit policy
    let seq_early = time_it(|| {
        DynamicEvaluation::run(&mut net, &early, &frames, &labels, Some(&diffs)).unwrap()
    });

    let rows = vec![
        vec!["batched_full_window_T4".into(), fmt_time(bat_full)],
        vec!["batched_exit_at_t1_compacted".into(), fmt_time(bat_early)],
        vec!["sequential_exit_at_t1".into(), fmt_time(seq_early)],
    ];
    print_table(
        &format!("batched compaction ({SAMPLES} samples, batch {BATCH}, T={T})"),
        &["bench", "time"],
        &rows,
    );
    println!("compaction speedup over full window: {:.2}×", bat_full / bat_early);

    assert!(
        bat_early < bat_full,
        "early exits must reduce batched wall-clock ({bat_early}s !< {bat_full}s)"
    );

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = json!({
        "host_cores": host_cores,
        "cpu_features": simd::cpu_features(),
        "simd_level": simd::level().name(),
        "samples": SAMPLES,
        "batch_size": BATCH,
        "max_timesteps": T,
        "batched_full_window_secs": bat_full,
        "batched_exit_at_t1_secs": bat_early,
        "sequential_exit_at_t1_secs": seq_early,
        "compaction_speedup_over_full_window": bat_full / bat_early,
        "bitwise_equal_to_sequential": true,
    });
    let path = write_json("batched_compaction", &doc)?;
    println!("wrote {}", path.display());
    Ok(())
}
