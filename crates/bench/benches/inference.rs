//! Self-timed benches of end-to-end inference: static full-window vs.
//! dynamic-timestep on single inputs (the latency face of Table III), plus
//! the data-parallel batch-evaluation speedup at 1 worker vs
//! `DTSNN_BENCH_THREADS` (default 4). The batch numbers are written to
//! `bench-results/parallel_speedup.json`; accuracy is asserted identical
//! across thread counts before the file is written.

use dtsnn_bench::{json, print_table, time_it, write_json};
use dtsnn_core::{
    measure_throughput, static_inference, DynamicEvaluation, DynamicInference, ExitPolicy,
};
use dtsnn_snn::{vgg_small, ModelConfig};
use dtsnn_tensor::{parallel, simd, Tensor, TensorRng};

fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.3} ms", secs * 1e3)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_threads = std::env::var("DTSNN_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut rng = TensorRng::seed_from(1);
    let cfg = ModelConfig::default();
    let mut net = vgg_small(&cfg, &mut rng)?;
    let frames = vec![Tensor::randn(&[3, 16, 16], 0.5, 0.3, &mut rng)];

    // single-sample latency (batch 1 cannot parallelize across samples)
    let mut rows = Vec::new();
    let t4 = time_it(|| static_inference(&mut net, &frames, 4).unwrap());
    rows.push(vec!["static_inference_T4".into(), fmt_time(t4)]);
    let t1 = time_it(|| static_inference(&mut net, &frames, 1).unwrap());
    rows.push(vec!["static_inference_T1".into(), fmt_time(t1)]);
    // an untrained net emits near-uniform logits (entropy ≈ 1), so to
    // measure the true exit-at-T̂=1 path the gate must always fire: the
    // max-prob policy with threshold 0 exits at the first timestep
    let early = DynamicInference::new(ExitPolicy::max_prob(0.0)?, 4)?;
    let te = time_it(|| early.run(&mut net, &frames).unwrap());
    rows.push(vec!["dtsnn_inference_exit_at_t1".into(), fmt_time(te)]);
    // strict threshold: always runs the full window (DT-SNN worst case)
    let late = DynamicInference::new(ExitPolicy::entropy(1e-6)?, 4)?;
    let tl = time_it(|| late.run(&mut net, &frames).unwrap());
    rows.push(vec!["dtsnn_inference_full_window".into(), fmt_time(tl)]);
    print_table("single-sample inference latency", &["bench", "time"], &rows);

    // batch evaluation: the Table III harness fanned out over worker threads
    let batch: Vec<Vec<Tensor>> =
        (0..64).map(|_| vec![Tensor::randn(&[3, 16, 16], 0.5, 0.3, &mut rng)]).collect();
    let labels: Vec<usize> = (0..64).map(|i| i % cfg.num_classes).collect();
    // real difficulty values keep the invariance assert meaningful: the
    // derived PartialEq would fail on NaN placeholders even for equal runs
    let diffs: Vec<f32> = (0..64).map(|i| i as f32 / 64.0).collect();

    let mut static_eval = |threads: usize| {
        parallel::with_threads(threads, || {
            time_it(|| measure_throughput(&mut net, &batch, &labels, 4).unwrap())
        })
    };
    let stat_1 = static_eval(1);
    let stat_n = static_eval(n_threads);

    let runner = DynamicInference::new(ExitPolicy::entropy(0.5)?, 4)?;
    let mut dyn_eval = |threads: usize| {
        parallel::with_threads(threads, || {
            time_it(|| {
                DynamicEvaluation::run(&mut net, &runner, &batch, &labels, Some(&diffs)).unwrap()
            })
        })
    };
    let dyn_1 = dyn_eval(1);
    let dyn_n = dyn_eval(n_threads);

    // determinism check: identical evaluation outcome at both thread counts
    let eval_1 = parallel::with_threads(1, || {
        DynamicEvaluation::run(&mut net, &runner, &batch, &labels, Some(&diffs))
    })?;
    let eval_n = parallel::with_threads(n_threads, || {
        DynamicEvaluation::run(&mut net, &runner, &batch, &labels, Some(&diffs))
    })?;
    assert_eq!(eval_1, eval_n, "batch evaluation must be thread-count invariant");

    let rows = vec![
        vec![
            "static_batch_eval_T4_64".into(),
            fmt_time(stat_1),
            fmt_time(stat_n),
            format!("{:.2}×", stat_1 / stat_n),
        ],
        vec![
            "dtsnn_batch_eval_64".into(),
            fmt_time(dyn_1),
            fmt_time(dyn_n),
            format!("{:.2}×", dyn_1 / dyn_n),
        ],
    ];
    print_table(
        &format!("batch evaluation (1 thread vs {n_threads} threads, 64 samples)"),
        &["bench", "1 thread", &format!("{n_threads} threads"), "speedup"],
        &rows,
    );

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = json!({
        "threads": n_threads,
        "host_cores": host_cores,
        "cpu_features": simd::cpu_features(),
        "simd_level": simd::level().name(),
        "samples": 64,
        "static_batch_eval": json!({
            "secs_1_thread": stat_1,
            "secs_n_threads": stat_n,
            "speedup": stat_1 / stat_n,
        }),
        "dtsnn_batch_eval": json!({
            "secs_1_thread": dyn_1,
            "secs_n_threads": dyn_n,
            "speedup": dyn_1 / dyn_n,
        }),
        "outputs_bitwise_identical": true,
    });
    let path = write_json("parallel_speedup", &doc)?;
    println!("wrote {}", path.display());
    Ok(())
}
