//! Criterion benches of end-to-end inference: static full-window vs.
//! dynamic-timestep on easy and hard inputs — the latency face of Table III.

use criterion::{criterion_group, criterion_main, Criterion};
use dtsnn_core::{static_inference, DynamicInference, ExitPolicy};
use dtsnn_snn::{vgg_small, ModelConfig};
use dtsnn_tensor::{Tensor, TensorRng};

fn bench_inference(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(1);
    let cfg = ModelConfig::default();
    let mut net = vgg_small(&cfg, &mut rng).expect("valid model config");
    let frame = Tensor::randn(&[3, 16, 16], 0.5, 0.3, &mut rng);
    let frames = vec![frame];

    c.bench_function("static_inference_T4", |b| {
        b.iter(|| static_inference(&mut net, std::hint::black_box(&frames), 4).unwrap())
    });
    c.bench_function("static_inference_T1", |b| {
        b.iter(|| static_inference(&mut net, std::hint::black_box(&frames), 1).unwrap())
    });

    // an untrained net emits near-uniform logits (entropy ≈ 1), so to
    // measure the true exit-at-T̂=1 path the gate must always fire: the
    // max-prob policy with threshold 0 exits at the first timestep
    let early = DynamicInference::new(ExitPolicy::max_prob(0.0).unwrap(), 4).unwrap();
    c.bench_function("dtsnn_inference_exit_at_t1", |b| {
        b.iter(|| early.run(&mut net, std::hint::black_box(&frames)).unwrap())
    });
    // strict threshold: always runs the full window (DT-SNN worst case)
    let late = DynamicInference::new(ExitPolicy::entropy(1e-6).unwrap(), 4).unwrap();
    c.bench_function("dtsnn_inference_full_window", |b| {
        b.iter(|| late.run(&mut net, std::hint::black_box(&frames)).unwrap())
    });
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
