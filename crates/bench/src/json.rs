//! Minimal JSON document model for the `bench-results/` output files.
//!
//! The workspace builds offline, so instead of an external serializer this
//! module provides the small slice of functionality the experiment binaries
//! need: a [`Value`] tree with an insertion-ordered [`Map`], the [`json!`]
//! constructor macro, a pretty printer, and a parser ([`from_str`]) so
//! binaries can reuse previously written result files (e.g. Fig. 4 consuming
//! the Table II run).

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s arbitrary
    /// precision off mode).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with keys kept in insertion order, so written files diff
    /// cleanly between runs.
    Object(Map),
}

/// Insertion-ordered string → [`Value`] map backing [`Value::Object`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for entry in &mut self.entries {
            if entry.0 == key {
                return Some(std::mem::replace(&mut entry.1, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Value {
    /// Returns the array elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object map if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Num(n as f64)
            }
        }
        impl From<&$t> for Value {
            fn from(n: &$t) -> Self {
                Value::Num(*n as f64)
            }
        })*
    };
}
impl_from_num!(f64, f32, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::Str(s.clone())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Self {
        Value::from(v.as_slice())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// Builds a [`Value`] from a literal-ish expression.
///
/// Supported forms: `json!(null)`, `json!([e0, e1, …])` (each element an
/// expression convertible to [`Value`]), `json!({"key": expr, …})` and
/// `json!(expr)` for any `expr: Into<Value>`. Nest objects by nesting the
/// macro: `json!({"outer": json!({"inner": 1})})`.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::json::Value::Null
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::json::Value::Array(vec![ $( $crate::json::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::json::Map::new();
        $( map.insert($key.to_string(), $crate::json::Value::from($val)); )*
        $crate::json::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::json::Value::from($other)
    };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/∞; follow serde_json and emit null
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn pretty_into(out: &mut String, value: &Value, indent: usize) {
    const STEP: usize = 2;
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                pretty_into(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                pretty_into(out, v, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-prints `value` with two-space indentation (no trailing newline).
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    pretty_into(&mut out, value, 0);
    out
}

/// Error from [`from_str`], carrying a message and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, ParseError> {
        Err(ParseError { message: message.to_string(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", expected as char))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            self.err(&format!("expected '{kw}'"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError { message: "invalid utf-8".into(), offset: start })?;
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => self.err("invalid number"),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // surrogate pairs: \uD800-\uDBFF must be
                            // followed by a low surrogate escape
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            // hex4 leaves pos on the byte after the digits
                            continue;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy a full UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError { message: "invalid utf-8".into(), offset: self.pos })?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| ParseError { message: "invalid utf-8".into(), offset: self.pos })?;
        match u32::from_str_radix(text, 16) {
            Ok(n) => {
                self.pos += 4;
                Ok(n)
            }
            Err(_) => self.err("invalid \\u escape"),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed input or trailing garbage.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_scalars_arrays_objects() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(1.5f32), Value::Num(1.5));
        assert_eq!(json!("hi"), Value::Str("hi".into()));
        assert_eq!(
            json!([1, 2, 3]),
            Value::Array(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)])
        );
        let obj = json!({"a": 1, "b": json!([true]), "c": json!({"d": "x"})});
        assert_eq!(obj.get("a").and_then(Value::as_f64), Some(1.0));
        assert_eq!(obj.get("b").and_then(Value::as_array).map(Vec::len), Some(1));
        assert_eq!(obj.get("c").and_then(|c| c.get("d")).and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut map = Map::new();
        map.insert("z".into(), json!(1));
        map.insert("a".into(), json!(2));
        assert_eq!(map.insert("z".into(), json!(3)), Some(Value::Num(1.0)));
        let keys: Vec<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(map.get("z"), Some(&Value::Num(3.0)));
    }

    #[test]
    fn pretty_printer_formats_documents() {
        let v = json!({"name": "run", "points": json!([1, 2.5]), "empty": json!([])});
        let text = to_string_pretty(&v);
        assert_eq!(
            text,
            "{\n  \"name\": \"run\",\n  \"points\": [\n    1,\n    2.5\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn integers_print_without_decimal_point() {
        let mut s = String::new();
        write_num(&mut s, 42.0);
        assert_eq!(s, "42");
        s.clear();
        write_num(&mut s, -0.125);
        assert_eq!(s, "-0.125");
        s.clear();
        write_num(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let v = json!({"s": "line\n\"quote\"\t\\"});
        let text = to_string_pretty(&v);
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parser_roundtrips_pretty_output() {
        let v = json!({
            "a": 1,
            "b": json!([json!({"x": -2.5}), json!(null), json!(false)]),
            "c": "text",
        });
        let back = from_str(&to_string_pretty(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let v = from_str(r#" { "k" : [ 1e3, -0.5, true, null, "A😀" ] } "#)
            .unwrap();
        let arr = v.get("k").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0], Value::Num(1000.0));
        assert_eq!(arr[1], Value::Num(-0.5));
        assert_eq!(arr[4], Value::Str("A😀".into()));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
    }
}
