//! Fig. 4 — energy-delay-product of DT-SNN normalized to the static SNN.
//!
//! The paper reports 61.2%–80.9% EDP reduction across the eight
//! architecture × dataset pairs at the iso-accuracy operating point. The
//! underlying runs are identical to Table II, so this binary consumes
//! `bench-results/table2_static_vs_dtsnn.json` when it exists (run
//! `table2_static_vs_dtsnn` first) and only recomputes from scratch — the
//! full 16-model training campaign — when it does not.

use dtsnn_bench::{json, hardware_profile_for, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::ThresholdSweep;
use dtsnn_data::Preset;
use dtsnn_snn::LossKind;

fn from_table2() -> Option<EdpRows> {
    let raw = std::fs::read_to_string("bench-results/table2_static_vs_dtsnn.json").ok()?;
    let rows: json::Value = json::from_str(&raw).ok()?;
    let mut out = Vec::new();
    for row in rows.as_array()? {
        out.push((
            row.get("arch")?.as_str()?.to_string(),
            row.get("dataset")?.as_str()?.to_string(),
            row.get("edp_ratio")?.as_f64()?,
        ));
    }
    (!out.is_empty()).then_some(out)
}

/// (arch, dataset, EDP ratio) rows.
type EdpRows = Vec<(String, String, f64)>;

fn recompute(exp: &ExpConfig) -> Result<EdpRows, Box<dyn std::error::Error>> {
    let thetas = [0.02f32, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let mut out = Vec::new();
    for arch in Arch::all() {
        for preset in Preset::all() {
            let t_max = preset.paper_timesteps();
            let dataset = preset.generate(exp.scale, exp.seed)?;
            eprintln!("[fig4] {} on {}…", arch.name(), preset.name());
            let (mut static_net, _, model_cfg) =
                train_model(&dataset, arch, LossKind::MeanOutput, t_max, exp)?;
            let (mut dt_net, _, _) =
                train_model(&dataset, arch, LossKind::PerTimestep, t_max, exp)?;
            let profile = hardware_profile_for(arch, &model_cfg)?;
            let frames = dataset.test.frames();
            let labels = dataset.test.labels();
            let static_sweep =
                ThresholdSweep::run(&mut static_net, &frames, &labels, &[1e-6], t_max, &profile)?;
            let static_point = static_sweep.static_points.last().expect("nonempty");
            let dt_sweep =
                ThresholdSweep::run(&mut dt_net, &frames, &labels, &thetas, t_max, &profile)?;
            let target = static_point.accuracy;
            let iso = dt_sweep
                .dynamic_points
                .iter()
                .filter(|p| p.accuracy >= target - 0.005)
                .min_by(|a, b| a.avg_timesteps.total_cmp(&b.avg_timesteps))
                .unwrap_or_else(|| {
                    dt_sweep
                        .dynamic_points
                        .iter()
                        .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
                        .expect("nonempty sweep")
                });
            out.push((
                arch.name().to_string(),
                preset.name().to_string(),
                iso.edp / static_point.edp,
            ));
        }
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let results = match from_table2() {
        Some(r) => {
            eprintln!("[fig4] reusing bench-results/table2_static_vs_dtsnn.json");
            r
        }
        None => recompute(&exp)?,
    };
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (arch, dataset, edp_ratio) in &results {
        rows.push(vec![
            format!("{arch} / {dataset}"),
            format!("{edp_ratio:.3}"),
            format!("{:.1}%", (1.0 - edp_ratio) * 100.0),
        ]);
        json.push(json!({
            "arch": arch,
            "dataset": dataset,
            "edp_ratio": edp_ratio,
            "edp_reduction_percent": (1.0 - edp_ratio) * 100.0,
        }));
    }
    print_table(
        "Fig. 4: EDP of DT-SNN normalized to static SNN",
        &["config", "EDP ratio", "reduction"],
        &rows,
    );
    println!("\npaper: 61.2%–80.9% EDP reduction");
    let path = write_json("fig4_edp", &json::Value::Array(json))?;
    println!("wrote {}", path.display());
    Ok(())
}
