//! Table III — inference throughput on a general processor.
//!
//! The paper measures images/s on an RTX 2080Ti at batch size 1; here the
//! same protocol runs on the CPU with this crate's engine (documented
//! substitution in DESIGN.md). The claim shape is preserved: throughput
//! drops roughly linearly with T, while DT-SNN recovers most of the
//! 1-timestep throughput at full-window accuracy.

use dtsnn_bench::{json, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::{measure_dynamic_throughput, measure_throughput, DynamicInference, ExitPolicy};
use dtsnn_data::Preset;
use dtsnn_snn::LossKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    let preset = Preset::Cifar10;
    let dataset = preset.generate(exp.scale, exp.seed)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();
    let thetas = [0.7f32, 0.3, 0.1];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for arch in Arch::all() {
        eprintln!("[table3] training {} …", arch.name());
        let (mut net, _, _) = train_model(&dataset, arch, LossKind::PerTimestep, t_max, &exp)?;
        for t in 1..=t_max {
            let r = measure_throughput(&mut net, &frames, &labels, t)?;
            rows.push(vec![
                arch.name().into(),
                r.label.clone(),
                format!("{:.2}", r.avg_timesteps),
                format!("{:.2}%", r.accuracy * 100.0),
                format!("{:.1}", r.images_per_second),
            ]);
            json.push(json!({
                "arch": arch.name(), "method": r.label,
                "avg_timesteps": r.avg_timesteps, "accuracy": r.accuracy,
                "images_per_second": r.images_per_second,
            }));
        }
        for &theta in &thetas {
            let runner = DynamicInference::new(ExitPolicy::entropy(theta)?, t_max)?;
            let r = measure_dynamic_throughput(&mut net, &runner, &frames, &labels)?;
            rows.push(vec![
                arch.name().into(),
                format!("DT-SNN θ={theta}"),
                format!("{:.2}", r.avg_timesteps),
                format!("{:.2}%", r.accuracy * 100.0),
                format!("{:.1}", r.images_per_second),
            ]);
            json.push(json!({
                "arch": arch.name(), "method": format!("DT-SNN θ={theta}"),
                "avg_timesteps": r.avg_timesteps, "accuracy": r.accuracy,
                "images_per_second": r.images_per_second,
            }));
        }
    }
    print_table(
        "Table III: throughput on a general processor (CPU, batch 1)",
        &["model", "method", "T", "acc", "img/s"],
        &rows,
    );
    println!("\npaper: throughput falls with T; DT-SNN ≈ T=1 throughput at T=4 accuracy");
    let path = write_json("table3_throughput", &json::Value::Array(json))?;
    println!("wrote {}", path.display());
    Ok(())
}
