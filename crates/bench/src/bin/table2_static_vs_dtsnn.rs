//! Table II — static SNN vs. DT-SNN: timesteps, accuracy and normalized
//! energy on all four benchmarks × both backbones.
//!
//! Protocol mirrors the paper: both models are trained identically except
//! for the loss (static uses Eq. 9, DT-SNN uses Eq. 10); the static SNN runs
//! the full window (T = 4, or 10 for DVS); DT-SNN sweeps θ and reports the
//! iso-accuracy point. Energy is normalized to the static SNN and computed
//! from measured spike activity through the IMC cost model.

use dtsnn_bench::{json, hardware_profile_for, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::ThresholdSweep;
use dtsnn_data::Preset;
use dtsnn_snn::LossKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let thetas = [0.02f32, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for arch in Arch::all() {
        for preset in Preset::all() {
            let t_max = preset.paper_timesteps();
            let dataset = preset.generate(exp.scale, exp.seed)?;
            eprintln!("[table2] {} on {} (T={t_max})…", arch.name(), preset.name());
            // static baseline: Eq. 9 loss
            let (mut static_net, _, model_cfg) =
                train_model(&dataset, arch, LossKind::MeanOutput, t_max, &exp)?;
            // DT-SNN: Eq. 10 loss
            let (mut dt_net, _, _) =
                train_model(&dataset, arch, LossKind::PerTimestep, t_max, &exp)?;
            let profile = hardware_profile_for(arch, &model_cfg)?;
            let frames = dataset.test.frames();
            let labels = dataset.test.labels();
            // static SNN at full window
            let static_sweep =
                ThresholdSweep::run(&mut static_net, &frames, &labels, &[1e-6], t_max, &profile)?;
            let static_point = static_sweep.static_points.last().expect("max_timesteps ≥ 1");
            // DT-SNN threshold sweep on its own net
            let dt_sweep =
                ThresholdSweep::run(&mut dt_net, &frames, &labels, &thetas, t_max, &profile)?;
            // iso-accuracy selection against the *static* baseline accuracy
            let target = static_point.accuracy;
            let iso = dt_sweep
                .dynamic_points
                .iter()
                .filter(|p| p.accuracy >= target - 0.005)
                .min_by(|a, b| a.avg_timesteps.total_cmp(&b.avg_timesteps))
                .unwrap_or_else(|| {
                    dt_sweep
                        .dynamic_points
                        .iter()
                        .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
                        .expect("nonempty sweep")
                });
            let energy_ratio = iso.energy_pj / static_point.energy_pj;
            let edp_ratio = iso.edp / static_point.edp;
            rows.push(vec![
                arch.name().into(),
                preset.name().into(),
                "static".into(),
                format!("{t_max}"),
                format!("{:.2}%", static_point.accuracy * 100.0),
                "1.00×".into(),
            ]);
            rows.push(vec![
                String::new(),
                String::new(),
                "DT-SNN".into(),
                format!("{:.2}", iso.avg_timesteps),
                format!("{:.2}%", iso.accuracy * 100.0),
                format!("{energy_ratio:.2}×"),
            ]);
            json.push(json!({
                "arch": arch.name(),
                "dataset": preset.name(),
                "t_max": t_max,
                "static_accuracy": static_point.accuracy,
                "dtsnn_accuracy": iso.accuracy,
                "dtsnn_avg_timesteps": iso.avg_timesteps,
                "dtsnn_theta": iso.theta,
                "energy_ratio": energy_ratio,
                "edp_ratio": edp_ratio,
                "timestep_distribution": &iso.timestep_distribution,
            }));
        }
    }
    print_table(
        "Table II: static SNN vs DT-SNN",
        &["model", "dataset", "method", "T", "acc", "energy"],
        &rows,
    );
    println!("\npaper: DT-SNN reaches static accuracy at ~1.3–5.3 avg timesteps, 0.41–0.60× energy");
    let path = write_json("table2_static_vs_dtsnn", &json::Value::Array(json))?;
    println!("wrote {}", path.display());
    Ok(())
}
