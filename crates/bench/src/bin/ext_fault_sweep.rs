//! Extension — graceful degradation of DT-SNN on a damaged IMC substrate.
//!
//! Trains the VGG backbone once, then sweeps a composite fault model
//! (stuck-at devices, read noise, conductance drift, dead word/bitlines)
//! across severity multipliers. Every severity is evaluated with the
//! Monte-Carlo robustness harness — N independent seeded fault draws over
//! the chip mapping, common random numbers across severities — reporting
//! accuracy, average exit timestep T̂, energy and EDP as mean ± 95% CI.
//! The interesting DT-SNN-specific effect: as damage corrupts the logits,
//! the entropy policy loses confidence and T̂ *rises* — the network spends
//! its timestep budget trying to compensate before accuracy collapses.
//!
//! Env: `DTSNN_TRIALS` (default 5) overrides the Monte-Carlo trial count;
//! `DTSNN_THETA` (default 0.7) the entropy exit threshold. The default θ is
//! looser than the iso-accuracy θ=0.3 of Table II because the baseline here
//! already carries Table I's σ/μ = 20% programming variation, which lifts
//! every sample's entropy; θ=0.7 leaves the healthy-chip baseline exit-rich
//! (T̂ ≈ 2.8) so the damage-induced T̂ climb is visible.

use dtsnn_bench::{
    hardware_profile_for, json, print_table, train_model, write_json, Arch, ExpConfig,
};
use dtsnn_core::{degradation_sweep, DynamicInference, ExitPolicy, MonteCarloConfig};
use dtsnn_data::Preset;
use dtsnn_imc::FaultModel;
use dtsnn_snn::LossKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let trials: usize = std::env::var("DTSNN_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
        .max(1);
    let theta: f32 = std::env::var("DTSNN_THETA")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.7);
    let t_max = 4;
    let preset = Preset::Cifar10;
    let dataset = preset.generate(exp.scale, exp.seed)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();

    eprintln!("[fault_sweep] training VGG backbone…");
    let (net, _, model_cfg) = train_model(&dataset, Arch::Vgg, LossKind::PerTimestep, t_max, &exp)?;
    let profile = hardware_profile_for(Arch::Vgg, &model_cfg)?;
    let runner = DynamicInference::new(ExitPolicy::entropy(theta)?, t_max)?;

    // severity 1.0 = a plausibly aged chip; 4.0 = heavy damage. The mix is
    // dominated by signal-*flattening* faults (stuck-off, drift, dead lines —
    // the common RRAM endurance failures); stuck-ON is kept rare because a
    // saturated device produces spuriously *confident* logits, which reads
    // as low entropy rather than damage.
    let base = FaultModel {
        stuck_on_rate: 1e-3,
        stuck_off_rate: 2.5e-2,
        read_sigma: 0.05,
        drift: 0.03,
        dead_wordline_rate: 2e-3,
        dead_bitline_rate: 2e-3,
    };
    // sweep up to the full aged-chip model; past 1.0× the network is near
    // chance and stuck-device saturation starts producing confidently-wrong
    // early exits, which muddies rather than informs the curve
    let severities = [0.0, 0.25, 0.5, 1.0];
    let mc = MonteCarloConfig { trials, seed: exp.seed ^ 0xFA17 };
    eprintln!("[fault_sweep] sweeping {} severities × {trials} trials…", severities.len());
    let points = degradation_sweep(&net, &runner, &frames, &labels, &profile, &base, &severities, &mc)?;

    let mut rows = Vec::new();
    let mut json_points = Vec::new();
    for p in &points {
        let r = &p.result;
        let stuck = r.trials.iter().map(|t| t.report.stuck_fraction()).sum::<f64>()
            / r.trials.len() as f64;
        rows.push(vec![
            format!("{:.1}×", p.severity),
            format!("{:.3}%", stuck * 100.0),
            format!("{} ± {}", fmt_pct(r.accuracy.mean), fmt_pct(r.accuracy.ci95)),
            r.avg_timesteps.display(3),
            r.edp.display(1),
            r.quarantined_total.to_string(),
        ]);
        json_points.push(json!({
            "severity": p.severity,
            "model": json!({
                "stuck_on_rate": p.model.stuck_on_rate,
                "stuck_off_rate": p.model.stuck_off_rate,
                "read_sigma": p.model.read_sigma,
                "drift": p.model.drift,
                "dead_wordline_rate": p.model.dead_wordline_rate,
                "dead_bitline_rate": p.model.dead_bitline_rate,
            }),
            "stuck_device_fraction": stuck,
            "accuracy": stat_json(&r.accuracy),
            "avg_timesteps": stat_json(&r.avg_timesteps),
            "energy_pj": stat_json(&r.energy_pj),
            "edp": stat_json(&r.edp),
            "quarantined_total": r.quarantined_total,
            "trial_accuracies": r.trials.iter().map(|t| t.accuracy).collect::<Vec<_>>(),
        }));
    }
    print_table(
        &format!("Graceful degradation under IMC faults (VGG*, θ={theta}, {trials} trials)"),
        &["severity", "stuck", "accuracy", "T̂ (mean ± ci)", "EDP pJ·ns", "quarantined"],
        &rows,
    );
    println!("\nexpected: accuracy degrades monotonically with severity while T̂ rises —");
    println!("the entropy policy spends more timesteps as the damaged logits lose confidence");

    let path = write_json(
        "fault_sweep",
        &json!({
            "trials": trials,
            "theta": theta,
            "t_max": t_max,
            "mc_seed": mc.seed,
            "points": json_points,
        }),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}

fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

fn stat_json(s: &dtsnn_core::Statistic) -> json::Value {
    json!({"mean": s.mean, "std": s.std_dev, "ci95": s.ci95})
}
