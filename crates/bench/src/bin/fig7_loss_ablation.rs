//! Fig. 7 — ablation of the training loss: Eq. 9 (final-output CE) vs.
//! Eq. 10 (per-timestep CE), compared through accuracy–EDP curves.
//!
//! The paper finds Eq. 10 lifts accuracy at *every* budget (T=1 jumps from
//! 76.3% → 91.5% on CIFAR-10 VGG-16), which shifts the DT-SNN timestep
//! distribution toward T̂ = 1 and cuts EDP.

use dtsnn_bench::{json, hardware_profile_for, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::ThresholdSweep;
use dtsnn_data::Preset;
use dtsnn_snn::LossKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    let thetas = [0.1f32, 0.3, 0.7];
    let dataset = Preset::Cifar10.generate(exp.scale, exp.seed)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();
    let mut json = Vec::new();
    let mut base_edp = f64::NAN;
    for loss in [LossKind::MeanOutput, LossKind::PerTimestep] {
        eprintln!("[fig7] training VGG* with {}…", loss.name());
        let (mut net, _, model_cfg) = train_model(&dataset, Arch::Vgg, loss, t_max, &exp)?;
        let profile = hardware_profile_for(Arch::Vgg, &model_cfg)?;
        let sweep = ThresholdSweep::run(&mut net, &frames, &labels, &thetas, t_max, &profile)?;
        if base_edp.is_nan() {
            base_edp = sweep.baseline_edp();
        }
        let mut rows = Vec::new();
        for p in sweep.static_points.iter().chain(&sweep.dynamic_points) {
            let dist = if p.timestep_distribution.is_empty() {
                "-".to_string()
            } else {
                p.timestep_distribution
                    .iter()
                    .map(|f| format!("{:.0}%", f * 100.0))
                    .collect::<Vec<_>>()
                    .join("/")
            };
            rows.push(vec![
                p.label.clone(),
                format!("{:.2}%", p.accuracy * 100.0),
                format!("{:.2}", p.avg_timesteps),
                format!("{:.2}×", p.edp / base_edp),
                dist,
            ]);
        }
        print_table(
            &format!("Fig. 7: accuracy vs EDP — loss = {}", loss.name()),
            &["point", "acc", "avg T", "EDP (vs Eq.9 static T=1)", "T̂ dist"],
            &rows,
        );
        json.push(json!({
            "loss": loss.name(),
            "static": sweep.static_points.iter().map(|p| json!({
                "label": &p.label, "accuracy": p.accuracy, "edp_norm": p.edp / base_edp,
            })).collect::<Vec<_>>(),
            "dynamic": sweep.dynamic_points.iter().map(|p| json!({
                "label": &p.label, "accuracy": p.accuracy, "edp_norm": p.edp / base_edp,
                "avg_timesteps": p.avg_timesteps, "distribution": &p.timestep_distribution,
            })).collect::<Vec<_>>(),
        }));
    }
    println!("\npaper: Eq. 10 lifts accuracy at every T (T=1: 76.3% → 91.5%) and shifts T̂ toward 1");
    let path = write_json("fig7_loss_ablation", &json::Value::Array(json))?;
    println!("wrote {}", path.display());
    Ok(())
}
