//! Fig. 5 — accuracy vs. EDP trade-off curves with T̂ distribution pies.
//!
//! Static SNN points at T ∈ {1,2,3,4}; DT-SNN points at three thresholds.
//! EDP is normalized to the 1-timestep static SNN, and each DT-SNN point
//! carries its timestep distribution (the paper's pie charts, here as
//! percentage rows). DT-SNN should sit top-left of the static curve.

use dtsnn_bench::{json, hardware_profile_for, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::ThresholdSweep;
use dtsnn_data::Preset;
use dtsnn_snn::LossKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let thetas = [0.1f32, 0.3, 0.7];
    let t_max = 4;
    let mut json = Vec::new();
    for arch in Arch::all() {
        for preset in [Preset::Cifar10, Preset::Cifar100] {
            let dataset = preset.generate(exp.scale, exp.seed)?;
            eprintln!("[fig5] {} on {}…", arch.name(), preset.name());
            let (mut net, _, model_cfg) =
                train_model(&dataset, arch, LossKind::PerTimestep, t_max, &exp)?;
            let profile = hardware_profile_for(arch, &model_cfg)?;
            let sweep = ThresholdSweep::run(
                &mut net,
                &dataset.test.frames(),
                &dataset.test.labels(),
                &thetas,
                t_max,
                &profile,
            )?;
            let base_edp = sweep.baseline_edp();
            let mut rows = Vec::new();
            for p in sweep.static_points.iter().chain(&sweep.dynamic_points) {
                let dist = if p.timestep_distribution.is_empty() {
                    "-".to_string()
                } else {
                    p.timestep_distribution
                        .iter()
                        .map(|f| format!("{:.0}%", f * 100.0))
                        .collect::<Vec<_>>()
                        .join("/")
                };
                rows.push(vec![
                    p.label.clone(),
                    format!("{:.2}%", p.accuracy * 100.0),
                    format!("{:.2}", p.avg_timesteps),
                    format!("{:.2}×", p.edp / base_edp),
                    dist,
                ]);
            }
            print_table(
                &format!("Fig. 5: accuracy vs EDP — {} / {}", arch.name(), preset.name()),
                &["point", "acc", "avg T", "EDP (vs static T=1)", "T̂ dist (1/2/3/4)"],
                &rows,
            );
            json.push(json!({
                "arch": arch.name(),
                "dataset": preset.name(),
                "static": sweep.static_points.iter().map(|p| json!({
                    "label": &p.label, "accuracy": p.accuracy, "edp_norm": p.edp / base_edp,
                })).collect::<Vec<_>>(),
                "dynamic": sweep.dynamic_points.iter().map(|p| json!({
                    "label": &p.label, "accuracy": p.accuracy, "edp_norm": p.edp / base_edp,
                    "avg_timesteps": p.avg_timesteps,
                    "distribution": &p.timestep_distribution,
                })).collect::<Vec<_>>(),
            }));
        }
    }
    println!("\npaper: DT-SNN sits top-left of the static curve; T̂=1 dominates the pies");
    let path = write_json("fig5_accuracy_edp_curve", &json::Value::Array(json))?;
    println!("wrote {}", path.display());
    Ok(())
}
