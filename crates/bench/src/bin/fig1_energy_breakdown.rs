//! Fig. 1 — (A) component-wise energy breakdown of the IMC architecture and
//! (B) energy/latency scaling with timesteps, for CIFAR-10-scale VGG-16 at
//! the Table I parameters.
//!
//! The paper reports digital peripherals as the largest consumer (~45%) with
//! crossbar + ADC second (~25%), and 4.9× energy / 8× latency going from
//! T = 1 to T = 8. This binary evaluates the analytical cost model on the
//! true VGG-16 layer geometry (mapping needs no trained weights) at a
//! nominal spike density and regenerates both panels.

use dtsnn_bench::{json, print_table, write_json};
use dtsnn_imc::{ChipMapping, Component, CostModel, HardwareConfig};
use dtsnn_snn::vgg16_geometry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HardwareConfig::default();
    let geometry = vgg16_geometry(32, 3, 10);
    let mapping = ChipMapping::map(&geometry, &config)?;
    println!(
        "VGG-16 (32×32) mapping: {} layers, {} crossbars, {} tiles, utilization {:.1}%",
        mapping.layers().len(),
        mapping.total_crossbars(),
        mapping.total_tiles(),
        mapping.utilization() * 100.0
    );
    let model = CostModel::new(mapping, config)?;
    let mut densities = vec![0.2f32; geometry.len()];
    densities[0] = 1.0; // analog-encoded input layer

    // ---- Panel A: breakdown at T = 4 --------------------------------------
    let cost = model.inference_cost(&densities, 4.0, None)?;
    let mut rows = Vec::new();
    let mut json_a = json::Map::new();
    for c in Component::ALL {
        let frac = cost.energy.fraction(c);
        if frac == 0.0 {
            continue;
        }
        rows.push(vec![c.name().to_string(), format!("{:.1}%", frac * 100.0)]);
        json_a.insert(c.name().to_string(), json!(frac));
    }
    print_table("Fig. 1(A): energy breakdown, VGG-16 @ T=4", &["component", "share"], &rows);
    println!(
        "  paper: digital peripherals ≈ 45%, crossbar+ADC ≈ 25% — measured: {:.1}% / {:.1}%",
        cost.energy.fraction(Component::DigitalPeripherals) * 100.0,
        (cost.energy.fraction(Component::Crossbar) + cost.energy.fraction(Component::Adc)) * 100.0
    );

    // ---- Panel B: energy & latency vs T (normalized to T = 1) --------------
    let base = model.inference_cost(&densities, 1.0, None)?;
    let mut rows_b = Vec::new();
    let mut series = Vec::new();
    for t in 1..=8u32 {
        let c = model.inference_cost(&densities, t as f64, None)?;
        let e_ratio = c.energy_pj() / base.energy_pj();
        let l_ratio = c.latency_ns() / base.latency_ns();
        rows_b.push(vec![
            format!("{t}"),
            format!("{e_ratio:.2}×"),
            format!("{l_ratio:.2}×"),
        ]);
        series.push(json!({"t": t, "energy": e_ratio, "latency": l_ratio}));
    }
    print_table(
        "Fig. 1(B): energy & latency vs timesteps (normalized to T=1)",
        &["T", "energy", "latency"],
        &rows_b,
    );
    println!("  paper: ≈ 4.9× energy and 8× latency at T = 8");

    // σ–E overhead (Sec. III-B)
    let one_t = model.timestep_energy(&densities)?.total();
    let sigma_e_ratio = model.sigma_e_energy(10) / one_t;
    println!("\nσ–E module energy per timestep = {sigma_e_ratio:.2e} × one-timestep inference energy (paper: ≈ 2e-5)");

    let json = json!({
        "panel_a_fractions": json_a,
        "panel_b_series": series,
        "sigma_e_ratio": sigma_e_ratio,
    });
    let path = write_json("fig1_energy_breakdown", &json)?;
    println!("wrote {}", path.display());
    Ok(())
}
