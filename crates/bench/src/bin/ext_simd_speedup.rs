//! Extension — runtime-dispatched SIMD kernel tier vs the scalar oracle.
//!
//! Times every vectorized kernel family twice — once with the SIMD override
//! forced to `scalar` and once at the auto-detected level — on
//! representative classifier-layer shapes. Every pair is asserted bitwise
//! identical before it is timed: the vector tier owns one output
//! accumulator per lane and never reassociates, so speed is the *only*
//! thing that changes. The dense `matmul_nt` speedup (the classifier-head
//! kernel) is asserted ≥ 1.5× in-bin — a regression here fails the run,
//! not just the chart.
//!
//! Results go to `bench-results/simd_speedup.json` with `host_cores`,
//! `cpu_features` and the dispatched level recorded, since SIMD timings
//! only compare within one host.

use dtsnn_bench::{json, print_table, time_it, write_json};
use dtsnn_core::{DynamicInference, ExitPolicy};
use dtsnn_snn::{vgg_small, LifConfig, ModelConfig};
use dtsnn_tensor::{simd, QuantizedWeights, SimdLevel, Tensor, TensorRng};

/// A binary spike pattern of the given density.
fn spikes(dims: &[usize], density: f32, rng: &mut TensorRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = if rng.bernoulli(density) { 1.0 } else { 0.0 };
    }
    t
}

fn assert_bitwise(a: &Tensor, b: &Tensor, what: &str) {
    let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(ab, bb, "{what}: scalar and SIMD tiers must agree bitwise");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.3} ms", secs * 1e3)
    }
}

/// Best-of-3 [`time_it`] — the minimum is the least noise-contaminated
/// estimate for a deterministic kernel.
fn best_of_3(mut f: impl FnMut()) -> f64 {
    (0..3).map(|_| time_it(&mut f)).fold(f64::INFINITY, f64::min)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let auto = simd::level();
    println!(
        "cpu features: {} — dispatching at `{}`\n",
        simd::cpu_features(),
        auto.name()
    );

    let mut rng = TensorRng::seed_from(0x51_3D);
    // classifier-head shapes: a VGG/ResNet fc layer on a serving batch
    let (m, k, n) = (64usize, 1024usize, 512usize);
    let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng); // dense activations
    let at = Tensor::randn(&[k, m], 0.0, 1.0, &mut rng); // pre-transposed lhs [k, m]
    let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng); // matmul rhs [k, n]
    let w = Tensor::randn(&[n, k], 0.0, 0.05, &mut rng); // row-major weights [n, k]
    let s = spikes(&[m, k], 0.15, &mut rng); // binary spikes for bitset/quant
    let qw = QuantizedWeights::from_tensor(&w, 8)?;

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut points = Vec::new();
    let mut nt_speedup = 0.0f64;
    type Kernel<'a> = (&'a str, Box<dyn Fn() -> Tensor + 'a>);
    let kernels: Vec<Kernel> = vec![
        ("dense matmul", Box::new(|| a.matmul(&b).unwrap())),
        ("dense matmul_tn", Box::new(|| at.matmul_tn(&b).unwrap())),
        ("dense matmul_nt", Box::new(|| a.matmul_nt(&w).unwrap())),
        ("bitset matmul_nt", Box::new(|| s.matmul_nt(&w).unwrap())),
        ("quant matmul_nt", Box::new(|| qw.matmul_nt(&s).unwrap())),
    ];
    for (name, run) in &kernels {
        // parity first, then timings on the same inputs
        let want = simd::with_level(SimdLevel::Scalar, run);
        let got = run();
        assert_bitwise(&want, &got, name);

        let scalar_s = simd::with_level(SimdLevel::Scalar, || {
            best_of_3(|| {
                std::hint::black_box(run());
            })
        });
        let simd_s = best_of_3(|| {
            std::hint::black_box(run());
        });
        let speedup = scalar_s / simd_s;
        if *name == "dense matmul_nt" {
            nt_speedup = speedup;
        }
        rows.push(vec![
            (*name).into(),
            fmt_time(scalar_s),
            fmt_time(simd_s),
            format!("{speedup:.2}×"),
        ]);
        points.push(json!({
            "kernel": *name,
            "scalar_secs": scalar_s,
            "simd_secs": simd_s,
            "simd_speedup": speedup,
        }));
    }

    // full forward pass: the end-to-end win across conv + fc + LIF + BN
    let model_cfg = ModelConfig {
        in_channels: 2,
        image_size: 16,
        num_classes: 5,
        lif: LifConfig { v_th: 1.0, tau: 0.75, ..LifConfig::default() },
        width: 8,
        // untrained Eval nets need the calibrated tdBN gain to spike at all
        tdbn_alpha: 6.0,
        dropout: 0.0,
    };
    let t_max = 4;
    let mut net = vgg_small(&model_cfg, &mut TensorRng::seed_from(11))?;
    let runner = DynamicInference::new(ExitPolicy::entropy(1e-30)?, t_max)?; // never exits
    let frame = Tensor::randn(&[2, 16, 16], 0.5, 0.5, &mut TensorRng::seed_from(23));
    let scalar_net = simd::with_level(SimdLevel::Scalar, || {
        best_of_3(|| {
            runner.run(&mut net, std::slice::from_ref(&frame)).unwrap();
        })
    });
    let simd_net = best_of_3(|| {
        runner.run(&mut net, std::slice::from_ref(&frame)).unwrap();
    });
    let net_speedup = scalar_net / simd_net;
    rows.push(vec![
        format!("full net (VGG*, T={t_max})"),
        fmt_time(scalar_net),
        fmt_time(simd_net),
        format!("{net_speedup:.2}×"),
    ]);
    points.push(json!({
        "kernel": "full_net_vgg_small_t4",
        "scalar_secs": scalar_net,
        "simd_secs": simd_net,
        "simd_speedup": net_speedup,
    }));

    print_table(
        &format!("scalar vs {} kernels (bitwise-identical outputs)", auto.name()),
        &["kernel", "scalar", auto.name(), "speedup"],
        &rows,
    );

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = json!({
        "host_cores": host_cores,
        "cpu_features": simd::cpu_features(),
        "simd_level": auto.name(),
        "shape": json!({"m": m, "k": k, "n": n}),
        "kernels": json::Value::Array(points),
        "bitwise_equal": true,
    });
    let path = write_json("simd_speedup", &doc)?;
    println!("wrote {}", path.display());

    // the acceptance gate: the classifier-head kernel must actually be fast
    if auto > SimdLevel::Scalar {
        assert!(
            nt_speedup >= 1.5,
            "dense matmul_nt SIMD speedup {nt_speedup:.2}× fell below the 1.5× floor"
        );
    } else {
        println!("no SIMD tier detected on this host — speedup floor not enforced");
    }
    Ok(())
}
