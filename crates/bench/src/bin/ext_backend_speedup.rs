//! Extension — the pluggable kernel-backend seam: dense vs CSR vs bitset vs
//! quantized, on the classifier matmul and on the full dynamic-timestep loop.
//!
//! Part 1 sweeps spike density on a classifier-shaped `matmul_nt` and times
//! each backend forced end-to-end through the dispatch seam. Dense, CSR and
//! bitset are asserted bitwise identical per density *before* any timing;
//! the quantized kernel runs on its own int8 grid and is only checked
//! finite. The sweep also reports the measured dense/bitset crossover — the
//! empirical justification for the `DTSNN_SPARSE_THRESHOLD` default the
//! auto-dispatch uses.
//!
//! Part 2 runs the full VGG backbone through the dynamic-timestep runner
//! once per forced backend (and once with quantized weights opted in),
//! checking that dense/CSR/bitset produce bitwise-identical accumulated
//! logits on a fixed probe frame and that the warmed loop stays
//! allocation-free under every backend.
//!
//! Results go to `bench-results/backend_speedup.json` with `host_cores`
//! recorded, since kernel timings only compare within one host.

use dtsnn_bench::{json, print_table, time_it, write_json};
use dtsnn_core::{DynamicInference, ExitPolicy};
use dtsnn_snn::{vgg_small, LifConfig, ModelConfig, Snn};
use dtsnn_tensor::{simd, backend, sparse, BackendKind, QuantizedWeights, Tensor, TensorRng};

/// A [0,1) tensor thresholded into a binary spike pattern of the given
/// density (the operand shape the event-driven paths are built for).
fn spikes(dims: &[usize], density: f32, rng: &mut TensorRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = if rng.bernoulli(density) { 1.0 } else { 0.0 };
    }
    t
}

fn assert_bitwise(a: &Tensor, b: &Tensor, what: &str) {
    let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(ab, bb, "{what}: backends must agree bitwise");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.3} ms", secs * 1e3)
    }
}

fn model_config() -> ModelConfig {
    ModelConfig {
        in_channels: 2,
        image_size: 16,
        num_classes: 5,
        lif: LifConfig { v_th: 1.0, tau: 0.75, ..LifConfig::default() },
        width: 8,
        // untrained Eval nets need the calibrated tdBN gain to spike at all
        tdbn_alpha: 6.0,
        dropout: 0.0,
    }
}

fn fresh_net() -> dtsnn_snn::Result<Snn> {
    vgg_small(&model_config(), &mut TensorRng::seed_from(11))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = TensorRng::seed_from(0xBAC5EED);

    // ---- part 1: classifier-shaped matmul_nt, density × backend ------------
    // [batch, features] × [classes, features]ᵀ, sized like the flattened
    // classifier input of the scaled VGG backbone.
    let (m, k, n) = (64usize, 512usize, 64usize);
    let w_nt = Tensor::randn(&[n, k], 0.0, 0.2, &mut rng);
    let qw = QuantizedWeights::from_tensor(&w_nt, backend::DEFAULT_QUANT_BITS)?;
    let densities = [0.01f32, 0.05, 0.10, 0.25, 0.50, 1.0];
    let forced = [BackendKind::Dense, BackendKind::Csr, BackendKind::Bitset];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut kernel_points = Vec::new();
    let mut crossover = 0.0f32;
    let mut low_density_bitset_vs_csr: Option<(f64, f64)> = None;
    for &density in &densities {
        let a = spikes(&[m, k], density, &mut rng);

        // parity first, then timings (timings reuse the same inputs)
        let oracle = backend::with_backend(BackendKind::Dense, || a.matmul_nt(&w_nt))?;
        for kind in [BackendKind::Csr, BackendKind::Bitset] {
            let out = backend::with_backend(kind, || a.matmul_nt(&w_nt))?;
            assert_bitwise(&oracle, &out, kind.name());
        }
        let q_out = qw.matmul_nt(&a)?;
        assert!(q_out.data().iter().all(|v| v.is_finite()), "quantized output must be finite");

        // best-of-3: the per-kernel deltas at low density are a few percent,
        // inside single-run scheduler noise
        let best = |f: &mut dyn FnMut() -> f64| (0..3).map(|_| f()).fold(f64::INFINITY, f64::min);
        let mut secs = Vec::new();
        for kind in forced {
            secs.push(best(&mut || {
                backend::with_backend(kind, || time_it(|| a.matmul_nt(&w_nt).unwrap()))
            }));
        }
        let quant_secs = best(&mut || time_it(|| qw.matmul_nt(&a).unwrap()));
        let dense_secs = secs[0];
        if secs[2] <= dense_secs {
            crossover = crossover.max(density);
        }
        if density <= 0.05 {
            low_density_bitset_vs_csr = Some((secs[1], secs[2]));
        }
        let mut point = json::Map::new();
        point.insert("density".into(), json!(density));
        for (kind, s) in forced.iter().zip(&secs) {
            point.insert(format!("{}_secs", kind.name()), json!(*s));
        }
        point.insert("quantized_secs".into(), json!(quant_secs));
        point.insert("bitset_speedup_vs_dense".into(), json!(dense_secs / secs[2]));
        point.insert("bitset_speedup_vs_csr".into(), json!(secs[1] / secs[2]));
        kernel_points.push(json::Value::Object(point));
        rows.push(vec![
            format!("{:.0}%", density * 100.0),
            fmt_time(dense_secs),
            fmt_time(secs[1]),
            fmt_time(secs[2]),
            fmt_time(quant_secs),
            format!("{:.2}×", dense_secs / secs[2]),
        ]);
    }
    print_table(
        &format!("matmul_nt [{m},{k}]×[{n},{k}]ᵀ by backend (dense ≡ csr ≡ bitset bitwise)"),
        &["density", "dense", "csr", "bitset", "quantized", "bitset speedup"],
        &rows,
    );
    let (csr_lo, bitset_lo) =
        low_density_bitset_vs_csr.expect("sweep includes a low-density point");
    assert!(
        bitset_lo <= csr_lo,
        "bitset must be at least as fast as CSR at low density: bitset {bitset_lo}s vs csr {csr_lo}s"
    );
    println!(
        "\nmeasured dense/bitset crossover: bitset still wins at {:.0}% density \
         (dispatch default DTSNN_SPARSE_THRESHOLD = {})",
        crossover * 100.0,
        sparse::DEFAULT_DENSITY_THRESHOLD,
    );

    // ---- part 2: full-net dynamic-timestep loop per backend ----------------
    let t_max = 4;
    let runner = DynamicInference::new(ExitPolicy::entropy(1e-30)?, t_max)?; // never exits
    let probe = Tensor::randn(&[2, 16, 16], 0.5, 0.5, &mut TensorRng::seed_from(23));

    let mut net_rows: Vec<Vec<String>> = Vec::new();
    let mut net_points = Vec::new();
    let mut oracle_logits: Option<Vec<u32>> = None;
    for kind in [BackendKind::Dense, BackendKind::Csr, BackendKind::Bitset, BackendKind::Quantized]
    {
        let mut net = fresh_net()?;
        let quantized_opt_in = kind == BackendKind::Quantized;
        if quantized_opt_in {
            // opt the layers into the int8 weight path instead of forcing the
            // raw-kernel override (which the quantized family does not serve)
            net.quantize_weights(backend::DEFAULT_QUANT_BITS);
        }
        let run = |net: &mut Snn| {
            if quantized_opt_in {
                runner.run(net, std::slice::from_ref(&probe))
            } else {
                backend::with_backend(kind, || runner.run(net, std::slice::from_ref(&probe)))
            }
        };
        let outcome = run(&mut net)?;
        let bits: Vec<u32> = outcome.scores.iter().map(|v| v.to_bits()).collect();
        if quantized_opt_in {
            assert!(
                outcome.scores.iter().all(|v| v.is_finite()),
                "quantized full-net scores must be finite"
            );
        } else if let Some(oracle) = &oracle_logits {
            assert_eq!(oracle, &bits, "{}: full-net scores must match dense bitwise", kind.name());
        } else {
            oracle_logits = Some(bits);
        }
        net.reset_workspace_stats();
        let secs = time_it(|| run(&mut net).unwrap());
        let stats = net.workspace_stats();
        assert!(stats.takes > 0, "the Eval loop must draw from the workspace");
        assert_eq!(stats.misses, 0, "{}: warmed loop must not allocate: {stats:?}", kind.name());
        net_rows.push(vec![
            kind.name().into(),
            fmt_time(secs),
            stats.takes.to_string(),
            stats.misses.to_string(),
        ]);
        net_points.push(json!({
            "backend": kind.name(),
            "secs_per_sample": secs,
            "workspace_takes": stats.takes,
            "workspace_misses": stats.misses,
        }));
    }
    print_table(
        &format!("full-net timestep loop (VGG*, T={t_max}) by forced backend"),
        &["backend", "per sample", "ws takes", "ws misses"],
        &net_rows,
    );

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = json!({
        "host_cores": host_cores,
        "cpu_features": simd::cpu_features(),
        "simd_level": simd::level().name(),
        "matmul_nt_shape": json!({"m": m, "k": k, "n": n}),
        "quant_bits": backend::DEFAULT_QUANT_BITS,
        "densities": densities.iter().map(|&d| json!(d)).collect::<Vec<_>>(),
        "kernels": kernel_points,
        "measured_crossover_density": crossover,
        "dispatch_threshold": sparse::DEFAULT_DENSITY_THRESHOLD,
        "full_net": json!({
            "arch": "vgg_small",
            "max_timesteps": t_max,
            "backends": net_points,
        }),
        "bitwise_equal": true,
    });
    let path = write_json("backend_speedup", &doc)?;
    println!("wrote {}", path.display());
    Ok(())
}
