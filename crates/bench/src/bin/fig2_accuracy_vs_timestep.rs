//! Fig. 2 — accuracy vs. number of inference timesteps.
//!
//! The paper shows spiking VGG-16 accuracy rising with T on CIFAR-10,
//! CIFAR-100 and TinyImageNet, with the largest jump from T=1 to T=2 and
//! diminishing returns after. This binary trains the scaled VGG on the three
//! static stand-in datasets (conventional Eq. 9 loss, T = 4) and reports cumulative
//! accuracy at every budget, plus the fraction of test samples correctly
//! classified with fewer than full timesteps (the observation motivating
//! DT-SNN in Sec. III-A).

use dtsnn_bench::{json, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::StaticEvaluation;
use dtsnn_data::Preset;
use dtsnn_snn::LossKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let presets = [Preset::Cifar10, Preset::Cifar100, Preset::TinyImageNet];
    let t_max = 4;
    let mut rows = Vec::new();
    let mut json = json::Map::new();
    for preset in presets {
        let dataset = preset.generate(exp.scale, exp.seed)?;
        eprintln!("[fig2] training VGG* on {} ({} train samples)…", preset.name(), dataset.train.len());
        let (mut net, report, _cfg) =
            train_model(&dataset, Arch::Vgg, LossKind::MeanOutput, t_max, &exp)?;
        eprintln!("[fig2]   final train acc {:.3}", report.final_accuracy());
        let eval = StaticEvaluation::run(
            &mut net,
            &dataset.test.frames(),
            &dataset.test.labels(),
            t_max,
        )?;
        let mut row = vec![preset.name().to_string()];
        row.extend(eval.accuracy_by_t.iter().map(|a| format!("{:.2}%", a * 100.0)));
        rows.push(row);
        json.insert(
            preset.name().to_string(),
            json!({
                "accuracy_by_t": eval.accuracy_by_t,
                "train_accuracy": report.final_accuracy(),
            }),
        );
    }
    print_table(
        "Fig. 2: accuracy vs timesteps (spiking VGG*)",
        &["dataset", "T=1", "T=2", "T=3", "T=4"],
        &rows,
    );
    let path = write_json("fig2_accuracy_vs_timestep", &json::Value::Object(json))?;
    println!("\nwrote {}", path.display());
    Ok(())
}
