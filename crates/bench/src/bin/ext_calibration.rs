//! Extension — is entropy actually a trustworthy exit signal?
//!
//! Sec. III-A justifies Eq. 8 by citing Guo et al. \[5\]: "the prediction
//! accuracy is highly correlated with entropy". This binary measures that
//! premise on our trained models: a reliability diagram (accuracy per
//! first-timestep entropy bin) and the point-biserial correlation between
//! entropy and correctness. A strongly negative correlation and a
//! monotonically falling diagram validate the exit rule.

use dtsnn_bench::{json, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::{
    collect_exit_scores, reliability_bins, score_correctness_correlation, DynamicInference,
    ExitPolicy,
};
use dtsnn_data::Preset;
use dtsnn_snn::LossKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    let dataset = Preset::Cifar10.generate(exp.scale, exp.seed)?;
    eprintln!("[ext-cal] training VGG* (Eq. 10)…");
    let (mut net, _, _) = train_model(&dataset, Arch::Vgg, LossKind::PerTimestep, t_max, &exp)?;

    // θ = 1 exits at the first timestep for any non-uniform output, so the
    // outcome's prediction and score both describe t = 1.
    let runner = DynamicInference::new(ExitPolicy::entropy(1.0)?, t_max)?;
    let (scores, corrects) =
        collect_exit_scores(&mut net, &runner, &dataset.test.frames(), &dataset.test.labels())?;
    let bins = reliability_bins(&scores, &corrects, 5)?;
    let mut rows = Vec::new();
    for b in &bins {
        rows.push(vec![
            format!("[{:.1}, {:.1})", b.lo, b.hi),
            format!("{}", b.count),
            if b.accuracy.is_nan() { "-".into() } else { format!("{:.1}%", b.accuracy * 100.0) },
        ]);
    }
    print_table(
        "Extension: reliability diagram — accuracy per first-timestep entropy bin",
        &["entropy bin", "samples", "accuracy"],
        &rows,
    );
    let r = score_correctness_correlation(&scores, &corrects)?;
    println!("\npoint-biserial correlation(entropy, correct) = {r:.3}");
    println!("premise (Guo et al. [5]): strongly negative — low entropy ⇒ correct prediction");

    // sanity: low-entropy bins should be at least as accurate as high ones
    let first_valid = bins.iter().find(|b| !b.accuracy.is_nan());
    let last_valid = bins.iter().rev().find(|b| !b.accuracy.is_nan());
    if let (Some(lo), Some(hi)) = (first_valid, last_valid) {
        if lo.lo < hi.lo {
            println!(
                "lowest-entropy bin accuracy {:.1}% vs highest-entropy bin {:.1}%",
                lo.accuracy * 100.0,
                hi.accuracy * 100.0
            );
        }
    }
    let json = json!({
        "correlation": r,
        "bins": bins.iter().map(|b| json!({
            "lo": b.lo, "hi": b.hi, "count": b.count,
            "accuracy": if b.accuracy.is_nan() { None } else { Some(b.accuracy) },
        })).collect::<Vec<_>>(),
    });
    let path = write_json("ext_calibration", &json)?;
    println!("wrote {}", path.display());
    Ok(())
}
