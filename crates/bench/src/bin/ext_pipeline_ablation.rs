//! Extension — quantifying the paper's scheduling design choice
//! (Sec. III-B): timesteps processed **sequentially without pipelining**.
//!
//! With layers pipelined across timesteps, a static SNN's latency improves
//! (fill + (T−1)·bottleneck instead of T·full-traversal), but DT-SNN's
//! early exits strand speculative timesteps in flight: their energy is
//! wasted and the pipeline must drain. This binary evaluates both schedules
//! on the paper-size VGG-16 mapping at the measured DT-SNN operating points
//! and shows where each schedule wins — no training needed.

use dtsnn_bench::{json, print_table, write_json};
use dtsnn_imc::{ChipMapping, CostModel, HardwareConfig, TimestepSchedule};
use dtsnn_snn::vgg16_geometry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HardwareConfig::default();
    let geometry = vgg16_geometry(32, 3, 10);
    let mapping = ChipMapping::map(&geometry, &config)?;
    let model = CostModel::new(mapping, config)?;
    let mut densities = vec![0.2f32; geometry.len()];
    densities[0] = 1.0;
    let t_max = 4;
    println!(
        "pipeline geometry: full traversal {} cycles, bottleneck stage {} cycles, speculative depth {:.1} timesteps",
        model.timestep_latency(),
        model.bottleneck_stage_cycles(),
        model.speculative_depth()
    );

    let mut rows = Vec::new();
    let mut json = Vec::new();
    // static at the full window, and DT-SNN at the paper's measured 1.46 avg T
    for (label, avg_t, classes) in [
        ("static SNN, T=4", 4.0f64, None),
        ("DT-SNN, T̂=1.46", 1.46, Some(10)),
        ("DT-SNN, T̂=2.03", 2.03, Some(10)),
        ("DT-SNN, T̂=3.50", 3.50, Some(10)),
    ] {
        let seq = model.inference_cost_scheduled(
            &densities,
            avg_t,
            t_max,
            classes,
            TimestepSchedule::Sequential,
        )?;
        let pipe = model.inference_cost_scheduled(
            &densities,
            avg_t,
            t_max,
            classes,
            TimestepSchedule::Pipelined,
        )?;
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", seq.energy_pj() / 1e6),
            format!("{:.2}", pipe.energy_pj() / 1e6),
            format!("{:.2}", seq.latency_ns() / 1e3),
            format!("{:.2}", pipe.latency_ns() / 1e3),
            format!("{:.2}×", pipe.edp() / seq.edp()),
        ]);
        json.push(json!({
            "config": label,
            "sequential": json!({"energy_pj": seq.energy_pj(), "latency_ns": seq.latency_ns(), "edp": seq.edp()}),
            "pipelined": json!({"energy_pj": pipe.energy_pj(), "latency_ns": pipe.latency_ns(), "edp": pipe.edp()}),
        }));
    }
    print_table(
        "Extension: sequential vs pipelined timestep scheduling (VGG-16 mapping)",
        &["config", "E seq (µJ)", "E pipe (µJ)", "L seq (µs)", "L pipe (µs)", "pipe/seq EDP"],
        &rows,
    );
    println!("\npaper design choice: sequential scheduling avoids flush cost on dynamic exits;");
    println!("expected: pipelining helps the static SNN but inflates DT-SNN energy at low T̂");
    let path = write_json("ext_pipeline_ablation", &json::Value::Array(json))?;
    println!("wrote {}", path.display());
    Ok(())
}
