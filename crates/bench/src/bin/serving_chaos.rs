//! Chaos benchmark: the sharded fault-tolerant cluster under a seeded
//! fault-intensity sweep — goodput, failure-rate and tail-latency curves
//! as crashes, stalls, slowdowns and transient step errors scale up.
//!
//! Every run replays the same seeded Poisson arrival trace through a
//! 4-worker simulated-clock cluster; only the fault schedule changes, and
//! it too is a pure function of the committed seed and the intensity
//! knob. Intensity 0 is the control arm (no faults); each nonzero rung
//! multiplies the base event rates. The bin asserts the tentpole
//! invariants at every rung — exactly-once termination, a balanced stats
//! ledger, and *strictly positive goodput* (the cluster degrades, it
//! never collapses) — and that the fault plane actually injected
//! something wherever intensity > 0.
//!
//! Results go to `bench-results/serving_chaos.json`.
//!
//! With `DTSNN_CHAOS_SMOKE=1` the sweep shrinks to a CI-sized budget.

use dtsnn_bench::{json, print_table, write_json};
use dtsnn_serve::{
    generate_arrivals, ArrivalProcess, BrownoutConfig, Cluster, ClusterConfig, FaultSchedule,
    FaultSpec, Request, ServerConfig, ServiceModel, ThetaController, TracedRequest,
};
use dtsnn_snn::{vgg_small, LifConfig, ModelConfig, Snn};
use dtsnn_tensor::{Tensor, TensorRng};

const MAX_T: usize = 4;
const SLOTS: usize = 4;
const WORKERS: usize = 4;
const DEADLINE_NANOS: u64 = 40_000_000; // 40 ms budget per request
/// Simulated per-step cost: 1 ms dispatch + 0.25 ms per batch row.
const SERVICE: ServiceModel =
    ServiceModel { step_fixed_nanos: 1_000_000, step_per_row_nanos: 250_000 };
const THETA_FLOOR: f32 = 0.70;
const THETA_CEIL: f32 = 0.98;
const OFFERED_RATE: f64 = 600.0; // req/s: light for 4 workers, tight under faults

fn model_config() -> ModelConfig {
    ModelConfig {
        in_channels: 2,
        image_size: 8,
        num_classes: 4,
        lif: LifConfig { v_th: 1.0, tau: 0.75, ..LifConfig::default() },
        width: 4,
        // untrained Eval nets need the calibrated tdBN gain to spike at all
        tdbn_alpha: 6.0,
        dropout: 0.0,
    }
}

fn fresh_net() -> dtsnn_snn::Result<Snn> {
    vgg_small(&model_config(), &mut TensorRng::seed_from(17))
}

fn cluster_config() -> Result<ClusterConfig, Box<dyn std::error::Error>> {
    let server = ServerConfig {
        max_timesteps: MAX_T,
        slots: SLOTS,
        queue_capacity: SLOTS, // overridden per worker by the cluster anyway
        theta: ThetaController::new(THETA_FLOOR, THETA_CEIL, 8.0)?,
        service: SERVICE,
        default_deadline_nanos: Some(DEADLINE_NANOS),
        record_schedule: false,
    };
    Ok(ClusterConfig {
        server,
        queue_capacity: 256,
        retry_budget: 3,
        backoff_base_nanos: 2_000_000,           // 2 ms
        stall_timeout_nanos: Some(25_000_000),   // 25 ms
        hedge_after_nanos: Some(30_000_000),     // 30 ms, inside the 40 ms budget
        max_consecutive_faults: 3,
        brownout: BrownoutConfig {
            theta_pressure_depth: 8,
            cap_depth: 16,
            timestep_cap: 2,
            shed_depth: 32,
            shed_below_priority: 1,
        },
        record_events: false,
    })
}

/// Base fault mix at intensity 1.0, per worker: a couple of crashes and a
/// few stalls/slowdowns/error bursts over a ~0.7 s run.
fn base_faults() -> FaultSpec {
    FaultSpec {
        crash_per_sec: 2.0,
        restart_after_nanos: 50_000_000, // 50 ms outage
        stall_per_sec: 3.0,
        mean_stall_nanos: 30_000_000,
        slowdown_per_sec: 3.0,
        slowdown_factor: 3.0,
        mean_slowdown_nanos: 40_000_000,
        transient_per_sec: 5.0,
        transient_count: 2,
    }
}

fn build_trace(arrivals: &[u64], seed: u64) -> Vec<TracedRequest> {
    let mut rng = TensorRng::seed_from(seed);
    arrivals
        .iter()
        .enumerate()
        .map(|(i, &at)| TracedRequest {
            at_nanos: at,
            request: Request {
                id: i as u64,
                frames: vec![Tensor::randn(&[2, 8, 8], 0.5, 0.5, &mut rng)],
                deadline_nanos: None,
                // a quarter of the traffic is high priority: the brownout
                // ladder may shed the rest first under pressure
                priority: u8::from(i % 4 == 0),
            },
        })
        .collect()
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.2}", nanos as f64 / 1e6)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::var("DTSNN_CHAOS_SMOKE").is_ok();
    let requests = if smoke { 80 } else { 400 };
    let intensities: &[f64] = if smoke { &[0.0, 1.0] } else { &[0.0, 0.5, 1.0, 2.0] };

    let mut arrival_rng = TensorRng::seed_from(0xC4A0_10AD);
    let arrivals =
        generate_arrivals(ArrivalProcess::Poisson { rate_per_sec: OFFERED_RATE }, requests, &mut arrival_rng)?;
    let trace = build_trace(&arrivals, 0xC4A0_F4A3);
    let horizon = arrivals.last().copied().unwrap_or(0) + 200_000_000; // arrivals + 200 ms drain

    let mut runs = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &intensity in intensities {
        let spec = base_faults().scaled(intensity);
        let mut fault_rng = TensorRng::seed_from(0xFA17_5EED ^ intensity.to_bits());
        let schedule = FaultSchedule::generate(&spec, WORKERS, horizon, &mut fault_rng)?;
        let injected = schedule.len();
        if intensity > 0.0 {
            assert!(injected > 0, "intensity {intensity} must schedule faults");
        }

        let mut cluster = Cluster::simulated(fresh_net()?, cluster_config()?, WORKERS, schedule)?;
        cluster.run_trace(&trace)?;
        let elapsed = cluster.now();
        let stats = cluster.stats();
        let outcomes = cluster.take_outcomes();

        // the tentpole invariants, re-asserted on the bench fixture
        assert_eq!(outcomes.len(), trace.len(), "every request must terminate exactly once");
        assert_eq!(
            stats.rejected + stats.shed + stats.completed + stats.expired + stats.failed,
            stats.submitted,
            "the termination ledger must balance: {stats:?}"
        );
        let report = dtsnn_serve::summarize(&outcomes, elapsed);
        assert!(
            report.goodput_per_sec > 0.0,
            "goodput must stay strictly positive at intensity {intensity}: {stats:?}"
        );
        if intensity == 0.0 {
            assert!(
                report.failure_rate < 0.01,
                "the no-fault control arm must serve cleanly, failure rate {}",
                report.failure_rate
            );
        } else {
            assert!(
                stats.worker_crashes + stats.stalls_detected + stats.transient_faults > 0,
                "intensity {intensity} must actually perturb the cluster: {stats:?}"
            );
        }

        rows.push(vec![
            format!("{intensity:.1}"),
            injected.to_string(),
            format!("{:.0}/s", report.goodput_per_sec),
            format!("{:.1}%", report.failure_rate * 100.0),
            fmt_ms(report.p50_latency_nanos),
            fmt_ms(report.censored_p99_latency_nanos),
            stats.worker_crashes.to_string(),
            stats.requeues.to_string(),
            stats.hedges.to_string(),
            stats.shed.to_string(),
        ]);
        runs.push(json!({
            "intensity": intensity,
            "faults_scheduled": injected as u64,
            "offered": report.offered,
            "completed": report.completed,
            "timed_out": report.timed_out,
            "rejected": report.rejected,
            "failed": report.failed,
            "goodput_per_sec": report.goodput_per_sec,
            "failure_rate": report.failure_rate,
            "p50_latency_ms": report.p50_latency_nanos as f64 / 1e6,
            "p99_latency_ms": report.p99_latency_nanos as f64 / 1e6,
            "censored_p50_latency_ms": report.censored_p50_latency_nanos as f64 / 1e6,
            "censored_p99_latency_ms": report.censored_p99_latency_nanos as f64 / 1e6,
            "avg_timesteps": report.avg_timesteps,
            "worker_crashes": stats.worker_crashes,
            "worker_restarts": stats.worker_restarts,
            "stalls_detected": stats.stalls_detected,
            "transient_faults": stats.transient_faults,
            "requeues": stats.requeues,
            "hedges": stats.hedges,
            "duplicates_suppressed": stats.duplicates_suppressed,
            "shed": stats.shed,
            "max_brownout_level": stats.max_brownout_level,
        }));
    }

    print_table(
        &format!(
            "sharded serving under chaos, {requests} requests at {OFFERED_RATE:.0}/s, \
             {WORKERS} workers × {SLOTS} slots, T={MAX_T}, deadline {} ms (simulated clock)",
            DEADLINE_NANOS / 1_000_000
        ),
        &[
            "intensity", "faults", "goodput", "failures", "p50 ms", "c-p99 ms", "crashes",
            "requeues", "hedges", "shed",
        ],
        &rows,
    );

    let doc = json!({
        "requests_per_run": requests,
        "offered_rate_per_sec": OFFERED_RATE,
        "workers": WORKERS,
        "slots": SLOTS,
        "max_timesteps": MAX_T,
        "deadline_ms": DEADLINE_NANOS as f64 / 1e6,
        "service_model": json!({
            "step_fixed_ms": SERVICE.step_fixed_nanos as f64 / 1e6,
            "step_per_row_ms": SERVICE.step_per_row_nanos as f64 / 1e6,
        }),
        "theta": json!({ "min": THETA_FLOOR, "max": THETA_CEIL }),
        "retry_budget": 3,
        "arch": "vgg_small",
        "clock": "simulated",
        "runs": runs,
    });
    if smoke {
        println!("\nsmoke mode: skipping bench-results write");
    } else {
        let path = write_json("serving_chaos", &doc)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
