//! Extension — device-precision sweep: why Table I picks 4-bit RRAM.
//!
//! Sweeps the per-device bit width (1/2/4/8 bits; 8-bit weights bit-sliced
//! accordingly) and evaluates a trained DT-SNN after deployment through the
//! noisy device model (σ/μ = 20% per device). Fewer bits per device need
//! more slices (more columns, more ADC conversions → more energy); more bits
//! per device squeeze more levels into the same conductance range, amplifying
//! the impact of variation. The sweep exposes that accuracy/energy trade-off.

use dtsnn_bench::{json, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::{DynamicEvaluation, DynamicInference, ExitPolicy, HardwareProfile};
use dtsnn_data::Preset;
use dtsnn_imc::{perturb_network, HardwareConfig};
use dtsnn_snn::LossKind;
use dtsnn_tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    let dataset = Preset::Cifar10.generate(exp.scale, exp.seed)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();
    eprintln!("[ext-precision] training VGG* (Eq. 10)…");
    let (net, _, model_cfg) = train_model(&dataset, Arch::Vgg, LossKind::PerTimestep, t_max, &exp)?;
    let runner = DynamicInference::new(ExitPolicy::entropy(0.3)?, t_max)?;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut rng = TensorRng::seed_from(exp.seed ^ 0x9E37);
    for device_bits in [1u32, 2, 4, 8] {
        let hw = HardwareConfig { device_bits, ..HardwareConfig::default() };
        // accuracy under deployment noise, averaged over 3 draws
        let mut acc = 0.0f32;
        let mut avg_t = 0.0f32;
        let trials = 3;
        for _ in 0..trials {
            let mut noisy = net.clone();
            perturb_network(&mut noisy, &hw, &mut rng)?;
            let eval = DynamicEvaluation::run_batched(&mut noisy, &runner, &frames, &labels, None, 32)?;
            acc += eval.accuracy;
            avg_t += eval.avg_timesteps;
        }
        acc /= trials as f32;
        avg_t /= trials as f32;
        // energy at this precision: slices change the mapping
        let profile = HardwareProfile::new(
            &Arch::Vgg.geometry(&model_cfg),
            Arch::Vgg.density_map(),
            model_cfg.num_classes,
            &hw,
        )?;
        let mut clean = net.clone();
        let eval = DynamicEvaluation::run_batched(&mut clean, &runner, &frames, &labels, None, 32)?;
        let cost = profile.dynamic_cost(&eval.activity, avg_t as f64)?;
        rows.push(vec![
            format!("{device_bits}-bit"),
            format!("{}", hw.slices_per_weight()),
            format!("{:.2}%", acc * 100.0),
            format!("{avg_t:.2}"),
            format!("{:.2}", cost.energy_pj() / 1e6),
        ]);
        json.push(json!({
            "device_bits": device_bits,
            "slices_per_weight": hw.slices_per_weight(),
            "noisy_accuracy": acc,
            "avg_timesteps": avg_t,
            "energy_uj": cost.energy_pj() / 1e6,
        }));
    }
    print_table(
        "Extension: device-precision sweep (20% variation, DT-SNN θ=0.3)",
        &["device", "slices/weight", "noisy acc", "avg T̂", "energy (µJ)"],
        &rows,
    );
    println!("\nTable I's 4-bit choice balances slice count (energy) against variation sensitivity");
    let path = write_json("ext_precision_sweep", &json::Value::Array(json))?;
    println!("wrote {}", path.display());
    Ok(())
}
