//! Extension — mapping-search Pareto front over the IMC design space.
//!
//! Sweeps hardware variants (crossbar size × ADC column-mux ratio) for both
//! full-size backbones and, per variant, runs the annealed layer→tile
//! placement search ([`dtsnn_imc::search_placement`]) on the event-driven
//! simulator to get the best achievable EDP. Each variant is scored on
//! three axes:
//!
//! * **area** — provisioned √N×√N mesh silicon ([`provisioned_area_mm2`]),
//! * **EDP** — the searched placement's event-simulated energy-delay
//!   product (pipelined schedule, link contention and finite buffers on),
//! * **fault accuracy** — Monte-Carlo mean accuracy of the trained scaled
//!   stand-in mapped under the *same* hardware variant with a moderately
//!   aged-chip fault model (half the severity of `ext_fault_sweep`'s base).
//!
//! The non-dominated variants form the committed Pareto front. The mux
//! ratio trades area against EDP at equal accuracy (EDP is U-shaped in
//! the ratio, so past its minimum fewer ADC groups keep shrinking silicon
//! while EDP climbs); the crossbar size moves all three axes (mapping
//! granularity changes tile count, stage balance and the blast radius of
//! dead word/bitlines), so the front is non-degenerate.
//!
//! Env: `DTSNN_TRIALS` (default 3) Monte-Carlo trials per variant;
//! `DTSNN_SEARCH_ROUNDS` (default 12) annealing rounds;
//! `DTSNN_AREA_BUDGET_MM2` (optional) excludes variants over the budget
//! from the front; plus the usual `DTSNN_SCALE`/`DTSNN_EPOCHS`/`DTSNN_SEED`.

use dtsnn_bench::{json, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::{DynamicInference, ExitPolicy, HardwareProfile, MonteCarloConfig, MonteCarloRobustness};
use dtsnn_data::Preset;
use dtsnn_imc::{
    pareto_front, provisioned_area_mm2, search_placement, AnnealOptions, AreaConstants,
    ChipMapping, CostModel, FaultModel, HardwareConfig, ParetoPoint, Placement,
};
use dtsnn_snn::{resnet19_geometry, vgg16_geometry, LossKind};

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let trials: usize = env_parse("DTSNN_TRIALS").unwrap_or(3).max(1);
    let rounds: usize = env_parse("DTSNN_SEARCH_ROUNDS").unwrap_or(12).max(1);
    let budget: Option<f64> = env_parse("DTSNN_AREA_BUDGET_MM2");
    let t_max = 4;
    let theta = 0.7f32;
    let preset = Preset::Cifar10;
    let dataset = preset.generate(exp.scale, exp.seed)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();
    let runner = DynamicInference::new(ExitPolicy::entropy(theta)?, t_max)?;

    // Half of ext_fault_sweep's aged-chip severity: enough damage that the
    // crossbar granularity matters, not enough to flatten every variant to
    // chance (which would collapse the accuracy axis).
    let faults = FaultModel {
        stuck_on_rate: 5e-4,
        stuck_off_rate: 1.25e-2,
        read_sigma: 0.025,
        drift: 0.015,
        dead_wordline_rate: 1e-3,
        dead_bitline_rate: 1e-3,
    };
    let mc = MonteCarloConfig { trials, seed: exp.seed ^ 0x9A7E70 };

    // (crossbar rows/cols, ADC column-mux ratio). Per crossbar size: the
    // EDP-minimizing mux and the area-minimizing mux (= crossbar size, one
    // ADC group per crossbar). EDP is U-shaped in the mux ratio — latency
    // falls with fewer serialized conversion groups while mux energy grows
    // linearly — so past the minimum, area keeps shrinking as EDP rises:
    // a genuine trade at equal accuracy.
    let variants: [(usize, usize); 6] =
        [(32, 16), (32, 32), (64, 16), (64, 64), (128, 32), (128, 128)];

    let mut arch_docs = Vec::new();
    for arch in Arch::all() {
        let full_geometry = match arch {
            Arch::Vgg => vgg16_geometry(32, 3, 10),
            Arch::ResNet => resnet19_geometry(32, 3, 10),
        };
        eprintln!("[mapping_pareto] training {} stand-in…", arch.name());
        let (net, _, model_cfg) =
            train_model(&dataset, arch, LossKind::PerTimestep, t_max, &exp)?;

        let mut points = Vec::new();
        let mut variant_docs = Vec::new();
        let mut rows = Vec::new();
        for &(crossbar, mux) in &variants {
            let hw = HardwareConfig {
                crossbar_size: crossbar,
                adc_mux_ratio: mux,
                ..HardwareConfig::default()
            };
            // area + EDP axes: the full-size backbone on this variant
            let mapping = ChipMapping::map(&full_geometry, &hw)?;
            let cost = CostModel::new(mapping, hw.clone())?;
            let mut densities = vec![0.2f32; cost.mapping().layers().len()];
            densities[0] = 1.0; // analog-encoded input layer
            let anneal = AnnealOptions {
                seed: exp.seed ^ 0x5EA_12C4,
                rounds,
                timesteps: t_max,
                classes: Some(model_cfg.num_classes),
                ..AnnealOptions::default()
            };
            eprintln!(
                "[mapping_pareto] {} xb={crossbar} mux={mux}: searching placement…",
                arch.name()
            );
            let search = search_placement(&cost, &densities, &anneal)?;
            let mesh_side = Placement::linear(cost.mapping())?.mesh_side();
            let area = provisioned_area_mm2(&cost, &AreaConstants::default(), mesh_side)?;

            // accuracy axis: the trained stand-in mapped under the same variant
            let profile = HardwareProfile::new(
                &arch.geometry(&model_cfg),
                arch.density_map(),
                model_cfg.num_classes,
                &hw,
            )?;
            let robust =
                MonteCarloRobustness::run(&net, &runner, &frames, &labels, &profile, &faults, &mc)?;

            points.push(ParetoPoint {
                area_mm2: area,
                edp: search.best_edp,
                fault_accuracy: robust.accuracy.mean,
            });
            rows.push(vec![
                format!("{crossbar}×{crossbar}"),
                mux.to_string(),
                format!("{area:.2}"),
                format!("{:.3e}", search.best_edp),
                format!("{:.1}%", 100.0 * (1.0 - search.best_edp / search.identity_edp)),
                format!("{:.2}% ± {:.2}%", robust.accuracy.mean * 100.0, robust.accuracy.ci95 * 100.0),
            ]);
            variant_docs.push(json!({
                "crossbar_size": crossbar,
                "adc_mux_ratio": mux,
                "mesh_side": mesh_side,
                "area_mm2": area,
                "edp": search.best_edp,
                "identity_edp": search.identity_edp,
                "greedy_edp": search.greedy_edp,
                "search_evaluations": search.evaluations,
                "best_order": search.best_order.clone(),
                "fault_accuracy": robust.accuracy.mean,
                "fault_accuracy_ci95": robust.accuracy.ci95,
                "avg_timesteps": robust.avg_timesteps.mean,
            }));
        }

        // the front is computed over the variants inside the area budget
        let eligible: Vec<usize> = (0..points.len())
            .filter(|&i| budget.is_none_or(|b| points[i].area_mm2 <= b))
            .collect();
        let sub: Vec<ParetoPoint> = eligible.iter().map(|&i| points[i]).collect();
        let front: Vec<usize> = pareto_front(&sub).into_iter().map(|k| eligible[k]).collect();
        for (i, row) in rows.iter_mut().enumerate() {
            row.push(if front.contains(&i) { "◆".into() } else { String::new() });
        }
        print_table(
            &format!("{} mapping-search Pareto sweep ({trials} MC trials)", arch.name()),
            &["crossbar", "mux", "area mm²", "EDP pJ·ns", "search gain", "fault accuracy", "front"],
            &rows,
        );
        if front.len() < 3 {
            eprintln!(
                "[mapping_pareto] warning: {} front has only {} points",
                arch.name(),
                front.len()
            );
        }
        arch_docs.push(json!({
            "arch": arch.name(),
            "full_network": match arch { Arch::Vgg => "VGG-16", Arch::ResNet => "ResNet-19" },
            "variants": variant_docs,
            "pareto_front": front,
        }));
    }

    println!("\nexpected: per architecture, ≥3 non-dominated variants — the mux ratio");
    println!("trades area against EDP at equal accuracy, the crossbar size moves all axes");

    let path = write_json(
        "mapping_pareto",
        &json!({
            "trials": trials,
            "search_rounds": rounds,
            "theta": theta,
            "t_max": t_max,
            "mc_seed": mc.seed,
            "area_budget_mm2": budget,
            "archs": arch_docs,
        }),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
