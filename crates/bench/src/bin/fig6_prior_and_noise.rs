//! Fig. 6 — (A) comparison with prior training methods (tdBN, Dspike) and
//! (B) accuracy under 20% device-conductance variation.
//!
//! Panel A trains the same backbone three ways: a tdBN-style baseline
//! (rectangular surrogate + Eq. 9 loss), a Dspike-style baseline (smooth
//! temperature surrogate + Eq. 9), and ours (Eq. 10 per-timestep loss), then
//! reports accuracy at every timestep budget, plus the DT-SNN point.
//! Panel B re-evaluates the static and DT-SNN models after pushing the
//! trained weights through the 4-bit RRAM device model with σ/μ = 20%.

use dtsnn_bench::{json, model_config_for, print_table, write_json, Arch, ExpConfig};
use dtsnn_core::{DynamicEvaluation, DynamicInference, ExitPolicy, StaticEvaluation};
use dtsnn_data::Preset;
use dtsnn_imc::{perturb_network, HardwareConfig};
use dtsnn_snn::{
    LifConfig, LossKind, SgdConfig, Snn, Surrogate, Trainer, TrainerConfig,
};
use dtsnn_tensor::TensorRng;

fn train_variant(
    dataset: &dtsnn_data::Dataset,
    surrogate: Surrogate,
    loss: LossKind,
    t_max: usize,
    exp: &ExpConfig,
) -> Result<Snn, Box<dyn std::error::Error>> {
    let mut cfg = model_config_for(dataset);
    cfg.lif = LifConfig { surrogate, ..cfg.lif };
    let mut rng = TensorRng::seed_from(exp.seed);
    let mut net = Arch::Vgg.build(&cfg, &mut rng)?;
    let trainer = Trainer::new(TrainerConfig {
        epochs: exp.epochs,
        batch_size: 32,
        timesteps: t_max,
        loss,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 },
        seed: exp.seed ^ 0xBEEF,
    })?;
    trainer.fit(&mut net, &dataset.train.frames(), &dataset.train.labels())?;
    Ok(net)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    let preset = Preset::Cifar10;
    let dataset = preset.generate(exp.scale, exp.seed)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();

    // ---- Panel A: prior-work comparison ------------------------------------
    eprintln!("[fig6A] training tdBN baseline…");
    let mut tdbn = train_variant(&dataset, Surrogate::Rectangular, LossKind::MeanOutput, t_max, &exp)?;
    eprintln!("[fig6A] training Dspike baseline…");
    let mut dspike =
        train_variant(&dataset, Surrogate::Dspike { b: 3.0 }, LossKind::MeanOutput, t_max, &exp)?;
    eprintln!("[fig6A] training ours (Eq. 10)…");
    let mut ours = train_variant(&dataset, Surrogate::Rectangular, LossKind::PerTimestep, t_max, &exp)?;

    let mut rows = Vec::new();
    let mut json_a = json::Map::new();
    for (name, net) in [("tdBN", &mut tdbn), ("Dspike", &mut dspike), ("ours (static)", &mut ours)]
    {
        let eval = StaticEvaluation::run(net, &frames, &labels, t_max)?;
        let mut row = vec![name.to_string()];
        row.extend(eval.accuracy_by_t.iter().map(|a| format!("{:.2}%", a * 100.0)));
        rows.push(row);
        json_a.insert(name.to_string(), json!(eval.accuracy_by_t));
    }
    // DT-SNN row: ours + entropy exit
    let runner = DynamicInference::new(ExitPolicy::entropy(0.3)?, t_max)?;
    let dt_eval = DynamicEvaluation::run_batched(&mut ours, &runner, &frames, &labels, None, 32)?;
    rows.push(vec![
        "ours (DT-SNN θ=0.3)".into(),
        format!("T̂={:.2}", dt_eval.avg_timesteps),
        String::new(),
        String::new(),
        format!("{:.2}%", dt_eval.accuracy * 100.0),
    ]);
    print_table(
        "Fig. 6(A): accuracy vs timesteps — prior work comparison (VGG*, CIFAR-10*)",
        &["method", "T=1", "T=2", "T=3", "T=4"],
        &rows,
    );

    // ---- Panel B: device-variation robustness ------------------------------
    let hw = HardwareConfig::default(); // σ/μ = 20%, Table I
    let mut rng = TensorRng::seed_from(exp.seed ^ 0x0A05E);
    let mut rows_b = Vec::new();
    let mut json_b = Vec::new();
    // reuse the already-trained models; each trial perturbs fresh clones
    for trial in 0..3u64 {
        let mut noisy_static = tdbn.clone();
        let mut noisy_dt = ours.clone();
        perturb_network(&mut noisy_static, &hw, &mut rng)?;
        perturb_network(&mut noisy_dt, &hw, &mut rng)?;
        let s_eval = StaticEvaluation::run(&mut noisy_static, &frames, &labels, t_max)?;
        let d_eval = DynamicEvaluation::run_batched(&mut noisy_dt, &runner, &frames, &labels, None, 32)?;
        rows_b.push(vec![
            format!("trial {trial}"),
            format!("{:.2}% @T=4", s_eval.full_window_accuracy() * 100.0),
            format!("{:.2}% @T̂={:.2}", d_eval.accuracy * 100.0, d_eval.avg_timesteps),
        ]);
        json_b.push(json!({
            "trial": trial,
            "static_noisy_accuracy": s_eval.full_window_accuracy(),
            "dtsnn_noisy_accuracy": d_eval.accuracy,
            "dtsnn_avg_timesteps": d_eval.avg_timesteps,
        }));
    }
    print_table(
        "Fig. 6(B): accuracy under 20% device variation",
        &["trial", "static SNN (NI)", "DT-SNN (NI)"],
        &rows_b,
    );
    println!("\npaper: DT-SNN maintains higher accuracy than static SNN under variation");
    let path = write_json(
        "fig6_prior_and_noise",
        &json!({"panel_a": json_a, "panel_b": json_b}),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
