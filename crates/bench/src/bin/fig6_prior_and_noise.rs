//! Fig. 6 — (A) comparison with prior training methods (tdBN, Dspike) and
//! (B) accuracy under 20% device-conductance variation.
//!
//! Panel A trains the same backbone three ways: a tdBN-style baseline
//! (rectangular surrogate + Eq. 9 loss), a Dspike-style baseline (smooth
//! temperature surrogate + Eq. 9), and ours (Eq. 10 per-timestep loss), then
//! reports accuracy at every timestep budget, plus the DT-SNN point.
//! Panel B re-evaluates the static and DT-SNN models after pushing the
//! trained weights through the 4-bit RRAM device model with σ/μ = 20%,
//! using the Monte-Carlo robustness harness: N seeded programming-variation
//! draws (the null fault model — Table I device statistics only) with
//! accuracy reported as mean ± 95% CI.

use dtsnn_bench::{
    hardware_profile_for, json, model_config_for, print_table, write_json, Arch, ExpConfig,
};
use dtsnn_core::{
    DynamicEvaluation, DynamicInference, ExitPolicy, MonteCarloConfig, MonteCarloRobustness,
    MonteCarloStatic, StaticEvaluation,
};
use dtsnn_data::Preset;
use dtsnn_imc::FaultModel;
use dtsnn_snn::{
    LifConfig, LossKind, SgdConfig, Snn, Surrogate, Trainer, TrainerConfig,
};
use dtsnn_tensor::TensorRng;

fn train_variant(
    dataset: &dtsnn_data::Dataset,
    surrogate: Surrogate,
    loss: LossKind,
    t_max: usize,
    exp: &ExpConfig,
) -> Result<Snn, Box<dyn std::error::Error>> {
    let mut cfg = model_config_for(dataset);
    cfg.lif = LifConfig { surrogate, ..cfg.lif };
    let mut rng = TensorRng::seed_from(exp.seed);
    let mut net = Arch::Vgg.build(&cfg, &mut rng)?;
    let trainer = Trainer::new(TrainerConfig {
        epochs: exp.epochs,
        batch_size: 32,
        timesteps: t_max,
        loss,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 },
        seed: exp.seed ^ 0xBEEF,
    })?;
    trainer.fit(&mut net, &dataset.train.frames(), &dataset.train.labels())?;
    Ok(net)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    let preset = Preset::Cifar10;
    let dataset = preset.generate(exp.scale, exp.seed)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();

    // ---- Panel A: prior-work comparison ------------------------------------
    eprintln!("[fig6A] training tdBN baseline…");
    let mut tdbn = train_variant(&dataset, Surrogate::Rectangular, LossKind::MeanOutput, t_max, &exp)?;
    eprintln!("[fig6A] training Dspike baseline…");
    let mut dspike =
        train_variant(&dataset, Surrogate::Dspike { b: 3.0 }, LossKind::MeanOutput, t_max, &exp)?;
    eprintln!("[fig6A] training ours (Eq. 10)…");
    let mut ours = train_variant(&dataset, Surrogate::Rectangular, LossKind::PerTimestep, t_max, &exp)?;

    let mut rows = Vec::new();
    let mut json_a = json::Map::new();
    for (name, net) in [("tdBN", &mut tdbn), ("Dspike", &mut dspike), ("ours (static)", &mut ours)]
    {
        let eval = StaticEvaluation::run(net, &frames, &labels, t_max)?;
        let mut row = vec![name.to_string()];
        row.extend(eval.accuracy_by_t.iter().map(|a| format!("{:.2}%", a * 100.0)));
        rows.push(row);
        json_a.insert(name.to_string(), json!(eval.accuracy_by_t));
    }
    // DT-SNN row: ours + entropy exit
    let runner = DynamicInference::new(ExitPolicy::entropy(0.3)?, t_max)?;
    let dt_eval = DynamicEvaluation::run_batched(&mut ours, &runner, &frames, &labels, None, 32)?;
    rows.push(vec![
        "ours (DT-SNN θ=0.3)".into(),
        format!("T̂={:.2}", dt_eval.avg_timesteps),
        String::new(),
        String::new(),
        format!("{:.2}%", dt_eval.accuracy * 100.0),
    ]);
    print_table(
        "Fig. 6(A): accuracy vs timesteps — prior work comparison (VGG*, CIFAR-10*)",
        &["method", "T=1", "T=2", "T=3", "T=4"],
        &rows,
    );

    // ---- Panel B: device-variation robustness ------------------------------
    // Monte-Carlo over programming variation alone: the null fault model
    // leaves only Table I's σ/μ = 20% conductance spread, drawn fresh per
    // trial. Identical mc seeds give the static baseline and DT-SNN the
    // same damaged substrates.
    let model_cfg = model_config_for(&dataset);
    let profile = hardware_profile_for(Arch::Vgg, &model_cfg)?;
    let variation = FaultModel::none();
    let mc = MonteCarloConfig { trials: 5, seed: exp.seed ^ 0x0A05E };
    eprintln!("[fig6B] {} Monte-Carlo variation draws per model…", mc.trials);
    let s_mc = MonteCarloStatic::run(&tdbn, &frames, &labels, t_max, &profile, &variation, &mc)?;
    let d_mc =
        MonteCarloRobustness::run(&ours, &runner, &frames, &labels, &profile, &variation, &mc)?;
    let pct = |s: &dtsnn_core::Statistic| {
        format!("{:.2}% ± {:.2}%", s.mean * 100.0, s.ci95 * 100.0)
    };
    let rows_b = vec![
        vec![
            format!("tdBN static @T={t_max}"),
            pct(&s_mc.accuracy),
            String::new(),
        ],
        vec![
            "ours DT-SNN θ=0.3".into(),
            pct(&d_mc.accuracy),
            format!("T̂ = {}", d_mc.avg_timesteps.display(2)),
        ],
    ];
    print_table(
        &format!("Fig. 6(B): accuracy under 20% device variation ({} trials, mean ± 95% CI)", mc.trials),
        &["model", "accuracy (NI)", "timesteps"],
        &rows_b,
    );
    let json_b = json!({
        "trials": mc.trials,
        "mc_seed": mc.seed,
        "static_noisy_accuracy": json!({
            "mean": s_mc.accuracy.mean, "std": s_mc.accuracy.std_dev, "ci95": s_mc.accuracy.ci95,
            "per_trial": s_mc.trials.iter().map(|t| t.accuracy).collect::<Vec<_>>(),
        }),
        "dtsnn_noisy_accuracy": json!({
            "mean": d_mc.accuracy.mean, "std": d_mc.accuracy.std_dev, "ci95": d_mc.accuracy.ci95,
            "per_trial": d_mc.trials.iter().map(|t| t.accuracy).collect::<Vec<_>>(),
        }),
        "dtsnn_avg_timesteps": json!({"mean": d_mc.avg_timesteps.mean, "ci95": d_mc.avg_timesteps.ci95}),
        "quarantined_total": d_mc.quarantined_total,
    });
    println!("\npaper: DT-SNN maintains higher accuracy than static SNN under variation");
    let path = write_json(
        "fig6_prior_and_noise",
        &json!({"panel_a": json_a, "panel_b": json_b}),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
