//! Extension — DT-SNN vs. early-exit ANN (Sec. III-A(c) of the paper).
//!
//! The paper argues that (1) DT-SNN needs no extra layers while early exit
//! adds classifier branches, and (2) DT-SNN has higher potential: the
//! majority of inputs exit at the first timestep, while an ANN's first exit
//! serves only marginal examples. This binary trains both on the same
//! dataset, thresholds both with the same normalized-entropy rule, tunes
//! each threshold to iso-accuracy with its own full model, and compares the
//! first-gate exit fraction and the compute saved.

use dtsnn_bench::{json, model_config_for, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::{DynamicEvaluation, DynamicInference, ExitPolicy};
use dtsnn_data::Preset;
use dtsnn_imc::exact_normalized_entropy;
use dtsnn_snn::{EarlyExitAnn, LossKind, Mode};
use dtsnn_tensor::{softmax_rows, Tensor, TensorRng};

/// Evaluates the early-exit ANN with entropy threshold θ at every branch.
/// Returns (accuracy, first-exit fraction, mean compute fraction).
fn eval_ann(
    ann: &mut EarlyExitAnn,
    frames: &[Vec<Tensor>],
    labels: &[usize],
    theta: f32,
) -> (f32, f32, f32) {
    let mut correct = 0usize;
    let mut first_exits = 0usize;
    let mut compute = 0.0f32;
    for (sample, &label) in frames.iter().zip(labels) {
        let mut dims = vec![1];
        dims.extend_from_slice(sample[0].dims());
        let x = sample[0].reshape(&dims).expect("frame reshape");
        let outs = ann.forward_all(&x, Mode::Eval).expect("ann forward");
        let mut chosen = outs.len() - 1;
        for (i, o) in outs.iter().enumerate() {
            let p = softmax_rows(&o.logits).expect("softmax");
            if exact_normalized_entropy(p.data()) < theta || i == outs.len() - 1 {
                chosen = i;
                break;
            }
        }
        if chosen == 0 {
            first_exits += 1;
        }
        compute += outs[chosen].compute_fraction;
        let pred = outs[chosen].logits.row(0).expect("row").argmax().expect("argmax");
        correct += (pred == label) as usize;
    }
    let n = frames.len() as f32;
    (correct as f32 / n, first_exits as f32 / n, compute / n)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    let dataset = Preset::Cifar10.generate(exp.scale, exp.seed)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();
    let model_cfg = model_config_for(&dataset);

    // ---- DT-SNN -------------------------------------------------------------
    eprintln!("[ext-ann] training DT-SNN (Eq. 10)…");
    let (mut snn, _, _) = train_model(&dataset, Arch::Vgg, LossKind::PerTimestep, t_max, &exp)?;
    // full-window reference accuracy
    let full_runner = DynamicInference::new(ExitPolicy::entropy(1e-7)?, t_max)?;
    let full = DynamicEvaluation::run(&mut snn, &full_runner, &frames, &labels, None)?;
    // pick the laxest θ within 0.5% of full accuracy
    let mut snn_pick = None;
    for theta in [0.9f32, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05] {
        let runner = DynamicInference::new(ExitPolicy::entropy(theta)?, t_max)?;
        let eval = DynamicEvaluation::run(&mut snn, &runner, &frames, &labels, None)?;
        if eval.accuracy >= full.accuracy - 0.005 {
            snn_pick = Some((theta, eval));
            break;
        }
    }
    let (snn_theta, snn_eval) = snn_pick.unwrap_or((
        1e-7,
        DynamicEvaluation::run(&mut snn, &full_runner, &frames, &labels, None)?,
    ));
    let snn_first = snn_eval.timestep_distribution()[0];
    let snn_compute = snn_eval.avg_timesteps / t_max as f32;

    // ---- Early-exit ANN -------------------------------------------------------
    eprintln!("[ext-ann] training early-exit ANN (joint CE over 3 exits)…");
    let mut rng = TensorRng::seed_from(exp.seed);
    let mut ann = EarlyExitAnn::vgg_like(
        model_cfg.in_channels,
        model_cfg.image_size,
        model_cfg.num_classes,
        model_cfg.width,
        &mut rng,
    )?;
    let train_frames = dataset.train.frames();
    let train_labels = dataset.train.labels();
    let mut order: Vec<usize> = (0..train_frames.len()).collect();
    let mut shuffle_rng = TensorRng::seed_from(exp.seed ^ 0xBEEF);
    for epoch in 0..exp.epochs {
        shuffle_rng.shuffle(&mut order);
        let lr = 0.05 * 0.5 * (1.0 + (std::f32::consts::PI * epoch as f32 / exp.epochs as f32).cos());
        for chunk in order.chunks(32) {
            let views: Vec<Tensor> = chunk
                .iter()
                .map(|&i| {
                    let f = &train_frames[i][0];
                    let mut d = vec![1];
                    d.extend_from_slice(f.dims());
                    f.reshape(&d).expect("frame reshape")
                })
                .collect();
            let refs: Vec<&Tensor> = views.iter().collect();
            let batch = Tensor::concat_axis0(&refs)?;
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| train_labels[i]).collect();
            ann.train_batch(&batch, &batch_labels, lr)?;
        }
    }
    // full-model (last exit) reference accuracy: θ → 0 disables early exits
    let (ann_full_acc, _, _) = eval_ann(&mut ann, &frames, &labels, 1e-7);
    let mut ann_pick = (1e-7f32, ann_full_acc, 0.0f32, 1.0f32);
    for theta in [0.9f32, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05] {
        let (acc, first, compute) = eval_ann(&mut ann, &frames, &labels, theta);
        if acc >= ann_full_acc - 0.005 {
            ann_pick = (theta, acc, first, compute);
            break;
        }
    }
    let (ann_theta, ann_acc, ann_first, ann_compute) = ann_pick;

    print_table(
        "Extension: DT-SNN (time-dim exits) vs early-exit ANN (depth-dim exits), iso-accuracy",
        &["model", "θ", "acc", "first-gate exits", "compute used", "extra layers"],
        &[
            vec![
                "DT-SNN".into(),
                format!("{snn_theta}"),
                format!("{:.2}%", snn_eval.accuracy * 100.0),
                format!("{:.0}%", snn_first * 100.0),
                format!("{:.0}%", snn_compute * 100.0),
                "none".into(),
            ],
            vec![
                "EE-ANN".into(),
                format!("{ann_theta}"),
                format!("{:.2}%", ann_acc * 100.0),
                format!("{:.0}%", ann_first * 100.0),
                format!("{:.0}%", ann_compute * 100.0),
                "3 heads".into(),
            ],
        ],
    );
    println!("\npaper claim: DT-SNN's first gate serves the majority; the ANN's first exit serves marginal examples");
    let path = write_json(
        "ext_early_exit_ann",
        &json!({
            "dtsnn": json!({"theta": snn_theta, "accuracy": snn_eval.accuracy,
                       "first_gate_fraction": snn_first, "compute_fraction": snn_compute}),
            "ee_ann": json!({"theta": ann_theta, "accuracy": ann_acc,
                       "first_gate_fraction": ann_first, "compute_fraction": ann_compute}),
        }),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
