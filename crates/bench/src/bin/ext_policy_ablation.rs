//! Extension ablation (beyond the paper): which confidence measure should
//! gate the exit — normalized entropy (the paper's Eq. 7), maximum softmax
//! probability, or top-2 margin? Also ablates the LIF reset mode.
//!
//! Each policy is swept over thresholds; reported is the best operating
//! point at iso-accuracy with the full-window baseline, mirroring DESIGN.md
//! §5's ablation list.

use dtsnn_bench::{json, model_config_for, print_table, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::{DynamicEvaluation, DynamicInference, ExitPolicy, StaticEvaluation};
use dtsnn_data::Preset;
use dtsnn_snn::{LifConfig, LossKind, ResetMode, SgdConfig, Trainer, TrainerConfig};
use dtsnn_tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    let dataset = Preset::Cifar10.generate(exp.scale, exp.seed)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();

    eprintln!("[ext] training VGG* (Eq. 10)…");
    let (mut net, _, _) = train_model(&dataset, Arch::Vgg, LossKind::PerTimestep, t_max, &exp)?;
    let static_eval = StaticEvaluation::run(&mut net, &frames, &labels, t_max)?;
    let target = static_eval.full_window_accuracy();
    println!("full-window static accuracy: {:.2}%", target * 100.0);

    // ---- policy family ablation --------------------------------------------
    let entropy_thetas = [0.02f32, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let prob_thresholds = [0.5f32, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98];
    let margin_thresholds = [0.2f32, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut run_family = |name: &str,
                          policies: Vec<ExitPolicy>|
     -> Result<(), Box<dyn std::error::Error>> {
        let mut best: Option<(f32, f32, String)> = None; // (avgT, acc, label)
        for policy in policies {
            let runner = DynamicInference::new(policy, t_max)?;
            let eval = DynamicEvaluation::run_batched(&mut net, &runner, &frames, &labels, None, 32)?;
            let ok = eval.accuracy >= target - 0.005;
            if ok && best.as_ref().map(|b| eval.avg_timesteps < b.0).unwrap_or(true) {
                best = Some((eval.avg_timesteps, eval.accuracy, format!("{policy:?}")));
            }
        }
        let (avg_t, acc, label) =
            best.unwrap_or((t_max as f32, target, "no iso-accuracy point".into()));
        rows.push(vec![
            name.to_string(),
            format!("{avg_t:.2}"),
            format!("{:.2}%", acc * 100.0),
            label.clone(),
        ]);
        json.push(json!({
            "policy": name, "avg_timesteps": avg_t, "accuracy": acc, "best": label,
        }));
        Ok(())
    };
    run_family(
        "entropy (paper)",
        entropy_thetas.iter().map(|&t| ExitPolicy::entropy(t).expect("valid θ")).collect(),
    )?;
    run_family(
        "max-prob",
        prob_thresholds.iter().map(|&t| ExitPolicy::max_prob(t).expect("valid p")).collect(),
    )?;
    run_family(
        "margin",
        margin_thresholds.iter().map(|&t| ExitPolicy::margin(t).expect("valid m")).collect(),
    )?;
    print_table(
        "Extension: exit-policy ablation (iso-accuracy avg timesteps, lower is better)",
        &["policy", "avg T̂", "acc", "best setting"],
        &rows,
    );

    // ---- reset-mode ablation ------------------------------------------------
    let mut rows_r = Vec::new();
    let mut json_r = Vec::new();
    for reset in [ResetMode::Zero, ResetMode::Subtract] {
        let mut cfg = model_config_for(&dataset);
        cfg.lif = LifConfig { reset, ..LifConfig::default() };
        let mut rng = TensorRng::seed_from(exp.seed);
        let mut rnet = Arch::Vgg.build(&cfg, &mut rng)?;
        let trainer = Trainer::new(TrainerConfig {
            epochs: exp.epochs,
            batch_size: 32,
            timesteps: t_max,
            loss: LossKind::PerTimestep,
            sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 },
            seed: exp.seed ^ 0xBEEF,
        })?;
        trainer.fit(&mut rnet, &dataset.train.frames(), &dataset.train.labels())?;
        let eval = StaticEvaluation::run(&mut rnet, &frames, &labels, t_max)?;
        let runner = DynamicInference::new(ExitPolicy::entropy(0.3)?, t_max)?;
        let dyn_eval = DynamicEvaluation::run_batched(&mut rnet, &runner, &frames, &labels, None, 32)?;
        rows_r.push(vec![
            format!("{reset:?}"),
            format!("{:.2}%", eval.full_window_accuracy() * 100.0),
            format!("{:.2}% @T̂={:.2}", dyn_eval.accuracy * 100.0, dyn_eval.avg_timesteps),
        ]);
        json_r.push(json!({
            "reset": format!("{reset:?}"),
            "static_accuracy": eval.full_window_accuracy(),
            "dtsnn_accuracy": dyn_eval.accuracy,
            "dtsnn_avg_timesteps": dyn_eval.avg_timesteps,
        }));
    }
    print_table(
        "Extension: LIF reset-mode ablation",
        &["reset", "static acc @T=4", "DT-SNN θ=0.3"],
        &rows_r,
    );
    let path = write_json(
        "ext_policy_ablation",
        &json!({"policies": json, "reset_modes": json_r}),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
