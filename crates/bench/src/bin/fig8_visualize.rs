//! Fig. 8 — visualization of inputs DT-SNN classifies at T̂ = 1 (easy) vs.
//! T̂ = T (hard).
//!
//! With a strict threshold, only the cleanest samples exit at the first
//! timestep while corrupted ones run the full window. The binary prints
//! ASCII renderings of both buckets and checks the mean synthesis-time
//! difficulty is lower in the early-exit bucket.

use dtsnn_bench::{json, train_model, write_json, Arch, ExpConfig};
use dtsnn_core::{ascii_render, bucket_by_timesteps, DynamicEvaluation, DynamicInference, ExitPolicy};
use dtsnn_data::Preset;
use dtsnn_snn::LossKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    // The paper visualizes TinyImageNet; at our CPU training budget the
    // 20-class stand-in underfits (uniformly high entropy, no early exits),
    // so the visualization uses the well-trained CIFAR-10* model instead —
    // the easy/hard contrast is the same phenomenon.
    let dataset = Preset::Cifar10.generate(exp.scale, exp.seed)?;
    eprintln!("[fig8] training VGG*…");
    let (mut net, _, _) = train_model(&dataset, Arch::Vgg, LossKind::PerTimestep, t_max, &exp)?;
    // low threshold: only the easiest samples exit at T̂ = 1 (paper Sec. IV-D)
    let runner = DynamicInference::new(ExitPolicy::entropy(0.2)?, t_max)?;
    let frames = dataset.test.frames();
    let labels = dataset.test.labels();
    let difficulties = dataset.test.difficulties();
    let eval = DynamicEvaluation::run_batched(&mut net, &runner, &frames, &labels, Some(&difficulties), 32)?;
    let buckets = bucket_by_timesteps(&eval.samples, t_max);

    let mean_difficulty = |idx: &[usize]| -> f32 {
        if idx.is_empty() {
            return f32::NAN;
        }
        idx.iter().map(|&i| difficulties[i]).sum::<f32>() / idx.len() as f32
    };
    println!("T̂ histogram: {:?}", eval.timestep_histogram);
    println!(
        "mean difficulty — T̂=1 bucket: {:.3} | T̂={t_max} bucket: {:.3}",
        mean_difficulty(&buckets[0]),
        mean_difficulty(&buckets[t_max - 1]),
    );
    println!("\n--- samples inferred at T̂ = 1 (easy) ---");
    for &i in buckets[0].iter().take(3) {
        println!("label {}  difficulty {:.2}", labels[i], difficulties[i]);
        println!("{}", ascii_render(&dataset.test.samples[i].frames[0]));
    }
    println!("--- samples inferred at T̂ = {t_max} (hard) ---");
    for &i in buckets[t_max - 1].iter().take(3) {
        println!("label {}  difficulty {:.2}", labels[i], difficulties[i]);
        println!("{}", ascii_render(&dataset.test.samples[i].frames[0]));
    }
    let json = json!({
        "histogram": eval.timestep_histogram,
        "mean_difficulty_t1": mean_difficulty(&buckets[0]),
        "mean_difficulty_tmax": mean_difficulty(&buckets[t_max - 1]),
    });
    let path = write_json("fig8_visualize", &json)?;
    println!("paper: easy bucket = clean centred objects; hard bucket = corrupted/occluded");
    println!("wrote {}", path.display());
    Ok(())
}
