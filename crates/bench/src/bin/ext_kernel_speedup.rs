//! Extension — event-driven sparse kernels vs the blocked dense kernels,
//! plus the zero-allocation timestep loop.
//!
//! Part 1 times the three hot kernels (`matmul`, `matmul_nt`, `conv2d`) on
//! spike-shaped operands at densities 1%, 10%, 50% and fully dense, once
//! with the sparse path forced off (density threshold −1) and once forced
//! on (+1). Both paths are bitwise identical — asserted here per density —
//! so the only thing that changes is wall-clock. The expected shape: sparse
//! wins big at 1%, still wins at 10%, and loses above the default 25%
//! threshold (which is why the dispatch threshold sits there).
//!
//! Part 2 runs the full VGG backbone through the dynamic-timestep runner
//! and proves the workspace claim: after one warm-up sample, the Eval
//! timestep loop performs **zero** heap allocations (`misses == 0` while
//! `takes` keeps counting).
//!
//! Results go to `bench-results/kernel_speedup.json` with `host_cores`
//! recorded, since kernel timings only compare within one host.

use dtsnn_bench::{json, print_table, time_it, write_json};
use dtsnn_core::{DynamicInference, ExitPolicy};
use dtsnn_snn::{vgg_small, LifConfig, ModelConfig};
use dtsnn_tensor::{simd, conv2d_ws, sparse, Conv2dSpec, Tensor, TensorRng, Workspace};

/// A [0,1) tensor thresholded into a binary spike pattern of the given
/// density (the operand shape the event-driven path is built for).
fn spikes(dims: &[usize], density: f32, rng: &mut TensorRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = if rng.bernoulli(density) { 1.0 } else { 0.0 };
    }
    t
}

fn assert_bitwise(a: &Tensor, b: &Tensor, what: &str) {
    let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(ab, bb, "{what}: sparse and dense paths must agree bitwise");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.3} ms", secs * 1e3)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = TensorRng::seed_from(0x5EED);
    let densities = [0.01f32, 0.10, 0.50, 1.0];

    // kernel operands, sized like one mid-network layer of the scaled nets
    let b_mat = Tensor::randn(&[256, 128], 0.0, 1.0, &mut rng); // matmul rhs [k, n]
    let w_nt = Tensor::randn(&[128, 256], 0.0, 1.0, &mut rng); // matmul_nt rhs [n, k]
    let spec = Conv2dSpec::new(8, 16, 3, 1, 1)?;
    let w_conv = Tensor::randn(&spec.weight_dims(), 0.0, 0.2, &mut rng);
    let bias = Tensor::zeros(&[16]);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_points = Vec::new();
    for &density in &densities {
        let a = spikes(&[128, 256], density, &mut rng);
        let x_conv = spikes(&[2, 8, 16, 16], density, &mut rng);

        // parity first, then timings (timings reuse the same inputs)
        let mm_d = sparse::with_density_threshold(-1.0, || a.matmul(&b_mat))?;
        let mm_s = sparse::with_density_threshold(1.0, || a.matmul(&b_mat))?;
        assert_bitwise(&mm_d, &mm_s, "matmul");
        let nt_d = sparse::with_density_threshold(-1.0, || a.matmul_nt(&w_nt))?;
        let nt_s = sparse::with_density_threshold(1.0, || a.matmul_nt(&w_nt))?;
        assert_bitwise(&nt_d, &nt_s, "matmul_nt");
        let mut ws_d = Workspace::new();
        let mut ws_s = Workspace::new();
        let cv_d = sparse::with_density_threshold(-1.0, || {
            conv2d_ws(&x_conv, &w_conv, Some(&bias), &spec, &mut ws_d)
        })?;
        let cv_s = sparse::with_density_threshold(1.0, || {
            conv2d_ws(&x_conv, &w_conv, Some(&bias), &spec, &mut ws_s)
        })?;
        assert_bitwise(&cv_d, &cv_s, "conv2d");

        let mut point = vec![json!({"density": density})];
        for (kernel, dense_s, sparse_s) in [
            (
                "matmul",
                sparse::with_density_threshold(-1.0, || time_it(|| a.matmul(&b_mat).unwrap())),
                sparse::with_density_threshold(1.0, || time_it(|| a.matmul(&b_mat).unwrap())),
            ),
            (
                "matmul_nt",
                sparse::with_density_threshold(-1.0, || time_it(|| a.matmul_nt(&w_nt).unwrap())),
                sparse::with_density_threshold(1.0, || time_it(|| a.matmul_nt(&w_nt).unwrap())),
            ),
            (
                "conv2d",
                sparse::with_density_threshold(-1.0, || {
                    time_it(|| {
                        let out = conv2d_ws(&x_conv, &w_conv, Some(&bias), &spec, &mut ws_d)
                            .unwrap();
                        ws_d.recycle_tensor(out);
                    })
                }),
                sparse::with_density_threshold(1.0, || {
                    time_it(|| {
                        let out = conv2d_ws(&x_conv, &w_conv, Some(&bias), &spec, &mut ws_s)
                            .unwrap();
                        ws_s.recycle_tensor(out);
                    })
                }),
            ),
        ] {
            let speedup = dense_s / sparse_s;
            rows.push(vec![
                format!("{:.0}%", density * 100.0),
                kernel.into(),
                fmt_time(dense_s),
                fmt_time(sparse_s),
                format!("{speedup:.2}×"),
            ]);
            point.push(json!({
                "kernel": kernel,
                "dense_secs": dense_s,
                "sparse_secs": sparse_s,
                "sparse_speedup": speedup,
            }));
        }
        json_points.push(json::Value::Array(point));
    }
    print_table(
        "sparse vs dense kernels (bitwise-identical outputs)",
        &["density", "kernel", "dense", "sparse", "speedup"],
        &rows,
    );

    // ---- part 2: the zero-allocation timestep loop -------------------------
    let model_cfg = ModelConfig {
        in_channels: 2,
        image_size: 16,
        num_classes: 5,
        lif: LifConfig { v_th: 1.0, tau: 0.75, ..LifConfig::default() },
        width: 8,
        // untrained Eval nets need the calibrated tdBN gain to spike at all
        tdbn_alpha: 6.0,
        dropout: 0.0,
    };
    let t_max = 4;
    let mut net = vgg_small(&model_cfg, &mut TensorRng::seed_from(11))?;
    let runner = DynamicInference::new(ExitPolicy::entropy(1e-30)?, t_max)?; // never exits
    let mut frame_rng = TensorRng::seed_from(23);
    let mut frame = || Tensor::randn(&[2, 16, 16], 0.5, 0.5, &mut frame_rng);

    // warm-up: one full sample populates every workspace size class
    let f0 = frame();
    runner.run(&mut net, std::slice::from_ref(&f0))?;
    net.reset_workspace_stats();
    let steady_samples = 8usize;
    let loop_secs = time_it(|| {
        let f = frame();
        runner.run(&mut net, std::slice::from_ref(&f)).unwrap();
    });
    for _ in 0..steady_samples {
        let f = frame();
        runner.run(&mut net, std::slice::from_ref(&f))?;
    }
    let stats = net.workspace_stats();
    assert!(stats.takes > 0, "the Eval loop must draw from the workspace");
    assert_eq!(
        stats.misses, 0,
        "warmed timestep loop must perform zero allocations: {stats:?}"
    );
    println!(
        "\nfull-net timestep loop (VGG*, T={t_max}): {} per sample — workspace takes {} / misses {} after warm-up",
        fmt_time(loop_secs),
        stats.takes,
        stats.misses
    );

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = json!({
        "host_cores": host_cores,
        "cpu_features": simd::cpu_features(),
        "simd_level": simd::level().name(),
        "densities": densities.iter().map(|&d| json!(d)).collect::<Vec<_>>(),
        "kernels": json_points,
        "timestep_loop": json!({
            "arch": "vgg_small",
            "max_timesteps": t_max,
            "steady_state_samples": steady_samples,
            "secs_per_sample": loop_secs,
            "workspace_takes": stats.takes,
            "workspace_misses": stats.misses,
        }),
        "bitwise_equal": true,
    });
    let path = write_json("kernel_speedup", &doc)?;
    println!("wrote {}", path.display());
    Ok(())
}
