//! Development probe: fast single-dataset check of the accuracy-vs-T shape
//! and the Eq. 9 / Eq. 10 gap. Not part of the paper's experiment set; used
//! to tune LIF/tdBN hyperparameters so the scaled models recreate the
//! paper's qualitative behaviour.

use dtsnn_bench::{model_config_for, print_table, ExpConfig};
use dtsnn_core::StaticEvaluation;
use dtsnn_data::Preset;
use dtsnn_snn::{LossKind, SgdConfig, Trainer, TrainerConfig};
use dtsnn_tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = ExpConfig::from_env();
    let t_max = 4;
    let alpha: f32 =
        std::env::var("DTSNN_ALPHA").ok().and_then(|v| v.parse().ok()).unwrap_or(0.0);
    let dataset = Preset::Cifar10.generate(exp.scale, exp.seed)?;
    let mut rows = Vec::new();
    for loss in [LossKind::MeanOutput, LossKind::PerTimestep] {
        let mut cfg = model_config_for(&dataset);
        if alpha > 0.0 {
            cfg.tdbn_alpha = alpha;
        }
        let mut rng = TensorRng::seed_from(exp.seed);
        let mut net = dtsnn_bench::Arch::Vgg.build(&cfg, &mut rng)?;
        let trainer = Trainer::new(TrainerConfig {
            epochs: exp.epochs,
            batch_size: 32,
            timesteps: t_max,
            loss,
            sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 },
            seed: exp.seed ^ 0xBEEF,
        })?;
        let report = trainer.fit(&mut net, &dataset.train.frames(), &dataset.train.labels())?;
        let eval = StaticEvaluation::run(
            &mut net,
            &dataset.test.frames(),
            &dataset.test.labels(),
            t_max,
        )?;
        let mut row = vec![loss.name().to_string(), format!("{:.2}", report.final_accuracy())];
        row.extend(eval.accuracy_by_t.iter().map(|a| format!("{:.1}%", a * 100.0)));
        rows.push(row);
    }
    print_table(
        &format!("probe: CIFAR-10*, epochs={}, alpha={alpha}", exp.epochs),
        &["loss", "train", "T=1", "T=2", "T=3", "T=4"],
        &rows,
    );
    Ok(())
}
