//! Serving-layer load benchmark: the continuous-batching engine under
//! Poisson and bursty open-loop arrivals, fixed θ vs SLO-aware dynamic θ.
//!
//! Every run replays a seeded arrival trace through the simulated-clock
//! server, so the numbers are a pure function of the committed seeds — no
//! wall-clock noise. Per load level the same trace is served twice, once
//! with a fixed accuracy-favoring θ and once with a dynamic controller
//! that tightens θ under queue pressure (shedding timesteps exactly when
//! the queue is deep) and relaxes it when idle. Under overload the dynamic
//! arm must improve goodput and failure rate — the bin asserts it.
//!
//! Results go to `bench-results/serving_load.json` (p50/p99 latency,
//! goodput, failure rate, mean T̂ per run).
//!
//! With `DTSNN_SERVE_SMOKE_SECS=<n>` the bin instead runs an n-second
//! real-clock smoke: a producer thread feeds Poisson traffic through an
//! MPSC channel into `run_channel` under `RealClock`, exercising the live
//! reactor path end to end (used by the CI serving stage).

use dtsnn_bench::{json, print_table, write_json};
use dtsnn_serve::{
    generate_arrivals, replay_trace, run_channel, ArrivalProcess, LoadReport, RealClock, Request,
    Server, ServerConfig, ServiceModel, SimClock, ThetaController, TracedRequest,
};
use dtsnn_snn::{vgg_small, LifConfig, ModelConfig, Snn};
use dtsnn_tensor::{Tensor, TensorRng};

const MAX_T: usize = 4;
const SLOTS: usize = 4;
const QUEUE: usize = 64;
const DEADLINE_NANOS: u64 = 40_000_000; // 40 ms budget per request
const REQUESTS: usize = 400;
/// Simulated per-step cost: 1 ms dispatch + 0.25 ms per batch row.
const SERVICE: ServiceModel = ServiceModel { step_fixed_nanos: 1_000_000, step_per_row_nanos: 250_000 };
/// Accuracy-favoring floor: the fixed arm always runs here.
const THETA_FLOOR: f32 = 0.70;
/// Load-shedding ceiling for the dynamic arm.
const THETA_CEIL: f32 = 0.98;

fn model_config() -> ModelConfig {
    ModelConfig {
        in_channels: 2,
        image_size: 8,
        num_classes: 4,
        lif: LifConfig { v_th: 1.0, tau: 0.75, ..LifConfig::default() },
        width: 4,
        // untrained Eval nets need the calibrated tdBN gain to spike at all
        tdbn_alpha: 6.0,
        dropout: 0.0,
    }
}

fn fresh_net() -> dtsnn_snn::Result<Snn> {
    vgg_small(&model_config(), &mut TensorRng::seed_from(17))
}

fn config(theta: ThetaController) -> ServerConfig {
    ServerConfig {
        max_timesteps: MAX_T,
        slots: SLOTS,
        queue_capacity: QUEUE,
        theta,
        service: SERVICE,
        default_deadline_nanos: Some(DEADLINE_NANOS),
        record_schedule: false,
    }
}

fn build_trace(arrivals: &[u64], seed: u64) -> Vec<TracedRequest> {
    let mut rng = TensorRng::seed_from(seed);
    arrivals
        .iter()
        .enumerate()
        .map(|(i, &at)| TracedRequest {
            at_nanos: at,
            request: Request {
                id: i as u64,
                frames: vec![Tensor::randn(&[2, 8, 8], 0.5, 0.5, &mut rng)],
                deadline_nanos: None,
                priority: 0,
            },
        })
        .collect()
}

fn serve(trace: &[TracedRequest], theta: ThetaController) -> (LoadReport, f32, f32) {
    let mut server =
        Server::new(fresh_net().expect("model builds"), config(theta), SimClock::new())
            .expect("valid config");
    replay_trace(&mut server, trace).expect("replay succeeds");
    let elapsed = server.now();
    let outcomes = server.take_outcomes();
    let stats = server.stats();
    assert_eq!(outcomes.len(), trace.len(), "every request must terminate");
    let report = dtsnn_serve::summarize(&outcomes, elapsed);
    let avg_width = if stats.steps > 0 {
        // rows served per step: total timesteps executed / steps
        outcomes.iter().map(|o| o.timesteps_used as f32).sum::<f32>() / stats.steps as f32
    } else {
        0.0
    };
    (report, avg_width, stats.spliced_mid_window as f32)
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.2}", nanos as f64 / 1e6)
}

fn real_clock_smoke(secs: u64) -> Result<(), Box<dyn std::error::Error>> {
    let mut server = Server::new(
        fresh_net()?,
        config(ThetaController::new(THETA_FLOOR, THETA_CEIL, 8.0)?),
        RealClock::new(),
    )?;
    let (tx, rx) = std::sync::mpsc::channel::<Request>();
    let producer = std::thread::spawn(move || {
        let mut rng = TensorRng::seed_from(0x5E4E);
        let mut sent = 0u64;
        let start = std::time::Instant::now();
        while start.elapsed().as_secs() < secs {
            let frame = Tensor::randn(&[2, 8, 8], 0.5, 0.5, &mut rng);
            if tx
                .send(Request { id: sent, frames: vec![frame], deadline_nanos: None, priority: 0 })
                .is_err()
            {
                break;
            }
            sent += 1;
            // ~200 req/s of live traffic
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        sent
    });
    run_channel(&mut server, &rx)?;
    let sent = producer.join().expect("producer thread");
    let outcomes = server.take_outcomes();
    let report = dtsnn_serve::summarize(&outcomes, server.now());
    assert_eq!(outcomes.len() as u64, sent, "live reactor must account for every request");
    assert!(report.completed > 0, "live reactor must complete requests");
    println!(
        "real-clock smoke: {}s, {} requests, {} completed, p99 {} ms, goodput {:.0}/s",
        secs,
        sent,
        report.completed,
        fmt_ms(report.p99_latency_nanos),
        report.goodput_per_sec
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Ok(v) = std::env::var("DTSNN_SERVE_SMOKE_SECS") {
        let secs: u64 = v.parse().map_err(|_| format!("bad DTSNN_SERVE_SMOKE_SECS: {v}"))?;
        return real_clock_smoke(secs);
    }

    // offered load levels in requests/second: light, near saturation (the
    // 4-slot window at ~2 ms/step serves roughly 600-700/s), and overload
    let levels = [300.0f64, 600.0, 1200.0];
    let dynamic = ThetaController::new(THETA_FLOOR, THETA_CEIL, 8.0)?;
    let fixed = ThetaController::fixed(THETA_FLOOR)?;

    let mut runs = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut overload_checked = false;
    for (pi, process_name) in ["poisson", "bursty"].iter().enumerate() {
        for &rate in &levels {
            let process = if pi == 0 {
                ArrivalProcess::Poisson { rate_per_sec: rate }
            } else {
                // bursts at 4× the average rate; off phases make up the gap
                ArrivalProcess::Bursty {
                    rate_per_sec: rate * 4.0,
                    mean_on_nanos: 20_000_000,
                    mean_off_nanos: 60_000_000,
                }
            };
            let mut rng = TensorRng::seed_from(0x10AD ^ (pi as u64) << 16 ^ rate.to_bits());
            let arrivals = generate_arrivals(process, REQUESTS, &mut rng)?;
            let trace = build_trace(&arrivals, 0xF4A3 ^ rate.to_bits());

            let (fixed_report, _, _) = serve(&trace, fixed);
            let (dyn_report, _, spliced) = serve(&trace, dynamic);
            assert!(spliced > 0.0, "load runs must exercise mid-window admission");

            for (arm, r) in [("fixed", &fixed_report), ("dynamic", &dyn_report)] {
                rows.push(vec![
                    process_name.to_string(),
                    format!("{rate:.0}/s"),
                    arm.to_string(),
                    fmt_ms(r.p50_latency_nanos),
                    fmt_ms(r.p99_latency_nanos),
                    format!("{:.0}/s", r.goodput_per_sec),
                    format!("{:.1}%", r.failure_rate * 100.0),
                    format!("{:.2}", r.avg_timesteps),
                ]);
                runs.push(json!({
                    "process": process_name.to_string(),
                    "offered_rate_per_sec": rate,
                    "controller": arm.to_string(),
                    "theta_min": THETA_FLOOR,
                    "theta_max": if arm == "fixed" { THETA_FLOOR } else { THETA_CEIL },
                    "offered": r.offered,
                    "completed": r.completed,
                    "timed_out": r.timed_out,
                    "rejected": r.rejected,
                    "failed": r.failed,
                    "p50_latency_ms": r.p50_latency_nanos as f64 / 1e6,
                    "p99_latency_ms": r.p99_latency_nanos as f64 / 1e6,
                    "censored_p50_latency_ms": r.censored_p50_latency_nanos as f64 / 1e6,
                    "censored_p99_latency_ms": r.censored_p99_latency_nanos as f64 / 1e6,
                    "goodput_per_sec": r.goodput_per_sec,
                    "failure_rate": r.failure_rate,
                    "avg_timesteps": r.avg_timesteps,
                }));
            }

            // the headline claim: under overload, shedding timesteps via
            // dynamic θ buys goodput and failure rate. (p99 over *completed*
            // requests saturates at the deadline for both arms and is
            // survivor-biased — the fixed arm times its hard tail out
            // instead of completing it — so the tail comparison lives in
            // failure_rate, not the percentile.)
            if rate >= 1200.0 {
                overload_checked = true;
                assert!(
                    dyn_report.goodput_per_sec > fixed_report.goodput_per_sec,
                    "{process_name} overload: dynamic goodput {} must beat fixed {}",
                    dyn_report.goodput_per_sec,
                    fixed_report.goodput_per_sec
                );
                assert!(
                    dyn_report.failure_rate < fixed_report.failure_rate,
                    "{process_name} overload: dynamic failure rate {} must beat fixed {}",
                    dyn_report.failure_rate,
                    fixed_report.failure_rate
                );
                assert!(
                    dyn_report.avg_timesteps < fixed_report.avg_timesteps,
                    "{process_name} overload: the win must come from shed timesteps"
                );
            }
        }
    }
    assert!(overload_checked, "the sweep must include an overload level");

    print_table(
        &format!(
            "continuous-batching serving, {REQUESTS} requests/run, {SLOTS} slots, T={MAX_T}, \
             deadline {} ms (simulated clock)",
            DEADLINE_NANOS / 1_000_000
        ),
        &["process", "offered", "θ control", "p50 ms", "p99 ms", "goodput", "failures", "mean T̂"],
        &rows,
    );

    let doc = json!({
        "requests_per_run": REQUESTS,
        "slots": SLOTS,
        "max_timesteps": MAX_T,
        "queue_capacity": QUEUE,
        "deadline_ms": DEADLINE_NANOS as f64 / 1e6,
        "service_model": json!({
            "step_fixed_ms": SERVICE.step_fixed_nanos as f64 / 1e6,
            "step_per_row_ms": SERVICE.step_per_row_nanos as f64 / 1e6,
        }),
        "arch": "vgg_small",
        "clock": "simulated",
        "runs": runs,
    });
    let path = write_json("serving_load", &doc)?;
    println!("\nwrote {}", path.display());
    Ok(())
}
