//! Shared experiment harness for the per-figure/table binaries in
//! `src/bin/` and the self-timed micro-benches in `benches/`.
//!
//! Every binary regenerates one table or figure of the paper; see
//! `DESIGN.md` for the experiment index. Set `DTSNN_SCALE` (default 1) to
//! grow the synthetic corpora and `DTSNN_EPOCHS` to override training
//! length; results are printed as aligned tables and written as JSON under
//! `bench-results/`.

use dtsnn_core::HardwareProfile;
use dtsnn_data::Dataset;
use dtsnn_imc::HardwareConfig;
use dtsnn_snn::{
    resnet_small, resnet_small_density_map, resnet_small_geometry, vgg_small,
    vgg_small_density_map, vgg_small_geometry, DensitySource, LayerGeometry, LifConfig, LossKind,
    ModelConfig, SgdConfig, Snn, TrainReport, Trainer, TrainerConfig,
};
use dtsnn_tensor::TensorRng;
use std::path::PathBuf;

pub mod json;

/// Backbone selector mirroring the paper's VGG-16 / ResNet-19 pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Scaled spiking VGG.
    Vgg,
    /// Scaled spiking ResNet.
    ResNet,
}

impl Arch {
    /// Display name (paper nomenclature, starred as scaled stand-ins).
    pub fn name(&self) -> &'static str {
        match self {
            Arch::Vgg => "VGG*",
            Arch::ResNet => "ResNet*",
        }
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn build(&self, config: &ModelConfig, rng: &mut TensorRng) -> dtsnn_snn::Result<Snn> {
        match self {
            Arch::Vgg => vgg_small(config, rng),
            Arch::ResNet => resnet_small(config, rng),
        }
    }

    /// Layer geometries for the IMC mapper.
    pub fn geometry(&self, config: &ModelConfig) -> Vec<LayerGeometry> {
        match self {
            Arch::Vgg => vgg_small_geometry(config),
            Arch::ResNet => resnet_small_geometry(config),
        }
    }

    /// Input-density provenance aligned with [`Arch::geometry`].
    pub fn density_map(&self) -> Vec<DensitySource> {
        match self {
            Arch::Vgg => vgg_small_density_map(),
            Arch::ResNet => resnet_small_density_map(),
        }
    }

    /// Both backbones.
    pub fn all() -> [Arch; 2] {
        [Arch::Vgg, Arch::ResNet]
    }
}

/// Experiment-wide knobs, read from the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpConfig {
    /// Corpus scale multiplier (`DTSNN_SCALE`, default 1).
    pub scale: usize,
    /// Training epochs (`DTSNN_EPOCHS`, default 20).
    pub epochs: usize,
    /// Base RNG seed (`DTSNN_SEED`, default 7).
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig { scale: 1, epochs: 20, seed: 7 }
    }
}

impl ExpConfig {
    /// Reads `DTSNN_SCALE` / `DTSNN_EPOCHS` / `DTSNN_SEED` from the
    /// environment, falling back to defaults.
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
        };
        ExpConfig {
            scale: get("DTSNN_SCALE", 1).max(1),
            epochs: get("DTSNN_EPOCHS", 20).max(1),
            seed: get("DTSNN_SEED", 7) as u64,
        }
    }
}

/// Model hyperparameters matched to a dataset.
pub fn model_config_for(dataset: &Dataset) -> ModelConfig {
    ModelConfig {
        in_channels: dataset.channels,
        image_size: dataset.image_size,
        num_classes: dataset.classes,
        lif: LifConfig { v_th: 1.0, tau: 0.75, ..LifConfig::default() },
        width: 32,
        // α = 1 with the high-similarity datasets reproduces the paper's
        // accuracy-vs-T shape (probe-calibrated; see DESIGN.md §6)
        tdbn_alpha: 1.0,
        dropout: 0.0,
    }
}

/// Trains `arch` on `dataset` with the given loss over `timesteps`.
///
/// # Errors
///
/// Propagates training errors.
pub fn train_model(
    dataset: &Dataset,
    arch: Arch,
    loss: LossKind,
    timesteps: usize,
    exp: &ExpConfig,
) -> dtsnn_snn::Result<(Snn, TrainReport, ModelConfig)> {
    let model_cfg = model_config_for(dataset);
    let mut rng = TensorRng::seed_from(exp.seed);
    let mut net = arch.build(&model_cfg, &mut rng)?;
    let trainer = Trainer::new(TrainerConfig {
        epochs: exp.epochs,
        batch_size: 32,
        timesteps,
        loss,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 },
        seed: exp.seed ^ 0xBEEF,
    })?;
    let report = trainer.fit(&mut net, &dataset.train.frames(), &dataset.train.labels())?;
    Ok((net, report, model_cfg))
}

/// Builds the hardware profile for a trained model.
///
/// # Errors
///
/// Propagates mapping errors.
pub fn hardware_profile_for(
    arch: Arch,
    model_cfg: &ModelConfig,
) -> dtsnn_core::Result<HardwareProfile> {
    HardwareProfile::new(
        &arch.geometry(model_cfg),
        arch.density_map(),
        model_cfg.num_classes,
        &HardwareConfig::default(),
    )
}

/// Times `f` with a short warmup and returns mean seconds per iteration.
///
/// The self-timed micro-benches in `benches/` use this instead of an
/// external harness: warm up three calls, calibrate the iteration count so
/// the measured window is ≈0.3 s, then report the mean.
pub fn time_it<R>(mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let probe = std::time::Instant::now();
    std::hint::black_box(f());
    let once = probe.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.3 / once) as usize).clamp(5, 10_000);
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes a JSON result document under `bench-results/`.
///
/// # Errors
///
/// Returns I/O errors from the filesystem.
pub fn write_json(name: &str, value: &json::Value) -> std::io::Result<PathBuf> {
    // anchor to the workspace root: binaries run from the repo root but
    // bench executables run from the package directory
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_default();
    let dir = root.join("bench-results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut text = json::to_string_pretty(value);
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_config_defaults() {
        let c = ExpConfig::default();
        assert_eq!(c.scale, 1);
        assert!(c.epochs > 0);
    }

    #[test]
    fn arch_metadata() {
        assert_ne!(Arch::Vgg.name(), Arch::ResNet.name());
        for arch in Arch::all() {
            let cfg = ModelConfig::default();
            assert_eq!(arch.geometry(&cfg).len(), arch.density_map().len());
        }
    }

    #[test]
    fn model_config_tracks_dataset() {
        let ds = dtsnn_data::cifar10_like(1, 1).unwrap();
        let mc = model_config_for(&ds);
        assert_eq!(mc.num_classes, 10);
        assert_eq!(mc.in_channels, 3);
        assert_eq!(mc.image_size, 16);
    }
}
