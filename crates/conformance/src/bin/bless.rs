//! Regenerates every committed golden trace from the live code.
//!
//! Run after an *intentional* numerics change, inspect the diff of
//! `goldens/*.json`, and commit the new files together with the change:
//!
//! ```text
//! cargo run -p dtsnn-conformance --bin bless
//! ```

use dtsnn_conformance::trace::{bless, TraceSpec};

fn main() {
    let mut failed = false;
    for spec in TraceSpec::all_defaults() {
        match bless(&spec) {
            Ok(path) => println!("blessed {}", path.display()),
            Err(e) => {
                eprintln!("failed to bless {}: {e}", spec.golden_name());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
