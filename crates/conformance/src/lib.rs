//! Conformance test layer for the DT-SNN workspace.
//!
//! Three pillars, exercised by this crate's integration tests and wired into
//! `scripts/ci.sh`:
//!
//! - **Golden traces** ([`trace`]) — a recorder that serializes a fixed-seed
//!   end-to-end run (per-timestep spike densities, accumulated logits,
//!   normalized entropy, exit timestep, and the full IMC energy/latency/EDP
//!   ledger) into committed `goldens/*.json` files, plus a replay comparator
//!   with an explicit per-field tolerance policy and a `bless` binary that
//!   regenerates the files after an intentional numerics change.
//! - **Full-network gradient checks** ([`gradcheck`]) — central finite
//!   differences over sampled parameters of complete VGG/ResNet-block
//!   networks through multi-timestep BPTT, under both the Eq. 9 mean-output
//!   and Eq. 10 per-timestep losses. Exactness comes from the LIF
//!   `smooth_spike` relaxation and frozen-statistics BatchNorm.
//! - **Differential fuzzing** ([`fuzz`]) — seeded random configurations
//!   asserting cross-path equivalences (never-exit DT-SNN ≡ static SNN,
//!   thread-count invariance, σ = 0 device reads ≡ pure quantization,
//!   mapping invariants, checkpoint round-trips, compacted batched
//!   evaluation ≡ sequential evaluation, and kernel-backend equivalence —
//!   whole forward passes forced down dense, CSR and bitset must agree
//!   bitwise), with failing cases shrunk to a minimal reproduction and
//!   reported by seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod gradcheck;
pub mod trace;

use std::path::PathBuf;

/// Conformance-layer error.
#[derive(Debug)]
pub enum ConformanceError {
    /// Filesystem failure reading or writing a golden file.
    Io(std::io::Error),
    /// A dependency crate rejected a configuration or input.
    Invalid(String),
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConformanceError::Io(e) => write!(f, "io error: {e}"),
            ConformanceError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for ConformanceError {}

impl From<std::io::Error> for ConformanceError {
    fn from(e: std::io::Error) -> Self {
        ConformanceError::Io(e)
    }
}

macro_rules! from_dep_error {
    ($($ty:ty),*) => {$(
        impl From<$ty> for ConformanceError {
            fn from(e: $ty) -> Self {
                ConformanceError::Invalid(e.to_string())
            }
        }
    )*};
}

from_dep_error!(
    dtsnn_snn::SnnError,
    dtsnn_core::CoreError,
    dtsnn_imc::ImcError,
    dtsnn_data::DataError
);

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ConformanceError>;

/// Directory holding the committed golden trace files.
///
/// Anchored to the workspace root the same way `dtsnn_bench::write_json`
/// anchors `bench-results/`, so tests resolve it regardless of the
/// working directory cargo invokes them from.
pub fn goldens_dir() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_default()
        .join("goldens")
}

/// Logical cores of the recording host, written into golden/bench context
/// blocks (the `parallel_speedup.json` precedent). Context fields are never
/// compared during replay — they document provenance.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goldens_dir_is_workspace_anchored() {
        let dir = goldens_dir();
        assert!(dir.ends_with("goldens"));
        // the parent must be the workspace root (it contains Cargo.toml)
        assert!(dir.parent().unwrap().join("Cargo.toml").exists());
    }

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }
}
