//! Golden-trace recording, comparison, and blessing.
//!
//! A golden trace is the committed JSON image of one fixed-seed end-to-end
//! run: an untrained backbone (weights pinned by the seed), a fixed synthetic
//! corpus, dynamic-timestep inference per sample with every intermediate
//! recorded (accumulated logits, per-layer spike densities, normalized-entropy
//! score, exit timestep), and the complete IMC cost ledger (per-component
//! energy, latency, EDP) derived from the measured spike activity.
//!
//! The replay test ([`compare`]) re-records the trace live and diffs it
//! field-by-field against the committed file under the tolerance policy of
//! [`tolerance_for`]. Intentional numerics changes are absorbed by running
//! the `bless` binary (`cargo run -p dtsnn-conformance --bin bless`), which
//! rewrites `goldens/*.json`.

use crate::{goldens_dir, host_cores, ConformanceError, Result};
use dtsnn_bench::json;
use dtsnn_bench::json::{Map, Value};
use dtsnn_bench::{hardware_profile_for, Arch};
use dtsnn_core::{DynamicInference, ExitPolicy};
use dtsnn_imc::{Component, InferenceCost};
use dtsnn_snn::{LifConfig, ModelConfig};
use dtsnn_tensor::{parallel, TensorRng};
use std::path::PathBuf;

/// Everything that pins one golden trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Backbone under trace.
    pub arch: Arch,
    /// Seed for weight init and corpus synthesis.
    pub seed: u64,
    /// Entropy exit threshold θ.
    pub theta: f32,
    /// Maximum timestep window T.
    pub timesteps: usize,
    /// Number of test samples traced.
    pub samples: usize,
    /// Channel width of the scaled backbone.
    pub width: usize,
    /// Whether the network runs the quantized weight backend (int8 codes on
    /// the IMC `weight_bits` grid). Quantization is a real numeric change,
    /// so quantized specs get their **own** goldens instead of riding the
    /// f32 ones.
    pub quantized: bool,
}

impl TraceSpec {
    /// The committed VGG golden.
    pub fn vgg_default() -> Self {
        TraceSpec {
            arch: Arch::Vgg,
            seed: 0xD7_5EED,
            theta: 0.85,
            timesteps: 4,
            samples: 3,
            width: 8,
            quantized: false,
        }
    }

    /// The committed ResNet golden.
    pub fn resnet_default() -> Self {
        TraceSpec { arch: Arch::ResNet, ..TraceSpec::vgg_default() }
    }

    /// The committed quantized-backend VGG golden.
    pub fn vgg_quant() -> Self {
        TraceSpec { quantized: true, ..TraceSpec::vgg_default() }
    }

    /// The committed quantized-backend ResNet golden.
    pub fn resnet_quant() -> Self {
        TraceSpec { quantized: true, ..TraceSpec::resnet_default() }
    }

    /// All committed goldens.
    pub fn all_defaults() -> [TraceSpec; 4] {
        [
            TraceSpec::vgg_default(),
            TraceSpec::resnet_default(),
            TraceSpec::vgg_quant(),
            TraceSpec::resnet_quant(),
        ]
    }

    /// Golden file stem (`trace_vgg` / `trace_resnet`, `_quant` suffixed
    /// for the quantized backend).
    pub fn golden_name(&self) -> &'static str {
        match (self.arch, self.quantized) {
            (Arch::Vgg, false) => "trace_vgg",
            (Arch::ResNet, false) => "trace_resnet",
            (Arch::Vgg, true) => "trace_vgg_quant",
            (Arch::ResNet, true) => "trace_resnet_quant",
        }
    }

    /// Path of the committed golden file.
    pub fn golden_path(&self) -> PathBuf {
        goldens_dir().join(format!("{}.json", self.golden_name()))
    }

    fn model_config(&self) -> ModelConfig {
        ModelConfig {
            in_channels: 3,
            image_size: 16,
            num_classes: 10,
            lif: LifConfig { v_th: 1.0, tau: 0.75, ..LifConfig::default() },
            width: self.width,
            // untrained weights are small and Eval-mode BatchNorm applies its
            // init statistics, so at α = 1 spikes die out after two layers
            // and the trace would be mostly zeros. A large tdBN gain keeps
            // every layer and the classifier active, so the golden pins real
            // numerics end to end. (V_th cancels: tdBN scales γ by α·V_th.)
            tdbn_alpha: 6.0,
            dropout: 0.0,
        }
    }
}

fn floats(values: &[f32]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Num(f64::from(v))).collect())
}

fn ledger(cost: &InferenceCost) -> Value {
    let mut components = Map::new();
    for c in Component::ALL {
        components.insert(c.name().to_string(), Value::Num(cost.energy.component(c)));
    }
    json!({
        "per_component_pj": Value::Object(components),
        "energy_pj": cost.energy_pj(),
        "latency_cycles": cost.latency_cycles as f64,
        "clock_ns": cost.clock_ns,
        "latency_ns": cost.latency_ns(),
        "edp_pj_ns": cost.edp(),
        "timesteps": cost.timesteps,
    })
}

/// Records the trace `spec` describes, returning the full golden document
/// (a `context` block that is never compared, plus the compared `trace`
/// block).
///
/// # Errors
///
/// Propagates model-construction, dataset, inference and cost-model errors.
pub fn record(spec: &TraceSpec) -> Result<Value> {
    let cfg = spec.model_config();
    let mut rng = TensorRng::seed_from(spec.seed);
    let mut net = spec.arch.build(&cfg, &mut rng)?;
    if spec.quantized {
        net.quantize_weights(dtsnn_imc::HardwareConfig::default().weight_bits);
    }
    let dataset = dtsnn_data::SyntheticVision::generate(
        &dtsnn_data::VisionConfig {
            train_size: 1,
            test_size: spec.samples,
            ..dtsnn_data::VisionConfig::default()
        },
        spec.seed ^ 0xDA7A,
    )?;
    let runner = DynamicInference::new(ExitPolicy::entropy(spec.theta)?, spec.timesteps)?;

    let mut sample_docs = Vec::with_capacity(spec.samples);
    let mut total_timesteps = 0usize;
    let mut layer_backends: Vec<(String, String)> = Vec::new();
    for sample in &dataset.test.samples {
        let traced = runner.run_traced(&mut net, &sample.frames)?;
        total_timesteps += traced.outcome.timesteps_used;
        layer_backends = traced.layer_backends;
        let steps: Vec<Value> = traced
            .per_timestep
            .iter()
            .map(|s| {
                json!({
                    "score": f64::from(s.score),
                    "accumulated_logits": floats(&s.accumulated_logits),
                    "spike_densities": floats(&s.spike_densities),
                })
            })
            .collect();
        sample_docs.push(json!({
            "label": sample.label as f64,
            "prediction": traced.outcome.prediction as f64,
            "timesteps_used": traced.outcome.timesteps_used as f64,
            "exited_early": traced.outcome.exited_early,
            "scores": floats(&traced.outcome.scores),
            "probabilities": floats(&traced.outcome.probabilities),
            "per_timestep": Value::Array(steps),
        }));
    }

    let activity = net.take_activity();
    let profile = hardware_profile_for(spec.arch, &cfg)?;
    let static_cost = profile.static_cost(&activity, spec.timesteps as f64)?;
    let avg_t = total_timesteps as f64 / spec.samples as f64;
    let dynamic_cost = profile.dynamic_cost(&activity, avg_t)?;

    Ok(json!({
        "context": json!({
            "schema_version": 1.0,
            "arch": spec.arch.name(),
            "seed": spec.seed as f64,
            "theta": f64::from(spec.theta),
            "timesteps": spec.timesteps as f64,
            "samples": spec.samples as f64,
            "width": spec.width as f64,
            "host_cores": host_cores() as f64,
            "threads": parallel::num_threads() as f64,
            "quantized": spec.quantized,
            // per-layer kernel-backend choices of the final sample:
            // provenance only (context is never numerically compared)
            "backends": Value::Object(layer_backends.into_iter().fold(
                Map::new(),
                |mut m, (layer, b)| {
                    m.insert(layer, Value::Str(b));
                    m
                },
            )),
        }),
        "trace": json!({
            "samples": Value::Array(sample_docs),
            "activity": json!({
                "per_layer": floats(&activity.per_layer),
                "observations": activity.observations as f64,
            }),
            "energy": json!({
                "static_full_window": ledger(&static_cost),
                "dynamic_avg": ledger(&dynamic_cost),
            }),
        }),
    }))
}

/// Relative tolerance for a numeric field at `path`.
///
/// The policy is explicit and narrow:
///
/// - everything inference-side (logits, densities, scores, probabilities,
///   predictions, exit timesteps) must replay **exactly** — these are f32
///   chains whose values round-trip bit-exactly through the JSON layer, and
///   the whole point of the deterministic execution layer is that they do
///   not depend on thread count or host;
/// - the `energy` ledger is an f64 arithmetic chain on top of the densities;
///   it is deterministic too, but we allow 1 part in 10⁹ so an intentional
///   re-association inside the cost model does not count as golden drift.
pub fn tolerance_for(path: &str) -> f64 {
    if path.contains("/energy/") {
        1e-9
    } else {
        0.0
    }
}

fn numbers_match(golden: f64, live: f64, rel_tol: f64) -> bool {
    if golden == live {
        return true;
    }
    let scale = golden.abs().max(live.abs());
    (golden - live).abs() <= rel_tol * scale
}

fn diff_value(path: &str, golden: &Value, live: &Value, diffs: &mut Vec<String>) {
    match (golden, live) {
        (Value::Num(g), Value::Num(l)) => {
            let tol = tolerance_for(path);
            if !numbers_match(*g, *l, tol) {
                diffs.push(format!("{path}: golden {g} vs live {l} (rel tol {tol:e})"));
            }
        }
        (Value::Array(g), Value::Array(l)) => {
            if g.len() != l.len() {
                diffs.push(format!("{path}: golden len {} vs live len {}", g.len(), l.len()));
                return;
            }
            for (i, (gv, lv)) in g.iter().zip(l).enumerate() {
                diff_value(&format!("{path}[{i}]"), gv, lv, diffs);
            }
        }
        (Value::Object(g), Value::Object(l)) => {
            for (key, gv) in g.iter() {
                match l.get(key) {
                    Some(lv) => diff_value(&format!("{path}/{key}"), gv, lv, diffs),
                    None => diffs.push(format!("{path}/{key}: missing from live trace")),
                }
            }
            for (key, _) in l.iter() {
                if g.get(key).is_none() {
                    diffs.push(format!("{path}/{key}: not present in golden"));
                }
            }
        }
        (g, l) if g == l => {}
        (g, l) => diffs.push(format!("{path}: golden {g:?} vs live {l:?}")),
    }
}

/// Diffs a live trace document against a golden one, returning one
/// human-readable line per drifting field (empty = conformant).
///
/// Only the `trace` block is compared; `context` documents provenance
/// (host cores, thread count, seeds) and legitimately varies between
/// machines. A `schema_version` mismatch is reported as a single diff.
pub fn compare(golden: &Value, live: &Value) -> Vec<String> {
    let mut diffs = Vec::new();
    let version = |doc: &Value| doc.get("context").and_then(|c| c.get("schema_version")).and_then(Value::as_f64);
    if version(golden) != version(live) {
        diffs.push(format!(
            "context/schema_version: golden {:?} vs live {:?} — regenerate with the bless binary",
            version(golden),
            version(live)
        ));
        return diffs;
    }
    match (golden.get("trace"), live.get("trace")) {
        (Some(g), Some(l)) => diff_value("trace", g, l, &mut diffs),
        _ => diffs.push("trace block missing from golden or live document".into()),
    }
    diffs
}

/// Loads the committed golden for `spec`.
///
/// # Errors
///
/// Returns [`ConformanceError::Io`] when the file is missing (run the bless
/// binary first) and [`ConformanceError::Invalid`] when it fails to parse.
pub fn load_golden(spec: &TraceSpec) -> Result<Value> {
    let path = spec.golden_path();
    let text = std::fs::read_to_string(&path).map_err(|e| {
        ConformanceError::Io(std::io::Error::new(
            e.kind(),
            format!(
                "{}: {e} — regenerate goldens with `cargo run -p dtsnn-conformance --bin bless`",
                path.display()
            ),
        ))
    })?;
    json::from_str(&text)
        .map_err(|e| ConformanceError::Invalid(format!("{}: {e:?}", path.display())))
}

/// Records `spec` live and writes it as the new golden, returning the path.
///
/// # Errors
///
/// Propagates recording and filesystem errors.
pub fn bless(spec: &TraceSpec) -> Result<PathBuf> {
    let doc = record(spec)?;
    let dir = goldens_dir();
    std::fs::create_dir_all(&dir)?;
    let path = spec.golden_path();
    let mut text = json::to_string_pretty(&doc);
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_is_deterministic_in_spec() {
        let spec = TraceSpec { samples: 1, ..TraceSpec::vgg_default() };
        let a = record(&spec).unwrap();
        let b = record(&spec).unwrap();
        assert!(compare(&a, &b).is_empty());
    }

    #[test]
    fn compare_flags_numeric_drift_and_shape_changes() {
        let spec = TraceSpec { samples: 1, ..TraceSpec::vgg_default() };
        let golden = record(&spec).unwrap();
        let other = record(&TraceSpec { seed: spec.seed ^ 1, ..spec }).unwrap();
        let diffs = compare(&golden, &other);
        assert!(!diffs.is_empty(), "different seeds must not replay cleanly");
        assert!(diffs.iter().all(|d| d.starts_with("trace")), "{diffs:?}");
    }

    #[test]
    fn tolerance_policy_is_exact_outside_the_energy_ledger() {
        assert_eq!(tolerance_for("trace/samples[0]/scores[1]"), 0.0);
        assert!(tolerance_for("trace/energy/static_full_window/energy_pj") > 0.0);
        assert!(numbers_match(1.0, 1.0 + 1e-13, 1e-9));
        assert!(!numbers_match(1.0, 1.0 + 1e-13, 0.0));
    }

    #[test]
    fn golden_names_differ_per_arch() {
        assert_ne!(
            TraceSpec::vgg_default().golden_name(),
            TraceSpec::resnet_default().golden_name()
        );
    }
}
