//! Whole-network finite-difference gradient verification.
//!
//! BPTT through a spiking network cannot normally be gradient-checked: the
//! Heaviside firing function makes the loss piecewise constant, so finite
//! differences see zero while the surrogate backward reports nonzero. The
//! conformance build sidesteps this with two opt-in switches that make the
//! forward pass a smooth function whose *exact* derivative the existing
//! backward code computes:
//!
//! - [`LifConfig::smooth_spike`] replaces the hard threshold with
//!   `s = ½·(tanh(b·(u − V_th)) + 1)` and backs it with the exact
//!   `½·b·sech²` derivative (with `detach_reset: false` the reset-path
//!   gradients are exact for the relaxed dynamics too);
//! - [`Snn::freeze_norm_stats`] sets BatchNorm momentum to zero, so the
//!   Train-mode forward normalizes with constant statistics and its backward
//!   is the exact adjoint.
//!
//! With both engaged, central finite differences over randomly sampled
//! parameters of a complete VGG/ResNet-block network — through multi-timestep
//! BPTT and either the Eq. 9 mean-output or Eq. 10 per-timestep loss — must
//! agree with the analytic gradients to first order. Any sign error, dropped
//! term, or mis-ordered cache in *any* layer's backward shows up here.

use crate::Result;
use dtsnn_bench::Arch;
use dtsnn_snn::{LifConfig, LossKind, Mode, ModelConfig, Snn};
use dtsnn_tensor::{Tensor, TensorRng};

/// One gradient-check configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckConfig {
    /// Backbone under check.
    pub arch: Arch,
    /// Training loss (Eq. 9 or Eq. 10).
    pub loss: LossKind,
    /// Seed for weights, inputs and parameter sampling.
    pub seed: u64,
    /// BPTT window.
    pub timesteps: usize,
    /// Batch size of the checked forward.
    pub batch: usize,
    /// Scalar parameters sampled per parameter tensor.
    pub samples_per_tensor: usize,
    /// Central-difference step.
    pub epsilon: f32,
    /// Absolute tolerance floor (covers f32 loss round-off).
    pub abs_tol: f32,
    /// Relative tolerance on top of the floor.
    pub rel_tol: f32,
}

impl GradCheckConfig {
    /// Default check for one `(arch, loss)` pair: a small-width network,
    /// three timesteps, two samples per parameter tensor.
    pub fn new(arch: Arch, loss: LossKind) -> Self {
        GradCheckConfig {
            arch,
            loss,
            seed: 0x6E4D,
            timesteps: 3,
            batch: 2,
            samples_per_tensor: 2,
            epsilon: 1e-2,
            abs_tol: 2e-3,
            rel_tol: 0.05,
        }
    }

    fn model_config(&self) -> ModelConfig {
        ModelConfig {
            in_channels: 2,
            image_size: 8,
            num_classes: 4,
            lif: LifConfig {
                tau: 0.5,
                v_th: 1.0,
                detach_reset: false,
                smooth_spike: Some(4.0),
                ..LifConfig::default()
            },
            width: 4,
            tdbn_alpha: 1.0,
            dropout: 0.0,
        }
    }
}

/// Outcome of one whole-network gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Scalar parameters compared.
    pub checked: usize,
    /// Largest |analytic − numeric| observed.
    pub max_abs_err: f32,
    /// Largest |analytic gradient| among the samples — a vacuity guard: a
    /// check over an all-zero gradient field would pass for free.
    pub max_abs_grad: f32,
    /// One line per out-of-tolerance parameter (empty = pass).
    pub failures: Vec<String>,
}

/// Applies `f` to the scalar at `(tensor_idx, elem_idx)` of `net`'s
/// parameters, in `visit_params` order.
fn with_param_scalar(net: &mut Snn, tensor_idx: usize, elem_idx: usize, f: &mut dyn FnMut(&mut f32)) {
    let mut i = 0usize;
    net.visit_params(&mut |p| {
        if i == tensor_idx {
            f(&mut p.value.data_mut()[elem_idx]);
        }
        i += 1;
    });
}

/// Runs the full-network central-difference check described by `cfg`.
///
/// # Errors
///
/// Propagates model-construction and forward/backward errors; out-of-tolerance
/// gradients are reported in [`GradCheckReport::failures`], not as `Err`.
pub fn check_network_gradients(cfg: &GradCheckConfig) -> Result<GradCheckReport> {
    let model_cfg = cfg.model_config();
    let mut rng = TensorRng::seed_from(cfg.seed);
    let mut pristine = cfg.arch.build(&model_cfg, &mut rng)?;
    // zero-momentum BN: Train-mode forward becomes a pure function (see
    // module docs), which both the analytic and FD evaluations require
    pristine.freeze_norm_stats();

    let frame = Tensor::randn(
        &[cfg.batch, model_cfg.in_channels, model_cfg.image_size, model_cfg.image_size],
        0.5,
        0.5,
        &mut rng,
    );
    let labels: Vec<usize> = (0..cfg.batch).map(|i| i % model_cfg.num_classes).collect();

    let loss_of = |net: &mut Snn| -> Result<f32> {
        let outputs =
            net.forward_sequence(std::slice::from_ref(&frame), cfg.timesteps, Mode::Train)?;
        Ok(cfg.loss.compute(&outputs, &labels)?.0)
    };

    // analytic gradients via BPTT on a fresh clone
    let mut analytic_net = pristine.clone();
    let outputs =
        analytic_net.forward_sequence(std::slice::from_ref(&frame), cfg.timesteps, Mode::Train)?;
    let (_, grads) = cfg.loss.compute(&outputs, &labels)?;
    analytic_net.zero_grads();
    for g in grads.iter().rev() {
        analytic_net.backward_timestep(g)?;
    }

    // sample scalar parameters, stratified across every parameter tensor
    let mut tensor_lens = Vec::new();
    analytic_net.visit_params(&mut |p| tensor_lens.push(p.value.data().len()));
    let mut picks: Vec<(usize, usize)> = Vec::new();
    for (t, &len) in tensor_lens.iter().enumerate() {
        let mut seen = Vec::new();
        for _ in 0..cfg.samples_per_tensor.min(len) {
            let e = rng.below(len);
            if !seen.contains(&e) {
                seen.push(e);
                picks.push((t, e));
            }
        }
    }

    let mut analytic = Vec::with_capacity(picks.len());
    for &(t, e) in &picks {
        let mut i = 0usize;
        let mut g = 0.0f32;
        analytic_net.visit_params(&mut |p| {
            if i == t {
                g = p.grad.data()[e];
            }
            i += 1;
        });
        analytic.push(g);
    }

    let mut failures = Vec::new();
    let mut max_abs_err = 0.0f32;
    let max_abs_grad = analytic.iter().fold(0.0f32, |m, g| m.max(g.abs()));
    for (&(t, e), &ana) in picks.iter().zip(&analytic) {
        let mut plus = pristine.clone();
        with_param_scalar(&mut plus, t, e, &mut |w| *w += cfg.epsilon);
        let lp = loss_of(&mut plus)?;
        let mut minus = pristine.clone();
        with_param_scalar(&mut minus, t, e, &mut |w| *w -= cfg.epsilon);
        let lm = loss_of(&mut minus)?;
        let numeric = (lp - lm) / (2.0 * cfg.epsilon);
        let err = (ana - numeric).abs();
        max_abs_err = max_abs_err.max(err);
        let tol = cfg.abs_tol + cfg.rel_tol * ana.abs().max(numeric.abs());
        if err > tol {
            failures.push(format!(
                "{} {} param tensor {t}[{e}]: analytic {ana:.6} vs numeric {numeric:.6} (err {err:.2e} > tol {tol:.2e})",
                cfg.arch.name(),
                cfg.loss.name(),
            ));
        }
    }
    Ok(GradCheckReport { checked: picks.len(), max_abs_err, max_abs_grad, failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_covers_both_archs_and_losses() {
        for arch in Arch::all() {
            for loss in [LossKind::MeanOutput, LossKind::PerTimestep] {
                let cfg = GradCheckConfig::new(arch, loss);
                assert!(cfg.epsilon > 0.0 && cfg.samples_per_tensor > 0);
                // the check-mode model must engage both exactness switches
                let mc = cfg.model_config();
                assert!(mc.lif.smooth_spike.is_some());
                assert!(!mc.lif.detach_reset);
            }
        }
    }
}
