//! Seeded differential fuzzing of cross-path equivalences.
//!
//! Every case is derived deterministically from a single `u64` seed
//! ([`FuzzCase::from_seed`]), so a failure is reproduced by re-running that
//! seed — the failure report carries it, plus a greedily minimized variant
//! of the case ([`minimize`]) that still violates the same oracle.
//!
//! Oracles (all must hold for every case):
//!
//! 1. **Never-exit DT-SNN ≡ static SNN** — with a θ no realistic entropy
//!    undercuts, dynamic inference must run the full window and its
//!    accumulated logits must equal the static path's sum bitwise (both are
//!    the same `axpy` chain over the same per-timestep outputs).
//! 2. **Thread-count invariance** — one inference under 1 worker and under 4
//!    workers returns bitwise-identical [`DynamicOutcome`]s (the contract of
//!    the deterministic parallel execution layer).
//! 3. **σ = 0 device reads ≡ pure quantization** — the noisy RRAM read model
//!    with zero conductance variation collapses to quantize–dequantize.
//! 4. **Mapping invariants** — every [`MappedLayer`] satisfies the
//!    arithmetic relations of Sec. III-B, and remapping is bitwise stable.
//! 5. **Checkpoint round-trip** — saving a network and loading it into a
//!    differently-initialized clone of the same architecture reproduces the
//!    original's inference outputs bitwise.
//! 6. **Compacted batched evaluation ≡ sequential** — the active-set
//!    compaction engine behind [`DynamicEvaluation::run_batched`] must
//!    reproduce the per-sample runner bitwise: outcomes, T̂ histogram AND
//!    accumulated spike activity, under 1 worker and under 4.
//! 7. **Fault-injection invariants** — the null [`FaultModel`] over
//!    noiseless devices reduces injection bitwise to quantize–dequantize
//!    (digital parameters untouched), a live model is seed-reproducible and
//!    thread-count invariant, and severity scaling never leaves the valid
//!    model domain.
//! 8. **Sparse ≡ dense execution** — one inference with the event-driven
//!    sparse kernels forced on (density threshold 1.0) and one with them
//!    forced off (−1.0) return bitwise-identical outcomes and accumulated
//!    logits (the gather kernels replay the dense accumulation order
//!    exactly), under 1 worker and under 4.
//! 9. **Backend equivalence** — whole forward passes forced down each
//!    kernel family via the [`backend`] override: dense, CSR and bitset
//!    return bitwise-identical outcomes, accumulated logits and spike
//!    densities under 1 worker and under 4; the quantized backend (a real
//!    numeric change, pinned by its own goldens) must be reproducible,
//!    thread-count invariant and finite.
//! 10. **Continuous-batching server ≡ sequential runner** — a seeded
//!     request trace replayed through the simulated-clock serving engine
//!     (staggered arrivals, mid-window admissions, compaction-retired
//!     rows) must reproduce each request's solo [`DynamicInference`]
//!     run bitwise — prediction, T̂ and accumulated logits — under 1
//!     worker and under 4.
//! 11. **Event-driven simulator ≡ analytical ledger** — with pipelining
//!     disabled and contention off, the event-queue hardware simulator
//!     ([`EventSim`]) must reproduce `CostModel::inference_cost` exactly:
//!     bitwise on latency cycles, within 1e-9 relative on every energy
//!     component, with and without the σ–E module, under 1 worker and
//!     under 4.
//! 12. **No-fault cluster ≡ single server** — the sharded fault-tolerant
//!     router with an empty fault schedule must be a transparent wrapper:
//!     a 1-worker cluster reproduces the single-server replay bitwise
//!     (status, prediction, T̂, finish times, scores and accumulated
//!     logits; arrival stamps are the documented divergence), and a
//!     4-worker cluster still matches each request's solo
//!     [`DynamicInference`] run bitwise with exactly-once termination —
//!     both under 1 worker thread and under 4.

use dtsnn_bench::Arch;
use dtsnn_core::{
    static_inference, DynamicEvaluation, DynamicInference, DynamicOutcome, ExitPolicy,
};
use dtsnn_imc::{
    quantize_dequantize, ChipMapping, Component, CostModel, DeviceNoise, EventSim, FaultInjector,
    FaultModel, HardwareConfig, Placement, SimOptions,
};
use dtsnn_snn::{load_params, save_params, LifConfig, Mode, ModelConfig, Snn};
use dtsnn_tensor::{backend, parallel, simd, sparse, BackendKind, Tensor, TensorRng};

/// A randomly derived but fully deterministic fuzz configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzCase {
    /// The seed this case was derived from (reproduction handle).
    pub seed: u64,
    /// `true` → ResNet backbone, `false` → VGG.
    pub resnet: bool,
    /// Number of classes (2–5).
    pub classes: usize,
    /// Square input extent (8, 12 or 16).
    pub image_size: usize,
    /// Backbone channel width (4 or 8).
    pub width: usize,
    /// Maximum timestep window (1–4).
    pub timesteps: usize,
    /// Entropy exit threshold for the early-exit oracles.
    pub theta: f32,
    /// Crossbar size for the mapping oracle (32, 64 or 128).
    pub crossbar_size: usize,
}

impl FuzzCase {
    /// Derives a case from a seed. Identical seeds give identical cases.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = TensorRng::seed_from(seed ^ 0xF0_55_EE_D5);
        FuzzCase {
            seed,
            resnet: rng.bernoulli(0.5),
            classes: 2 + rng.below(4),
            image_size: [8, 12, 16][rng.below(3)],
            width: [4, 8][rng.below(2)],
            timesteps: 1 + rng.below(4),
            theta: rng.uniform(0.05, 0.95),
            crossbar_size: [32, 64, 128][rng.below(3)],
        }
    }

    fn arch(&self) -> Arch {
        if self.resnet {
            Arch::ResNet
        } else {
            Arch::Vgg
        }
    }

    fn model_config(&self) -> ModelConfig {
        ModelConfig {
            in_channels: 2,
            image_size: self.image_size,
            num_classes: self.classes,
            lif: LifConfig { v_th: 1.0, tau: 0.75, ..LifConfig::default() },
            width: self.width,
            tdbn_alpha: 1.0,
            dropout: 0.0,
        }
    }

    fn build(&self, seed_offset: u64) -> Result<Snn, String> {
        let mut rng = TensorRng::seed_from(self.seed.wrapping_add(seed_offset));
        self.arch().build(&self.model_config(), &mut rng).map_err(|e| e.to_string())
    }

    fn frame(&self, tag: u64) -> Tensor {
        let mut rng = TensorRng::seed_from(self.seed ^ tag);
        Tensor::randn(&[2, self.image_size, self.image_size], 0.5, 0.5, &mut rng)
    }
}

/// A θ below any entropy a softmax over ≥2 finite-logit classes can reach in
/// f32 — the "never triggers" threshold of oracle 1.
const THETA_NEVER: f32 = 1e-30;

fn oracle_never_exit_equals_static(case: &FuzzCase) -> Result<(), String> {
    let runner = DynamicInference::new(
        ExitPolicy::entropy(THETA_NEVER).map_err(|e| e.to_string())?,
        case.timesteps,
    )
    .map_err(|e| e.to_string())?;
    let frame = case.frame(0xA11CE);
    let mut dyn_net = case.build(1)?;
    let traced =
        runner.run_traced(&mut dyn_net, std::slice::from_ref(&frame)).map_err(|e| e.to_string())?;
    if traced.outcome.exited_early || traced.outcome.timesteps_used != case.timesteps {
        return Err(format!(
            "θ={THETA_NEVER:e} exited early at t={} of {}",
            traced.outcome.timesteps_used, case.timesteps
        ));
    }
    let mut static_net = case.build(1)?;
    let static_pred = static_inference(&mut static_net, std::slice::from_ref(&frame), case.timesteps)
        .map_err(|e| e.to_string())?;
    if traced.outcome.prediction != static_pred {
        return Err(format!(
            "never-exit dynamic prediction {} != static prediction {static_pred}",
            traced.outcome.prediction
        ));
    }
    // bitwise: the dynamic accumulator and the static sum are the same axpy
    // chain over the same per-timestep logits
    let mut sum_net = case.build(1)?;
    let batched = frame.reshape(&[1, 2, case.image_size, case.image_size]).map_err(|e| e.to_string())?;
    let outputs = sum_net
        .forward_sequence(std::slice::from_ref(&batched), case.timesteps, Mode::Eval)
        .map_err(|e| e.to_string())?;
    let mut sum = outputs[0].clone();
    for o in &outputs[1..] {
        sum.axpy(1.0, o).map_err(|e| e.to_string())?;
    }
    let acc = &traced.per_timestep.last().expect("nonempty trace").accumulated_logits;
    if acc.as_slice() != sum.data() {
        return Err("never-exit accumulated logits differ bitwise from static sum".into());
    }
    Ok(())
}

fn oracle_thread_count_invariance(case: &FuzzCase) -> Result<(), String> {
    let runner = DynamicInference::new(
        ExitPolicy::entropy(case.theta).map_err(|e| e.to_string())?,
        case.timesteps,
    )
    .map_err(|e| e.to_string())?;
    let frame = case.frame(0xB0B);
    let run_with = |threads: usize| -> Result<DynamicOutcome, String> {
        parallel::with_threads(threads, || {
            let mut net = case.build(2)?;
            runner.run(&mut net, std::slice::from_ref(&frame)).map_err(|e| e.to_string())
        })
    };
    let single = run_with(1)?;
    let multi = run_with(4)?;
    if single != multi {
        return Err(format!(
            "outcome differs across thread counts: 1 worker {single:?} vs 4 workers {multi:?}"
        ));
    }
    Ok(())
}

fn oracle_noiseless_device_is_quantization(case: &FuzzCase) -> Result<(), String> {
    let config = HardwareConfig { sigma_over_mu: 0.0, ..HardwareConfig::default() };
    let model = DeviceNoise::new(&config).map_err(|e| e.to_string())?;
    let mut rng = TensorRng::seed_from(case.seed ^ 0x0153);
    for _ in 0..32 {
        let scale = rng.uniform(0.1, 2.0);
        let w = rng.uniform(-scale, scale);
        let read = model.read_weight(w, scale, &mut rng);
        let ideal = quantize_dequantize(w, scale, config.weight_bits);
        if (read - ideal).abs() >= 1e-4 {
            return Err(format!(
                "σ=0 read of w={w} (scale {scale}) gave {read}, quantization gives {ideal}"
            ));
        }
    }
    Ok(())
}

fn oracle_mapping_invariants(case: &FuzzCase) -> Result<(), String> {
    let config = HardwareConfig { crossbar_size: case.crossbar_size, ..HardwareConfig::default() };
    let geometry = case.arch().geometry(&case.model_config());
    let mapping = ChipMapping::map(&geometry, &config).map_err(|e| e.to_string())?;
    let slices = config.slices_per_weight();
    for (i, layer) in mapping.layers().iter().enumerate() {
        let xb = config.crossbar_size;
        if layer.physical_cols != layer.cols * slices * 2 {
            return Err(format!("layer {i}: physical_cols {} != cols·slices·2", layer.physical_cols));
        }
        if layer.row_segments != layer.rows.div_ceil(xb)
            || layer.col_segments != layer.physical_cols.div_ceil(xb)
        {
            return Err(format!("layer {i}: segment counts disagree with ⌈extent/{xb}⌉"));
        }
        if layer.crossbars != layer.row_segments * layer.col_segments {
            return Err(format!("layer {i}: crossbars != row_segments × col_segments"));
        }
        if layer.tiles != layer.crossbars.div_ceil(config.crossbars_per_tile) {
            return Err(format!("layer {i}: tiles != ⌈crossbars / crossbars_per_tile⌉"));
        }
        if layer.output_neurons != layer.cols * layer.vector_presentations {
            return Err(format!("layer {i}: output_neurons != cols × presentations"));
        }
    }
    if mapping.layers().last().map(|l| l.is_classifier) != Some(true) {
        return Err("last mapped layer not marked as classifier".into());
    }
    let remapped = ChipMapping::map(&geometry, &config).map_err(|e| e.to_string())?;
    if mapping != remapped {
        return Err("remapping the same geometry is not bitwise stable".into());
    }
    Ok(())
}

fn oracle_checkpoint_roundtrip(case: &FuzzCase) -> Result<(), String> {
    let mut original = case.build(3)?;
    let path = std::env::temp_dir().join(format!(
        "dtsnn-fuzz-ckpt-{}-{}.bin",
        case.seed,
        std::process::id()
    ));
    save_params(&mut original, &path).map_err(|e| e.to_string())?;
    // same architecture, different weights — load must overwrite all of them
    let mut reloaded = case.build(4)?;
    let load_result = load_params(&mut reloaded, &path).map_err(|e| e.to_string());
    let _ = std::fs::remove_file(&path);
    load_result?;
    let frame = case
        .frame(0xC0FFEE)
        .reshape(&[1, 2, case.image_size, case.image_size])
        .map_err(|e| e.to_string())?;
    let a = original
        .forward_sequence(std::slice::from_ref(&frame), case.timesteps, Mode::Eval)
        .map_err(|e| e.to_string())?;
    let b = reloaded
        .forward_sequence(std::slice::from_ref(&frame), case.timesteps, Mode::Eval)
        .map_err(|e| e.to_string())?;
    if a != b {
        return Err("reloaded network's inference outputs differ bitwise from the original".into());
    }
    Ok(())
}

fn oracle_batched_compaction_equals_sequential(case: &FuzzCase) -> Result<(), String> {
    let runner = DynamicInference::new(
        ExitPolicy::entropy(case.theta).map_err(|e| e.to_string())?,
        case.timesteps,
    )
    .map_err(|e| e.to_string())?;
    let samples = 5usize;
    let frames: Vec<Vec<Tensor>> =
        (0..samples).map(|k| vec![case.frame(0xBA7C40 + k as u64)]).collect();
    let labels: Vec<usize> = (0..samples).map(|k| k % case.classes).collect();
    // real difficulty values: a NaN placeholder would defeat the equality check
    let diffs: Vec<f32> = (0..samples).map(|k| k as f32 / samples as f32).collect();
    for threads in [1usize, 4] {
        let (seq, bat) = parallel::with_threads(threads, || -> Result<_, String> {
            let mut net = case.build(5)?;
            let seq = DynamicEvaluation::run(&mut net, &runner, &frames, &labels, Some(&diffs))
                .map_err(|e| e.to_string())?;
            let mut net = case.build(5)?;
            let bat = DynamicEvaluation::run_batched(
                &mut net, &runner, &frames, &labels, Some(&diffs), 2,
            )
            .map_err(|e| e.to_string())?;
            Ok((seq, bat))
        })?;
        if seq != bat {
            return Err(format!(
                "{threads}-worker batched evaluation diverges from sequential \
                 (outcomes/histogram/activity): sequential {seq:?} vs batched {bat:?}"
            ));
        }
    }
    Ok(())
}

fn oracle_fault_injection_invariants(case: &FuzzCase) -> Result<(), String> {
    let geometry = case.arch().geometry(&case.model_config());
    // (a) the null model over noiseless devices collapses to pure
    // quantization on the crossbar-mapped parameters, and leaves the
    // digital (non-decay) parameters untouched
    let quiet = HardwareConfig {
        sigma_over_mu: 0.0,
        crossbar_size: case.crossbar_size,
        ..HardwareConfig::default()
    };
    let injector = FaultInjector::for_geometry(FaultModel::none(), &geometry, &quiet)
        .map_err(|e| e.to_string())?;
    let mut net = case.build(6)?;
    let mut originals: Vec<(bool, Vec<f32>)> = Vec::new();
    net.visit_params(&mut |p| originals.push((p.decay, p.value.data().to_vec())));
    let mut rng = TensorRng::seed_from(case.seed ^ 0xFA17);
    let report = injector.inject(&mut net, &mut rng).map_err(|e| e.to_string())?;
    if report.weights_faulted != 0 || report.stuck_on + report.stuck_off != 0 {
        return Err(format!("null model reported faults: {report:?}"));
    }
    let mut idx = 0usize;
    let mut violation: Option<String> = None;
    net.visit_params(&mut |p| {
        let (decay, orig) = &originals[idx];
        idx += 1;
        if violation.is_some() {
            return;
        }
        if *decay {
            let scale = orig.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            for (&a, &o) in p.value.data().iter().zip(orig) {
                let want = quantize_dequantize(o, scale, quiet.weight_bits);
                if a.to_bits() != want.to_bits() {
                    violation =
                        Some(format!("null injection of {o} gave {a}, quantization gives {want}"));
                    return;
                }
            }
        } else if p.value.data() != orig.as_slice() {
            violation = Some("null injection touched a digital (non-crossbar) parameter".into());
        }
    });
    if let Some(e) = violation {
        return Err(e);
    }
    // (b) severity scaling must stay inside the valid model domain
    let model = FaultModel {
        stuck_on_rate: 0.01,
        stuck_off_rate: 0.02,
        read_sigma: 0.03,
        drift: 0.02,
        dead_wordline_rate: 0.005,
        dead_bitline_rate: 0.005,
    };
    if model.scaled(4.0).validate().is_err() || !model.scaled(0.0).is_null() {
        return Err("scaling a valid fault model left the valid domain".into());
    }
    // (c) a live model must be seed-reproducible and thread-count invariant
    let config = HardwareConfig { crossbar_size: case.crossbar_size, ..HardwareConfig::default() };
    let damage = |threads: usize| {
        parallel::with_threads(threads, || -> Result<_, String> {
            let injector = FaultInjector::for_geometry(model, &geometry, &config)
                .map_err(|e| e.to_string())?;
            let mut net = case.build(6)?;
            let mut rng = TensorRng::seed_from(case.seed ^ 0xDA06);
            let report = injector.inject(&mut net, &mut rng).map_err(|e| e.to_string())?;
            let mut weights: Vec<Vec<f32>> = Vec::new();
            net.visit_params(&mut |p| weights.push(p.value.data().to_vec()));
            Ok((weights, report))
        })
    };
    let single = damage(1)?;
    if single != damage(1)? {
        return Err("same-seed fault injection is not reproducible".into());
    }
    if single != damage(4)? {
        return Err("fault injection differs across thread counts".into());
    }
    Ok(())
}

fn oracle_sparse_equals_dense(case: &FuzzCase) -> Result<(), String> {
    let runner = DynamicInference::new(
        ExitPolicy::entropy(case.theta).map_err(|e| e.to_string())?,
        case.timesteps,
    )
    .map_err(|e| e.to_string())?;
    let frame = case.frame(0x5BA25E);
    for threads in [1usize, 4] {
        let run_at = |threshold: f32| -> Result<_, String> {
            parallel::with_threads(threads, || {
                sparse::with_density_threshold(threshold, || {
                    let mut net = case.build(7)?;
                    let traced = runner
                        .run_traced(&mut net, std::slice::from_ref(&frame))
                        .map_err(|e| e.to_string())?;
                    Ok((traced.outcome, traced.per_timestep))
                })
            })
        };
        let dense = run_at(-1.0)?; // sparse path forced off
        let sparse_forced = run_at(1.0)?; // sparse path forced on everywhere
        if dense.0 != sparse_forced.0 {
            return Err(format!(
                "{threads}-worker outcome differs: dense {:?} vs sparse {:?}",
                dense.0, sparse_forced.0
            ));
        }
        for (t, (d, s)) in dense.1.iter().zip(&sparse_forced.1).enumerate() {
            let db: Vec<u32> = d.accumulated_logits.iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u32> = s.accumulated_logits.iter().map(|v| v.to_bits()).collect();
            if db != sb {
                return Err(format!(
                    "{threads}-worker accumulated logits differ bitwise at t={}",
                    t + 1
                ));
            }
            if d.spike_densities != s.spike_densities {
                return Err(format!(
                    "{threads}-worker spike densities differ at t={}",
                    t + 1
                ));
            }
        }
    }
    Ok(())
}

fn oracle_backend_equivalence(case: &FuzzCase) -> Result<(), String> {
    let runner = DynamicInference::new(
        ExitPolicy::entropy(case.theta).map_err(|e| e.to_string())?,
        case.timesteps,
    )
    .map_err(|e| e.to_string())?;
    let frame = case.frame(0xBAC_EAD);
    let run_forced = |threads: usize, kind: BackendKind| -> Result<_, String> {
        parallel::with_threads(threads, || {
            backend::with_backend(kind, || {
                let mut net = case.build(8)?;
                let traced = runner
                    .run_traced(&mut net, std::slice::from_ref(&frame))
                    .map_err(|e| e.to_string())?;
                Ok((traced.outcome, traced.per_timestep))
            })
        })
    };
    for threads in [1usize, 4] {
        // dense is the oracle; CSR and bitset must replay it bitwise
        let dense = run_forced(threads, BackendKind::Dense)?;
        for kind in [BackendKind::Csr, BackendKind::Bitset] {
            let other = run_forced(threads, kind)?;
            if dense.0 != other.0 {
                return Err(format!(
                    "{threads}-worker outcome differs: dense {:?} vs {kind:?} {:?}",
                    dense.0, other.0
                ));
            }
            for (t, (d, o)) in dense.1.iter().zip(&other.1).enumerate() {
                let db: Vec<u32> = d.accumulated_logits.iter().map(|v| v.to_bits()).collect();
                let ob: Vec<u32> = o.accumulated_logits.iter().map(|v| v.to_bits()).collect();
                if db != ob {
                    return Err(format!(
                        "{threads}-worker {kind:?} accumulated logits differ bitwise at t={}",
                        t + 1
                    ));
                }
                if d.spike_densities != o.spike_densities {
                    return Err(format!(
                        "{threads}-worker {kind:?} spike densities differ at t={}",
                        t + 1
                    ));
                }
            }
        }
    }
    // quantized is a real numeric change: demand reproducibility,
    // thread-count invariance and finiteness instead of bitwise identity
    let q1 = run_forced(1, BackendKind::Quantized)?;
    let q2 = run_forced(1, BackendKind::Quantized)?;
    if q1 != q2 {
        return Err("quantized backend is not run-to-run reproducible".into());
    }
    let q4 = run_forced(4, BackendKind::Quantized)?;
    if q1 != q4 {
        return Err("quantized backend differs across thread counts".into());
    }
    for (t, step) in q1.1.iter().enumerate() {
        if step.accumulated_logits.iter().any(|v| !v.is_finite()) {
            return Err(format!("quantized logits not finite at t={}", t + 1));
        }
    }
    Ok(())
}

fn oracle_simd_equals_scalar(case: &FuzzCase) -> Result<(), String> {
    let runner = DynamicInference::new(
        ExitPolicy::entropy(case.theta).map_err(|e| e.to_string())?,
        case.timesteps,
    )
    .map_err(|e| e.to_string())?;
    let frame = case.frame(0x51_3D);
    let run_at = |threads: usize, level: simd::SimdLevel| -> Result<_, String> {
        parallel::with_threads(threads, || {
            simd::with_level(level, || {
                let mut net = case.build(13)?;
                let traced = runner
                    .run_traced(&mut net, std::slice::from_ref(&frame))
                    .map_err(|e| e.to_string())?;
                Ok((traced.outcome, traced.per_timestep))
            })
        })
    };
    // forced-scalar is the conformance oracle; every detected vector tier
    // must replay the whole traced forward pass bitwise
    for threads in [1usize, 4] {
        let scalar = run_at(threads, simd::SimdLevel::Scalar)?;
        for &lvl in simd::SimdLevel::ALL.iter().filter(|&&l| l <= simd::detected()) {
            let vec = run_at(threads, lvl)?;
            if scalar.0 != vec.0 {
                return Err(format!(
                    "{threads}-worker outcome differs: scalar {:?} vs {} {:?}",
                    scalar.0,
                    lvl.name(),
                    vec.0
                ));
            }
            for (t, (a, b)) in scalar.1.iter().zip(&vec.1).enumerate() {
                let ab: Vec<u32> = a.accumulated_logits.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.accumulated_logits.iter().map(|v| v.to_bits()).collect();
                if ab != bb {
                    return Err(format!(
                        "{threads}-worker {} accumulated logits differ bitwise at t={}",
                        lvl.name(),
                        t + 1
                    ));
                }
                if a.spike_densities != b.spike_densities {
                    return Err(format!(
                        "{threads}-worker {} spike densities differ at t={}",
                        lvl.name(),
                        t + 1
                    ));
                }
            }
        }
    }
    Ok(())
}

fn oracle_serving_equals_sequential(case: &FuzzCase) -> Result<(), String> {
    use dtsnn_serve::{
        replay_trace, CompletionStatus, Request, Server, ServerConfig, ServiceModel, SimClock,
        ThetaController, TracedRequest,
    };
    let runner = DynamicInference::new(
        ExitPolicy::entropy(case.theta).map_err(|e| e.to_string())?,
        case.timesteps,
    )
    .map_err(|e| e.to_string())?;
    // staggered arrivals under 2 slots force mid-window admissions into
    // carried LIF state whenever exits free slots out of phase
    let samples = 5usize;
    let trace: Vec<TracedRequest> = (0..samples)
        .map(|k| TracedRequest {
            at_nanos: k as u64 * 700,
            request: Request {
                id: k as u64,
                frames: vec![case.frame(0x5E7_5E7 + k as u64)],
                deadline_nanos: None,
                priority: 0,
            },
        })
        .collect();
    let config = ServerConfig {
        max_timesteps: case.timesteps,
        slots: 2,
        queue_capacity: samples,
        theta: ThetaController::fixed(case.theta).map_err(|e| e.to_string())?,
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 100 },
        default_deadline_nanos: None,
        record_schedule: false,
    };
    for threads in [1usize, 4] {
        let outcomes = parallel::with_threads(threads, || -> Result<_, String> {
            let net = case.build(9)?;
            let mut server =
                Server::new(net, config.clone(), SimClock::new()).map_err(|e| e.to_string())?;
            replay_trace(&mut server, &trace).map_err(|e| e.to_string())?;
            Ok(server.take_outcomes())
        })?;
        if outcomes.len() != samples {
            return Err(format!(
                "{threads}-worker server returned {} outcomes for {samples} requests",
                outcomes.len()
            ));
        }
        for tr in &trace {
            let outcome = outcomes
                .iter()
                .find(|o| o.id == tr.request.id)
                .ok_or_else(|| format!("request {} has no outcome", tr.request.id))?;
            if outcome.status != CompletionStatus::Completed {
                return Err(format!(
                    "{threads}-worker request {} ended {:?} without deadlines configured",
                    tr.request.id, outcome.status
                ));
            }
            let mut net = case.build(9)?;
            let solo = runner
                .run_traced(&mut net, &tr.request.frames)
                .map_err(|e| e.to_string())?;
            if outcome.prediction != Some(solo.outcome.prediction)
                || outcome.timesteps_used != solo.outcome.timesteps_used
            {
                return Err(format!(
                    "{threads}-worker request {}: server (pred {:?}, T̂ {}) vs solo (pred {}, T̂ {})",
                    tr.request.id,
                    outcome.prediction,
                    outcome.timesteps_used,
                    solo.outcome.prediction,
                    solo.outcome.timesteps_used
                ));
            }
            let solo_acc = &solo.per_timestep.last().expect("nonempty trace").accumulated_logits;
            let server_bits: Vec<u32> =
                outcome.accumulated_logits.iter().map(|v| v.to_bits()).collect();
            let solo_bits: Vec<u32> = solo_acc.iter().map(|v| v.to_bits()).collect();
            if server_bits != solo_bits {
                return Err(format!(
                    "{threads}-worker request {}: accumulated logits differ bitwise from the solo run",
                    tr.request.id
                ));
            }
        }
    }
    Ok(())
}

fn oracle_cluster_equals_server(case: &FuzzCase) -> Result<(), String> {
    use dtsnn_serve::{
        replay_trace, BrownoutConfig, Cluster, ClusterConfig, CompletionStatus, FaultSchedule,
        Request, Server, ServerConfig, ServiceModel, SimClock, ThetaController, TracedRequest,
    };
    let samples = 5usize;
    let trace: Vec<TracedRequest> = (0..samples)
        .map(|k| TracedRequest {
            at_nanos: k as u64 * 700,
            request: Request {
                id: k as u64,
                frames: vec![case.frame(0xC1_057E4 + k as u64)],
                deadline_nanos: None,
                priority: 0,
            },
        })
        .collect();
    let server_config = ServerConfig {
        max_timesteps: case.timesteps,
        slots: 2,
        queue_capacity: samples,
        theta: ThetaController::fixed(case.theta).map_err(|e| e.to_string())?,
        service: ServiceModel { step_fixed_nanos: 1000, step_per_row_nanos: 100 },
        default_deadline_nanos: None,
        record_schedule: false,
    };
    let cluster_config = ClusterConfig {
        server: server_config.clone(),
        queue_capacity: samples,
        retry_budget: 3,
        backoff_base_nanos: 1000,
        stall_timeout_nanos: None,
        hedge_after_nanos: None,
        max_consecutive_faults: 3,
        brownout: BrownoutConfig::disabled(),
        record_events: false,
    };
    let runner = DynamicInference::new(
        ExitPolicy::entropy(case.theta).map_err(|e| e.to_string())?,
        case.timesteps,
    )
    .map_err(|e| e.to_string())?;
    for threads in [1usize, 4] {
        let baseline = parallel::with_threads(threads, || -> Result<_, String> {
            let net = case.build(9)?;
            let mut server =
                Server::new(net, server_config.clone(), SimClock::new()).map_err(|e| e.to_string())?;
            replay_trace(&mut server, &trace).map_err(|e| e.to_string())?;
            Ok(server.take_outcomes())
        })?;
        for workers in [1usize, 4] {
            let outcomes = parallel::with_threads(threads, || -> Result<_, String> {
                let net = case.build(9)?;
                let mut cluster =
                    Cluster::simulated(net, cluster_config.clone(), workers, FaultSchedule::none())
                        .map_err(|e| e.to_string())?;
                cluster.run_trace(&trace).map_err(|e| e.to_string())?;
                let stats = cluster.stats();
                if stats.completed != samples as u64
                    || stats.requeues + stats.hedges + stats.shed + stats.failed != 0
                {
                    return Err(format!("no-fault {workers}-worker cluster misbehaved: {stats:?}"));
                }
                Ok(cluster.take_outcomes())
            })?;
            if outcomes.len() != samples {
                return Err(format!(
                    "threads={threads} workers={workers}: {} outcomes for {samples} requests",
                    outcomes.len()
                ));
            }
            if workers == 1 {
                // full behavioral parity with the single server, including
                // termination order and finish times (arrival stamps are
                // the documented divergence)
                for (c, b) in outcomes.iter().zip(&baseline) {
                    let c_bits: Vec<u32> =
                        c.accumulated_logits.iter().map(|v| v.to_bits()).collect();
                    let b_bits: Vec<u32> =
                        b.accumulated_logits.iter().map(|v| v.to_bits()).collect();
                    if c.id != b.id
                        || c.status != b.status
                        || c.prediction != b.prediction
                        || c.timesteps_used != b.timesteps_used
                        || c.finish_nanos != b.finish_nanos
                        || c_bits != b_bits
                    {
                        return Err(format!(
                            "threads={threads}: 1-worker cluster diverged from the single server \
                             at request {} (cluster {:?} pred {:?} T̂ {} finish {}, server {:?} \
                             pred {:?} T̂ {} finish {})",
                            c.id,
                            c.status,
                            c.prediction,
                            c.timesteps_used,
                            c.finish_nanos,
                            b.status,
                            b.prediction,
                            b.timesteps_used,
                            b.finish_nanos
                        ));
                    }
                }
            } else {
                // sharded: per-request solo parity and exactly-once
                for tr in &trace {
                    let outcome = outcomes
                        .iter()
                        .find(|o| o.id == tr.request.id)
                        .ok_or_else(|| format!("request {} has no outcome", tr.request.id))?;
                    if outcome.status != CompletionStatus::Completed {
                        return Err(format!(
                            "workers={workers} request {} ended {:?} without faults or deadlines",
                            tr.request.id, outcome.status
                        ));
                    }
                    let mut net = case.build(9)?;
                    let solo = runner
                        .run_traced(&mut net, &tr.request.frames)
                        .map_err(|e| e.to_string())?;
                    let solo_acc =
                        &solo.per_timestep.last().expect("nonempty trace").accumulated_logits;
                    let outcome_bits: Vec<u32> =
                        outcome.accumulated_logits.iter().map(|v| v.to_bits()).collect();
                    let solo_bits: Vec<u32> = solo_acc.iter().map(|v| v.to_bits()).collect();
                    if outcome.prediction != Some(solo.outcome.prediction)
                        || outcome.timesteps_used != solo.outcome.timesteps_used
                        || outcome_bits != solo_bits
                    {
                        return Err(format!(
                            "workers={workers} request {}: sharded outcome (pred {:?}, T̂ {}) \
                             drifted from solo (pred {}, T̂ {})",
                            tr.request.id,
                            outcome.prediction,
                            outcome.timesteps_used,
                            solo.outcome.prediction,
                            solo.outcome.timesteps_used
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn oracle_event_sim_matches_ledger(case: &FuzzCase) -> Result<(), String> {
    let config = HardwareConfig { crossbar_size: case.crossbar_size, ..HardwareConfig::default() };
    let geometry = case.arch().geometry(&case.model_config());
    let mapping = ChipMapping::map(&geometry, &config).map_err(|e| e.to_string())?;
    let cost = CostModel::new(mapping, config).map_err(|e| e.to_string())?;
    // seeded per-layer densities; the analog-encoded first layer stays 1.0
    let mut rng = TensorRng::seed_from(case.seed ^ 0x51E7_11);
    let mut densities: Vec<f32> =
        (0..cost.mapping().layers().len()).map(|_| rng.uniform(0.0, 1.0)).collect();
    densities[0] = 1.0;
    for classes in [None, Some(case.classes)] {
        let ledger = cost
            .inference_cost(&densities, case.timesteps as f64, classes)
            .map_err(|e| e.to_string())?;
        for threads in [1usize, 4] {
            let report = parallel::with_threads(threads, || {
                let placement = Placement::linear(cost.mapping())?;
                EventSim::new(&cost, placement, SimOptions::analytical_parity())?
                    .run(&densities, case.timesteps, classes)
            })
            .map_err(|e| e.to_string())?;
            if report.cost.latency_cycles != ledger.latency_cycles {
                return Err(format!(
                    "threads={threads} classes={classes:?}: event-sim latency {} cycles != \
                     analytical {} cycles",
                    report.cost.latency_cycles, ledger.latency_cycles
                ));
            }
            for c in Component::ALL {
                let sim = report.cost.energy.component(c);
                let ana = ledger.energy.component(c);
                let relative = (sim - ana).abs() / ana.abs().max(1e-12);
                if relative > 1e-9 {
                    return Err(format!(
                        "threads={threads} classes={classes:?}: component {} energy {sim} pJ \
                         drifts from analytical {ana} pJ (relative {relative:e})",
                        c.name()
                    ));
                }
            }
            if (report.cost.timesteps - ledger.timesteps).abs() > 0.0 {
                return Err(format!(
                    "threads={threads}: executed timesteps {} != analytical {}",
                    report.cost.timesteps, ledger.timesteps
                ));
            }
        }
    }
    Ok(())
}

/// Runs every oracle against `case`, returning the first violation.
///
/// # Errors
///
/// Returns a description of the violated equivalence.
pub fn run_case(case: &FuzzCase) -> Result<(), String> {
    oracle_never_exit_equals_static(case).map_err(|e| format!("never-exit≡static: {e}"))?;
    oracle_thread_count_invariance(case).map_err(|e| format!("thread-invariance: {e}"))?;
    oracle_noiseless_device_is_quantization(case).map_err(|e| format!("σ=0≡quantize: {e}"))?;
    oracle_mapping_invariants(case).map_err(|e| format!("mapping: {e}"))?;
    oracle_checkpoint_roundtrip(case).map_err(|e| format!("checkpoint: {e}"))?;
    oracle_batched_compaction_equals_sequential(case)
        .map_err(|e| format!("batched-compaction≡sequential: {e}"))?;
    oracle_fault_injection_invariants(case).map_err(|e| format!("fault-injection: {e}"))?;
    oracle_sparse_equals_dense(case).map_err(|e| format!("sparse≡dense: {e}"))?;
    oracle_backend_equivalence(case).map_err(|e| format!("backend-equivalence: {e}"))?;
    oracle_simd_equals_scalar(case).map_err(|e| format!("simd≡scalar: {e}"))?;
    oracle_serving_equals_sequential(case).map_err(|e| format!("serving≡sequential: {e}"))?;
    oracle_event_sim_matches_ledger(case).map_err(|e| format!("event-sim≡ledger: {e}"))?;
    oracle_cluster_equals_server(case).map_err(|e| format!("cluster≡server: {e}"))?;
    Ok(())
}

/// Greedily shrinks a failing case while `check` keeps failing.
///
/// Each step tries one-notch reductions of every dimension (fewer timesteps,
/// smaller image, narrower network, fewer classes, VGG instead of ResNet,
/// smaller crossbar) and keeps the first reduction that still fails,
/// looping to a fixed point. The result is the minimal reproduction reported
/// alongside the seed.
pub fn minimize(case: FuzzCase, check: &dyn Fn(&FuzzCase) -> Result<(), String>) -> FuzzCase {
    debug_assert!(check(&case).is_err(), "minimize requires a failing case");
    let mut current = case;
    loop {
        let mut candidates: Vec<FuzzCase> = Vec::new();
        if current.timesteps > 1 {
            candidates.push(FuzzCase { timesteps: current.timesteps - 1, ..current });
        }
        if current.image_size > 8 {
            candidates.push(FuzzCase { image_size: current.image_size - 4, ..current });
        }
        if current.width > 4 {
            candidates.push(FuzzCase { width: 4, ..current });
        }
        if current.classes > 2 {
            candidates.push(FuzzCase { classes: current.classes - 1, ..current });
        }
        if current.resnet {
            candidates.push(FuzzCase { resnet: false, ..current });
        }
        if current.crossbar_size > 32 {
            candidates.push(FuzzCase { crossbar_size: current.crossbar_size / 2, ..current });
        }
        match candidates.into_iter().find(|c| check(c).is_err()) {
            Some(smaller) => current = smaller,
            None => return current,
        }
    }
}

/// A minimized, reproducible fuzz failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFailure {
    /// Seed that reproduces the failure (`FuzzCase::from_seed(seed)`).
    pub seed: u64,
    /// The case as originally derived.
    pub original: FuzzCase,
    /// The greedily minimized case that still fails.
    pub minimized: FuzzCase,
    /// The violated oracle, from the minimized case.
    pub message: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fuzz failure — reproduce with seed {:#x} (FuzzCase::from_seed then run_case)\n  oracle: {}\n  original:  {:?}\n  minimized: {:?}",
            self.seed, self.message, self.original, self.minimized
        )
    }
}

/// Derives the case for `seed`, runs every oracle, and on failure returns the
/// seed plus a minimized reproduction.
///
/// # Errors
///
/// Returns [`FuzzFailure`] describing the violated equivalence.
pub fn run_seed(seed: u64) -> Result<(), Box<FuzzFailure>> {
    let original = FuzzCase::from_seed(seed);
    match run_case(&original) {
        Ok(()) => Ok(()),
        Err(first_message) => {
            let minimized = minimize(original, &|c| run_case(c));
            let message = run_case(&minimized).err().unwrap_or(first_message);
            Err(Box::new(FuzzFailure { seed, original, minimized, message }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = FuzzCase::from_seed(seed);
            assert_eq!(a, FuzzCase::from_seed(seed));
            assert!((2..=5).contains(&a.classes));
            assert!([8, 12, 16].contains(&a.image_size));
            assert!([4, 8].contains(&a.width));
            assert!((1..=4).contains(&a.timesteps));
            assert!(a.theta > 0.0 && a.theta < 1.0);
            assert!([32, 64, 128].contains(&a.crossbar_size));
        }
        // the derivation actually varies across seeds
        let distinct: std::collections::HashSet<usize> =
            (0..64).map(|s| FuzzCase::from_seed(s).classes).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn minimizer_reaches_the_smallest_failing_case() {
        // synthetic oracle: fails whenever timesteps ≥ 2 and width ≥ 8 —
        // the minimizer must shrink everything else to its floor while
        // keeping exactly those two dimensions at their failure boundary
        let check = |c: &FuzzCase| -> Result<(), String> {
            if c.timesteps >= 2 && c.width >= 8 {
                Err("synthetic".into())
            } else {
                Ok(())
            }
        };
        let start = FuzzCase {
            seed: 99,
            resnet: true,
            classes: 5,
            image_size: 16,
            width: 8,
            timesteps: 4,
            theta: 0.5,
            crossbar_size: 128,
        };
        let min = minimize(start, &check);
        assert!(check(&min).is_err(), "minimized case must still fail");
        assert_eq!(min.timesteps, 2);
        assert_eq!(min.width, 8);
        assert_eq!(min.image_size, 8);
        assert_eq!(min.classes, 2);
        assert!(!min.resnet);
        assert_eq!(min.crossbar_size, 32);
    }
}
