//! Differential fuzz smoke: a fixed budget of seeds through every oracle.
//!
//! CI runs this at `DTSNN_THREADS=1` and `4`; the oracles themselves pin
//! thread counts where the equivalence demands it, so the suite must pass
//! identically under both. A failure prints the reproducing seed and a
//! minimized case (see `dtsnn_conformance::fuzz`).

use dtsnn_conformance::fuzz::run_seed;

/// Fixed smoke budget. Seeds are arbitrary but committed: a failure seen in
/// CI is reproduced locally by the same seed.
const SMOKE_SEEDS: [u64; 4] = [0xD75_0001, 0xD75_0002, 0xD75_0003, 0x5EED_CAFE];

#[test]
fn fixed_seed_fuzz_budget_passes_every_oracle() {
    for &seed in &SMOKE_SEEDS {
        if let Err(failure) = run_seed(seed) {
            panic!("{failure}");
        }
    }
}
