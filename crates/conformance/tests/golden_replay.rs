//! Golden-trace replay: re-record every committed trace live and require it
//! to match the `goldens/*.json` files field-by-field under the tolerance
//! policy of `dtsnn_conformance::trace::tolerance_for`.
//!
//! On drift, the failure message lists every drifting field. If the drift is
//! an intentional numerics change, regenerate the files with
//! `cargo run -p dtsnn-conformance --bin bless` (or `DTSNN_BLESS=1` on this
//! test) and commit them alongside the change.

use dtsnn_conformance::trace::{bless, compare, load_golden, record, TraceSpec};

fn replay(spec: TraceSpec) {
    if std::env::var("DTSNN_BLESS").is_ok_and(|v| v == "1") {
        let path = bless(&spec).expect("bless golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = load_golden(&spec).expect("load committed golden");
    let live = record(&spec).expect("record live trace");
    let diffs = compare(&golden, &live);
    assert!(
        diffs.is_empty(),
        "golden trace drift for {} ({} fields):\n  {}\n\
         if this change is intentional, regenerate with \
         `cargo run -p dtsnn-conformance --bin bless` and commit goldens/",
        spec.golden_name(),
        diffs.len(),
        diffs.join("\n  ")
    );
}

#[test]
fn vgg_golden_replays_bitwise() {
    replay(TraceSpec::vgg_default());
}

#[test]
fn resnet_golden_replays_bitwise() {
    replay(TraceSpec::resnet_default());
}

#[test]
fn vgg_quant_golden_replays_bitwise() {
    replay(TraceSpec::vgg_quant());
}

#[test]
fn resnet_quant_golden_replays_bitwise() {
    replay(TraceSpec::resnet_quant());
}

#[test]
fn golden_context_records_provenance() {
    for spec in TraceSpec::all_defaults() {
        let golden = load_golden(&spec).expect("load committed golden");
        let context = golden.get("context").expect("context block");
        for key in ["schema_version", "arch", "seed", "theta", "timesteps", "host_cores", "threads"]
        {
            assert!(context.get(key).is_some(), "{}: context missing {key}", spec.golden_name());
        }
        // The quantized goldens postdate the backend seam and additionally
        // record the per-layer kernel choices; the pre-existing f32 goldens
        // are committed byte-identical and are not required to carry them.
        if spec.quantized {
            for key in ["quantized", "backends"] {
                assert!(context.get(key).is_some(), "{}: context missing {key}", spec.golden_name());
            }
        }
    }
}
