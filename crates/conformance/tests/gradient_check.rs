//! Whole-network gradient verification: central finite differences against
//! BPTT through complete VGG/ResNet-block networks, under both the Eq. 9
//! mean-output and Eq. 10 per-timestep losses (see
//! `dtsnn_conformance::gradcheck` for why this is exact rather than
//! approximate).

use dtsnn_bench::Arch;
use dtsnn_conformance::gradcheck::{check_network_gradients, GradCheckConfig};
use dtsnn_snn::LossKind;

fn run(arch: Arch, loss: LossKind) {
    let cfg = GradCheckConfig::new(arch, loss);
    let report = check_network_gradients(&cfg).expect("gradient check runs");
    assert!(report.checked >= 10, "too few parameters sampled: {}", report.checked);
    assert!(
        report.max_abs_grad > 1e-4,
        "vacuous check: largest sampled analytic gradient is only {:.3e}",
        report.max_abs_grad
    );
    assert!(
        report.failures.is_empty(),
        "{} / {} sampled gradients out of tolerance (max |err| {:.3e}):\n  {}",
        report.failures.len(),
        report.checked,
        report.max_abs_err,
        report.failures.join("\n  ")
    );
}

#[test]
fn vgg_mean_output_loss_gradients_match_finite_differences() {
    run(Arch::Vgg, LossKind::MeanOutput);
}

#[test]
fn vgg_per_timestep_loss_gradients_match_finite_differences() {
    run(Arch::Vgg, LossKind::PerTimestep);
}

#[test]
fn resnet_mean_output_loss_gradients_match_finite_differences() {
    run(Arch::ResNet, LossKind::MeanOutput);
}

#[test]
fn resnet_per_timestep_loss_gradients_match_finite_differences() {
    run(Arch::ResNet, LossKind::PerTimestep);
}
