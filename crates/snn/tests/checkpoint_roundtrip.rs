//! Checkpoint round-trip: saving a trained-or-not network and reloading it
//! into a differently-initialized instance of the same architecture must
//! reproduce the original's inference outputs bitwise.

use dtsnn_snn::{
    load_params, resnet_small, save_params, vgg_small, Mode, ModelConfig, Snn,
};
use dtsnn_tensor::{Tensor, TensorRng};

fn roundtrip(name: &str, build: impl Fn(&mut TensorRng) -> Snn) {
    let mut rng = TensorRng::seed_from(0xC4EC);
    let mut original = build(&mut rng);
    let path = std::env::temp_dir()
        .join(format!("dtsnn-roundtrip-{name}-{}.bin", std::process::id()));
    save_params(&mut original, &path).expect("save checkpoint");

    // different init seed: every parameter starts out different, so equality
    // after load proves the checkpoint carried all of them
    let mut other_rng = TensorRng::seed_from(0x0DD5);
    let mut reloaded = build(&mut other_rng);
    load_params(&mut reloaded, &path).expect("load checkpoint");
    let _ = std::fs::remove_file(&path);

    let mut frame_rng = TensorRng::seed_from(7);
    let frame = Tensor::randn(&[1, 3, 16, 16], 0.5, 0.5, &mut frame_rng);
    let timesteps = 4;
    let a = original
        .forward_sequence(std::slice::from_ref(&frame), timesteps, Mode::Eval)
        .expect("original forward");
    let b = reloaded
        .forward_sequence(std::slice::from_ref(&frame), timesteps, Mode::Eval)
        .expect("reloaded forward");
    assert_eq!(a, b, "{name}: reloaded inference must be bitwise identical");
    // and the per-timestep logits must not be trivially zero for the
    // comparison to mean anything
    assert!(
        a.iter().any(|t| t.data().iter().any(|&v| v != 0.0)),
        "{name}: all-zero outputs make the round-trip check vacuous"
    );
}

fn config() -> ModelConfig {
    // tdbn_alpha > 1 keeps the untrained network spiking end to end in Eval
    // mode (see the conformance trace module), so the outputs compared
    // below are nonzero
    ModelConfig { width: 8, tdbn_alpha: 6.0, ..ModelConfig::default() }
}

#[test]
fn vgg_checkpoint_roundtrip_is_bitwise_identical() {
    roundtrip("vgg", |rng| vgg_small(&config(), rng).expect("build vgg"));
}

#[test]
fn resnet_checkpoint_roundtrip_is_bitwise_identical() {
    roundtrip("resnet", |rng| resnet_small(&config(), rng).expect("build resnet"));
}
