//! Property-based tests of the SNN stack: LIF dynamics under arbitrary
//! configurations, loss-gradient identities, and BPTT cache discipline.

use dtsnn_snn::{
    cross_entropy_mean_output, cross_entropy_per_timestep, Flatten, Layer, LifConfig, LifNeuron,
    Linear, Mode, ResetMode, Snn, Surrogate,
};
use dtsnn_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lif_spike_count_monotone_in_input(
        tau in 0.1f32..1.0,
        v_th in 0.2f32..2.0,
        base in 0.0f32..1.0,
        boost in 0.1f32..2.0,
    ) {
        // stronger input current never produces fewer spikes over a window
        let cfg = LifConfig { tau, v_th, ..LifConfig::default() };
        let count = |level: f32| -> f32 {
            let mut lif = LifNeuron::new(cfg);
            let x = Tensor::full(&[1, 4], level);
            let mut total = 0.0;
            for _ in 0..6 {
                total += lif.forward(&x, Mode::Eval).unwrap().sum();
            }
            total
        };
        prop_assert!(count(base + boost) >= count(base));
    }

    #[test]
    fn lif_membrane_never_exceeds_threshold_after_reset(
        tau in 0.1f32..1.0,
        v_th in 0.2f32..2.0,
        inputs in proptest::collection::vec(-1.5f32..1.5, 6),
        soft in proptest::bool::ANY,
    ) {
        let reset = if soft { ResetMode::Subtract } else { ResetMode::Zero };
        let mut lif = LifNeuron::new(LifConfig { tau, v_th, reset, ..LifConfig::default() });
        let mut prev: Option<f32> = None;
        for &v in &inputs {
            let x = Tensor::full(&[1, 3], v);
            let s = lif.forward(&x, Mode::Eval).unwrap();
            let u = lif.membrane().unwrap().data()[0];
            let spiked = s.data()[0] == 1.0;
            match reset {
                // hard reset zeroes any crossing: post-reset u ≤ v_th always
                ResetMode::Zero => prop_assert!(u <= v_th + 1e-5, "u={u}"),
                // soft reset subtracts exactly one threshold per spike, so
                // u_post = u_pre − v_th on spikes; u can stay above v_th for
                // strong inputs, but never exceeds the pre-reset potential
                ResetMode::Subtract => {
                    let u_pre = prev.map(|p| tau * p).unwrap_or(0.0) + v;
                    if spiked {
                        prop_assert!((u - (u_pre - v_th)).abs() < 1e-5, "u={u} u_pre={u_pre}");
                    } else {
                        prop_assert!((u - u_pre).abs() < 1e-5);
                    }
                }
            }
            prev = Some(u);
        }
    }

    #[test]
    fn lif_backward_cache_discipline(t in 1usize..6, extra in 1usize..3) {
        // exactly t backwards succeed after t forwards; the (t+1)-th fails
        let mut lif = LifNeuron::new(LifConfig::default());
        let x = Tensor::full(&[1, 2], 0.7);
        for _ in 0..t {
            lif.forward(&x, Mode::Train).unwrap();
        }
        let g = Tensor::ones(&[1, 2]);
        for _ in 0..t {
            prop_assert!(lif.backward(&g).is_ok());
        }
        for _ in 0..extra {
            prop_assert!(lif.backward(&g).is_err());
        }
    }

    #[test]
    fn ce_gradients_sum_to_zero_per_row(
        seed in 0u64..1000,
        t in 1usize..4,
        b in 1usize..4,
    ) {
        // softmax-CE gradient rows always sum to zero (probabilities − onehot)
        let mut rng = TensorRng::seed_from(seed);
        let k = 5;
        let outputs: Vec<Tensor> =
            (0..t).map(|_| Tensor::randn(&[b, k], 0.0, 2.0, &mut rng)).collect();
        let labels: Vec<usize> = (0..b).map(|i| i % k).collect();
        for (_, grads) in [
            cross_entropy_mean_output(&outputs, &labels).unwrap(),
            cross_entropy_per_timestep(&outputs, &labels).unwrap(),
        ] {
            for g in grads {
                for row in 0..b {
                    let s: f32 = g.data()[row * k..(row + 1) * k].iter().sum();
                    prop_assert!(s.abs() < 1e-5, "row sum {s}");
                }
            }
        }
    }

    #[test]
    fn surrogate_families_bounded(
        u in -5.0f32..5.0,
        v_th in 0.2f32..2.0,
        which in 0usize..5,
    ) {
        let s = match which {
            0 => Surrogate::Rectangular,
            1 => Surrogate::Triangle { gamma: 0.5 },
            2 => Surrogate::Dspike { b: 4.0 },
            3 => Surrogate::Sigmoid { alpha: 3.0 },
            _ => Surrogate::Atan { alpha: 2.0 },
        };
        let g = s.grad(u, v_th);
        prop_assert!(g.is_finite());
        prop_assert!(g >= 0.0);
        prop_assert!(g <= 5.0, "surrogate blew up: {g}");
    }

    #[test]
    fn network_eval_is_deterministic_and_stateless_across_resets(seed in 0u64..500) {
        let mut rng = TensorRng::seed_from(seed);
        let mut net = Snn::from_layers(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(8, 6, &mut rng)),
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(6, 3, &mut rng)),
        ]);
        let x = Tensor::randn(&[1, 2, 2, 2], 0.5, 0.5, &mut rng);
        let a = net.forward_sequence(&[x.clone()], 3, Mode::Eval).unwrap();
        let b = net.forward_sequence(&[x], 3, Mode::Eval).unwrap();
        for (ya, yb) in a.iter().zip(&b) {
            prop_assert_eq!(ya, yb);
        }
    }
}
