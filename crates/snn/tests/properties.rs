//! Property-based tests of the SNN stack: LIF dynamics under arbitrary
//! configurations, loss-gradient identities, and BPTT cache discipline.
//!
//! Cases are generated from a seeded [`TensorRng`] (48 per property, matching
//! the previous proptest configuration) so failures reproduce from the case
//! index alone and the suite needs no external crates.

use dtsnn_snn::{
    cross_entropy_mean_output, cross_entropy_per_timestep, Flatten, Layer, LifConfig, LifNeuron,
    Linear, Mode, ResetMode, Snn, Surrogate,
};
use dtsnn_tensor::{Tensor, TensorRng};

const CASES: u64 = 48;

fn case_rng(case: u64) -> TensorRng {
    TensorRng::seed_from(0x5EED ^ case.wrapping_mul(0x9E37_79B9))
}

#[test]
fn lif_spike_count_monotone_in_input() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let tau = params.uniform(0.1, 1.0);
        let v_th = params.uniform(0.2, 2.0);
        let base = params.uniform(0.0, 1.0);
        let boost = params.uniform(0.1, 2.0);
        // stronger input current never produces fewer spikes over a window
        let cfg = LifConfig { tau, v_th, ..LifConfig::default() };
        let count = |level: f32| -> f32 {
            let mut lif = LifNeuron::new(cfg);
            let x = Tensor::full(&[1, 4], level);
            let mut total = 0.0;
            for _ in 0..6 {
                total += lif.forward(&x, Mode::Eval).unwrap().sum();
            }
            total
        };
        assert!(count(base + boost) >= count(base), "case {case}");
    }
}

#[test]
fn lif_membrane_never_exceeds_threshold_after_reset() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let tau = params.uniform(0.1, 1.0);
        let v_th = params.uniform(0.2, 2.0);
        let inputs: Vec<f32> = (0..6).map(|_| params.uniform(-1.5, 1.5)).collect();
        let soft = params.bernoulli(0.5);
        let reset = if soft { ResetMode::Subtract } else { ResetMode::Zero };
        let mut lif = LifNeuron::new(LifConfig { tau, v_th, reset, ..LifConfig::default() });
        let mut prev: Option<f32> = None;
        for &v in &inputs {
            let x = Tensor::full(&[1, 3], v);
            let s = lif.forward(&x, Mode::Eval).unwrap();
            let u = lif.membrane().unwrap().data()[0];
            let spiked = s.data()[0] == 1.0;
            match reset {
                // hard reset zeroes any crossing: post-reset u ≤ v_th always
                ResetMode::Zero => assert!(u <= v_th + 1e-5, "case {case}: u={u}"),
                // soft reset subtracts exactly one threshold per spike, so
                // u_post = u_pre − v_th on spikes; u can stay above v_th for
                // strong inputs, but never exceeds the pre-reset potential
                ResetMode::Subtract => {
                    let u_pre = prev.map(|p| tau * p).unwrap_or(0.0) + v;
                    if spiked {
                        assert!(
                            (u - (u_pre - v_th)).abs() < 1e-5,
                            "case {case}: u={u} u_pre={u_pre}"
                        );
                    } else {
                        assert!((u - u_pre).abs() < 1e-5, "case {case}");
                    }
                }
            }
            prev = Some(u);
        }
    }
}

#[test]
fn lif_backward_cache_discipline() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let t = 1 + params.below(5);
        let extra = 1 + params.below(2);
        // exactly t backwards succeed after t forwards; the (t+1)-th fails
        let mut lif = LifNeuron::new(LifConfig::default());
        let x = Tensor::full(&[1, 2], 0.7);
        for _ in 0..t {
            lif.forward(&x, Mode::Train).unwrap();
        }
        let g = Tensor::ones(&[1, 2]);
        for _ in 0..t {
            assert!(lif.backward(&g).is_ok(), "case {case}");
        }
        for _ in 0..extra {
            assert!(lif.backward(&g).is_err(), "case {case}");
        }
    }
}

#[test]
fn ce_gradients_sum_to_zero_per_row() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let t = 1 + params.below(3);
        let b = 1 + params.below(3);
        // softmax-CE gradient rows always sum to zero (probabilities − onehot)
        let mut rng = TensorRng::seed_from(case);
        let k = 5;
        let outputs: Vec<Tensor> =
            (0..t).map(|_| Tensor::randn(&[b, k], 0.0, 2.0, &mut rng)).collect();
        let labels: Vec<usize> = (0..b).map(|i| i % k).collect();
        for (_, grads) in [
            cross_entropy_mean_output(&outputs, &labels).unwrap(),
            cross_entropy_per_timestep(&outputs, &labels).unwrap(),
        ] {
            for g in grads {
                for row in 0..b {
                    let s: f32 = g.data()[row * k..(row + 1) * k].iter().sum();
                    assert!(s.abs() < 1e-5, "case {case}: row sum {s}");
                }
            }
        }
    }
}

#[test]
fn surrogate_families_bounded() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let u = params.uniform(-5.0, 5.0);
        let v_th = params.uniform(0.2, 2.0);
        let which = params.below(5);
        let s = match which {
            0 => Surrogate::Rectangular,
            1 => Surrogate::Triangle { gamma: 0.5 },
            2 => Surrogate::Dspike { b: 4.0 },
            3 => Surrogate::Sigmoid { alpha: 3.0 },
            _ => Surrogate::Atan { alpha: 2.0 },
        };
        let g = s.grad(u, v_th);
        assert!(g.is_finite(), "case {case}");
        assert!(g >= 0.0, "case {case}");
        assert!(g <= 5.0, "case {case}: surrogate blew up: {g}");
    }
}

#[test]
fn network_eval_is_deterministic_and_stateless_across_resets() {
    for case in 0..CASES {
        let mut rng = TensorRng::seed_from(case);
        let mut net = Snn::from_layers(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(8, 6, &mut rng)),
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(6, 3, &mut rng)),
        ]);
        let x = Tensor::randn(&[1, 2, 2, 2], 0.5, 0.5, &mut rng);
        let a = net.forward_sequence(std::slice::from_ref(&x), 3, Mode::Eval).unwrap();
        let b = net.forward_sequence(&[x], 3, Mode::Eval).unwrap();
        for (ya, yb) in a.iter().zip(&b) {
            assert_eq!(ya, yb, "case {case}");
        }
    }
}
