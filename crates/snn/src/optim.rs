//! SGD with momentum and L2 regularization, plus the cosine learning-rate
//! schedule the paper trains with (lr 0.1, cosine decay, L2 5e-4).

use crate::network::Snn;
use crate::{Result, SnnError};

/// Hyperparameters for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Base learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// L2 regularization (applied only to params flagged `decay`).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        // Paper Sec. IV-A: lr 0.1 with cosine decay, L2 = 0.0005.
        SgdConfig { lr: 0.1, momentum: 0.9, weight_decay: 5e-4 }
    }
}

impl SgdConfig {
    /// Validates the hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for nonpositive lr, momentum
    /// outside `[0,1)`, or negative weight decay.
    pub fn validate(&self) -> Result<()> {
        if self.lr <= 0.0 {
            return Err(SnnError::InvalidConfig(format!("lr must be positive, got {}", self.lr)));
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(SnnError::InvalidConfig(format!(
                "momentum must be in [0,1), got {}",
                self.momentum
            )));
        }
        if self.weight_decay < 0.0 {
            return Err(SnnError::InvalidConfig("weight decay must be nonnegative".into()));
        }
        Ok(())
    }
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    config: SgdConfig,
    current_lr: f32,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for invalid hyperparameters.
    pub fn new(config: SgdConfig) -> Result<Self> {
        config.validate()?;
        Ok(Sgd { current_lr: config.lr, config })
    }

    /// The learning rate the next [`Sgd::step`] will use.
    pub fn lr(&self) -> f32 {
        self.current_lr
    }

    /// Overrides the learning rate (driven by a schedule).
    pub fn set_lr(&mut self, lr: f32) {
        self.current_lr = lr.max(0.0);
    }

    /// Applies one update to every parameter of `network` and zeroes grads.
    pub fn step(&mut self, network: &mut Snn) {
        let lr = self.current_lr;
        let mu = self.config.momentum;
        let wd = self.config.weight_decay;
        network.visit_params(&mut |p| {
            let decay = if p.decay { wd } else { 0.0 };
            let value = p.value.data().to_vec();
            let m = p.momentum.data_mut();
            let g = p.grad.data();
            for i in 0..m.len() {
                m[i] = mu * m[i] + g[i] + decay * value[i];
            }
            let mom = p.momentum.data().to_vec();
            let v = p.value.data_mut();
            for i in 0..v.len() {
                v[i] -= lr * mom[i];
            }
            p.zero_grad();
        });
    }
}

/// Cosine learning-rate decay: `lr(e) = lr₀ · ½(1 + cos(π e / E))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineSchedule {
    base_lr: f32,
    total_epochs: usize,
}

impl CosineSchedule {
    /// Creates a schedule over `total_epochs` epochs.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when `total_epochs == 0`.
    pub fn new(base_lr: f32, total_epochs: usize) -> Result<Self> {
        if total_epochs == 0 {
            return Err(SnnError::InvalidConfig("cosine schedule needs ≥ 1 epoch".into()));
        }
        Ok(CosineSchedule { base_lr, total_epochs })
    }

    /// Learning rate at `epoch` (clamped to the final epoch).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let e = epoch.min(self.total_epochs) as f32;
        let frac = e / self.total_epochs as f32;
        0.5 * self.base_lr * (1.0 + (std::f32::consts::PI * frac).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::network::Snn;
    use crate::Mode;
    use dtsnn_tensor::{Tensor, TensorRng};

    #[test]
    fn config_validation() {
        assert!(SgdConfig { lr: 0.0, ..SgdConfig::default() }.validate().is_err());
        assert!(SgdConfig { momentum: 1.0, ..SgdConfig::default() }.validate().is_err());
        assert!(SgdConfig { weight_decay: -1.0, ..SgdConfig::default() }.validate().is_err());
        assert!(SgdConfig::default().validate().is_ok());
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        // minimize ||W x − y||² for a 1-layer linear net by hand-computed grads
        let mut rng = TensorRng::seed_from(1);
        let mut net = Snn::from_layers(vec![Box::new(Linear::new(2, 1, &mut rng))]);
        let x = Tensor::from_vec(vec![1.0, 0.5], &[1, 2]).unwrap();
        let target = 3.0;
        let mut sgd = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.0 }).unwrap();
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            net.reset_state();
            let y = net.forward_timestep(&x, Mode::Train).unwrap();
            let err = y.data()[0] - target;
            net.backward_timestep(&Tensor::from_vec(vec![2.0 * err], &[1, 1]).unwrap()).unwrap();
            sgd.step(&mut net);
            let loss = err * err;
            assert!(loss <= last + 1e-4);
            last = loss;
        }
        assert!(last < 1e-3, "loss={last}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = TensorRng::seed_from(2);
        let mut net = Snn::from_layers(vec![Box::new(Linear::new(4, 4, &mut rng))]);
        let mut before = 0.0;
        net.visit_params(&mut |p| {
            if p.decay {
                before += p.value.norm_sq()
            }
        });
        let mut sgd = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.1 }).unwrap();
        // zero gradients: only decay acts
        sgd.step(&mut net);
        let mut after = 0.0;
        net.visit_params(&mut |p| {
            if p.decay {
                after += p.value.norm_sq()
            }
        });
        assert!(after < before);
    }

    #[test]
    fn cosine_schedule_endpoints_and_monotonicity() {
        let s = CosineSchedule::new(0.1, 100).unwrap();
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!(s.lr_at(100) < 1e-7);
        assert!((s.lr_at(50) - 0.05).abs() < 1e-7);
        for e in 1..=100 {
            assert!(s.lr_at(e) <= s.lr_at(e - 1) + 1e-9);
        }
        assert!(CosineSchedule::new(0.1, 0).is_err());
        // clamps beyond the horizon
        assert_eq!(s.lr_at(500), s.lr_at(100));
    }
}
