//! Training losses: the conventional mean-output cross-entropy (Eq. 9) and
//! the per-timestep cross-entropy that supervises every intermediate output
//! (Eq. 10) — the loss that makes DT-SNN's early exits accurate.

use crate::{Result, SnnError};
use dtsnn_tensor::{softmax_rows, Tensor};

/// Which training loss to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LossKind {
    /// Eq. 9: cross-entropy on the timestep-averaged logits `f_T(x)`.
    MeanOutput,
    /// Eq. 10: mean cross-entropy over all running averages `f_t(x)`,
    /// `t = 1..T` — explicit guidance at every timestep.
    #[default]
    PerTimestep,
}

impl LossKind {
    /// Computes loss and per-timestep logit gradients.
    ///
    /// `outputs[t]` are the raw logits `[batch, classes]` of timestep `t+1`.
    /// Returns `(mean loss, grads)` where `grads[t]` is `∂L/∂outputs[t]`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::BadInput`] for empty/ragged outputs and
    /// [`SnnError::LabelOutOfRange`] for bad labels.
    pub fn compute(&self, outputs: &[Tensor], labels: &[usize]) -> Result<(f32, Vec<Tensor>)> {
        match self {
            LossKind::MeanOutput => cross_entropy_mean_output(outputs, labels),
            LossKind::PerTimestep => cross_entropy_per_timestep(outputs, labels),
        }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            LossKind::MeanOutput => "eq9-mean-output",
            LossKind::PerTimestep => "eq10-per-timestep",
        }
    }
}

fn validate(outputs: &[Tensor], labels: &[usize]) -> Result<(usize, usize, usize)> {
    let first = outputs
        .first()
        .ok_or_else(|| SnnError::BadInput("loss needs at least one timestep output".into()))?;
    let d = first.dims();
    if d.len() != 2 {
        return Err(SnnError::BadInput(format!("logits must be [batch, classes], got {d:?}")));
    }
    let (b, k) = (d[0], d[1]);
    if b != labels.len() {
        return Err(SnnError::BadInput(format!("{b} logits rows but {} labels", labels.len())));
    }
    for o in outputs {
        if o.dims() != [b, k] {
            return Err(SnnError::BadInput("ragged timestep outputs".into()));
        }
    }
    for &l in labels {
        if l >= k {
            return Err(SnnError::LabelOutOfRange { label: l, classes: k });
        }
    }
    Ok((outputs.len(), b, k))
}

/// Cross-entropy of a probability matrix against integer labels; also
/// returns `(p − z)/B`, the gradient w.r.t. the logits that produced `p`.
fn ce_and_grad(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let p = softmax_rows(logits)?;
    let (b, k) = (p.dims()[0], p.dims()[1]);
    let mut loss = 0.0;
    let mut grad = p.clone();
    {
        let g = grad.data_mut();
        for (i, &l) in labels.iter().enumerate() {
            let pi = p.data()[i * k + l].max(1e-12);
            loss -= pi.ln();
            g[i * k + l] -= 1.0;
        }
        let inv_b = 1.0 / b as f32;
        for v in g.iter_mut() {
            *v *= inv_b;
        }
    }
    Ok((loss / b as f32, grad))
}

/// Eq. 9: `L = CE(softmax(1/T Σ_t y_t), z)`.
///
/// Returns the loss and `∂L/∂y_t` for every timestep (all equal to the
/// mean-logit gradient scaled by `1/T`).
///
/// # Errors
///
/// See [`LossKind::compute`].
pub fn cross_entropy_mean_output(
    outputs: &[Tensor],
    labels: &[usize],
) -> Result<(f32, Vec<Tensor>)> {
    let (t_max, _b, _k) = validate(outputs, labels)?;
    let mut mean = outputs[0].clone();
    for o in &outputs[1..] {
        mean.axpy(1.0, o)?;
    }
    let mean = mean.scale(1.0 / t_max as f32);
    let (loss, g_mean) = ce_and_grad(&mean, labels)?;
    let per_t = g_mean.scale(1.0 / t_max as f32);
    Ok((loss, vec![per_t; t_max]))
}

/// Eq. 10: `L = 1/T Σ_t CE(softmax(f_t), z)` where `f_t = 1/t Σ_{t'≤t} y_{t'}`
/// is the running average of Eq. 5.
///
/// Every timestep output receives explicit label supervision:
/// `∂L/∂y_s = Σ_{t≥s} (1/T)(1/t)(softmax(f_t) − z)/B`.
///
/// # Errors
///
/// See [`LossKind::compute`].
pub fn cross_entropy_per_timestep(
    outputs: &[Tensor],
    labels: &[usize],
) -> Result<(f32, Vec<Tensor>)> {
    let (t_max, b, k) = validate(outputs, labels)?;
    let mut running = Tensor::zeros(&[b, k]);
    let mut total_loss = 0.0;
    let mut grads = vec![Tensor::zeros(&[b, k]); t_max];
    let inv_t_max = 1.0 / t_max as f32;
    for (t, out) in outputs.iter().enumerate() {
        running.axpy(1.0, out)?;
        let f_t = running.scale(1.0 / (t + 1) as f32);
        let (loss, g) = ce_and_grad(&f_t, labels)?;
        total_loss += loss;
        // f_t depends on y_s for all s ≤ t with coefficient 1/t.
        let scaled = g.scale(inv_t_max / (t + 1) as f32);
        for gs in grads.iter_mut().take(t + 1) {
            gs.axpy(1.0, &scaled)?;
        }
    }
    Ok((total_loss * inv_t_max, grads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsnn_tensor::TensorRng;

    fn random_outputs(t: usize, b: usize, k: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = TensorRng::seed_from(seed);
        (0..t).map(|_| Tensor::randn(&[b, k], 0.0, 1.0, &mut rng)).collect()
    }

    #[test]
    fn validation_catches_bad_inputs() {
        assert!(cross_entropy_mean_output(&[], &[]).is_err());
        let outs = random_outputs(2, 3, 4, 1);
        assert!(cross_entropy_mean_output(&outs, &[0, 1]).is_err()); // label count
        assert!(matches!(
            cross_entropy_mean_output(&outs, &[0, 1, 9]),
            Err(SnnError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn perfect_prediction_gives_small_loss() {
        // logits hugely favor the right class
        let mut y = Tensor::zeros(&[2, 3]);
        y.set(&[0, 1], 50.0).unwrap();
        y.set(&[1, 2], 50.0).unwrap();
        let (l9, _) = cross_entropy_mean_output(&[y.clone()], &[1, 2]).unwrap();
        let (l10, _) = cross_entropy_per_timestep(&[y], &[1, 2]).unwrap();
        assert!(l9 < 1e-4);
        assert!(l10 < 1e-4);
    }

    #[test]
    fn losses_agree_for_single_timestep() {
        let outs = random_outputs(1, 4, 5, 2);
        let labels = [0, 1, 2, 3];
        let (l9, g9) = cross_entropy_mean_output(&outs, &labels).unwrap();
        let (l10, g10) = cross_entropy_per_timestep(&outs, &labels).unwrap();
        assert!((l9 - l10).abs() < 1e-6);
        for (a, b) in g9[0].data().iter().zip(g10[0].data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn eq9_gradient_matches_finite_difference() {
        let outs = random_outputs(3, 2, 4, 3);
        let labels = [1, 3];
        let (l0, grads) = cross_entropy_mean_output(&outs, &labels).unwrap();
        let eps = 1e-3;
        for t in 0..3 {
            for idx in [0usize, 3, 7] {
                let mut pert = outs.clone();
                pert[t].data_mut()[idx] += eps;
                let (l1, _) = cross_entropy_mean_output(&pert, &labels).unwrap();
                let num = (l1 - l0) / eps;
                let ana = grads[t].data()[idx];
                assert!((num - ana).abs() < 1e-2, "t={t} idx={idx}: {num} vs {ana}");
            }
        }
    }

    #[test]
    fn eq10_gradient_matches_finite_difference() {
        let outs = random_outputs(3, 2, 4, 4);
        let labels = [0, 2];
        let (l0, grads) = cross_entropy_per_timestep(&outs, &labels).unwrap();
        let eps = 1e-3;
        for t in 0..3 {
            for idx in [1usize, 4, 6] {
                let mut pert = outs.clone();
                pert[t].data_mut()[idx] += eps;
                let (l1, _) = cross_entropy_per_timestep(&pert, &labels).unwrap();
                let num = (l1 - l0) / eps;
                let ana = grads[t].data()[idx];
                assert!((num - ana).abs() < 1e-2, "t={t} idx={idx}: {num} vs {ana}");
            }
        }
    }

    #[test]
    fn eq10_supervises_early_timesteps_more_than_eq9() {
        // Under Eq. 9 the gradient w.r.t. y_1 equals that w.r.t. y_T; under
        // Eq. 10 y_1 appears in every f_t so it accumulates more signal.
        let outs = random_outputs(4, 2, 3, 5);
        let labels = [0, 1];
        let (_, g9) = cross_entropy_mean_output(&outs, &labels).unwrap();
        let (_, g10) = cross_entropy_per_timestep(&outs, &labels).unwrap();
        let n9_first = g9[0].norm_sq();
        let n9_last = g9[3].norm_sq();
        assert!((n9_first - n9_last).abs() < 1e-9);
        let n10_first = g10[0].norm_sq();
        let n10_last = g10[3].norm_sq();
        assert!(n10_first > n10_last, "{n10_first} !> {n10_last}");
    }

    #[test]
    fn loss_kind_dispatch() {
        let outs = random_outputs(2, 2, 3, 6);
        let labels = [0, 1];
        assert_eq!(LossKind::MeanOutput.name(), "eq9-mean-output");
        assert_eq!(LossKind::PerTimestep.name(), "eq10-per-timestep");
        let (a, _) = LossKind::MeanOutput.compute(&outs, &labels).unwrap();
        let (b, _) = cross_entropy_mean_output(&outs, &labels).unwrap();
        assert_eq!(a, b);
    }
}
