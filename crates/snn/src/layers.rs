//! Stateless and learnable layers: convolution, linear, normalization,
//! pooling, dropout, flatten, and residual composition.
//!
//! All layers obey the per-timestep forward / reverse-time backward contract
//! of [`Layer`]. Convolution re-derives its im2col matrix during backward
//! from the cached (sparse, binary) input spikes instead of caching the much
//! larger column matrix.

use crate::layer::{Layer, Mode, Param};
use crate::lif::{LifConfig, LifNeuron};
use crate::{Result, SnnError};
use dtsnn_tensor::{
    avg_pool2d, avg_pool2d_backward, avg_pool2d_ws, backend, conv2d, conv2d_backward,
    conv2d_ws_quant, conv2d_ws_with, im2col, linear_ws_quant, linear_ws_with, simd,
    BackendKind, Conv2dSpec, PoolSpec, QuantizedWeights, Tensor, TensorError, TensorRng,
    Workspace,
};

// ===========================================================================
// Conv2d
// ===========================================================================

/// A 2-D convolution layer (weights `[c_out, c_in·k·k]`, bias `[c_out]`).
#[derive(Debug, Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Param,
    bias: Param,
    /// Cached inputs per timestep (training only).
    inputs: Vec<Tensor>,
    /// On-grid weight codes for the quantized Eval backend (lazy cache,
    /// invalidated whenever the weights are touched).
    quant: Option<QuantizedWeights>,
    /// `Some(bits)` once [`Layer::quantize_weights`] opted this layer in.
    quant_bits: Option<u32>,
    /// Backend the most recent Eval forward dispatched to.
    last_backend: Option<BackendKind>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::Tensor`] for invalid geometry.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut TensorRng,
    ) -> Result<Self> {
        let spec = Conv2dSpec::new(in_channels, out_channels, kernel, stride, padding)?;
        let fan_in = spec.patch_len();
        let weight = Param::new(Tensor::kaiming(&spec.weight_dims(), fan_in, rng), true);
        let bias = Param::new(Tensor::zeros(&[out_channels]), false);
        Ok(Conv2d {
            spec,
            weight,
            bias,
            inputs: Vec::new(),
            quant: None,
            quant_bits: None,
            last_backend: None,
        })
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Read access to the weight matrix (for the IMC mapper / noise injector).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable access to the weight matrix (for device-noise injection).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        self.quant = None; // weights may change; on-grid codes are stale
        &mut self.weight.value
    }

    /// Eval forward shared by `forward` and `forward_ws`: one backend
    /// choice per call, recorded for the trace context. Both entry points
    /// route here, so the two stay bitwise identical by construction.
    fn forward_eval(&mut self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let (density, binary) = input.spike_stats();
        let kind = backend::choose_layer(density, binary, self.quant_bits.is_some());
        self.last_backend = Some(kind);
        if kind == BackendKind::Quantized {
            let bits = self.quant_bits.unwrap_or(backend::DEFAULT_QUANT_BITS);
            if self.quant.as_ref().is_none_or(|q| q.bits() != bits) {
                self.quant = Some(QuantizedWeights::from_tensor(&self.weight.value, bits)?);
            }
            let qw = self.quant.as_ref().expect("cache ensured above");
            return Ok(conv2d_ws_quant(input, qw, Some(&self.bias.value), &self.spec, ws)?);
        }
        Ok(conv2d_ws_with(kind, input, &self.weight.value, Some(&self.bias.value), &self.spec, ws)?)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            let (out, _cols) =
                conv2d(input, &self.weight.value, Some(&self.bias.value), &self.spec)?;
            self.inputs.push(input.clone());
            return Ok(out);
        }
        // Eval without an arena: run the shared path against a throwaway
        // workspace (bitwise identical to `forward_ws`, just allocating).
        let mut ws = Workspace::new();
        self.forward_eval(input, &mut ws)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        self.forward_eval(input, ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self.inputs.pop().ok_or(SnnError::MissingForwardCache("Conv2d"))?;
        let (h, w) = (input.dims()[2], input.dims()[3]);
        // Recompute the column matrix: cheaper than caching it for every
        // timestep (inputs are binary spike tensors).
        let cols = im2col(&input, &self.spec)?;
        let (gx, gw, gb) = conv2d_backward(grad_out, &cols, &self.weight.value, &self.spec, (h, w))?;
        self.weight.grad.axpy(1.0, &gw)?;
        self.bias.grad.axpy(1.0, &gb)?;
        Ok(gx)
    }

    fn reset_state(&mut self) {
        self.inputs.clear();
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.quant = None; // visitors may mutate weights (optimizer, noise)
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn kind(&self) -> &'static str {
        "conv2d"
    }

    fn last_backend(&self) -> Option<&'static str> {
        self.last_backend.map(BackendKind::name)
    }

    fn quantize_weights(&mut self, bits: u32) {
        self.quant_bits = Some(bits);
        self.quant = None; // rebuilt lazily at the new width
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ===========================================================================
// Linear
// ===========================================================================

/// A fully connected layer (weights `[out, in]`, bias `[out]`).
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    inputs: Vec<Tensor>,
    /// On-grid weight codes for the quantized Eval backend (lazy cache,
    /// invalidated whenever the weights are touched).
    quant: Option<QuantizedWeights>,
    /// `Some(bits)` once [`Layer::quantize_weights`] opted this layer in.
    quant_bits: Option<u32>,
    /// Backend the most recent Eval forward dispatched to.
    last_backend: Option<BackendKind>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut TensorRng) -> Self {
        let weight = Param::new(Tensor::kaiming(&[out_features, in_features], in_features, rng), true);
        let bias = Param::new(Tensor::zeros(&[out_features]), false);
        Linear {
            weight,
            bias,
            inputs: Vec::new(),
            quant: None,
            quant_bits: None,
            last_backend: None,
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Read access to the weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable access to the weight matrix (for device-noise injection).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        self.quant = None; // weights may change; on-grid codes are stale
        &mut self.weight.value
    }

    /// Eval forward shared by `forward` and `forward_ws`: one backend
    /// choice per call, recorded for the trace context.
    fn forward_eval(&mut self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let (density, binary) = input.spike_stats();
        let kind = backend::choose_layer(density, binary, self.quant_bits.is_some());
        self.last_backend = Some(kind);
        if kind == BackendKind::Quantized {
            let bits = self.quant_bits.unwrap_or(backend::DEFAULT_QUANT_BITS);
            if self.quant.as_ref().is_none_or(|q| q.bits() != bits) {
                self.quant = Some(QuantizedWeights::from_tensor(&self.weight.value, bits)?);
            }
            let qw = self.quant.as_ref().expect("cache ensured above");
            return Ok(linear_ws_quant(input, qw, &self.bias.value, ws)?);
        }
        Ok(linear_ws_with(kind, input, &self.weight.value, &self.bias.value, ws)?)
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            // y = x Wᵀ + b ; x is [n, in]
            let out = input.matmul_nt(&self.weight.value)?.add_row_bias(&self.bias.value)?;
            self.inputs.push(input.clone());
            return Ok(out);
        }
        let mut ws = Workspace::new();
        self.forward_eval(input, &mut ws)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        self.forward_eval(input, ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self.inputs.pop().ok_or(SnnError::MissingForwardCache("Linear"))?;
        // dW = gᵀ x  ([out, n]×[n, in])
        let gw = grad_out.matmul_tn(&input)?;
        let gb = grad_out.sum_rows()?;
        self.weight.grad.axpy(1.0, &gw)?;
        self.bias.grad.axpy(1.0, &gb)?;
        // dx = g W  ([n, out]×[out, in])
        Ok(grad_out.matmul(&self.weight.value)?)
    }

    fn reset_state(&mut self) {
        self.inputs.clear();
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.quant = None; // visitors may mutate weights (optimizer, noise)
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn kind(&self) -> &'static str {
        "linear"
    }

    fn last_backend(&self) -> Option<&'static str> {
        self.last_backend.map(BackendKind::name)
    }

    fn quantize_weights(&mut self, bits: u32) {
        self.quant_bits = Some(bits);
        self.quant = None; // rebuilt lazily at the new width
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ===========================================================================
// BatchNorm2d (tdBN-style)
// ===========================================================================

/// Per-timestep cache for BN backward.
#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

/// How batch-norm statistics relate to the timestep axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BnStats {
    /// tdBN-style \[23\]: one set of statistics **shared across timesteps**
    /// (estimated as an EMA over batches and timesteps, used as constants in
    /// both training and inference). Because the membrane charges over time,
    /// early timesteps are systematically under-normalized — exactly the
    /// effect that makes first-timestep accuracy poor under the conventional
    /// loss (Eq. 9) and lets the per-timestep loss (Eq. 10) repair it
    /// (the paper's Fig. 7 ablation).
    #[default]
    Shared,
    /// BNTT-style (Kim et al. \[8\]): independent statistics per timestep, so
    /// every timestep is individually calibrated.
    PerTimestep,
}

/// Channel-wise batch normalization over `[n, c, h, w]` activations for
/// spiking networks, with selectable timestep semantics ([`BnStats`]).
///
/// The internal timestep counter resets with [`Layer::reset_state`]. The
/// tdBN-flavoured initialization `γ = α·V_th` \[23\] is available via
/// [`BatchNorm2d::tdbn`].
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    stats: BnStats,
    /// Running means: one slot for [`BnStats::Shared`], one per timestep for
    /// [`BnStats::PerTimestep`] (grown lazily).
    running_mean: Vec<Vec<f32>>,
    /// Running variances, same layout as `running_mean`.
    running_var: Vec<Vec<f32>>,
    momentum: f32,
    eps: f32,
    caches: Vec<BnCache>,
    /// Timestep counter within the current sequence.
    t_index: usize,
}

impl BatchNorm2d {
    /// Standard BN with `γ = 1` and shared (tdBN-style) statistics.
    pub fn new(channels: usize) -> Self {
        Self::with_gamma(channels, 1.0, BnStats::Shared)
    }

    /// tdBN initialization: `γ = alpha_vth` (= α·V_th in \[23\]).
    pub fn tdbn(channels: usize, alpha_vth: f32) -> Self {
        Self::with_gamma(channels, alpha_vth, BnStats::Shared)
    }

    /// BNTT-style normalization with independent per-timestep statistics.
    pub fn per_timestep(channels: usize, alpha_vth: f32) -> Self {
        Self::with_gamma(channels, alpha_vth, BnStats::PerTimestep)
    }

    fn with_gamma(channels: usize, g: f32, stats: BnStats) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::full(&[channels], g), false),
            beta: Param::new(Tensor::zeros(&[channels]), false),
            stats,
            running_mean: Vec::new(),
            running_var: Vec::new(),
            momentum: 0.1,
            eps: 1e-5,
            caches: Vec::new(),
            t_index: 0,
        }
    }

    /// The timestep semantics of this layer's statistics.
    pub fn stats_mode(&self) -> BnStats {
        self.stats
    }

    /// Statistics slot for timestep `t` under the current mode.
    fn slot(&self, t: usize) -> usize {
        match self.stats {
            BnStats::Shared => 0,
            BnStats::PerTimestep => t,
        }
    }

    /// Ensures running-stat storage exists for timestep `t`.
    fn ensure_timestep(&mut self, t: usize) {
        let c = self.channels();
        while self.running_mean.len() <= t {
            self.running_mean.push(vec![0.0; c]);
            self.running_var.push(vec![1.0; c]);
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize, usize)> {
        let d = input.dims();
        if d.len() != 4 {
            return Err(SnnError::BadInput(format!("batchnorm expects NCHW, got {d:?}")));
        }
        if d[1] != self.channels() {
            return Err(SnnError::BadInput(format!(
                "batchnorm has {} channels, input has {}",
                self.channels(),
                d[1]
            )));
        }
        Ok((d[0], d[1], d[2], d[3]))
    }

    /// Eval-mode affine transform with the slot-`ti` EMA statistics; writes
    /// every element of `dst` exactly once (shared by `forward` and
    /// `forward_ws`, which keeps the two paths bitwise identical).
    fn eval_into(&self, input: &Tensor, n: usize, c: usize, plane: usize, ti: usize, dst: &mut [f32]) {
        for ci in 0..c {
            let inv_std = 1.0 / (self.running_var[ti][ci] + self.eps).sqrt();
            let mean = self.running_mean[ti][ci];
            let g = self.gamma.value.data()[ci];
            let b = self.beta.value.data()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                simd::bn_affine(
                    &mut dst[base..base + plane],
                    &input.data()[base..base + plane],
                    g,
                    mean,
                    inv_std,
                    b,
                );
            }
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, c, h, w) = self.check_input(input)?;
        let m = (n * h * w) as f32;
        let mut out = input.clone();
        let plane = h * w;
        let t = self.t_index;
        self.t_index += 1;
        let slot = self.slot(t);
        match mode {
            Mode::Train => {
                self.ensure_timestep(slot);
                // Batch statistics of this timestep update the EMA of the
                // mode's slot (shared: all timesteps feed one slot, pooling
                // statistics over time as tdBN does).
                for ci in 0..c {
                    let mut mean = 0.0;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        for p in 0..plane {
                            mean += input.data()[base + p];
                        }
                    }
                    mean /= m;
                    let mut var = 0.0;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        for p in 0..plane {
                            let d = input.data()[base + p] - mean;
                            var += d * d;
                        }
                    }
                    var /= m;
                    self.running_mean[slot][ci] =
                        (1.0 - self.momentum) * self.running_mean[slot][ci] + self.momentum * mean;
                    self.running_var[slot][ci] =
                        (1.0 - self.momentum) * self.running_var[slot][ci] + self.momentum * var;
                }
                // Normalize with the (updated) EMA statistics, treated as
                // constants — training and inference see the same transform,
                // which is what lets Eq. 10 supervision repair early
                // timesteps under shared statistics.
                let mut x_hat = Tensor::zeros(input.dims());
                let mut inv_stds = vec![0.0f32; c];
                for (ci, inv_slot) in inv_stds.iter_mut().enumerate() {
                    let mean = self.running_mean[slot][ci];
                    let inv_std = 1.0 / (self.running_var[slot][ci] + self.eps).sqrt();
                    *inv_slot = inv_std;
                    let g = self.gamma.value.data()[ci];
                    let b = self.beta.value.data()[ci];
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        for p in 0..plane {
                            let xh = (input.data()[base + p] - mean) * inv_std;
                            x_hat.data_mut()[base + p] = xh;
                            out.data_mut()[base + p] = g * xh + b;
                        }
                    }
                }
                self.caches.push(BnCache { x_hat, inv_std: inv_stds });
            }
            Mode::Eval => {
                // fresh layers fall back to identity statistics; beyond the
                // trained window clamp to the last trained timestep
                if self.running_mean.is_empty() {
                    self.ensure_timestep(0);
                }
                let ti = slot.min(self.running_mean.len() - 1);
                self.eval_into(input, n, c, plane, ti, out.data_mut());
            }
        }
        Ok(out)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        let (n, c, h, w) = self.check_input(input)?;
        let plane = h * w;
        let t = self.t_index;
        self.t_index += 1;
        let slot = self.slot(t);
        if self.running_mean.is_empty() {
            self.ensure_timestep(0);
        }
        let ti = slot.min(self.running_mean.len() - 1);
        let mut out = ws.take(input.len());
        self.eval_into(input, n, c, plane, ti, &mut out);
        Tensor::from_aligned(out, input.dims()).map_err(SnnError::from)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.caches.pop().ok_or(SnnError::MissingForwardCache("BatchNorm2d"))?;
        let d = grad_out.dims();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let plane = h * w;
        let mut gx = Tensor::zeros(grad_out.dims());
        // Statistics are EMA constants, so the transform is affine per
        // channel: dx = dy·γ·inv_std, dγ = Σ dy·x̂, dβ = Σ dy.
        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            let inv_std = cache.inv_std[ci];
            let mut sum_dy = 0.0;
            let mut sum_dy_xh = 0.0;
            let k = g * inv_std;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for p in 0..plane {
                    let dy = grad_out.data()[base + p];
                    sum_dy += dy;
                    sum_dy_xh += dy * cache.x_hat.data()[base + p];
                    gx.data_mut()[base + p] = k * dy;
                }
            }
            self.beta.grad.data_mut()[ci] += sum_dy;
            self.gamma.grad.data_mut()[ci] += sum_dy_xh;
        }
        Ok(gx)
    }

    fn reset_state(&mut self) {
        self.caches.clear();
        self.t_index = 0;
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn freeze_stats(&mut self) {
        // With zero momentum the EMA update is the identity, so Train-mode
        // forward normalizes with constants and backward (which already
        // treats the statistics as constants) is its exact adjoint.
        self.momentum = 0.0;
    }

    fn kind(&self) -> &'static str {
        "batchnorm2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ===========================================================================
// AvgPool2d / Flatten / Dropout
// ===========================================================================

/// Average pooling layer.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    spec: PoolSpec,
    input_hw: Vec<(usize, usize)>,
}

impl AvgPool2d {
    /// Creates a pool with a square window of `kernel`, stride = kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::Tensor`] for zero extents.
    pub fn new(kernel: usize) -> Result<Self> {
        Ok(AvgPool2d { spec: PoolSpec::new(kernel, kernel)?, input_hw: Vec::new() })
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = avg_pool2d(input, &self.spec)?;
        if mode == Mode::Train {
            self.input_hw.push((input.dims()[2], input.dims()[3]));
        }
        Ok(out)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        Ok(avg_pool2d_ws(input, &self.spec, ws)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let hw = self.input_hw.pop().ok_or(SnnError::MissingForwardCache("AvgPool2d"))?;
        Ok(avg_pool2d_backward(grad_out, &self.spec, hw)?)
    }

    fn reset_state(&mut self) {
        self.input_hw.clear();
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn kind(&self) -> &'static str {
        "avgpool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Reshapes `[n, c, h, w]` → `[n, c·h·w]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Vec<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let d = input.dims();
        if d.len() < 2 {
            return Err(SnnError::BadInput(format!("flatten expects rank ≥ 2, got {d:?}")));
        }
        let n = d[0];
        let rest: usize = d[1..].iter().product();
        if mode == Mode::Train {
            self.input_dims.push(d.to_vec());
        }
        Ok(input.reshape(&[n, rest])?)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        let d = input.dims();
        if d.len() < 2 {
            return Err(SnnError::BadInput(format!("flatten expects rank ≥ 2, got {d:?}")));
        }
        let n = d[0];
        let rest: usize = d[1..].iter().product();
        let mut out = ws.take(input.len());
        out.copy_from_slice(input.data());
        Tensor::from_aligned(out, &[n, rest]).map_err(SnnError::from)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self.input_dims.pop().ok_or(SnnError::MissingForwardCache("Flatten"))?;
        Ok(grad_out.reshape(&dims)?)
    }

    fn reset_state(&mut self) {
        self.input_dims.clear();
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn kind(&self) -> &'static str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Inverted dropout: active only in [`Mode::Train`].
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: TensorRng,
    masks: Vec<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for `p` outside `[0, 1)`.
    pub fn new(p: f32, rng: &mut TensorRng) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(SnnError::InvalidConfig(format!("dropout p must be in [0,1), got {p}")));
        }
        Ok(Dropout { p, rng: rng.fork(0xD0), masks: Vec::new() })
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Eval || self.p == 0.0 {
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let mut mask = Tensor::zeros(input.dims());
        for v in mask.data_mut() {
            *v = if self.rng.bernoulli(keep) { 1.0 / keep } else { 0.0 };
        }
        let out = input.mul(&mask)?;
        self.masks.push(mask);
        Ok(out)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        // Eval dropout is the identity; copy through an arena buffer so the
        // caller's recycle discipline stays uniform.
        let mut out = ws.take(input.len());
        out.copy_from_slice(input.data());
        Tensor::from_aligned(out, input.dims()).map_err(SnnError::from)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.masks.pop().ok_or(SnnError::MissingForwardCache("Dropout"))?;
        Ok(grad_out.mul(&mask)?)
    }

    fn reset_state(&mut self) {
        self.masks.clear();
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn kind(&self) -> &'static str {
        "dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ===========================================================================
// ResidualBlock
// ===========================================================================

/// A spiking residual block: `LIF(main(x) + shortcut(x))`.
///
/// The main path is typically `Conv-BN-LIF-Conv-BN`; the shortcut is empty
/// (identity) or a projection `Conv1x1-BN`. The joining LIF keeps the output
/// binary, as in spiking ResNets trained with tdBN \[23\].
pub struct ResidualBlock {
    main: Vec<Box<dyn Layer>>,
    shortcut: Vec<Box<dyn Layer>>,
    join: LifNeuron,
}

impl Clone for ResidualBlock {
    fn clone(&self) -> Self {
        ResidualBlock {
            main: self.main.clone(),
            shortcut: self.shortcut.clone(),
            join: self.join.clone(),
        }
    }
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("main_layers", &self.main.len())
            .field("shortcut_layers", &self.shortcut.len())
            .finish()
    }
}

impl ResidualBlock {
    /// Creates a residual block; `shortcut` may be empty for identity.
    pub fn new(
        main: Vec<Box<dyn Layer>>,
        shortcut: Vec<Box<dyn Layer>>,
        lif: LifConfig,
    ) -> Self {
        ResidualBlock { main, shortcut, join: LifNeuron::new(lif) }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut m = input.clone();
        for l in &mut self.main {
            m = l.forward(&m, mode)?;
        }
        let mut s = input.clone();
        for l in &mut self.shortcut {
            s = l.forward(&s, mode)?;
        }
        let joined = m.add(&s)?;
        self.join.forward(&joined, mode)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        // Run both branches through the arena, recycling each intermediate as
        // soon as the next layer has consumed it. `None` stands for "still
        // the block input", which must not be recycled (the caller owns it).
        let mut m: Option<Tensor> = None;
        for l in &mut self.main {
            let y = l.forward_ws(m.as_ref().unwrap_or(input), mode, ws)?;
            if let Some(prev) = m.take() {
                ws.recycle_tensor(prev);
            }
            m = Some(y);
        }
        let mut s: Option<Tensor> = None;
        for l in &mut self.shortcut {
            let y = l.forward_ws(s.as_ref().unwrap_or(input), mode, ws)?;
            if let Some(prev) = s.take() {
                ws.recycle_tensor(prev);
            }
            s = Some(y);
        }
        let (mt, st) = (m.as_ref().unwrap_or(input), s.as_ref().unwrap_or(input));
        if mt.dims() != st.dims() {
            return Err(SnnError::from(TensorError::ShapeMismatch {
                expected: mt.dims().to_vec(),
                actual: st.dims().to_vec(),
            }));
        }
        let mut j = ws.take(mt.len());
        for ((o, &a), &b) in j.iter_mut().zip(mt.data()).zip(st.data()) {
            *o = a + b;
        }
        let joined = Tensor::from_aligned(j, mt.dims()).map_err(SnnError::from)?;
        if let Some(t) = m {
            ws.recycle_tensor(t);
        }
        if let Some(t) = s {
            ws.recycle_tensor(t);
        }
        let out = self.join.forward_ws(&joined, mode, ws)?;
        ws.recycle_tensor(joined);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let g = self.join.backward(grad_out)?;
        let mut gm = g.clone();
        for l in self.main.iter_mut().rev() {
            gm = l.backward(&gm)?;
        }
        let mut gs = g;
        for l in self.shortcut.iter_mut().rev() {
            gs = l.backward(&gs)?;
        }
        Ok(gm.add(&gs)?)
    }

    fn reset_state(&mut self) {
        for l in &mut self.main {
            l.reset_state();
        }
        for l in &mut self.shortcut {
            l.reset_state();
        }
        self.join.reset_state();
    }

    fn reset_state_ws(&mut self, ws: &mut Workspace) {
        for l in &mut self.main {
            l.reset_state_ws(ws);
        }
        for l in &mut self.shortcut {
            l.reset_state_ws(ws);
        }
        self.join.reset_state_ws(ws);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.main {
            l.visit_params(f);
        }
        for l in &mut self.shortcut {
            l.visit_params(f);
        }
    }

    fn freeze_stats(&mut self) {
        for l in &mut self.main {
            l.freeze_stats();
        }
        for l in &mut self.shortcut {
            l.freeze_stats();
        }
        self.join.freeze_stats();
    }

    fn kind(&self) -> &'static str {
        "residual"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn last_spike_density(&self) -> Option<f32> {
        self.join.last_spike_density()
    }

    fn last_spike_row_densities(&self) -> Option<&[f32]> {
        self.join.last_spike_row_densities()
    }

    fn select_batch_rows(&mut self, rows: &[usize]) -> Result<()> {
        for l in &mut self.main {
            l.select_batch_rows(rows)?;
        }
        for l in &mut self.shortcut {
            l.select_batch_rows(rows)?;
        }
        self.join.select_batch_rows(rows)
    }

    fn select_batch_rows_ws(&mut self, rows: &[usize], ws: &mut Workspace) -> Result<()> {
        for l in &mut self.main {
            l.select_batch_rows_ws(rows, ws)?;
        }
        for l in &mut self.shortcut {
            l.select_batch_rows_ws(rows, ws)?;
        }
        self.join.select_batch_rows_ws(rows, ws)
    }

    fn pad_batch_rows(&mut self, extra: usize, ws: &mut Workspace) -> Result<()> {
        for l in &mut self.main {
            l.pad_batch_rows(extra, ws)?;
        }
        for l in &mut self.shortcut {
            l.pad_batch_rows(extra, ws)?;
        }
        self.join.pad_batch_rows(extra, ws)
    }

    fn backend_choices(&self, name: &str, out: &mut Vec<(String, &'static str)>) {
        for (i, l) in self.main.iter().enumerate() {
            l.backend_choices(&format!("{name}.main{i}"), out);
        }
        for (i, l) in self.shortcut.iter().enumerate() {
            l.backend_choices(&format!("{name}.shortcut{i}"), out);
        }
    }

    fn quantize_weights(&mut self, bits: u32) {
        for l in &mut self.main {
            l.quantize_weights(bits);
        }
        for l in &mut self.shortcut {
            l.quantize_weights(bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TensorRng {
        TensorRng::seed_from(42)
    }

    #[test]
    fn linear_forward_backward_shapes() {
        let mut r = rng();
        let mut lin = Linear::new(4, 3, &mut r);
        let x = Tensor::ones(&[2, 4]);
        let y = lin.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        let gx = lin.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(gx.dims(), &[2, 4]);
        assert!(matches!(lin.backward(&Tensor::ones(&[2, 3])), Err(SnnError::MissingForwardCache(_))));
    }

    #[test]
    fn linear_gradient_matches_finite_difference() {
        let mut r = rng();
        let mut lin = Linear::new(3, 2, &mut r);
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut r);
        let y = lin.forward(&x, Mode::Train).unwrap();
        let loss0 = y.sum();
        lin.backward(&Tensor::ones(&[2, 2])).unwrap();
        let mut grads = Vec::new();
        lin.visit_params(&mut |p: &mut Param| grads.push(p.grad.clone()));
        // dL/dW[0,0] for L = Σy is Σ_batch x[:,0]
        let expect = x.data()[0] + x.data()[3];
        assert!((grads[0].data()[0] - expect).abs() < 1e-5);
        // perturb W[0,0] and confirm numerically
        let eps = 1e-2;
        lin.reset_state();
        lin.weight_mut().data_mut()[0] += eps;
        let y2 = lin.forward(&x, Mode::Eval).unwrap();
        let num = (y2.sum() - loss0) / eps;
        assert!((num - grads[0].data()[0]).abs() < 1e-2, "num={num} ana={}", grads[0].data()[0]);
    }

    #[test]
    fn conv_layer_roundtrip_and_grad_accumulation() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut r).unwrap();
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = conv.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 2, 4, 4]);
        conv.backward(&Tensor::ones(y.dims())).unwrap();
        let mut total = 0.0;
        conv.visit_params(&mut |p| total += p.grad.norm_sq());
        assert!(total > 0.0);
    }

    #[test]
    fn batchnorm_converges_to_unit_stats() {
        // EMA statistics converge to the input distribution, so outputs
        // approach mean β = 0, std γ = 1.
        let mut bn = BatchNorm2d::new(2);
        let mut r = rng();
        let mut y = Tensor::zeros(&[8, 2, 3, 3]);
        for _ in 0..80 {
            let x = Tensor::randn(&[8, 2, 3, 3], 5.0, 2.0, &mut r);
            y = bn.forward(&x, Mode::Train).unwrap();
            bn.reset_state();
        }
        let mean = y.mean();
        let var = y.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / y.len() as f32;
        assert!(mean.abs() < 0.15, "mean={mean}");
        assert!((var - 1.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn tdbn_gamma_scales_output() {
        let mut bn = BatchNorm2d::tdbn(1, 2.0);
        let mut r = rng();
        let mut y = Tensor::zeros(&[8, 1, 4, 4]);
        for _ in 0..80 {
            let x = Tensor::randn(&[8, 1, 4, 4], 0.0, 1.0, &mut r);
            y = bn.forward(&x, Mode::Train).unwrap();
            bn.reset_state();
        }
        let mean = y.mean();
        let var = y.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / y.len() as f32;
        assert!((var - 4.0).abs() < 1.0, "var={var}");
    }

    #[test]
    fn batchnorm_eval_matches_train_transform() {
        // After warm-up, Train and Eval apply the same affine transform
        // (both use the EMA statistics) — train/eval consistency is the point
        // of constant-statistics normalization.
        let mut bn = BatchNorm2d::new(1);
        let mut r = rng();
        for _ in 0..50 {
            let x = Tensor::randn(&[16, 1, 2, 2], 3.0, 1.0, &mut r);
            bn.forward(&x, Mode::Train).unwrap();
            bn.reset_state();
        }
        // A larger probe batch keeps the train-mode EMA update small, so the
        // residual Eval/Train gap is dominated by the momentum (0.1) times the
        // batch-statistic sampling error rather than by the stream draw.
        let x = Tensor::randn(&[16, 1, 2, 2], 3.0, 1.0, &mut r);
        let ye = bn.forward(&x, Mode::Eval).unwrap();
        bn.reset_state();
        let yt = bn.forward(&x, Mode::Train).unwrap();
        bn.reset_state();
        for (a, b) in ye.data().iter().zip(yt.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn batchnorm_per_timestep_slots_are_independent() {
        let mut bn = BatchNorm2d::per_timestep(1, 1.0);
        let mut r = rng();
        // t=0 sees mean 0, t=1 sees mean 10
        for _ in 0..60 {
            let x0 = Tensor::randn(&[8, 1, 2, 2], 0.0, 1.0, &mut r);
            let x1 = Tensor::randn(&[8, 1, 2, 2], 10.0, 1.0, &mut r);
            bn.forward(&x0, Mode::Train).unwrap();
            bn.forward(&x1, Mode::Train).unwrap();
            bn.reset_state();
        }
        // eval: each timestep normalized by its own statistics → both ≈ 0 mean
        let x0 = Tensor::full(&[1, 1, 2, 2], 0.0);
        let x1 = Tensor::full(&[1, 1, 2, 2], 10.0);
        let y0 = bn.forward(&x0, Mode::Eval).unwrap();
        let y1 = bn.forward(&x1, Mode::Eval).unwrap();
        assert!(y0.mean().abs() < 0.5, "t0 mean {}", y0.mean());
        assert!(y1.mean().abs() < 0.5, "t1 mean {}", y1.mean());
        // shared-stats layer would misnormalize one of them
        assert_eq!(bn.stats_mode(), BnStats::PerTimestep);
    }

    #[test]
    fn batchnorm_backward_gamma_beta_finite_difference() {
        let mut r = rng();
        let x = Tensor::randn(&[4, 1, 2, 2], 1.0, 2.0, &mut r);
        let mut bn = BatchNorm2d::new(1);
        // warm EMA so the transform is stable
        for _ in 0..30 {
            bn.forward(&x, Mode::Train).unwrap();
            bn.reset_state();
        }
        let y = bn.forward(&x, Mode::Train).unwrap();
        // loss = Σ y² / 2 → dL/dy = y
        let gx = bn.backward(&y).unwrap();
        // dx = dy·γ·inv_std: uniform positive scale of dy
        let ratio = gx.data()[0] / y.data()[0];
        for (g, v) in gx.data().iter().zip(y.data()) {
            assert!((g / v - ratio).abs() < 1e-4);
        }
        // gamma/beta grads: perturb and compare loss (statistics unaffected
        // by parameter perturbation, so FD is exact up to EMA drift)
        let mut grads = Vec::new();
        bn.visit_params(&mut |p: &mut Param| grads.push(p.grad.clone()));
        let loss0 = y.norm_sq() / 2.0;
        let eps = 1e-3;
        for (idx, _) in grads.iter().enumerate() {
            let mut bn2 = bn.clone();
            bn2.reset_state();
            let mut which = 0;
            bn2.visit_params(&mut |p: &mut Param| {
                if which == idx {
                    p.value.data_mut()[0] += eps;
                }
                which += 1;
            });
            let y2 = bn2.forward(&x, Mode::Eval).unwrap();
            let num = (y2.norm_sq() / 2.0 - loss0) / eps;
            let ana = grads[idx].data()[0];
            assert!((num - ana).abs() / ana.abs().max(1.0) < 0.15,
                "param {idx}: fd {num} vs analytic {ana}");
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = fl.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        let g = fl.backward(&y).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn dropout_eval_is_identity_train_scales() {
        let mut r = rng();
        let mut drop = Dropout::new(0.5, &mut r).unwrap();
        let x = Tensor::ones(&[1, 1000]);
        let ye = drop.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ye, x);
        let yt = drop.forward(&x, Mode::Train).unwrap();
        // inverted dropout: E[y] = x, so the mean should be ≈ 1
        assert!((yt.mean() - 1.0).abs() < 0.1, "mean={}", yt.mean());
        // surviving values are scaled by 1/keep = 2
        assert!(yt.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert!(Dropout::new(1.0, &mut r).is_err());
    }

    #[test]
    fn residual_identity_shortcut_adds_input() {
        let mut r = rng();
        // main path: conv that is zero-initialized → output = LIF(0 + x)
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut r).unwrap();
        conv.visit_params(&mut |p| p.value.map_inplace(|_| 0.0));
        let lif = LifConfig { v_th: 0.5, ..LifConfig::default() };
        let mut block = ResidualBlock::new(vec![Box::new(conv)], vec![], lif);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = block.forward(&x, Mode::Eval).unwrap();
        // x = 1 > v_th = 0.5 → all spike
        assert_eq!(y.sum(), 16.0);
        assert_eq!(block.last_spike_density(), Some(1.0));
    }

    #[test]
    fn residual_backward_splits_gradient() {
        let mut r = rng();
        let conv = Conv2d::new(1, 1, 3, 1, 1, &mut r).unwrap();
        let lif = LifConfig { v_th: 1.0, ..LifConfig::default() };
        let mut block = ResidualBlock::new(vec![Box::new(conv)], vec![], lif);
        let x = Tensor::full(&[1, 1, 4, 4], 0.9);
        block.forward(&x, Mode::Train).unwrap();
        let gx = block.backward(&Tensor::ones(&[1, 1, 4, 4])).unwrap();
        assert_eq!(gx.dims(), &[1, 1, 4, 4]);
    }

    #[test]
    fn batchnorm_eval_is_bitwise_invariant_across_simd_levels_and_threads() {
        use dtsnn_tensor::{parallel, simd};
        let _guard = crate::test_support::SIMD_TEST_LOCK.lock().unwrap();
        let mut r = rng();
        let mut bn = BatchNorm2d::new(3);
        for _ in 0..10 {
            let x = Tensor::randn(&[4, 3, 5, 5], 1.0, 2.0, &mut r);
            bn.forward(&x, Mode::Train).unwrap();
            bn.reset_state();
        }
        let x = Tensor::randn(&[4, 3, 5, 5], 1.0, 2.0, &mut r);
        let run = |level: simd::SimdLevel, threads: usize| {
            simd::with_level(level, || {
                parallel::with_threads(threads, || {
                    let mut b = bn.clone();
                    let mut ws = Workspace::new();
                    let y = b.forward_ws(&x, Mode::Eval, &mut ws).unwrap();
                    y.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                })
            })
        };
        let want = run(simd::SimdLevel::Scalar, 1);
        for &lvl in simd::SimdLevel::ALL.iter().filter(|&&l| l <= simd::detected()) {
            for threads in [1usize, 4] {
                assert_eq!(want, run(lvl, threads), "{lvl:?} threads={threads}");
            }
        }
    }
}
