//! Mini-batch surrogate-gradient trainer (BPTT over the full timestep
//! window) with the paper's recipe: SGD + momentum, cosine decay, L2.

use crate::loss::LossKind;
use crate::network::Snn;
use crate::optim::{CosineSchedule, Sgd, SgdConfig};
use crate::{Mode, Result, SnnError};
use dtsnn_tensor::{Tensor, TensorRng};

/// Trainer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Timestep window `T` used for training.
    pub timesteps: usize,
    /// Loss function (Eq. 9 for static SNN baselines, Eq. 10 for DT-SNN).
    pub loss: LossKind,
    /// Optimizer hyperparameters.
    pub sgd: SgdConfig,
    /// Seed for batch shuffling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 10,
            batch_size: 32,
            timesteps: 4,
            loss: LossKind::PerTimestep,
            sgd: SgdConfig::default(),
            seed: 0,
        }
    }
}

impl TrainerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for zero extents, plus SGD errors.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.batch_size == 0 || self.timesteps == 0 {
            return Err(SnnError::InvalidConfig(
                "epochs, batch_size and timesteps must be nonzero".into(),
            ));
        }
        self.sgd.validate()
    }
}

/// Per-epoch training trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_loss: Vec<f32>,
    /// Training accuracy of each epoch (on mean logits over `T`).
    pub epoch_accuracy: Vec<f32>,
}

impl TrainReport {
    /// Loss of the final epoch (`NaN` if training never ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_loss.last().copied().unwrap_or(f32::NAN)
    }

    /// Accuracy of the final epoch (`NaN` if training never ran).
    pub fn final_accuracy(&self) -> f32 {
        self.epoch_accuracy.last().copied().unwrap_or(f32::NAN)
    }
}

/// Drives surrogate-gradient training of an [`Snn`].
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for invalid hyperparameters.
    pub fn new(config: TrainerConfig) -> Result<Self> {
        config.validate()?;
        Ok(Trainer { config })
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains `network` on `(frames, labels)`.
    ///
    /// `frames[i]` holds the frame sequence of sample `i`: one `[c, h, w]`
    /// tensor for static images (direct encoding repeats it every timestep)
    /// or `timesteps` tensors for event data.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::BadInput`] when `frames` and `labels` disagree or
    /// are empty, plus any layer/loss errors.
    pub fn fit(
        &self,
        network: &mut Snn,
        frames: &[Vec<Tensor>],
        labels: &[usize],
    ) -> Result<TrainReport> {
        if frames.is_empty() || frames.len() != labels.len() {
            return Err(SnnError::BadInput(format!(
                "{} frame sequences vs {} labels",
                frames.len(),
                labels.len()
            )));
        }
        let cfg = &self.config;
        let mut sgd = Sgd::new(cfg.sgd)?;
        let schedule = CosineSchedule::new(cfg.sgd.lr, cfg.epochs)?;
        let mut rng = TensorRng::seed_from(cfg.seed);
        let mut order: Vec<usize> = (0..frames.len()).collect();
        let mut report = TrainReport::default();
        for epoch in 0..cfg.epochs {
            sgd.set_lr(schedule.lr_at(epoch));
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            let mut correct = 0usize;
            let mut seen = 0usize;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let (batch_frames, batch_labels) = gather_batch(frames, labels, chunk)?;
                let outputs =
                    network.forward_sequence(&batch_frames, cfg.timesteps, Mode::Train)?;
                let (loss, grads) = cfg.loss.compute(&outputs, &batch_labels)?;
                network.zero_grads();
                for g in grads.iter().rev() {
                    network.backward_timestep(g)?;
                }
                sgd.step(network);
                epoch_loss += loss;
                batches += 1;
                // training accuracy on the averaged logits
                let mut mean = outputs[0].clone();
                for o in &outputs[1..] {
                    mean.axpy(1.0, o)?;
                }
                let preds = mean.argmax_rows()?;
                correct += preds.iter().zip(&batch_labels).filter(|(p, l)| p == l).count();
                seen += batch_labels.len();
            }
            report.epoch_loss.push(epoch_loss / batches.max(1) as f32);
            report.epoch_accuracy.push(correct as f32 / seen.max(1) as f32);
        }
        Ok(report)
    }

    /// Top-1 accuracy of `network` on `(frames, labels)` using the
    /// timestep-averaged logits at the full window `T` (the static-SNN
    /// evaluation protocol).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::BadInput`] for mismatched inputs.
    pub fn evaluate(
        &self,
        network: &mut Snn,
        frames: &[Vec<Tensor>],
        labels: &[usize],
    ) -> Result<f32> {
        evaluate_at(network, frames, labels, self.config.timesteps, self.config.batch_size)
    }
}

/// Accuracy at an arbitrary timestep budget (used by Fig. 2's sweep).
///
/// # Errors
///
/// Returns [`SnnError::BadInput`] for mismatched inputs.
pub fn evaluate_at(
    network: &mut Snn,
    frames: &[Vec<Tensor>],
    labels: &[usize],
    timesteps: usize,
    batch_size: usize,
) -> Result<f32> {
    if frames.is_empty() || frames.len() != labels.len() {
        return Err(SnnError::BadInput("frames/labels length mismatch or empty".into()));
    }
    let order: Vec<usize> = (0..frames.len()).collect();
    let mut correct = 0usize;
    for chunk in order.chunks(batch_size.max(1)) {
        let (batch_frames, batch_labels) = gather_batch(frames, labels, chunk)?;
        let outputs = network.forward_sequence(&batch_frames, timesteps, Mode::Eval)?;
        let mut mean = outputs[0].clone();
        for o in &outputs[1..] {
            mean.axpy(1.0, o)?;
        }
        let preds = mean.argmax_rows()?;
        correct += preds.iter().zip(&batch_labels).filter(|(p, l)| p == l).count();
    }
    Ok(correct as f32 / labels.len() as f32)
}

/// Stacks per-sample frame sequences into per-timestep batch tensors.
fn gather_batch(
    frames: &[Vec<Tensor>],
    labels: &[usize],
    idx: &[usize],
) -> Result<(Vec<Tensor>, Vec<usize>)> {
    let t_frames = frames[idx[0]].len();
    for &i in idx {
        if frames[i].len() != t_frames {
            return Err(SnnError::BadInput("mixed static/temporal samples in one batch".into()));
        }
    }
    let mut batch_frames = Vec::with_capacity(t_frames);
    #[allow(clippy::needless_range_loop)] // t indexes into every sample's frames
    for t in 0..t_frames {
        let views: Vec<Tensor> = idx
            .iter()
            .map(|&i| {
                let f = &frames[i][t];
                let mut dims = vec![1];
                dims.extend_from_slice(f.dims());
                f.reshape(&dims)
            })
            .collect::<std::result::Result<_, _>>()?;
        let refs: Vec<&Tensor> = views.iter().collect();
        batch_frames.push(Tensor::concat_axis0(&refs)?);
    }
    let batch_labels = idx.iter().map(|&i| labels[i]).collect();
    Ok((batch_frames, batch_labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear};
    use crate::lif::{LifConfig, LifNeuron};
    use crate::Surrogate;

    /// A linearly separable toy problem: class = argmax over 3 pixel groups.
    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<Tensor>>, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut frames = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let class = rng.below(3);
            let mut img = Tensor::randn(&[1, 3, 3], 0.2, 0.1, &mut rng);
            // make the class's row bright
            for j in 0..3 {
                let v = img.at(&[0, class, j]).unwrap();
                img.set(&[0, class, j], v + 1.0).unwrap();
            }
            frames.push(vec![img]);
            labels.push(class);
        }
        (frames, labels)
    }

    fn toy_net(seed: u64) -> Snn {
        let mut rng = TensorRng::seed_from(seed);
        let lif = LifConfig { surrogate: Surrogate::Rectangular, ..LifConfig::default() };
        Snn::from_layers(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(9, 16, &mut rng)),
            Box::new(LifNeuron::new(lif)),
            Box::new(Linear::new(16, 3, &mut rng)),
        ])
    }

    #[test]
    fn trainer_validates_config() {
        assert!(Trainer::new(TrainerConfig { epochs: 0, ..TrainerConfig::default() }).is_err());
        assert!(Trainer::new(TrainerConfig::default()).is_ok());
    }

    #[test]
    fn trainer_rejects_mismatched_data() {
        let t = Trainer::new(TrainerConfig::default()).unwrap();
        let mut net = toy_net(0);
        let (frames, _) = toy_data(4, 0);
        assert!(t.fit(&mut net, &frames, &[0, 1]).is_err());
        assert!(t.fit(&mut net, &[], &[]).is_err());
    }

    #[test]
    fn training_learns_separable_problem() {
        let (frames, labels) = toy_data(90, 1);
        let mut net = toy_net(7);
        let cfg = TrainerConfig {
            epochs: 25,
            batch_size: 16,
            timesteps: 2,
            loss: LossKind::PerTimestep,
            sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 },
            seed: 3,
        };
        let trainer = Trainer::new(cfg).unwrap();
        let report = trainer.fit(&mut net, &frames, &labels).unwrap();
        assert!(report.final_accuracy() > 0.85, "train acc = {}", report.final_accuracy());
        let (test_frames, test_labels) = toy_data(60, 2);
        let acc = trainer.evaluate(&mut net, &test_frames, &test_labels).unwrap();
        assert!(acc > 0.8, "test acc = {acc}");
    }

    #[test]
    fn both_losses_reduce_loss_over_epochs() {
        for loss in [LossKind::MeanOutput, LossKind::PerTimestep] {
            let (frames, labels) = toy_data(60, 4);
            let mut net = toy_net(9);
            let cfg = TrainerConfig {
                epochs: 8,
                batch_size: 16,
                timesteps: 2,
                loss,
                sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0 },
                seed: 5,
            };
            let trainer = Trainer::new(cfg).unwrap();
            let report = trainer.fit(&mut net, &frames, &labels).unwrap();
            assert!(
                report.final_loss() < report.epoch_loss[0],
                "{loss:?}: {} !< {}",
                report.final_loss(),
                report.epoch_loss[0]
            );
        }
    }

    #[test]
    fn evaluate_at_lower_timesteps_runs() {
        let (frames, labels) = toy_data(20, 6);
        let mut net = toy_net(11);
        let acc1 = evaluate_at(&mut net, &frames, &labels, 1, 8).unwrap();
        let acc4 = evaluate_at(&mut net, &frames, &labels, 4, 8).unwrap();
        assert!((0.0..=1.0).contains(&acc1));
        assert!((0.0..=1.0).contains(&acc4));
    }

    #[test]
    fn gather_batch_rejects_ragged_sequences() {
        let f = vec![vec![Tensor::zeros(&[1, 2, 2])], vec![
            Tensor::zeros(&[1, 2, 2]),
            Tensor::zeros(&[1, 2, 2]),
        ]];
        let l = vec![0, 1];
        assert!(gather_batch(&f, &l, &[0, 1]).is_err());
    }
}
