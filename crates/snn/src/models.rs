//! Model builders.
//!
//! Two families are provided:
//!
//! 1. **Trainable, scaled-down backbones** ([`vgg_small`], [`resnet_small`])
//!    — VGG- and ResNet-style spiking networks sized so that CPU training
//!    converges in seconds. These drive every accuracy experiment.
//! 2. **Paper-size layer geometries** ([`vgg16_geometry`],
//!    [`resnet19_geometry`]) — the exact layer shapes of VGG-16 and
//!    ResNet-19 used for the IMC mapping/energy experiments (Fig. 1), which
//!    need only geometry and spike statistics, not trained weights.

use crate::layer::Layer;
use crate::layers::{AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, Linear, ResidualBlock};
use crate::lif::{LifConfig, LifNeuron};
use crate::network::Snn;
use crate::{Result, SnnError};
use dtsnn_tensor::TensorRng;

/// Configuration shared by the scaled model builders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Input channels (1 for event frames, 3 for RGB-like synthetic images).
    pub in_channels: usize,
    /// Input spatial extent (square).
    pub image_size: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// LIF neuron configuration used throughout.
    pub lif: LifConfig,
    /// Base channel width (default 32).
    pub width: usize,
    /// tdBN scale α: BatchNorm γ is initialized to `α·V_th`. α < 1 makes
    /// pre-activations small relative to the threshold, so the membrane
    /// needs several timesteps to charge — the mechanism behind the paper's
    /// low first-timestep accuracy.
    pub tdbn_alpha: f32,
    /// Dropout probability before the classifier (0 disables).
    pub dropout: f32,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            in_channels: 3,
            image_size: 16,
            num_classes: 10,
            lif: LifConfig::default(),
            width: 32,
            tdbn_alpha: 1.0,
            dropout: 0.0,
        }
    }
}

impl ModelConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when extents are zero or the image
    /// is too small for two 2× poolings.
    pub fn validate(&self) -> Result<()> {
        self.lif.validate()?;
        if self.in_channels == 0 || self.num_classes == 0 || self.width == 0 {
            return Err(SnnError::InvalidConfig("channels/classes/width must be nonzero".into()));
        }
        if self.tdbn_alpha <= 0.0 {
            return Err(SnnError::InvalidConfig("tdbn_alpha must be positive".into()));
        }
        if self.image_size < 8 || !self.image_size.is_multiple_of(4) {
            return Err(SnnError::InvalidConfig(format!(
                "image_size must be a multiple of 4 and ≥ 8, got {}",
                self.image_size
            )));
        }
        Ok(())
    }
}

fn bn(channels: usize, config: &ModelConfig) -> BatchNorm2d {
    // tdBN-style init: γ = α·V_th (Zheng et al. [23]).
    BatchNorm2d::tdbn(channels, config.tdbn_alpha * config.lif.v_th)
}

/// Builds the scaled spiking VGG used for accuracy experiments:
/// `[Conv-BN-LIF]×2 → pool → [Conv-BN-LIF]×2 → pool → Conv-BN-LIF → FC`.
///
/// With defaults (16×16, width 32) this is a 6-layer network in the spirit
/// of the paper's VGG-16 but small enough to train on a CPU in seconds.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] for invalid configurations.
pub fn vgg_small(config: &ModelConfig, rng: &mut TensorRng) -> Result<Snn> {
    config.validate()?;
    let w = config.width;
    let lif = config.lif;
    let mut layers: Vec<Box<dyn Layer>> = vec![
        // direct encoding: the first Conv-BN-LIF block encodes pixels to spikes
        Box::new(Conv2d::new(config.in_channels, w, 3, 1, 1, rng)?),
        Box::new(bn(w, config)),
        Box::new(LifNeuron::new(lif)),
        Box::new(Conv2d::new(w, w, 3, 1, 1, rng)?),
        Box::new(bn(w, config)),
        Box::new(LifNeuron::new(lif)),
        Box::new(AvgPool2d::new(2)?),
        Box::new(Conv2d::new(w, 2 * w, 3, 1, 1, rng)?),
        Box::new(bn(2 * w, config)),
        Box::new(LifNeuron::new(lif)),
        Box::new(Conv2d::new(2 * w, 2 * w, 3, 1, 1, rng)?),
        Box::new(bn(2 * w, config)),
        Box::new(LifNeuron::new(lif)),
        Box::new(AvgPool2d::new(2)?),
        Box::new(Conv2d::new(2 * w, 2 * w, 3, 1, 1, rng)?),
        Box::new(bn(2 * w, config)),
        Box::new(LifNeuron::new(lif)),
        Box::new(Flatten::new()),
    ];
    if config.dropout > 0.0 {
        layers.push(Box::new(Dropout::new(config.dropout, rng)?));
    }
    let spatial = config.image_size / 4;
    layers.push(Box::new(Linear::new(2 * w * spatial * spatial, config.num_classes, rng)));
    Ok(Snn::from_layers(layers))
}

/// Builds the scaled spiking ResNet used for accuracy experiments:
/// stem Conv-BN-LIF, one identity residual block, pool, one projection
/// residual block (stride 2), pool, FC.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] for invalid configurations.
pub fn resnet_small(config: &ModelConfig, rng: &mut TensorRng) -> Result<Snn> {
    config.validate()?;
    let w = config.width;
    let lif = config.lif;
    // Stage 1: identity block at width w.
    let block1 = ResidualBlock::new(
        vec![
            Box::new(Conv2d::new(w, w, 3, 1, 1, rng)?),
            Box::new(bn(w, config)),
            Box::new(LifNeuron::new(lif)),
            Box::new(Conv2d::new(w, w, 3, 1, 1, rng)?),
            Box::new(bn(w, config)),
        ],
        vec![],
        lif,
    );
    // Stage 2: projection block w → 2w with stride 2.
    let block2 = ResidualBlock::new(
        vec![
            Box::new(Conv2d::new(w, 2 * w, 3, 2, 1, rng)?),
            Box::new(bn(2 * w, config)),
            Box::new(LifNeuron::new(lif)),
            Box::new(Conv2d::new(2 * w, 2 * w, 3, 1, 1, rng)?),
            Box::new(bn(2 * w, config)),
        ],
        vec![Box::new(Conv2d::new(w, 2 * w, 1, 2, 0, rng)?), Box::new(bn(2 * w, config))],
        lif,
    );
    let spatial = config.image_size / 4;
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(config.in_channels, w, 3, 1, 1, rng)?),
        Box::new(bn(w, config)),
        Box::new(LifNeuron::new(lif)),
        Box::new(block1),
        Box::new(block2),
        Box::new(AvgPool2d::new(2)?),
        Box::new(Flatten::new()),
        // stride-2 block then 2× pool → spatial = image/4 at width 2w
        Box::new(Linear::new(2 * w * spatial * spatial, config.num_classes, rng)),
    ];
    Ok(Snn::from_layers(layers))
}

// ===========================================================================
// Paper-size geometry descriptors (for the IMC mapper)
// ===========================================================================

/// Shape of one weight-bearing layer, as consumed by the IMC mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerGeometry {
    /// Convolution: channels, kernel, stride, padding and input extent.
    Conv {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Kernel extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        padding: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
    },
    /// Fully connected: feature counts.
    Fc {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

impl LayerGeometry {
    /// Weight-matrix shape `[rows, cols]` when unrolled for a crossbar:
    /// rows = fan-in (crossbar wordlines), cols = fan-out (bitlines).
    pub fn matrix_shape(&self) -> (usize, usize) {
        match *self {
            LayerGeometry::Conv { in_channels, out_channels, kernel, .. } => {
                (in_channels * kernel * kernel, out_channels)
            }
            LayerGeometry::Fc { in_features, out_features } => (in_features, out_features),
        }
    }

    /// Output spatial extent (1×1 for FC layers).
    pub fn output_hw(&self) -> (usize, usize) {
        match *self {
            LayerGeometry::Conv { kernel, stride, padding, in_h, in_w, .. } => {
                let oh = (in_h + 2 * padding - kernel) / stride + 1;
                let ow = (in_w + 2 * padding - kernel) / stride + 1;
                (oh, ow)
            }
            LayerGeometry::Fc { .. } => (1, 1),
        }
    }

    /// MAC operations for one inference timestep.
    pub fn macs(&self) -> usize {
        let (rows, cols) = self.matrix_shape();
        let (oh, ow) = self.output_hw();
        rows * cols * oh * ow
    }

    /// Number of crossbar input-vector presentations per timestep: one per
    /// output pixel for convs, one for FC.
    pub fn vector_presentations(&self) -> usize {
        let (oh, ow) = self.output_hw();
        oh * ow
    }
}

/// Where a mapped layer's input spikes come from, for aligning measured
/// [`crate::SpikeActivity`] with a geometry list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DensitySource {
    /// The analog-encoded network input (density treated as 1.0).
    Input,
    /// Output of the `i`-th spiking layer (forward order).
    SpikingLayer(usize),
}

/// Layer geometries of [`vgg_small`], aligned with its runtime structure.
pub fn vgg_small_geometry(config: &ModelConfig) -> Vec<LayerGeometry> {
    let w = config.width;
    let s = config.image_size;
    let half = s / 2;
    let quarter = s / 4;
    vec![
        LayerGeometry::Conv { in_channels: config.in_channels, out_channels: w, kernel: 3, stride: 1, padding: 1, in_h: s, in_w: s },
        LayerGeometry::Conv { in_channels: w, out_channels: w, kernel: 3, stride: 1, padding: 1, in_h: s, in_w: s },
        LayerGeometry::Conv { in_channels: w, out_channels: 2 * w, kernel: 3, stride: 1, padding: 1, in_h: half, in_w: half },
        LayerGeometry::Conv { in_channels: 2 * w, out_channels: 2 * w, kernel: 3, stride: 1, padding: 1, in_h: half, in_w: half },
        LayerGeometry::Conv { in_channels: 2 * w, out_channels: 2 * w, kernel: 3, stride: 1, padding: 1, in_h: quarter, in_w: quarter },
        LayerGeometry::Fc { in_features: 2 * w * quarter * quarter, out_features: config.num_classes },
    ]
}

/// Input-spike provenance of each [`vgg_small_geometry`] layer.
pub fn vgg_small_density_map() -> Vec<DensitySource> {
    vec![
        DensitySource::Input,
        DensitySource::SpikingLayer(0),
        DensitySource::SpikingLayer(1),
        DensitySource::SpikingLayer(2),
        DensitySource::SpikingLayer(3),
        DensitySource::SpikingLayer(4),
    ]
}

/// Layer geometries of [`resnet_small`], aligned with its runtime structure.
pub fn resnet_small_geometry(config: &ModelConfig) -> Vec<LayerGeometry> {
    let w = config.width;
    let s = config.image_size;
    let half = s / 2;
    let quarter = s / 4;
    vec![
        // stem
        LayerGeometry::Conv { in_channels: config.in_channels, out_channels: w, kernel: 3, stride: 1, padding: 1, in_h: s, in_w: s },
        // block 1 (identity shortcut)
        LayerGeometry::Conv { in_channels: w, out_channels: w, kernel: 3, stride: 1, padding: 1, in_h: s, in_w: s },
        LayerGeometry::Conv { in_channels: w, out_channels: w, kernel: 3, stride: 1, padding: 1, in_h: s, in_w: s },
        // block 2 main path (stride 2)
        LayerGeometry::Conv { in_channels: w, out_channels: 2 * w, kernel: 3, stride: 2, padding: 1, in_h: s, in_w: s },
        LayerGeometry::Conv { in_channels: 2 * w, out_channels: 2 * w, kernel: 3, stride: 1, padding: 1, in_h: half, in_w: half },
        // block 2 projection shortcut
        LayerGeometry::Conv { in_channels: w, out_channels: 2 * w, kernel: 1, stride: 2, padding: 0, in_h: s, in_w: s },
        LayerGeometry::Fc { in_features: 2 * w * quarter * quarter, out_features: config.num_classes },
    ]
}

/// Input-spike provenance of each [`resnet_small_geometry`] layer.
///
/// [`crate::Snn`] observes densities of *top-level* spiking nodes only, so
/// [`resnet_small`] exposes three: stem LIF (0), block-1 join LIF (1),
/// block-2 join LIF (2). The LIFs *inside* the residual blocks are not
/// individually observable; their consumers use the enclosing block's join
/// density as the closest proxy (inner and join LIFs share the tdBN scale,
/// so their rates track each other).
pub fn resnet_small_density_map() -> Vec<DensitySource> {
    vec![
        DensitySource::Input,           // stem conv ← analog input
        DensitySource::SpikingLayer(0), // block-1 conv-1 ← stem LIF
        DensitySource::SpikingLayer(1), // block-1 conv-2 ← inner LIF ≈ join
        DensitySource::SpikingLayer(1), // block-2 conv-1 ← block-1 join LIF
        DensitySource::SpikingLayer(2), // block-2 conv-2 ← inner LIF ≈ join
        DensitySource::SpikingLayer(1), // block-2 shortcut ← block-1 join LIF
        DensitySource::SpikingLayer(2), // classifier ← block-2 join (pooled)
    ]
}

/// The 13 conv + 3 FC geometry of VGG-16 \[16\] at a given input extent
/// (32 for CIFAR, 64 for TinyImageNet).
pub fn vgg16_geometry(input_size: usize, in_channels: usize, classes: usize) -> Vec<LayerGeometry> {
    let cfg: [(usize, usize); 13] = [
        (in_channels, 64),
        (64, 64),
        (64, 128),
        (128, 128),
        (128, 256),
        (256, 256),
        (256, 256),
        (256, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
    ];
    // max-pool after conv indices 1, 3, 6, 9, 12 (0-based)
    let pool_after = [1usize, 3, 6, 9, 12];
    let mut layers = Vec::new();
    let mut hw = input_size;
    for (i, &(ci, co)) in cfg.iter().enumerate() {
        layers.push(LayerGeometry::Conv {
            in_channels: ci,
            out_channels: co,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: hw,
            in_w: hw,
        });
        if pool_after.contains(&i) {
            hw /= 2;
        }
    }
    let feat = 512 * hw * hw;
    layers.push(LayerGeometry::Fc { in_features: feat, out_features: 4096 });
    layers.push(LayerGeometry::Fc { in_features: 4096, out_features: 4096 });
    layers.push(LayerGeometry::Fc { in_features: 4096, out_features: classes });
    layers
}

/// The ResNet-19 geometry of Zheng et al. \[23\]: stem conv, stages of
/// [3, 3, 2] basic blocks at widths [128, 256, 512], then two FC layers.
pub fn resnet19_geometry(
    input_size: usize,
    in_channels: usize,
    classes: usize,
) -> Vec<LayerGeometry> {
    let mut layers = Vec::new();
    let mut hw = input_size;
    let mut c_in = 128;
    layers.push(LayerGeometry::Conv {
        in_channels,
        out_channels: 128,
        kernel: 3,
        stride: 1,
        padding: 1,
        in_h: hw,
        in_w: hw,
    });
    let stages = [(128usize, 3usize, 1usize), (256, 3, 2), (512, 2, 2)];
    for &(width, blocks, first_stride) in &stages {
        for b in 0..blocks {
            let stride = if b == 0 { first_stride } else { 1 };
            layers.push(LayerGeometry::Conv {
                in_channels: c_in,
                out_channels: width,
                kernel: 3,
                stride,
                padding: 1,
                in_h: hw,
                in_w: hw,
            });
            let out_hw = hw / stride;
            layers.push(LayerGeometry::Conv {
                in_channels: width,
                out_channels: width,
                kernel: 3,
                stride: 1,
                padding: 1,
                in_h: out_hw,
                in_w: out_hw,
            });
            if stride != 1 || c_in != width {
                // projection shortcut
                layers.push(LayerGeometry::Conv {
                    in_channels: c_in,
                    out_channels: width,
                    kernel: 1,
                    stride,
                    padding: 0,
                    in_h: hw,
                    in_w: hw,
                });
            }
            hw = out_hw;
            c_in = width;
        }
    }
    layers.push(LayerGeometry::Fc { in_features: 512 * hw * hw, out_features: 256 });
    layers.push(LayerGeometry::Fc { in_features: 256, out_features: classes });
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use dtsnn_tensor::Tensor;

    #[test]
    fn config_validation() {
        let mut c = ModelConfig::default();
        assert!(c.validate().is_ok());
        c.image_size = 10;
        assert!(c.validate().is_err());
        c.image_size = 16;
        c.num_classes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn vgg_small_forward_shape() {
        let mut rng = TensorRng::seed_from(1);
        let cfg = ModelConfig { num_classes: 7, ..ModelConfig::default() };
        let mut net = vgg_small(&cfg, &mut rng).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let outs = net.forward_sequence(&[x], 2, Mode::Eval).unwrap();
        assert_eq!(outs[0].dims(), &[2, 7]);
    }

    #[test]
    fn resnet_small_forward_shape() {
        let mut rng = TensorRng::seed_from(2);
        let cfg = ModelConfig { num_classes: 5, ..ModelConfig::default() };
        let mut net = resnet_small(&cfg, &mut rng).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let outs = net.forward_sequence(&[x], 2, Mode::Eval).unwrap();
        assert_eq!(outs[0].dims(), &[2, 5]);
    }

    #[test]
    fn vgg_small_trains_gradients_flow() {
        let mut rng = TensorRng::seed_from(3);
        let cfg = ModelConfig::default();
        let mut net = vgg_small(&cfg, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 16, 16], 0.5, 0.5, &mut rng);
        let outs = net.forward_sequence(&[x], 2, Mode::Train).unwrap();
        net.zero_grads();
        for _ in (0..outs.len()).rev() {
            net.backward_timestep(&Tensor::ones(&[2, 10])).unwrap();
        }
        let mut g = 0.0;
        net.visit_params(&mut |p| g += p.grad.norm_sq());
        assert!(g > 0.0);
    }

    #[test]
    fn vgg16_geometry_matches_paper_structure() {
        let g = vgg16_geometry(32, 3, 10);
        // 13 convs + 3 FCs
        assert_eq!(g.len(), 16);
        let convs = g.iter().filter(|l| matches!(l, LayerGeometry::Conv { .. })).count();
        assert_eq!(convs, 13);
        // last FC outputs the class count
        if let LayerGeometry::Fc { out_features, .. } = g[15] {
            assert_eq!(out_features, 10);
        } else {
            panic!("last layer must be FC");
        }
        // after 5 poolings a 32×32 input is 1×1 → first FC fan-in is 512
        if let LayerGeometry::Fc { in_features, .. } = g[13] {
            assert_eq!(in_features, 512);
        } else {
            panic!("layer 13 must be FC");
        }
    }

    #[test]
    fn resnet19_geometry_has_19_weight_stages() {
        let g = resnet19_geometry(32, 3, 10);
        // 1 stem + (3+3+2)*2 block convs + 2 projections + 2 FC = 21 matrices;
        // the "19" counts stem + 16 block convs + 2 FC (projections excluded).
        let convs = g.iter().filter(|l| matches!(l, LayerGeometry::Conv { .. })).count();
        let fcs = g.iter().filter(|l| matches!(l, LayerGeometry::Fc { .. })).count();
        assert_eq!(fcs, 2);
        assert_eq!(convs, 1 + 16 + 2);
        // total MACs should be dominated by the 512-wide stage
        let total: usize = g.iter().map(|l| l.macs()).sum();
        assert!(total > 1_000_000);
    }

    #[test]
    fn scaled_geometries_align_with_density_maps() {
        let cfg = ModelConfig::default();
        let vg = vgg_small_geometry(&cfg);
        assert_eq!(vg.len(), vgg_small_density_map().len());
        let rg = resnet_small_geometry(&cfg);
        assert_eq!(rg.len(), resnet_small_density_map().len());
        // classifier fan-in matches what the runtime models flatten to
        if let LayerGeometry::Fc { in_features, out_features } = vg[vg.len() - 1] {
            assert_eq!(in_features, 2 * cfg.width * 4 * 4);
            assert_eq!(out_features, cfg.num_classes);
        } else {
            panic!("vgg_small geometry must end in FC");
        }
        // every SpikingLayer index must be observable: vgg_small exposes 5
        // top-level LIFs, resnet_small exposes 3 (stem + two block joins)
        for src in vgg_small_density_map() {
            if let DensitySource::SpikingLayer(i) = src {
                assert!(i < 5);
            }
        }
        for src in resnet_small_density_map() {
            if let DensitySource::SpikingLayer(i) = src {
                assert!(i < 3);
            }
        }
    }

    #[test]
    fn geometry_macs_and_vectors() {
        let conv = LayerGeometry::Conv {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: 16,
            in_w: 16,
        };
        assert_eq!(conv.matrix_shape(), (27, 8));
        assert_eq!(conv.output_hw(), (16, 16));
        assert_eq!(conv.vector_presentations(), 256);
        assert_eq!(conv.macs(), 27 * 8 * 256);
        let fc = LayerGeometry::Fc { in_features: 100, out_features: 10 };
        assert_eq!(fc.macs(), 1000);
        assert_eq!(fc.vector_presentations(), 1);
    }
}
