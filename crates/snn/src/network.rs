//! The [`Snn`] container: a sequential spiking network evaluated over
//! timesteps (Eq. 1), with BPTT support and spike-activity accounting.

use crate::layer::{Layer, Mode, Param};
use crate::{Result, SnnError};
use dtsnn_tensor::{Tensor, Workspace, WorkspaceStats};

/// A named layer inside an [`Snn`], exposed for reports and hardware mapping.
pub struct LayerNode {
    /// Human-readable name (`"conv1"`, `"lif3"`, …).
    pub name: String,
    /// The layer itself.
    pub layer: Box<dyn Layer>,
}

impl Clone for LayerNode {
    fn clone(&self) -> Self {
        LayerNode { name: self.name.clone(), layer: self.layer.clone_box() }
    }
}

impl std::fmt::Debug for LayerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayerNode").field("name", &self.name).field("kind", &self.layer.kind()).finish()
    }
}

/// Average spike density per spiking layer, accumulated over the timesteps
/// and samples seen since the last [`Snn::take_activity`] call.
///
/// The IMC energy model consumes this: the crossbar input activity of layer
/// `ℓ+1` is the output density of spiking layer `ℓ`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpikeActivity {
    /// Mean output spike density of each spiking layer, in network order.
    pub per_layer: Vec<f32>,
    /// Number of timestep observations folded into the means.
    pub observations: usize,
}

impl SpikeActivity {
    /// Overall mean density across spiking layers (0 when empty).
    pub fn mean(&self) -> f32 {
        if self.per_layer.is_empty() {
            0.0
        } else {
            self.per_layer.iter().sum::<f32>() / self.per_layer.len() as f32
        }
    }
}

/// A feed-forward spiking network processed one timestep at a time.
///
/// The container owns an ordered list of layers ending (by convention) in a
/// classifier [`crate::Linear`]; the per-timestep output of
/// [`Snn::forward_timestep`] is the logits `h∘g^L∘…∘g¹(x)` of Eq. 1. The
/// caller is responsible for averaging logits across timesteps (the
/// dynamic-timestep policy in `dtsnn-core` does this incrementally).
pub struct Snn {
    layers: Vec<LayerNode>,
    /// Running sums of spike density per spiking layer.
    density_sums: Vec<f64>,
    density_obs: usize,
    /// Scratch arena for the Eval-mode timestep loop. Owned per network so
    /// no locking is needed; a cloned network starts with a fresh, empty
    /// arena (the clone-pool harness hands each worker its own clone).
    workspace: Workspace,
}

impl Clone for Snn {
    fn clone(&self) -> Self {
        Snn {
            layers: self.layers.clone(),
            density_sums: self.density_sums.clone(),
            density_obs: self.density_obs,
            workspace: Workspace::new(),
        }
    }
}

impl std::fmt::Debug for Snn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snn").field("layers", &self.layers).finish()
    }
}

impl Snn {
    /// Builds a network from named layers.
    pub fn new(layers: Vec<LayerNode>) -> Self {
        let spiking = layers.iter().filter(|n| n.layer.last_spike_density().is_some()).count();
        Snn {
            layers,
            density_sums: vec![0.0; spiking],
            density_obs: 0,
            workspace: Workspace::new(),
        }
    }

    /// Convenience constructor that auto-names layers `"<kind><idx>"`.
    pub fn from_layers(layers: Vec<Box<dyn Layer>>) -> Self {
        let nodes = layers
            .into_iter()
            .enumerate()
            .map(|(i, layer)| LayerNode { name: format!("{}{}", layer.kind(), i), layer })
            .collect();
        Snn::new(nodes)
    }

    /// The network's layers, in order.
    pub fn layers(&self) -> &[LayerNode] {
        &self.layers
    }

    /// Mutable access to the layers (used by the device-noise injector).
    pub fn layers_mut(&mut self) -> &mut [LayerNode] {
        &mut self.layers
    }

    /// Number of learnable scalar parameters.
    pub fn num_parameters(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }

    /// Clears all sequence state; call before each new input sequence.
    ///
    /// Retired carried buffers (LIF membranes) are parked in the network's
    /// workspace, so the next sample's timestep loop reuses them instead of
    /// allocating.
    pub fn reset_state(&mut self) {
        let ws = &mut self.workspace;
        for node in &mut self.layers {
            node.layer.reset_state_ws(ws);
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Freezes normalization statistics in every layer (see
    /// [`Layer::freeze_stats`]); used by the conformance gradient checker to
    /// make Train-mode forwards pure functions of the parameters.
    pub fn freeze_norm_stats(&mut self) {
        for node in &mut self.layers {
            node.layer.freeze_stats();
        }
    }

    /// Visits every learnable parameter in the network.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for node in &mut self.layers {
            node.layer.visit_params(f);
        }
    }

    /// Opts every weight layer into the quantized Eval backend on the
    /// signed `bits` grid (the IMC `weight_bits` deployment grid). The
    /// stored f32 weights are untouched; see [`Layer::quantize_weights`].
    pub fn quantize_weights(&mut self, bits: u32) {
        for node in &mut self.layers {
            node.layer.quantize_weights(bits);
        }
    }

    /// `(layer_name, backend_name)` for every dispatched kernel in the most
    /// recent Eval forward, in network order (see
    /// [`Layer::backend_choices`]). Empty before the first Eval pass.
    pub fn layer_backends(&self) -> Vec<(String, &'static str)> {
        let mut out = Vec::new();
        for node in &self.layers {
            node.layer.backend_choices(&node.name, &mut out);
        }
        out
    }

    /// Runs one timestep through the whole network, returning logits.
    ///
    /// In [`Mode::Eval`] every layer runs its workspace-backed kernel
    /// ([`Layer::forward_ws`]) and each intermediate activation is recycled
    /// as soon as the next layer has consumed it, so a warmed-up loop
    /// performs no heap allocation ([`Snn::workspace_stats`] proves it).
    /// The returned logits come from the arena too — callers that iterate
    /// timesteps should hand them back via [`Snn::recycle`] once folded.
    /// [`Mode::Train`] takes the plain [`Layer::forward`] path, whose
    /// backward caches make buffer reuse unsafe. Both paths are bitwise
    /// identical.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_timestep(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let ws = &mut self.workspace;
        let mut x: Option<Tensor> = None;
        let mut spiking_idx = 0;
        for node in &mut self.layers {
            let y = node.layer.forward_ws(x.as_ref().unwrap_or(input), mode, ws)?;
            if let Some(prev) = x.take() {
                if mode == Mode::Eval {
                    // Train-mode intermediates may share history with layer
                    // caches conceptually; only Eval buffers re-enter the arena.
                    ws.recycle_tensor(prev);
                }
            }
            x = Some(y);
            if let Some(d) = node.layer.last_spike_density() {
                self.density_sums[spiking_idx] += d as f64;
                spiking_idx += 1;
            }
        }
        self.density_obs += 1;
        match x {
            Some(out) => Ok(out),
            None => Ok(input.clone()),
        }
    }

    /// Backpropagates one timestep (call in reverse timestep order).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::MissingForwardCache`] when called more times than
    /// `forward_timestep` was called in [`Mode::Train`].
    pub fn backward_timestep(&mut self, grad_logits: &Tensor) -> Result<Tensor> {
        let mut g = grad_logits.clone();
        for node in self.layers.iter_mut().rev() {
            g = node.layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Runs a full sequence. `frames` holds either one frame (static input,
    /// repeated with direct encoding for `timesteps` steps — Sec. II) or one
    /// frame per timestep (event data).
    ///
    /// Returns the per-timestep logits.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::BadInput`] when `frames` is empty or its length
    /// disagrees with `timesteps`.
    pub fn forward_sequence(
        &mut self,
        frames: &[Tensor],
        timesteps: usize,
        mode: Mode,
    ) -> Result<Vec<Tensor>> {
        if frames.is_empty() {
            return Err(SnnError::BadInput("empty frame sequence".into()));
        }
        if frames.len() != 1 && frames.len() != timesteps {
            return Err(SnnError::BadInput(format!(
                "expected 1 or {timesteps} frames, got {}",
                frames.len()
            )));
        }
        self.reset_state();
        let mut outputs = Vec::with_capacity(timesteps);
        for t in 0..timesteps {
            let frame = if frames.len() == 1 { &frames[0] } else { &frames[t] };
            outputs.push(self.forward_timestep(frame, mode)?);
        }
        Ok(outputs)
    }

    /// Restricts every layer's carried batch state to the given axis-0 rows,
    /// in order (see [`Layer::select_batch_rows`]).
    ///
    /// This is the active-set compaction hook of the batched dynamic
    /// evaluation in `dtsnn-core`: between timesteps it retires samples whose
    /// exit policy fired, so later timesteps forward a physically smaller
    /// batch whose per-row state (LIF membranes) is bitwise identical to what
    /// a batch built from only the surviving samples would carry.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (e.g. an out-of-range row index).
    pub fn compact_batch(&mut self, rows: &[usize]) -> Result<()> {
        let ws = &mut self.workspace;
        for node in &mut self.layers {
            // workspace-backed gather: the retired membrane buffers re-enter
            // the arena, so compacting mid-window allocates nothing warmed
            node.layer.select_batch_rows_ws(rows, ws)?;
        }
        Ok(())
    }

    /// Appends `extra` fresh rows to every layer's carried batch state (see
    /// [`Layer::pad_batch_rows`]) — the row-insertion dual of
    /// [`Snn::compact_batch`], and the hook the continuous-batching serving
    /// engine in `dtsnn-serve` uses to splice newly admitted requests into
    /// an open inference window: compaction retires exited rows, admission
    /// pads the batch back out, and the spliced rows start from exactly the
    /// state a fresh sequence would give them while the surviving rows'
    /// membranes are untouched bitwise. Padding buffers come from the
    /// network's workspace, so a warmed serving loop stays allocation-free
    /// across width changes.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (e.g. carried state without a batch axis).
    pub fn admit_batch_rows(&mut self, extra: usize) -> Result<()> {
        let ws = &mut self.workspace;
        for node in &mut self.layers {
            node.layer.pad_batch_rows(extra, ws)?;
        }
        Ok(())
    }

    /// Per-batch-row output spike densities of every observable spiking
    /// layer for the most recent timestep, in network order (aligned with
    /// [`SpikeActivity::per_layer`] and the accumulators behind
    /// [`Snn::take_activity`]).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::BadInput`] if a spiking layer reports a scalar
    /// density but no per-row densities (every built-in spiking layer
    /// reports both).
    pub fn last_spike_row_densities(&self) -> Result<Vec<&[f32]>> {
        self.layers
            .iter()
            .filter(|n| n.layer.last_spike_density().is_some())
            .map(|n| {
                n.layer.last_spike_row_densities().ok_or_else(|| {
                    SnnError::BadInput(format!(
                        "layer '{}' reports spike density but not per-row densities",
                        n.name
                    ))
                })
            })
            .collect()
    }

    /// Returns and resets the raw spike-activity accumulators: per-layer
    /// density sums plus the timestep-observation count.
    ///
    /// The data-parallel harnesses in `dtsnn-core` call this once per sample
    /// on cloned networks and fold the raw sums back in sample-index order
    /// (via [`Snn::absorb_raw_activity`]); because every sample's sums start
    /// from zero, the folded totals are bitwise identical for any worker
    /// count.
    pub fn take_raw_activity(&mut self) -> (Vec<f64>, usize) {
        let n = self.density_sums.len();
        let sums = std::mem::replace(&mut self.density_sums, vec![0.0; n]);
        let obs = std::mem::take(&mut self.density_obs);
        (sums, obs)
    }

    /// Folds raw activity (from [`Snn::take_raw_activity`] on a clone) into
    /// this network's accumulators.
    pub fn absorb_raw_activity(&mut self, sums: &[f64], obs: usize) {
        debug_assert_eq!(sums.len(), self.density_sums.len());
        for (acc, &s) in self.density_sums.iter_mut().zip(sums) {
            *acc += s;
        }
        self.density_obs += obs;
    }

    /// Allocation counters of the network's scratch arena (see
    /// [`WorkspaceStats`]): a warmed-up Eval loop shows `misses == 0`.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.stats()
    }

    /// Zeroes the arena's allocation counters — call after a warm-up pass,
    /// before the span whose allocations you want to count.
    pub fn reset_workspace_stats(&mut self) {
        self.workspace.reset_stats();
    }

    /// Parks a tensor (typically logits returned by
    /// [`Snn::forward_timestep`]) back into the network's arena so the next
    /// timestep can reuse its buffer.
    pub fn recycle(&mut self, t: Tensor) {
        self.workspace.recycle_tensor(t);
    }

    /// Returns and resets the accumulated spike-activity statistics.
    pub fn take_activity(&mut self) -> SpikeActivity {
        let obs = self.density_obs.max(1);
        let per_layer =
            self.density_sums.iter().map(|&s| (s / obs as f64) as f32).collect();
        let activity = SpikeActivity { per_layer, observations: self.density_obs };
        for s in &mut self.density_sums {
            *s = 0.0;
        }
        self.density_obs = 0;
        activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear};
    use crate::lif::{LifConfig, LifNeuron};
    use dtsnn_tensor::{backend, BackendKind, TensorRng};
    use std::sync::Mutex;

    // Tests that force the process-wide kernel backend serialize here so
    // they cannot observe each other's override.
    static BACKEND_LOCK: Mutex<()> = Mutex::new(());

    fn tiny_net(rng: &mut TensorRng) -> Snn {
        Snn::from_layers(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(8, 6, rng)),
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(6, 3, rng)),
        ])
    }

    #[test]
    fn forward_sequence_static_repeats_frame() {
        let mut rng = TensorRng::seed_from(1);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 2, 2, 2], 0.0, 1.0, &mut rng);
        let outs = net.forward_sequence(&[x], 4, Mode::Eval).unwrap();
        assert_eq!(outs.len(), 4);
        assert_eq!(outs[0].dims(), &[2, 3]);
    }

    #[test]
    fn forward_sequence_validates_frame_count() {
        let mut rng = TensorRng::seed_from(1);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        assert!(net.forward_sequence(&[], 4, Mode::Eval).is_err());
        assert!(net.forward_sequence(&[x.clone(), x], 4, Mode::Eval).is_err());
    }

    #[test]
    fn activity_tracks_spiking_layers_only() {
        let mut rng = TensorRng::seed_from(2);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::full(&[1, 2, 2, 2], 5.0);
        net.forward_sequence(&[x], 3, Mode::Eval).unwrap();
        let act = net.take_activity();
        assert_eq!(act.per_layer.len(), 1); // one LIF
        assert_eq!(act.observations, 3);
        assert!(act.per_layer[0] > 0.0);
        // taking resets
        let act2 = net.take_activity();
        assert_eq!(act2.observations, 0);
    }

    #[test]
    fn raw_activity_roundtrips_through_absorb() {
        let mut rng = TensorRng::seed_from(5);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::full(&[1, 2, 2, 2], 5.0);

        // direct accumulation over two samples
        let mut direct = net.clone();
        direct.forward_sequence(std::slice::from_ref(&x), 3, Mode::Eval).unwrap();
        direct.forward_sequence(std::slice::from_ref(&x), 2, Mode::Eval).unwrap();
        let expect = direct.take_activity();

        // per-sample take + absorb in sample order must match exactly
        let mut worker = net.clone();
        worker.forward_sequence(std::slice::from_ref(&x), 3, Mode::Eval).unwrap();
        let (s0, o0) = worker.take_raw_activity();
        worker.forward_sequence(&[x], 2, Mode::Eval).unwrap();
        let (s1, o1) = worker.take_raw_activity();
        net.absorb_raw_activity(&s0, o0);
        net.absorb_raw_activity(&s1, o1);
        assert_eq!(net.take_activity(), expect);
    }

    #[test]
    fn compact_batch_matches_running_the_survivors_alone() {
        // Forward a 3-row batch one timestep, compact to rows {0, 2}, forward
        // a second timestep — the outputs must be bitwise identical to a
        // 2-row batch built from those samples and run for both timesteps.
        let mut rng = TensorRng::seed_from(7);
        let mut compacted = tiny_net(&mut rng);
        let reference_proto = compacted.clone();
        let x1 = Tensor::randn(&[3, 2, 2, 2], 0.0, 1.0, &mut rng);
        let x2 = Tensor::randn(&[3, 2, 2, 2], 0.0, 1.0, &mut rng);
        let keep = [0usize, 2];

        compacted.reset_state();
        compacted.forward_timestep(&x1, Mode::Eval).unwrap();
        compacted.compact_batch(&keep).unwrap();
        let out_compacted =
            compacted.forward_timestep(&x2.select_rows(&keep).unwrap(), Mode::Eval).unwrap();

        let mut reference = reference_proto;
        reference.reset_state();
        reference.forward_timestep(&x1.select_rows(&keep).unwrap(), Mode::Eval).unwrap();
        let out_reference =
            reference.forward_timestep(&x2.select_rows(&keep).unwrap(), Mode::Eval).unwrap();

        assert_eq!(out_compacted, out_reference);
    }

    #[test]
    fn admit_batch_rows_matches_running_the_spliced_row_alone() {
        // Forward a 2-row batch one timestep, splice in a third row, forward
        // again — the spliced row's output must be bitwise identical to that
        // sample's first solo timestep, and the carried rows must be bitwise
        // identical to a continuation that never saw the splice.
        let mut rng = TensorRng::seed_from(21);
        let mut server = tiny_net(&mut rng);
        let proto = server.clone();
        let x1 = Tensor::randn(&[2, 2, 2, 2], 0.0, 1.0, &mut rng);
        let x2_old = Tensor::randn(&[2, 2, 2, 2], 0.0, 1.0, &mut rng);
        let fresh = Tensor::randn(&[1, 2, 2, 2], 0.0, 1.0, &mut rng);

        server.reset_state();
        server.forward_timestep(&x1, Mode::Eval).unwrap();
        server.admit_batch_rows(1).unwrap();
        let input = Tensor::concat_axis0(&[&x2_old, &fresh]).unwrap();
        let out = server.forward_timestep(&input, Mode::Eval).unwrap();
        assert_eq!(out.dims()[0], 3);
        let classes = out.dims()[1];

        let mut solo = proto.clone();
        solo.reset_state();
        let solo_out = solo.forward_timestep(&fresh, Mode::Eval).unwrap();
        let spliced: Vec<u32> =
            out.data()[2 * classes..].iter().map(|v| v.to_bits()).collect();
        let solo_bits: Vec<u32> = solo_out.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(spliced, solo_bits, "spliced row must match a fresh solo run bitwise");

        let mut carried = proto;
        carried.reset_state();
        carried.forward_timestep(&x1, Mode::Eval).unwrap();
        let carried_out = carried.forward_timestep(&x2_old, Mode::Eval).unwrap();
        let old: Vec<u32> = out.data()[..2 * classes].iter().map(|v| v.to_bits()).collect();
        let old_ref: Vec<u32> = carried_out.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(old, old_ref, "carried rows must be bitwise untouched by the splice");
    }

    #[test]
    fn admit_batch_rows_on_a_fresh_network_is_a_no_op() {
        let mut rng = TensorRng::seed_from(23);
        let mut net = tiny_net(&mut rng);
        net.reset_state();
        net.admit_batch_rows(2).unwrap();
        // no carried state yet, so the next forward defines the batch width
        let x = Tensor::randn(&[3, 2, 2, 2], 0.0, 1.0, &mut rng);
        let out = net.forward_timestep(&x, Mode::Eval).unwrap();
        assert_eq!(out.dims(), &[3, 3]);
    }

    #[test]
    fn dynamic_batch_width_stays_allocation_free_after_warmup() {
        // The serving loop grows (admit) and shrinks (compact) the batch
        // mid-window; once warmed at the maximum width, every narrower width
        // must be served from the freelist — zero workspace misses.
        let mut rng = TensorRng::seed_from(24);
        let mut net = tiny_net(&mut rng);
        let max_width = 4usize;
        let full = Tensor::randn(&[max_width, 2, 2, 2], 0.0, 1.5, &mut rng);
        net.reset_state();
        for _ in 0..2 {
            let out = net.forward_timestep(&full, Mode::Eval).unwrap();
            net.recycle(out);
        }
        net.reset_state();
        net.reset_workspace_stats();
        // width trajectory 4 → 2 (compact) → 4 (admit) → 1 (compact), a
        // window per width with the carried membrane reshaped in between
        let out = net.forward_timestep(&full, Mode::Eval).unwrap();
        net.recycle(out);
        net.compact_batch(&[0, 2]).unwrap();
        let two = full.select_rows(&[0, 2]).unwrap();
        let out = net.forward_timestep(&two, Mode::Eval).unwrap();
        net.recycle(out);
        net.admit_batch_rows(2).unwrap();
        let out = net.forward_timestep(&full, Mode::Eval).unwrap();
        net.recycle(out);
        net.compact_batch(&[1]).unwrap();
        let one = full.select_rows(&[1]).unwrap();
        let out = net.forward_timestep(&one, Mode::Eval).unwrap();
        net.recycle(out);
        let stats = net.workspace_stats();
        assert!(stats.takes > 0);
        assert_eq!(stats.misses, 0, "warmed dynamic-width loop must not allocate: {stats:?}");
    }

    #[test]
    fn spike_row_densities_align_with_activity_accounting() {
        let mut rng = TensorRng::seed_from(9);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::full(&[2, 2, 2, 2], 5.0);
        net.forward_timestep(&x, Mode::Eval).unwrap();
        let rows = net.last_spike_row_densities().unwrap();
        assert_eq!(rows.len(), 1); // one LIF
        assert_eq!(rows[0].len(), 2); // one density per batch row
        // batch mean of the rows reproduces the scalar density
        let scalar = net.layers()[2].layer.last_spike_density().unwrap();
        assert!(((rows[0][0] + rows[0][1]) / 2.0 - scalar).abs() < 1e-6);
    }

    #[test]
    fn bptt_roundtrip_produces_gradients() {
        let mut rng = TensorRng::seed_from(3);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 2, 2, 2], 0.0, 2.0, &mut rng);
        let outs = net.forward_sequence(&[x], 3, Mode::Train).unwrap();
        net.zero_grads();
        for _ in (0..outs.len()).rev() {
            net.backward_timestep(&Tensor::ones(&[2, 3])).unwrap();
        }
        let mut gnorm = 0.0;
        net.visit_params(&mut |p| gnorm += p.grad.norm_sq());
        assert!(gnorm > 0.0);
        // extra backward → cache exhausted
        assert!(net.backward_timestep(&Tensor::ones(&[2, 3])).is_err());
    }

    #[test]
    fn workspace_forward_matches_plain_layer_chain_bitwise() {
        // forward_timestep routes through the arena-backed forward_ws path;
        // calling each layer's plain forward() by hand is the reference.
        let mut rng = TensorRng::seed_from(11);
        let mut net = tiny_net(&mut rng);
        let mut reference = net.clone();
        let frames: Vec<Tensor> =
            (0..3).map(|_| Tensor::randn(&[2, 2, 2, 2], 0.0, 1.5, &mut rng)).collect();
        net.reset_state();
        reference.reset_state();
        for f in &frames {
            let got = net.forward_timestep(f, Mode::Eval).unwrap();
            let mut want = f.clone();
            for node in &mut reference.layers {
                want = node.layer.forward(&want, Mode::Eval).unwrap();
            }
            let gb: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb);
            net.recycle(got);
        }
    }

    #[test]
    fn warmed_timestep_loop_allocates_nothing() {
        let mut rng = TensorRng::seed_from(12);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 2, 2, 2], 0.0, 1.5, &mut rng);
        // warm-up: one full sample populates every size class
        net.reset_state();
        for _ in 0..2 {
            let out = net.forward_timestep(&x, Mode::Eval).unwrap();
            net.recycle(out);
        }
        // steady state: fresh sample, same shapes → zero misses
        net.reset_state();
        net.reset_workspace_stats();
        for _ in 0..4 {
            let out = net.forward_timestep(&x, Mode::Eval).unwrap();
            net.recycle(out);
        }
        let stats = net.workspace_stats();
        assert!(stats.takes > 0);
        assert_eq!(stats.misses, 0, "warmed Eval loop must not allocate: {stats:?}");
    }

    #[test]
    fn forced_backends_agree_bitwise_and_are_recorded() {
        let _guard = BACKEND_LOCK.lock().unwrap();
        let mut rng = TensorRng::seed_from(13);
        let proto = tiny_net(&mut rng);
        let frames: Vec<Tensor> =
            (0..3).map(|_| Tensor::randn(&[2, 2, 2, 2], 0.0, 1.5, &mut rng)).collect();
        let run = |kind: BackendKind| {
            backend::with_backend(kind, || {
                let mut net = proto.clone();
                net.reset_state();
                let mut out_bits = Vec::new();
                for f in &frames {
                    let out = net.forward_timestep(f, Mode::Eval).unwrap();
                    out_bits.extend(out.data().iter().map(|v| v.to_bits()));
                    net.recycle(out);
                }
                (out_bits, net.layer_backends())
            })
        };
        let (want, dense_choices) = run(BackendKind::Dense);
        assert!(dense_choices.iter().all(|(_, b)| *b == "dense"), "{dense_choices:?}");
        for kind in [BackendKind::Csr, BackendKind::Bitset] {
            let (got, choices) = run(kind);
            assert_eq!(want, got, "{kind:?} must be bitwise identical to dense");
            assert!(!choices.is_empty());
            // forced bitset on a non-binary operand legally records csr
            for (name, b) in &choices {
                assert!(*b == "csr" || *b == "bitset", "{name}: {b}");
            }
        }
        // quantized: reproducible and recorded, but not bitwise-dense
        let (q1, q_choices) = run(BackendKind::Quantized);
        let (q2, _) = run(BackendKind::Quantized);
        assert_eq!(q1, q2, "quantized must be reproducible");
        assert!(q_choices.iter().all(|(_, b)| *b == "quantized"), "{q_choices:?}");
        assert!(q1.iter().all(|b| f32::from_bits(*b).is_finite()));
    }

    #[test]
    fn warmed_timestep_loop_allocates_nothing_with_forced_bitset() {
        // Satellite of the backend seam: the bitset scratch lives in the
        // workspace arena, so forcing the bit-packed kernels end-to-end must
        // keep the warmed Eval loop allocation-free too.
        let _guard = BACKEND_LOCK.lock().unwrap();
        backend::with_backend(BackendKind::Bitset, || {
            let mut rng = TensorRng::seed_from(12);
            let mut net = tiny_net(&mut rng);
            let x = Tensor::randn(&[2, 2, 2, 2], 0.0, 1.5, &mut rng);
            net.reset_state();
            for _ in 0..2 {
                let out = net.forward_timestep(&x, Mode::Eval).unwrap();
                net.recycle(out);
            }
            net.reset_state();
            net.reset_workspace_stats();
            for _ in 0..4 {
                let out = net.forward_timestep(&x, Mode::Eval).unwrap();
                net.recycle(out);
            }
            let stats = net.workspace_stats();
            assert!(stats.takes > 0);
            assert_eq!(stats.misses, 0, "warmed bitset loop must not allocate: {stats:?}");
        });
    }

    #[test]
    fn num_parameters_counts_scalars() {
        let mut rng = TensorRng::seed_from(4);
        let mut net = tiny_net(&mut rng);
        // 8*6 + 6 + 6*3 + 3 = 75
        assert_eq!(net.num_parameters(), 75);
    }
}
