//! Early-exit ANN baseline (BranchyNet-style [1, 18]).
//!
//! Sec. III-A(c) of the paper contrasts DT-SNN with early exit in ANNs:
//! DT-SNN operates in the *time* dimension and needs no extra layers, while
//! an early-exit ANN attaches classifier branches to intermediate depths.
//! This module implements that comparator so the claim — "the majority of
//! examples can use the first timestep, while the first exit in ANNs outputs
//! marginal examples" — can be tested, not just quoted.
//!
//! The ANN reuses the same [`Layer`] building blocks as the SNN (conv, BN,
//! pooling, linear) with [`Relu`] activations and a single forward pass
//! (no timesteps). Each trunk block feeds both the next block and its own
//! exit head; training jointly minimizes the cross-entropy of every exit.

use crate::layer::{Layer, Mode, Param};
use crate::layers::{AvgPool2d, BatchNorm2d, Conv2d, Linear};
use crate::loss::cross_entropy_mean_output;
use crate::{Result, SnnError};
use dtsnn_tensor::{global_avg_pool, Tensor, TensorRng};

/// Rectified linear activation for the ANN baseline.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    masks: Vec<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = input.map(|v| v.max(0.0));
        if mode == Mode::Train {
            self.masks.push(input.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.masks.pop().ok_or(SnnError::MissingForwardCache("Relu"))?;
        Ok(grad_out.mul(&mask)?)
    }

    fn reset_state(&mut self) {
        self.masks.clear();
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn kind(&self) -> &'static str {
        "relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// One exit's logits together with the fraction of total network
/// multiply-accumulates spent to reach it (its compute cost).
#[derive(Debug, Clone, PartialEq)]
pub struct ExitOutput {
    /// Logits `[batch, classes]`.
    pub logits: Tensor,
    /// Cumulative fraction of the full network's MACs executed when this
    /// exit fires, in `(0, 1]`.
    pub compute_fraction: f32,
}

/// A feed-forward ANN with classifier branches after every trunk block.
pub struct EarlyExitAnn {
    blocks: Vec<Vec<Box<dyn Layer>>>,
    heads: Vec<Vec<Box<dyn Layer>>>,
    /// Cumulative MAC fraction up to and including each block (+ its head).
    compute_fractions: Vec<f32>,
}

impl std::fmt::Debug for EarlyExitAnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EarlyExitAnn")
            .field("blocks", &self.blocks.len())
            .field("heads", &self.heads.len())
            .finish()
    }
}

impl Clone for EarlyExitAnn {
    fn clone(&self) -> Self {
        EarlyExitAnn {
            blocks: self.blocks.iter().map(|b| b.to_vec()).collect(),
            heads: self.heads.iter().map(|h| h.to_vec()).collect(),
            compute_fractions: self.compute_fractions.clone(),
        }
    }
}

impl EarlyExitAnn {
    /// Builds a VGG-flavoured early-exit ANN comparable to
    /// [`crate::vgg_small`]: three conv stages, each followed by an exit
    /// head (global-average-pool → linear).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for invalid geometry.
    pub fn vgg_like(
        in_channels: usize,
        image_size: usize,
        num_classes: usize,
        width: usize,
        rng: &mut TensorRng,
    ) -> Result<Self> {
        if image_size < 8 || !image_size.is_multiple_of(4) {
            return Err(SnnError::InvalidConfig(format!(
                "image_size must be a multiple of 4 and ≥ 8, got {image_size}"
            )));
        }
        let w = width.max(1);
        let blocks: Vec<Vec<Box<dyn Layer>>> = vec![
            vec![
                Box::new(Conv2d::new(in_channels, w, 3, 1, 1, rng)?),
                Box::new(BatchNorm2d::new(w)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(w, w, 3, 1, 1, rng)?),
                Box::new(BatchNorm2d::new(w)),
                Box::new(Relu::new()),
                Box::new(AvgPool2d::new(2)?),
            ],
            vec![
                Box::new(Conv2d::new(w, 2 * w, 3, 1, 1, rng)?),
                Box::new(BatchNorm2d::new(2 * w)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(2 * w, 2 * w, 3, 1, 1, rng)?),
                Box::new(BatchNorm2d::new(2 * w)),
                Box::new(Relu::new()),
                Box::new(AvgPool2d::new(2)?),
            ],
            vec![
                Box::new(Conv2d::new(2 * w, 2 * w, 3, 1, 1, rng)?),
                Box::new(BatchNorm2d::new(2 * w)),
                Box::new(Relu::new()),
            ],
        ];
        // exit heads: GAP (via explicit flatten of pooled maps) → linear
        let heads: Vec<Vec<Box<dyn Layer>>> = vec![
            vec![Box::new(GapFlatten::new()), Box::new(Linear::new(w, num_classes, rng))],
            vec![Box::new(GapFlatten::new()), Box::new(Linear::new(2 * w, num_classes, rng))],
            vec![Box::new(GapFlatten::new()), Box::new(Linear::new(2 * w, num_classes, rng))],
        ];
        // MAC budget per block (heads are negligible): s², (s/2)², (s/4)²
        let s = image_size as f32;
        let macs = [
            (in_channels * w + w * w) as f32 * 9.0 * s * s,
            (w * 2 * w + 4 * w * w) as f32 * 9.0 * (s / 2.0).powi(2),
            (4 * w * w) as f32 * 9.0 * (s / 4.0).powi(2),
        ];
        let total: f32 = macs.iter().sum();
        let mut acc = 0.0;
        let compute_fractions = macs
            .iter()
            .map(|m| {
                acc += m / total;
                acc
            })
            .collect();
        Ok(EarlyExitAnn { blocks, heads, compute_fractions })
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.heads.len()
    }

    /// Clears caches (between samples / batches).
    pub fn reset_state(&mut self) {
        for b in self.blocks.iter_mut().flatten() {
            b.reset_state();
        }
        for h in self.heads.iter_mut().flatten() {
            h.reset_state();
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Visits every learnable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for b in self.blocks.iter_mut().flatten() {
            b.visit_params(f);
        }
        for h in self.heads.iter_mut().flatten() {
            h.visit_params(f);
        }
    }

    /// Forward pass producing every exit's output.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_all(&mut self, input: &Tensor, mode: Mode) -> Result<Vec<ExitOutput>> {
        self.reset_state();
        let mut x = input.clone();
        let mut outputs = Vec::with_capacity(self.heads.len());
        for (i, block) in self.blocks.iter_mut().enumerate() {
            for layer in block.iter_mut() {
                x = layer.forward(&x, mode)?;
            }
            let mut h = x.clone();
            for layer in self.heads[i].iter_mut() {
                h = layer.forward(&h, mode)?;
            }
            outputs.push(ExitOutput { logits: h, compute_fraction: self.compute_fractions[i] });
        }
        Ok(outputs)
    }

    /// Backward pass given one gradient per exit (joint training).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::BadInput`] when the gradient count differs from
    /// the exit count.
    pub fn backward_all(&mut self, grads: &[Tensor]) -> Result<()> {
        if grads.len() != self.heads.len() {
            return Err(SnnError::BadInput(format!(
                "{} exit gradients for {} exits",
                grads.len(),
                self.heads.len()
            )));
        }
        let mut carry: Option<Tensor> = None;
        for i in (0..self.blocks.len()).rev() {
            let mut g = grads[i].clone();
            for layer in self.heads[i].iter_mut().rev() {
                g = layer.backward(&g)?;
            }
            if let Some(c) = carry {
                g.axpy(1.0, &c)?;
            }
            for layer in self.blocks[i].iter_mut().rev() {
                g = layer.backward(&g)?;
            }
            carry = Some(g);
        }
        Ok(())
    }

    /// One SGD training step on a batch (joint cross-entropy over all exits,
    /// equal weights). Returns the mean loss.
    ///
    /// # Errors
    ///
    /// Propagates loss/layer errors.
    pub fn train_batch(&mut self, input: &Tensor, labels: &[usize], lr: f32) -> Result<f32> {
        let outputs = self.forward_all(input, Mode::Train)?;
        let mut total = 0.0;
        let mut grads = Vec::with_capacity(outputs.len());
        for out in &outputs {
            // single-"timestep" CE per exit
            let (loss, g) = cross_entropy_mean_output(std::slice::from_ref(&out.logits), labels)?;
            total += loss;
            grads.push(g.into_iter().next().expect("one timestep"));
        }
        self.zero_grads();
        self.backward_all(&grads)?;
        let scale = lr / outputs.len() as f32;
        self.visit_params(&mut |p| {
            let g = p.grad.clone();
            p.value.axpy(-scale, &g).expect("matching parameter shapes");
        });
        Ok(total / outputs.len() as f32)
    }
}

/// Global-average-pool + flatten as a single layer (`[n,c,h,w] → [n,c]`).
#[derive(Debug, Clone, Default)]
struct GapFlatten {
    input_dims: Vec<Vec<usize>>,
}

impl GapFlatten {
    fn new() -> Self {
        GapFlatten::default()
    }
}

impl Layer for GapFlatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.input_dims.push(input.dims().to_vec());
        }
        Ok(global_avg_pool(input)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self.input_dims.pop().ok_or(SnnError::MissingForwardCache("GapFlatten"))?;
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut gx = Tensor::zeros(&dims);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_out.data()[ni * c + ci] * inv;
                let base = (ni * c + ci) * h * w;
                for p in 0..h * w {
                    gx.data_mut()[base + p] = g;
                }
            }
        }
        Ok(gx)
    }

    fn reset_state(&mut self) {
        self.input_dims.clear();
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn kind(&self) -> &'static str {
        "gap-flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0, 3.0], &[1, 4]).unwrap();
        let y = relu.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 3.0]);
        let g = relu.backward(&Tensor::ones(&[1, 4])).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
        assert!(relu.backward(&Tensor::ones(&[1, 4])).is_err());
    }

    #[test]
    fn ann_builds_and_exits_have_increasing_compute() {
        let mut rng = TensorRng::seed_from(1);
        let ann = EarlyExitAnn::vgg_like(3, 16, 5, 8, &mut rng).unwrap();
        assert_eq!(ann.num_exits(), 3);
        for w in ann.compute_fractions.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!((ann.compute_fractions[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn forward_all_produces_per_exit_logits() {
        let mut rng = TensorRng::seed_from(2);
        let mut ann = EarlyExitAnn::vgg_like(3, 16, 5, 8, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 16, 16], 0.5, 0.3, &mut rng);
        let outs = ann.forward_all(&x, Mode::Eval).unwrap();
        assert_eq!(outs.len(), 3);
        for o in &outs {
            assert_eq!(o.logits.dims(), &[2, 5]);
        }
    }

    #[test]
    fn training_reduces_joint_loss() {
        let mut rng = TensorRng::seed_from(3);
        let mut ann = EarlyExitAnn::vgg_like(1, 8, 2, 4, &mut rng).unwrap();
        let x = Tensor::randn(&[8, 1, 8, 8], 0.5, 0.5, &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let first = ann.train_batch(&x, &labels, 0.05).unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = ann.train_batch(&x, &labels, 0.05).unwrap();
        }
        assert!(last < first * 0.8, "loss {first} → {last} did not improve");
    }

    #[test]
    fn backward_all_validates_gradient_count() {
        let mut rng = TensorRng::seed_from(4);
        let mut ann = EarlyExitAnn::vgg_like(1, 8, 2, 4, &mut rng).unwrap();
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        ann.forward_all(&x, Mode::Train).unwrap();
        assert!(ann.backward_all(&[Tensor::zeros(&[1, 2])]).is_err());
    }

    #[test]
    fn clone_is_independent() {
        let mut rng = TensorRng::seed_from(5);
        let ann = EarlyExitAnn::vgg_like(1, 8, 2, 4, &mut rng).unwrap();
        let mut a = ann.clone();
        let mut b = ann.clone();
        let x = Tensor::randn(&[4, 1, 8, 8], 0.5, 0.5, &mut rng);
        let labels = vec![0, 1, 0, 1];
        a.train_batch(&x, &labels, 0.1).unwrap();
        // b's outputs unchanged by training a
        let oa = a.forward_all(&x, Mode::Eval).unwrap();
        let ob = b.forward_all(&x, Mode::Eval).unwrap();
        assert_ne!(oa[2].logits, ob[2].logits);
    }
}
