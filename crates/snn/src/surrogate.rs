//! Surrogate gradients for the non-differentiable spike function (Eq. 3).
//!
//! The forward pass always uses the exact Heaviside threshold; these
//! functions replace its derivative during backpropagation. [`Surrogate::Rectangular`]
//! is Eq. 4 of the paper; the others are the families used by the baselines
//! compared in Fig. 6(A) (tdBN uses a rectangular window, Dspike a
//! temperature-controlled smooth window \[12\]).

/// A surrogate-gradient family for the spike firing function.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum Surrogate {
    /// Eq. 4: `max(0, V_th − |u − V_th|)` — a triangular window of half-width
    /// `V_th` centred on the threshold, as used for DT-SNN training.
    #[default]
    Rectangular,
    /// Triangle window with configurable half-width `gamma`:
    /// `max(0, 1 − |u − V_th|/gamma) / gamma`.
    Triangle {
        /// Half-width of the window.
        gamma: f32,
    },
    /// Dspike-style scaled hyperbolic window with temperature `b`
    /// (larger `b` → sharper, closer to the true derivative).
    Dspike {
        /// Temperature; must be positive.
        b: f32,
    },
    /// Derivative of a sigmoid with slope `alpha` centred on the threshold.
    Sigmoid {
        /// Slope; must be positive.
        alpha: f32,
    },
    /// Arctan surrogate `1 / (1 + (π·alpha·(u − V_th))²) · alpha`.
    Atan {
        /// Width parameter; must be positive.
        alpha: f32,
    },
}


impl Surrogate {
    /// Pseudo-derivative `∂s/∂u` evaluated at membrane potential `u` with
    /// firing threshold `v_th`.
    ///
    /// All families are nonnegative, peak at `u = v_th`, and vanish (or decay)
    /// away from the threshold.
    pub fn grad(&self, u: f32, v_th: f32) -> f32 {
        let d = u - v_th;
        match *self {
            Surrogate::Rectangular => (v_th - d.abs()).max(0.0),
            Surrogate::Triangle { gamma } => {
                let g = gamma.max(f32::EPSILON);
                (1.0 - d.abs() / g).max(0.0) / g
            }
            Surrogate::Dspike { b } => {
                let b = b.max(f32::EPSILON);
                // derivative of the smooth step 0.5·(tanh(b·d) + 1):
                // integrates to exactly 1, sharper as b grows.
                let sech2 = {
                    let c = (b * d).cosh();
                    1.0 / (c * c)
                };
                0.5 * b * sech2
            }
            Surrogate::Sigmoid { alpha } => {
                let a = alpha.max(f32::EPSILON);
                let s = 1.0 / (1.0 + (-a * d).exp());
                a * s * (1.0 - s)
            }
            Surrogate::Atan { alpha } => {
                let a = alpha.max(f32::EPSILON);
                a / (1.0 + (std::f32::consts::PI * a * d).powi(2))
            }
        }
    }

    /// Short, stable identifier used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Surrogate::Rectangular => "rectangular",
            Surrogate::Triangle { .. } => "triangle",
            Surrogate::Dspike { .. } => "dspike",
            Surrogate::Sigmoid { .. } => "sigmoid",
            Surrogate::Atan { .. } => "atan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn families() -> Vec<Surrogate> {
        vec![
            Surrogate::Rectangular,
            Surrogate::Triangle { gamma: 1.0 },
            Surrogate::Dspike { b: 3.0 },
            Surrogate::Sigmoid { alpha: 4.0 },
            Surrogate::Atan { alpha: 2.0 },
        ]
    }

    #[test]
    fn peak_at_threshold() {
        for s in families() {
            let at = s.grad(1.0, 1.0);
            let off = s.grad(2.5, 1.0);
            assert!(at > off, "{s:?}: {at} !> {off}");
            assert!(at > 0.0);
        }
    }

    #[test]
    fn nonnegative_everywhere() {
        for s in families() {
            for i in -40..=40 {
                let u = i as f32 * 0.1;
                assert!(s.grad(u, 1.0) >= 0.0, "{s:?} at u={u}");
            }
        }
    }

    #[test]
    fn symmetric_about_threshold() {
        for s in families() {
            for i in 1..20 {
                let d = i as f32 * 0.05;
                let lo = s.grad(1.0 - d, 1.0);
                let hi = s.grad(1.0 + d, 1.0);
                assert!((lo - hi).abs() < 1e-5, "{s:?} asymmetric at d={d}");
            }
        }
    }

    #[test]
    fn rectangular_matches_eq4() {
        let s = Surrogate::Rectangular;
        // Eq. 4: max(0, V_th − |u − V_th|) with V_th = 1
        assert_eq!(s.grad(1.0, 1.0), 1.0);
        assert_eq!(s.grad(0.5, 1.0), 0.5);
        assert_eq!(s.grad(2.0, 1.0), 0.0);
        assert_eq!(s.grad(-0.5, 1.0), 0.0);
    }

    #[test]
    fn dspike_integrates_to_about_one() {
        // The pseudo-derivative approximates a delta; its integral over a wide
        // window should be ≈ 1 (it is the derivative of a 0→1 transition).
        let s = Surrogate::Dspike { b: 3.0 };
        let mut acc = 0.0;
        let h = 0.01;
        let mut u = -9.0;
        while u < 11.0 {
            acc += s.grad(u, 1.0) * h;
            u += h;
        }
        assert!((acc - 1.0).abs() < 0.1, "integral={acc}");
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = families().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
