//! Leaky integrate-and-fire neurons (Eqs. 2–3 of the paper).

use crate::layer::{Layer, Mode, Param};
use crate::{Result, SnnError, Surrogate};
use dtsnn_tensor::{simd, Tensor, TensorError, Workspace};

/// How the membrane potential is reset after a spike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResetMode {
    /// Hard reset to zero: `u ← u·(1 − s)` — the paper's choice.
    #[default]
    Zero,
    /// Soft reset by subtraction: `u ← u − V_th·s`.
    Subtract,
}

/// Configuration of a LIF layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifConfig {
    /// Leak factor `τ ∈ (0, 1]` (Eq. 2).
    pub tau: f32,
    /// Firing threshold `V_th` (Eq. 3); must be positive.
    pub v_th: f32,
    /// Reset behaviour after a spike.
    pub reset: ResetMode,
    /// Surrogate gradient used in backward.
    pub surrogate: Surrogate,
    /// Whether the reset path is detached from the gradient (standard STBP
    /// practice; `true` matches the reference implementations).
    pub detach_reset: bool,
    /// Optional smooth-spike relaxation temperature `b`.
    ///
    /// `None` (the default) keeps the exact Heaviside firing of Eq. 3. With
    /// `Some(b)` the layer instead emits the smooth step
    /// `s = ½·(tanh(b·(u − V_th)) + 1)` and backward uses that function's
    /// exact derivative `½·b·sech²(b·(u − V_th))` in place of the configured
    /// surrogate. Combined with `detach_reset: false`, BPTT then computes the
    /// exact gradient of the relaxed network — the property the conformance
    /// crate's whole-network finite-difference checker relies on. Outputs are
    /// no longer binary, so this mode is for gradient verification only.
    pub smooth_spike: Option<f32>,
}

impl Default for LifConfig {
    fn default() -> Self {
        LifConfig {
            tau: 0.5,
            v_th: 1.0,
            reset: ResetMode::Zero,
            surrogate: Surrogate::Rectangular,
            detach_reset: true,
            smooth_spike: None,
        }
    }
}

impl LifConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when `τ ∉ (0,1]` or `V_th ≤ 0`.
    pub fn validate(&self) -> Result<()> {
        if !(self.tau > 0.0 && self.tau <= 1.0) {
            return Err(SnnError::InvalidConfig(format!("tau must be in (0,1], got {}", self.tau)));
        }
        if self.v_th <= 0.0 {
            return Err(SnnError::InvalidConfig(format!("v_th must be positive, got {}", self.v_th)));
        }
        if let Some(b) = self.smooth_spike {
            if !(b > 0.0 && b.is_finite()) {
                return Err(SnnError::InvalidConfig(format!(
                    "smooth_spike temperature must be positive and finite, got {b}"
                )));
            }
        }
        Ok(())
    }
}

/// Per-timestep cache for BPTT.
#[derive(Debug, Clone)]
struct LifCache {
    /// Pre-reset membrane potential `u[t+1]` of Eq. 2.
    u_pre: Tensor,
    /// Emitted spikes `s[t+1]` of Eq. 3.
    spikes: Tensor,
}

/// A stateful layer of leaky integrate-and-fire neurons.
///
/// Forward implements Eqs. 2–3 exactly: the input current charges the
/// membrane, a spike fires wherever the membrane exceeds `V_th`, and fired
/// membranes reset. Backward replaces the Heaviside derivative with the
/// configured [`Surrogate`] and carries the membrane gradient across
/// timesteps.
#[derive(Debug, Clone)]
pub struct LifNeuron {
    config: LifConfig,
    /// Post-reset membrane potential carried to the next timestep.
    membrane: Option<Tensor>,
    /// Per-timestep caches (training only), pushed by forward / popped by backward.
    caches: Vec<LifCache>,
    /// Gradient w.r.t. the carried membrane, flowing backward through time.
    grad_membrane: Option<Tensor>,
    /// Spike density of the most recent forward output.
    last_density: f32,
    /// Per-batch-row spike densities of the most recent forward output.
    last_row_densities: Vec<f32>,
}

impl LifNeuron {
    /// Creates a LIF layer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`LifConfig::validate`] to
    /// check fallibly.
    pub fn new(config: LifConfig) -> Self {
        config.validate().expect("invalid LIF configuration");
        LifNeuron {
            config,
            membrane: None,
            caches: Vec::new(),
            grad_membrane: None,
            last_density: 0.0,
            last_row_densities: Vec::new(),
        }
    }

    /// The layer's configuration.
    pub fn config(&self) -> &LifConfig {
        &self.config
    }

    /// Current membrane potential, if the layer has processed a timestep.
    pub fn membrane(&self) -> Option<&Tensor> {
        self.membrane.as_ref()
    }

    /// Restricts `last_row_densities` to the given rows, in order — the
    /// shared tail of both `select_batch_rows` variants.
    fn keep_row_densities(&mut self, rows: &[usize]) -> Result<()> {
        if !self.last_row_densities.is_empty() {
            let mut kept = Vec::with_capacity(rows.len());
            for &r in rows {
                kept.push(*self.last_row_densities.get(r).ok_or_else(|| {
                    SnnError::BadInput(format!(
                        "select_batch_rows index {r} out of range ({} rows)",
                        self.last_row_densities.len()
                    ))
                })?);
            }
            self.last_row_densities = kept;
        }
        Ok(())
    }
}

impl Layer for LifNeuron {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let tau = self.config.tau;
        let v_th = self.config.v_th;
        // u_pre = τ·u + W·s  (Eq. 2); membrane starts at 0 for a new sequence.
        let u_pre = match &self.membrane {
            Some(u) => {
                let mut m = u.scale(tau);
                m.axpy(1.0, input).map_err(SnnError::from)?;
                m
            }
            None => input.clone(),
        };
        let mut spikes = Tensor::zeros(u_pre.dims());
        {
            let s = spikes.data_mut();
            match self.config.smooth_spike {
                None => {
                    for (o, &u) in s.iter_mut().zip(u_pre.data()) {
                        *o = if u > v_th { 1.0 } else { 0.0 };
                    }
                }
                Some(b) => {
                    for (o, &u) in s.iter_mut().zip(u_pre.data()) {
                        *o = 0.5 * ((b * (u - v_th)).tanh() + 1.0);
                    }
                }
            }
        }
        // Reset (Eq. 3 text): zero or subtract.
        let mut next = u_pre.clone();
        {
            let m = next.data_mut();
            match self.config.reset {
                ResetMode::Zero => {
                    for (u, &s) in m.iter_mut().zip(spikes.data()) {
                        *u *= 1.0 - s;
                    }
                }
                ResetMode::Subtract => {
                    for (u, &s) in m.iter_mut().zip(spikes.data()) {
                        *u -= v_th * s;
                    }
                }
            }
        }
        self.membrane = Some(next);
        self.last_density = spikes.density();
        self.last_row_densities = spikes.density_rows();
        if mode == Mode::Train {
            self.caches.push(LifCache { u_pre, spikes: spikes.clone() });
        }
        Ok(spikes)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if mode == Mode::Train {
            // Backward caches keep u_pre/spikes alive across timesteps, so
            // arena reuse is off the table; the dense path owns Train.
            return self.forward(input, mode);
        }
        let tau = self.config.tau;
        let v_th = self.config.v_th;
        // u_pre = τ·u + input, fused into one arena buffer. Per element this
        // is mul-then-add exactly like `scale` + `axpy(1.0, ·)` (safe Rust
        // emits no FMA), so the result is bitwise identical to `forward`.
        let mut u_pre = ws.take(input.len());
        match &self.membrane {
            Some(u) => {
                if u.dims() != input.dims() {
                    ws.recycle(u_pre);
                    return Err(SnnError::from(TensorError::ShapeMismatch {
                        expected: u.dims().to_vec(),
                        actual: input.dims().to_vec(),
                    }));
                }
                simd::lif_charge(&mut u_pre, u.data(), tau, input.data());
            }
            None => u_pre.copy_from_slice(input.data()),
        }
        let mut spikes = ws.take(input.len());
        match self.config.smooth_spike {
            None => {
                simd::lif_heaviside(&mut spikes, &u_pre, v_th);
            }
            Some(b) => {
                // transcendental path stays scalar (no vector tanh in std)
                for (o, &u) in spikes.iter_mut().zip(&u_pre) {
                    *o = 0.5 * ((b * (u - v_th)).tanh() + 1.0);
                }
            }
        }
        // Reset in place: the u_pre buffer becomes the carried membrane, and
        // the previous membrane's buffer goes back to the arena.
        match self.config.reset {
            ResetMode::Zero => {
                simd::lif_reset_zero(&mut u_pre, &spikes);
            }
            ResetMode::Subtract => {
                simd::lif_reset_subtract(&mut u_pre, &spikes, v_th);
            }
        }
        let next = Tensor::from_aligned(u_pre, input.dims()).map_err(SnnError::from)?;
        if let Some(old) = self.membrane.take() {
            ws.recycle_tensor(old);
        }
        self.membrane = Some(next);
        let spikes = Tensor::from_aligned(spikes, input.dims()).map_err(SnnError::from)?;
        self.last_density = spikes.density();
        spikes.density_rows_into(&mut self.last_row_densities);
        Ok(spikes)
    }

    fn reset_state_ws(&mut self, ws: &mut Workspace) {
        if let Some(u) = self.membrane.take() {
            ws.recycle_tensor(u);
        }
        self.reset_state();
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.caches.pop().ok_or(SnnError::MissingForwardCache("LifNeuron"))?;
        let v_th = self.config.v_th;
        let sg = self.config.surrogate;
        let n = cache.u_pre.len();
        let mut grad_u_pre = Tensor::zeros(cache.u_pre.dims());
        {
            let gu = grad_u_pre.data_mut();
            let up = cache.u_pre.data();
            let sp = cache.spikes.data();
            let go = grad_out.data();
            let gm = self.grad_membrane.as_ref().map(|t| t.data());
            let smooth = self.config.smooth_spike;
            for i in 0..n {
                let surr = match smooth {
                    None => sg.grad(up[i], v_th),
                    // exact derivative of the smooth forward step
                    Some(b) => {
                        let t = (b * (up[i] - v_th)).tanh();
                        0.5 * b * (1.0 - t * t)
                    }
                };
                // Path 1: through the spike output.
                let mut g = go[i] * surr;
                // Path 2: through the carried membrane u[t] → u_pre[t+1].
                if let Some(gm) = gm {
                    let dreset = match (self.config.reset, self.config.detach_reset) {
                        (ResetMode::Zero, true) => 1.0 - sp[i],
                        (ResetMode::Zero, false) => (1.0 - sp[i]) - up[i] * surr,
                        (ResetMode::Subtract, true) => 1.0,
                        (ResetMode::Subtract, false) => 1.0 - v_th * surr,
                    };
                    g += gm[i] * dreset;
                }
                gu[i] = g;
            }
        }
        // Carry τ·∂L/∂u_pre[t] to timestep t−1 (only if one exists).
        self.grad_membrane =
            if self.caches.is_empty() { None } else { Some(grad_u_pre.scale(self.config.tau)) };
        // ∂u_pre/∂input = 1.
        Ok(grad_u_pre)
    }

    fn reset_state(&mut self) {
        self.membrane = None;
        self.caches.clear();
        self.grad_membrane = None;
        self.last_density = 0.0;
        self.last_row_densities.clear();
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn kind(&self) -> &'static str {
        "lif"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn last_spike_density(&self) -> Option<f32> {
        Some(self.last_density)
    }

    fn last_spike_row_densities(&self) -> Option<&[f32]> {
        Some(&self.last_row_densities)
    }

    fn pad_batch_rows(&mut self, extra: usize, ws: &mut Workspace) -> Result<()> {
        if extra == 0 {
            return Ok(());
        }
        if let Some(u) = self.membrane.take() {
            let mut dims = u.dims().to_vec();
            if dims.len() < 2 {
                self.membrane = Some(u);
                return Err(SnnError::BadInput(format!(
                    "pad_batch_rows needs a batched membrane, got dims {dims:?}"
                )));
            }
            let row_len = u.len() / dims[0];
            // workspace buffers come back zero-filled, so the appended rows
            // are exactly the zero membrane a reset layer would carry
            let mut buf = ws.take(u.len() + extra * row_len);
            buf[..u.len()].copy_from_slice(u.data());
            ws.recycle_tensor(u);
            dims[0] += extra;
            self.membrane = Some(Tensor::from_aligned(buf, &dims).map_err(SnnError::from)?);
        }
        // fresh rows have emitted nothing yet; keep the densities aligned
        // with the widened batch so a following select_batch_rows stays legal
        if !self.last_row_densities.is_empty() {
            self.last_row_densities.extend(std::iter::repeat_n(0.0, extra));
        }
        Ok(())
    }

    fn select_batch_rows(&mut self, rows: &[usize]) -> Result<()> {
        if let Some(u) = &self.membrane {
            self.membrane = Some(u.select_rows(rows).map_err(SnnError::from)?);
        }
        self.keep_row_densities(rows)
    }

    fn select_batch_rows_ws(&mut self, rows: &[usize], ws: &mut Workspace) -> Result<()> {
        if let Some(u) = self.membrane.take() {
            let batch = u.dims()[0];
            if let Some(&bad) = rows.iter().find(|&&r| r >= batch) {
                self.membrane = Some(u);
                return Err(SnnError::from(TensorError::InvalidArgument(format!(
                    "select_rows index {bad} out of range ({batch} rows)"
                ))));
            }
            let row_len = u.len() / batch;
            // gather survivors into an arena buffer and park the old
            // membrane: same copies as `select_rows`, zero net allocation
            let mut buf = ws.take(rows.len() * row_len);
            for (dst, &r) in buf.chunks_exact_mut(row_len).zip(rows) {
                dst.copy_from_slice(&u.data()[r * row_len..(r + 1) * row_len]);
            }
            let mut dims = u.dims().to_vec();
            dims[0] = rows.len();
            ws.recycle_tensor(u);
            self.membrane = Some(Tensor::from_aligned(buf, &dims).map_err(SnnError::from)?);
        }
        self.keep_row_densities(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(LifConfig { tau: 0.0, ..LifConfig::default() }.validate().is_err());
        assert!(LifConfig { tau: 1.5, ..LifConfig::default() }.validate().is_err());
        assert!(LifConfig { v_th: -1.0, ..LifConfig::default() }.validate().is_err());
        assert!(LifConfig::default().validate().is_ok());
    }

    #[test]
    fn subthreshold_input_accumulates_with_leak() {
        let mut lif = LifNeuron::new(LifConfig { tau: 0.5, v_th: 1.0, ..LifConfig::default() });
        let x = Tensor::full(&[1, 1], 0.4);
        // u: 0.4, 0.6, 0.7, 0.75 … never crosses 1.0
        for _ in 0..4 {
            let s = lif.forward(&x, Mode::Eval).unwrap();
            assert_eq!(s.sum(), 0.0);
        }
        let u = lif.membrane().unwrap().data()[0];
        assert!((u - 0.75).abs() < 1e-5, "u={u}");
    }

    #[test]
    fn spike_fires_and_resets_to_zero() {
        let mut lif = LifNeuron::new(LifConfig { tau: 0.5, v_th: 1.0, ..LifConfig::default() });
        let x = Tensor::full(&[1, 1], 0.7);
        let s1 = lif.forward(&x, Mode::Eval).unwrap();
        assert_eq!(s1.sum(), 0.0); // u = 0.7
        let s2 = lif.forward(&x, Mode::Eval).unwrap();
        assert_eq!(s2.sum(), 1.0); // u = 1.05 > 1 → spike
        assert_eq!(lif.membrane().unwrap().data()[0], 0.0); // hard reset
    }

    #[test]
    fn soft_reset_subtracts_threshold() {
        let cfg = LifConfig { tau: 1.0, v_th: 1.0, reset: ResetMode::Subtract, ..LifConfig::default() };
        let mut lif = LifNeuron::new(cfg);
        let x = Tensor::full(&[1, 1], 1.3);
        let s = lif.forward(&x, Mode::Eval).unwrap();
        assert_eq!(s.sum(), 1.0);
        let u = lif.membrane().unwrap().data()[0];
        assert!((u - 0.3).abs() < 1e-6, "u={u}");
    }

    #[test]
    fn threshold_is_strict_inequality() {
        // Eq. 3: spike iff u > V_th; u == V_th must not fire.
        let mut lif = LifNeuron::new(LifConfig { tau: 0.5, v_th: 1.0, ..LifConfig::default() });
        let x = Tensor::full(&[1, 1], 1.0);
        let s = lif.forward(&x, Mode::Eval).unwrap();
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn reset_state_clears_membrane() {
        let mut lif = LifNeuron::new(LifConfig::default());
        let x = Tensor::full(&[1, 2], 0.6);
        lif.forward(&x, Mode::Eval).unwrap();
        assert!(lif.membrane().is_some());
        lif.reset_state();
        assert!(lif.membrane().is_none());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut lif = LifNeuron::new(LifConfig::default());
        let g = Tensor::ones(&[1, 1]);
        assert!(matches!(lif.backward(&g), Err(SnnError::MissingForwardCache(_))));
    }

    #[test]
    fn backward_uses_surrogate_window() {
        let mut lif = LifNeuron::new(LifConfig::default());
        // u lands at 0.9 (inside the surrogate window, no spike)
        let x = Tensor::full(&[1, 1], 0.9);
        lif.forward(&x, Mode::Train).unwrap();
        let g = lif.backward(&Tensor::ones(&[1, 1])).unwrap();
        // Eq. 4 at u=0.9, V_th=1: 1 − |0.9−1| = 0.9
        assert!((g.data()[0] - 0.9).abs() < 1e-5);
        // far below threshold → zero gradient
        lif.reset_state();
        let x = Tensor::full(&[1, 1], -3.0);
        lif.forward(&x, Mode::Train).unwrap();
        let g = lif.backward(&Tensor::ones(&[1, 1])).unwrap();
        assert_eq!(g.data()[0], 0.0);
    }

    #[test]
    fn bptt_carries_membrane_gradient() {
        // Two timesteps; gradient injected only at t=2 must reach t=1's input
        // through the leak path.
        let mut lif = LifNeuron::new(LifConfig { tau: 0.5, v_th: 10.0, ..LifConfig::default() });
        let x = Tensor::full(&[1, 1], 1.0);
        lif.forward(&x, Mode::Train).unwrap(); // t=1, u=1
        lif.forward(&x, Mode::Train).unwrap(); // t=2, u=1.5
        // upstream gradient dL/ds=0 both steps, but membrane path still matters
        // only through spikes; with v_th=10 surrogate window is wide: grad at
        // u=1.5: max(0, 10-8.5)=1.5; at t=1 carry = τ * that * dreset(=1, s=0)
        let g2 = lif.backward(&Tensor::ones(&[1, 1])).unwrap();
        assert!((g2.data()[0] - 1.5).abs() < 1e-5);
        let g1 = lif.backward(&Tensor::zeros(&[1, 1])).unwrap();
        // carry τ·1.5 = 0.75, times dreset 1 → grad through membrane only
        assert!((g1.data()[0] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn smooth_spike_config_validation() {
        assert!(LifConfig { smooth_spike: Some(0.0), ..LifConfig::default() }.validate().is_err());
        assert!(LifConfig { smooth_spike: Some(f32::NAN), ..LifConfig::default() }
            .validate()
            .is_err());
        assert!(LifConfig { smooth_spike: Some(4.0), ..LifConfig::default() }.validate().is_ok());
    }

    #[test]
    fn smooth_spike_bptt_is_exact_gradient() {
        // With the smooth forward and an attached reset the analytic BPTT
        // gradient must equal a central finite difference of the input.
        for reset in [ResetMode::Zero, ResetMode::Subtract] {
            let cfg = LifConfig {
                tau: 0.5,
                v_th: 1.0,
                reset,
                detach_reset: false,
                smooth_spike: Some(3.0),
                ..LifConfig::default()
            };
            let steps = 3;
            let base = [0.9f32, 0.7, 1.2];
            let run = |inputs: &[f32]| -> f32 {
                let mut lif = LifNeuron::new(cfg);
                let mut total = 0.0;
                for &v in inputs {
                    let s = lif.forward(&Tensor::full(&[1, 1], v), Mode::Eval).unwrap();
                    total += s.data()[0];
                }
                total
            };
            // analytic: sum of spikes over all timesteps, dL/ds_t = 1
            let mut lif = LifNeuron::new(cfg);
            for &v in &base {
                lif.forward(&Tensor::full(&[1, 1], v), Mode::Train).unwrap();
            }
            let mut analytic = [0.0f32; 3];
            for t in (0..steps).rev() {
                analytic[t] = lif.backward(&Tensor::ones(&[1, 1])).unwrap().data()[0];
            }
            let eps = 1e-3;
            for t in 0..steps {
                let mut plus = base;
                plus[t] += eps;
                let mut minus = base;
                minus[t] -= eps;
                let num = (run(&plus) - run(&minus)) / (2.0 * eps);
                assert!(
                    (num - analytic[t]).abs() < 1e-3,
                    "{reset:?} t={t}: numeric {num} vs analytic {}",
                    analytic[t]
                );
            }
        }
    }

    #[test]
    fn spike_density_reported() {
        let mut lif = LifNeuron::new(LifConfig::default());
        let x = Tensor::from_vec(vec![2.0, 0.0, 2.0, 0.0], &[1, 4]).unwrap();
        lif.forward(&x, Mode::Eval).unwrap();
        assert_eq!(lif.last_spike_density(), Some(0.5));
    }

    #[test]
    fn per_row_densities_reported_per_batch_row() {
        let mut lif = LifNeuron::new(LifConfig::default());
        // row 0 fires both neurons, row 1 one, row 2 none
        let x = Tensor::from_vec(vec![2.0, 2.0, 2.0, 0.0, 0.0, 0.0], &[3, 2]).unwrap();
        lif.forward(&x, Mode::Eval).unwrap();
        assert_eq!(lif.last_spike_row_densities(), Some([1.0, 0.5, 0.0].as_slice()));
        lif.reset_state();
        assert_eq!(lif.last_spike_row_densities(), Some([].as_slice()));
    }

    #[test]
    fn select_batch_rows_gathers_membrane_state() {
        let mut lif = LifNeuron::new(LifConfig { tau: 0.5, v_th: 10.0, ..LifConfig::default() });
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]).unwrap();
        lif.forward(&x, Mode::Eval).unwrap();
        lif.select_batch_rows(&[2, 0]).unwrap();
        assert_eq!(lif.membrane().unwrap().dims(), &[2, 1]);
        assert_eq!(lif.membrane().unwrap().data(), &[3.0, 1.0]);
        assert_eq!(lif.last_spike_row_densities().map(|d| d.len()), Some(2));
        // the compacted rows evolve exactly like a batch built from them
        let x2 = Tensor::from_vec(vec![0.5, 0.25], &[2, 1]).unwrap();
        let s = lif.forward(&x2, Mode::Eval).unwrap();
        assert_eq!(s.dims(), &[2, 1]);
        assert_eq!(lif.membrane().unwrap().data(), &[2.0, 0.75]);
        assert!(lif.select_batch_rows(&[5]).is_err());
    }

    #[test]
    fn pad_batch_rows_appends_zero_membrane_rows() {
        let mut ws = Workspace::new();
        let mut lif = LifNeuron::new(LifConfig { tau: 0.5, v_th: 10.0, ..LifConfig::default() });
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        lif.forward(&x, Mode::Eval).unwrap();
        lif.pad_batch_rows(2, &mut ws).unwrap();
        assert_eq!(lif.membrane().unwrap().dims(), &[4, 1]);
        assert_eq!(lif.membrane().unwrap().data(), &[1.0, 2.0, 0.0, 0.0]);
        assert_eq!(lif.last_spike_row_densities().map(|d| d.len()), Some(4));
        // a padded row's first timestep equals a fresh layer's first timestep
        let x2 = Tensor::from_vec(vec![0.5, 0.5, 0.7, 20.0], &[4, 1]).unwrap();
        lif.forward(&x2, Mode::Eval).unwrap();
        let mut fresh = LifNeuron::new(*lif.config());
        fresh.forward(&Tensor::from_vec(vec![0.7, 20.0], &[2, 1]).unwrap(), Mode::Eval).unwrap();
        assert_eq!(
            &lif.membrane().unwrap().data()[2..],
            fresh.membrane().unwrap().data(),
            "padded rows must evolve exactly like a freshly reset layer"
        );
    }

    #[test]
    fn pad_batch_rows_on_fresh_layer_is_a_no_op() {
        let mut ws = Workspace::new();
        let mut lif = LifNeuron::new(LifConfig::default());
        lif.pad_batch_rows(3, &mut ws).unwrap();
        assert!(lif.membrane().is_none());
        assert_eq!(lif.last_spike_row_densities(), Some([].as_slice()));
    }

    #[test]
    fn pad_batch_rows_rejects_unbatched_membrane() {
        let mut ws = Workspace::new();
        let mut lif = LifNeuron::new(LifConfig::default());
        lif.forward(&Tensor::full(&[3], 0.5), Mode::Eval).unwrap();
        assert!(lif.pad_batch_rows(1, &mut ws).is_err());
        // the membrane survives the failed pad
        assert_eq!(lif.membrane().unwrap().dims(), &[3]);
    }

    #[test]
    fn select_batch_rows_on_fresh_layer_is_a_no_op() {
        let mut lif = LifNeuron::new(LifConfig::default());
        lif.select_batch_rows(&[0]).unwrap();
        assert!(lif.membrane().is_none());
    }

    #[test]
    fn forward_ws_is_bitwise_invariant_across_simd_levels_and_threads() {
        use dtsnn_tensor::{parallel, simd, TensorRng};
        let _guard = crate::test_support::SIMD_TEST_LOCK.lock().unwrap();
        for reset in [ResetMode::Zero, ResetMode::Subtract] {
            let run = |level: simd::SimdLevel, threads: usize| {
                simd::with_level(level, || {
                    parallel::with_threads(threads, || {
                        let mut rng = TensorRng::seed_from(77);
                        let cfg = LifConfig { tau: 0.5, v_th: 0.4, reset, ..LifConfig::default() };
                        let mut lif = LifNeuron::new(cfg);
                        let mut ws = Workspace::new();
                        let mut bits = Vec::new();
                        for _ in 0..4 {
                            let x = Tensor::randn(&[5, 33], 0.0, 1.0, &mut rng);
                            let s = lif.forward_ws(&x, Mode::Eval, &mut ws).unwrap();
                            bits.extend(s.data().iter().map(|v| v.to_bits()));
                        }
                        bits.extend(lif.membrane().unwrap().data().iter().map(|v| v.to_bits()));
                        bits
                    })
                })
            };
            let want = run(simd::SimdLevel::Scalar, 1);
            for &lvl in simd::SimdLevel::ALL.iter().filter(|&&l| l <= simd::detected()) {
                for threads in [1usize, 4] {
                    assert_eq!(want, run(lvl, threads), "{reset:?} {lvl:?} threads={threads}");
                }
            }
        }
    }
}
