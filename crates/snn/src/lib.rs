//! Spiking neural network layers and surrogate-gradient training for the
//! DT-SNN reproduction.
//!
//! The crate implements the training stack of Sec. II of the paper:
//! leaky integrate-and-fire (LIF) neurons with reset-to-zero dynamics
//! (Eqs. 2–3), surrogate gradients (Eq. 4 plus the alternatives used by the
//! paper's baselines), direct input encoding, tdBN-style normalization,
//! backpropagation through time, SGD with momentum and cosine learning-rate
//! decay, and the two loss functions of Eqs. 9–10.
//!
//! # Example
//!
//! ```
//! use dtsnn_snn::{Layer, LifConfig, LifNeuron, Mode};
//! use dtsnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), dtsnn_snn::SnnError> {
//! let mut lif = LifNeuron::new(LifConfig::default());
//! let input = Tensor::full(&[1, 4], 2.0); // strong current → immediate spike
//! let spikes = lif.forward(&input, dtsnn_snn::Mode::Eval)?;
//! assert_eq!(spikes.data(), &[1.0, 1.0, 1.0, 1.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ann;
mod checkpoint;
#[cfg(test)]
pub(crate) mod test_support {
    //! Shared guard for tests that flip the process-wide SIMD override:
    //! `simd::set_level` is process state, so tests exercising forced levels
    //! must not interleave across this binary's test threads.
    use std::sync::Mutex;
    pub(crate) static SIMD_TEST_LOCK: Mutex<()> = Mutex::new(());
}
mod error;
mod layer;
mod layers;
mod lif;
mod loss;
mod models;
mod network;
mod optim;
mod surrogate;
mod train;

pub use ann::{EarlyExitAnn, ExitOutput, Relu};
pub use checkpoint::{load_params, save_params, CheckpointError};
pub use error::SnnError;
pub use layer::{Layer, Mode, Param};
pub use layers::{AvgPool2d, BatchNorm2d, BnStats, Conv2d, Dropout, Flatten, Linear, ResidualBlock};
pub use lif::{LifConfig, LifNeuron, ResetMode};
pub use loss::{cross_entropy_mean_output, cross_entropy_per_timestep, LossKind};
pub use models::{
    resnet19_geometry, resnet_small, resnet_small_density_map, resnet_small_geometry,
    vgg16_geometry, vgg_small, vgg_small_density_map, vgg_small_geometry, DensitySource,
    LayerGeometry, ModelConfig,
};
pub use network::{LayerNode, Snn, SpikeActivity};
pub use optim::{CosineSchedule, Sgd, SgdConfig};
pub use surrogate::Surrogate;
pub use train::{evaluate_at, TrainReport, Trainer, TrainerConfig};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, SnnError>;
