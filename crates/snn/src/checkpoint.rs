//! Saving and restoring trained parameters.
//!
//! The format is a small self-describing little-endian binary: a magic
//! string, the parameter count, then each parameter's shape and `f32` data
//! in network visitation order. Loading validates every shape against the
//! receiving network, so restoring into a differently-shaped architecture
//! fails loudly instead of silently corrupting weights.

use crate::network::Snn;
use crate::{Result, SnnError};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DTSNN01\n";

/// Serializes every learnable parameter of `network` to `path`.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] wrapping any I/O failure.
pub fn save_params(network: &mut Snn, path: impl AsRef<Path>) -> Result<()> {
    let mut blob: Vec<u8> = Vec::new();
    blob.extend_from_slice(MAGIC);
    let mut count: u32 = 0;
    network.visit_params(&mut |_| count += 1);
    blob.extend_from_slice(&count.to_le_bytes());
    network.visit_params(&mut |p| {
        let dims = p.value.dims();
        blob.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        for &d in dims {
            blob.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in p.value.data() {
            blob.extend_from_slice(&v.to_le_bytes());
        }
    });
    let mut file = std::fs::File::create(path.as_ref())
        .map_err(|e| SnnError::InvalidConfig(format!("cannot create checkpoint: {e}")))?;
    file.write_all(&blob)
        .map_err(|e| SnnError::InvalidConfig(format!("cannot write checkpoint: {e}")))?;
    Ok(())
}

/// Restores parameters saved by [`save_params`] into `network`.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] when the file is malformed, the
/// parameter count differs, or any shape disagrees with the network.
pub fn load_params(network: &mut Snn, path: impl AsRef<Path>) -> Result<()> {
    let mut blob = Vec::new();
    std::fs::File::open(path.as_ref())
        .map_err(|e| SnnError::InvalidConfig(format!("cannot open checkpoint: {e}")))?
        .read_to_end(&mut blob)
        .map_err(|e| SnnError::InvalidConfig(format!("cannot read checkpoint: {e}")))?;
    let mut cursor = Cursor { blob: &blob, pos: 0 };
    let magic = cursor.take(8)?;
    if magic != MAGIC {
        return Err(SnnError::InvalidConfig("not a DT-SNN checkpoint (bad magic)".into()));
    }
    let count = cursor.u32()? as usize;
    let mut expected = 0usize;
    network.visit_params(&mut |_| expected += 1);
    if count != expected {
        return Err(SnnError::InvalidConfig(format!(
            "checkpoint has {count} parameters, network has {expected}"
        )));
    }
    // decode all parameters first so a truncated file cannot leave the
    // network half-restored
    let mut decoded: Vec<(Vec<usize>, Vec<f32>)> = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = cursor.u32()? as usize;
        if rank > 8 {
            return Err(SnnError::InvalidConfig(format!("implausible tensor rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(cursor.u32()? as usize);
        }
        let n: usize = dims.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(cursor.f32()?);
        }
        decoded.push((dims, data));
    }
    // shape check against the live network
    let mut idx = 0;
    let mut shape_err: Option<String> = None;
    network.visit_params(&mut |p| {
        if shape_err.is_some() {
            return;
        }
        let (dims, _) = &decoded[idx];
        if p.value.dims() != dims.as_slice() {
            shape_err = Some(format!(
                "parameter {idx}: checkpoint shape {dims:?} vs network {:?}",
                p.value.dims()
            ));
        }
        idx += 1;
    });
    if let Some(msg) = shape_err {
        return Err(SnnError::InvalidConfig(msg));
    }
    // commit
    let mut idx = 0;
    network.visit_params(&mut |p| {
        let (_, data) = &decoded[idx];
        p.value.data_mut().copy_from_slice(data);
        idx += 1;
    });
    Ok(())
}

struct Cursor<'a> {
    blob: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.pos + n > self.blob.len() {
            return Err(SnnError::InvalidConfig("truncated checkpoint".into()));
        }
        let s = &self.blob[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear};
    use crate::lif::{LifConfig, LifNeuron};
    use crate::Mode;
    use dtsnn_tensor::{Tensor, TensorRng};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dtsnn-ckpt-{name}-{}", std::process::id()))
    }

    fn net(seed: u64) -> Snn {
        let mut rng = TensorRng::seed_from(seed);
        Snn::from_layers(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 6, &mut rng)),
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(6, 3, &mut rng)),
        ])
    }

    #[test]
    fn roundtrip_restores_behaviour() {
        let path = tmp("roundtrip");
        let mut a = net(1);
        save_params(&mut a, &path).unwrap();
        let mut b = net(2); // different init
        let x = Tensor::randn(&[1, 1, 2, 2], 0.5, 0.5, &mut TensorRng::seed_from(3));
        let before = b.forward_timestep(&x, Mode::Eval).unwrap();
        b.reset_state();
        load_params(&mut b, &path).unwrap();
        let after = b.forward_timestep(&x, Mode::Eval).unwrap();
        b.reset_state();
        let mut a2 = net(99);
        load_params(&mut a2, &path).unwrap();
        let reference = a2.forward_timestep(&x, Mode::Eval).unwrap();
        assert_ne!(before, after, "load must change a differently-initialized net");
        assert_eq!(after, reference, "restored nets must agree");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_architecture() {
        let path = tmp("wrong-arch");
        let mut a = net(1);
        save_params(&mut a, &path).unwrap();
        let mut rng = TensorRng::seed_from(4);
        let mut other = Snn::from_layers(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 8, &mut rng)), // different width
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(8, 3, &mut rng)),
        ]);
        assert!(load_params(&mut other, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let mut a = net(1);
        assert!(load_params(&mut a, &path).is_err());
        // truncated: valid magic + count, no data
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&4u32.to_le_bytes());
        std::fs::write(&path, &blob).unwrap();
        assert!(load_params(&mut a, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let mut a = net(1);
        assert!(load_params(&mut a, "/nonexistent/dir/ckpt.bin").is_err());
    }
}
